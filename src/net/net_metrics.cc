#include "net/net_metrics.h"

#include "common/string_util.h"

namespace fvae::net {

ServerMetrics::ServerMetrics(obs::MetricsRegistry* registry)
    : owned_registry_(registry != nullptr
                          ? nullptr
                          : std::make_unique<obs::MetricsRegistry>()),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      connections_accepted(
          registry_->Counter("net.server.connections_accepted")),
      connections_closed(registry_->Counter("net.server.connections_closed")),
      protocol_errors(registry_->Counter("net.server.protocol_errors")),
      idle_timeouts(registry_->Counter("net.server.idle_timeouts")),
      frames_rx(registry_->Counter("net.server.frames_rx")),
      frames_tx(registry_->Counter("net.server.frames_tx")),
      bytes_rx(registry_->Counter("net.server.bytes_rx")),
      bytes_tx(registry_->Counter("net.server.bytes_tx")),
      backpressure_pauses(
          registry_->Counter("net.server.backpressure_pauses")),
      open_connections_(registry_->Gauge("net.server.open_connections")),
      request_latency_us_(
          registry_->Histo("net.server.request_latency_us")),
      request_exemplars_(
          registry_->Exemplars("net.server.request_latency_us")),
      slow_traces_(/*capacity=*/64) {
  // Verb names are part of the introspection contract — keep in sync with
  // the Verb enum (and VerbName below).
  verb_latency_us_ = {
      &registry_->Histo("net.server.health.latency_us"),
      &registry_->Histo("net.server.lookup.latency_us"),
      &registry_->Histo("net.server.encode_fold_in.latency_us"),
      &registry_->Histo("net.server.stats.latency_us"),
      &registry_->Histo("net.server.introspect.latency_us"),
  };
}

namespace {
const char* VerbName(size_t verb) {
  switch (static_cast<Verb>(verb)) {
    case Verb::kHealth:
      return "health";
    case Verb::kLookup:
      return "lookup";
    case Verb::kEncodeFoldIn:
      return "encode_fold_in";
    case Verb::kStats:
      return "stats";
    case Verb::kIntrospect:
      return "introspect";
  }
  return "unknown";
}
}  // namespace

std::string ServerMetrics::ToJson() const {
  std::string out = StrFormat(
      "{\"connections_accepted\":%llu,\"connections_closed\":%llu,"
      "\"open_connections\":%.0f,\"protocol_errors\":%llu,"
      "\"idle_timeouts\":%llu,\"frames_rx\":%llu,\"frames_tx\":%llu,"
      "\"bytes_rx\":%llu,\"bytes_tx\":%llu,\"backpressure_pauses\":%llu",
      static_cast<unsigned long long>(connections_accepted.Value()),
      static_cast<unsigned long long>(connections_closed.Value()),
      open_connections_.Value(),
      static_cast<unsigned long long>(protocol_errors.Value()),
      static_cast<unsigned long long>(idle_timeouts.Value()),
      static_cast<unsigned long long>(frames_rx.Value()),
      static_cast<unsigned long long>(frames_tx.Value()),
      static_cast<unsigned long long>(bytes_rx.Value()),
      static_cast<unsigned long long>(bytes_tx.Value()),
      static_cast<unsigned long long>(backpressure_pauses.Value()));
  out += ",\"request_latency_us\":" + request_latency_us_.SummaryJson();
  out += ",\"verb_latency_us\":{";
  for (size_t v = 0; v < kNumVerbs; ++v) {
    out += StrFormat("%s\"%s\":", v == 0 ? "" : ",", VerbName(v));
    out += verb_latency_us_[v]->SummaryJson();
  }
  out += "}}";
  return out;
}

RouterMetrics::RouterMetrics(size_t num_shards,
                             obs::MetricsRegistry* registry)
    : owned_registry_(registry != nullptr
                          ? nullptr
                          : std::make_unique<obs::MetricsRegistry>()),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      requests(registry_->Counter("net.client.requests")),
      failures(registry_->Counter("net.client.failures")),
      hedges(registry_->Counter("net.client.hedges")),
      hedge_wins(registry_->Counter("net.client.hedge_wins")),
      failovers(registry_->Counter("net.client.failovers")),
      breaker_trips(registry_->Counter("net.client.breaker_trips")),
      health_probes(registry_->Counter("net.client.health_probes")),
      health_failures(registry_->Counter("net.client.health_failures")),
      call_latency_us_(registry_->Histo("net.client.call_latency_us")) {
  shard_requests_.reserve(num_shards);
  shard_errors_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    // Names built once here, never on the request path.
    shard_requests_.push_back(&registry_->Counter(
        StrFormat("net.client.shard%zu.requests", i)));
    shard_errors_.push_back(
        &registry_->Counter(StrFormat("net.client.shard%zu.errors", i)));
  }
}

std::string RouterMetrics::ToJson() const {
  std::string out = StrFormat(
      "{\"requests\":%llu,\"failures\":%llu,\"hedges\":%llu,"
      "\"hedge_wins\":%llu,\"failovers\":%llu,\"breaker_trips\":%llu,"
      "\"health_probes\":%llu,\"health_failures\":%llu",
      static_cast<unsigned long long>(requests.Value()),
      static_cast<unsigned long long>(failures.Value()),
      static_cast<unsigned long long>(hedges.Value()),
      static_cast<unsigned long long>(hedge_wins.Value()),
      static_cast<unsigned long long>(failovers.Value()),
      static_cast<unsigned long long>(breaker_trips.Value()),
      static_cast<unsigned long long>(health_probes.Value()),
      static_cast<unsigned long long>(health_failures.Value()));
  out += ",\"call_latency_us\":" + call_latency_us_.SummaryJson();
  out += ",\"shards\":[";
  for (size_t i = 0; i < shard_requests_.size(); ++i) {
    out += StrFormat(
        "%s{\"requests\":%llu,\"errors\":%llu}", i == 0 ? "" : ",",
        static_cast<unsigned long long>(shard_requests_[i]->Value()),
        static_cast<unsigned long long>(shard_errors_[i]->Value()));
  }
  out += "]}";
  return out;
}

}  // namespace fvae::net
