#include "net/epoll_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"

namespace fvae::net {
namespace {

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

EpollLoop::EpollLoop() {
  epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    init_status_ = Status::IoError(std::string("epoll_create1: ") +
                                   std::strerror(errno));
    return;
  }
  wake_fd_.Reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) {
    init_status_ =
        Status::IoError(std::string("eventfd: ") + std::strerror(errno));
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) != 0) {
    init_status_ = Status::IoError(std::string("epoll_ctl(wake): ") +
                                   std::strerror(errno));
  }
}

EpollLoop::~EpollLoop() = default;

Status EpollLoop::Add(int fd, bool want_write, IoCallback callback) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(add): ") +
                           std::strerror(errno));
  }
  callbacks_[fd] = std::move(callback);
  return Status::Ok();
}

Status EpollLoop::Mod(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(mod): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status EpollLoop::Del(int fd) {
  callbacks_.erase(fd);
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Status::IoError(std::string("epoll_ctl(del): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

TimerWheel::TimerId EpollLoop::ScheduleTimer(int64_t delay_micros,
                                             std::function<void()> callback) {
  return timers_.Schedule(MonotonicMicros(), delay_micros,
                          std::move(callback));
}

void EpollLoop::CancelTimer(TimerWheel::TimerId id) { timers_.Cancel(id); }

void EpollLoop::Post(Task task) {
  {
    MutexLock lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  WakeUp();
}

void EpollLoop::WakeUp() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; short write is ignorable.
  (void)!::write(wake_fd_.get(), &one, sizeof(one));
}

void EpollLoop::DrainPosted() {
  std::deque<Task> tasks;
  {
    MutexLock lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (Task& task : tasks) task();
}

bool EpollLoop::InLoopThread() const {
  return loop_thread_id_.load(std::memory_order_relaxed) == ThisThreadId();
}

void EpollLoop::Run() {
  FVAE_CHECK(init_status_.ok()) << init_status_.ToString();
  loop_thread_id_.store(ThisThreadId(), std::memory_order_relaxed);
  std::vector<epoll_event> events(64);
  while (!stop_.load(std::memory_order_acquire)) {
    const int64_t now = MonotonicMicros();
    timers_.Advance(now);
    // Default 100 ms idle wake keeps the wheel ticking even with no IO.
    const int64_t next_micros = timers_.MicrosToNext(now, 100'000);
    const int timeout_ms = static_cast<int>((next_micros + 999) / 1000);
    const int n =
        ::epoll_wait(epoll_fd_.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      FVAE_CHECK(false) << "epoll_wait: " << std::strerror(errno);
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_.get()) {
        uint64_t drained = 0;
        // Draining the eventfd counter is the only goal; a spurious EAGAIN
        // just means another wakeup already consumed it.
        (void)!::read(wake_fd_.get(), &drained, sizeof(drained));
        DrainPosted();
        continue;
      }
      auto it = callbacks_.find(fd);
      // A callback earlier in this batch may have closed this fd.
      if (it == callbacks_.end()) continue;
      Events readiness;
      readiness.readable = (events[i].events & EPOLLIN) != 0;
      readiness.writable = (events[i].events & EPOLLOUT) != 0;
      readiness.error =
          (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      // Copy: the callback may Del(fd) and invalidate the iterator.
      IoCallback callback = it->second;
      callback(readiness);
    }
    if (n == static_cast<int>(events.size())) {
      events.resize(events.size() * 2);
    }
  }
  // Final drain so shutdown tasks posted just before Stop() still run.
  DrainPosted();
  loop_thread_id_.store(0, std::memory_order_relaxed);
}

void EpollLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  WakeUp();
}

}  // namespace fvae::net
