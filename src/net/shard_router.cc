#include "net/shard_router.h"

#include <poll.h>

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace fvae::net {
namespace {

/// FNV-1a over arbitrary bytes — ring placement and key hashing. Not
/// cryptographic; only uniformity matters here.
uint64_t Fnv1a(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// splitmix64 finalizer. FNV-1a's high bits avalanche poorly on short
/// inputs (sequential user ids, near-identical endpoint strings), and ring
/// placement compares full 64-bit values — without this the vnodes of one
/// endpoint cluster and its arc share collapses.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

uint64_t HashKey(uint64_t user_id) {
  return Mix64(Fnv1a(&user_id, sizeof(user_id)));
}

/// A wire-level error status (the shard answered with an error frame) is
/// successful transport: the shard is alive and the channel stream is
/// intact. Only transport errors should feed the breaker.
bool IsWireLevelError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInvalidArgument:
      return true;
    default:  // every other code arrives via transport failure paths
      return false;
  }
}

}  // namespace

ShardRouterClient::ShardRouterClient(std::vector<std::string> endpoints,
                                     ShardRouterOptions options,
                                     obs::MetricsRegistry* registry)
    : options_(options), metrics_(endpoints.size(), registry) {
  FVAE_CHECK(!endpoints.empty()) << "router needs at least one endpoint";
  options_.virtual_nodes = std::max<size_t>(options_.virtual_nodes, 1);
  shards_.reserve(endpoints.size());
  for (size_t i = 0; i < endpoints.size(); ++i) {
    shards_.push_back(std::make_unique<Shard>(endpoints[i]));
    for (size_t v = 0; v < options_.virtual_nodes; ++v) {
      uint64_t h = Fnv1a(endpoints[i].data(), endpoints[i].size());
      h = Fnv1a(&v, sizeof(v), h);
      ring_.emplace_back(Mix64(h), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  if (options_.enable_health_checks) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
}

ShardRouterClient::~ShardRouterClient() {
  stopping_.store(true, std::memory_order_release);
  health_cv_.NotifyAll();
  if (health_thread_.joinable()) health_thread_.join();
}

size_t ShardRouterClient::OwnerOf(uint64_t user_id) const {
  const uint64_t h = HashKey(user_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, size_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // Wrap around the ring.
  return it->second;
}

std::vector<size_t> ShardRouterClient::CandidatesFor(uint64_t user_id) const {
  const uint64_t h = HashKey(user_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, size_t{0}));
  std::vector<size_t> candidates;
  candidates.reserve(shards_.size());
  for (size_t step = 0; step < ring_.size() && candidates.size() < shards_.size();
       ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const size_t shard = it->second;
    if (std::find(candidates.begin(), candidates.end(), shard) ==
        candidates.end()) {
      candidates.push_back(shard);
    }
    ++it;
  }
  return candidates;
}

bool ShardRouterClient::BreakerOpen(size_t shard) const {
  return shards_[shard]->open_until_us.load(std::memory_order_relaxed) >
         MonotonicMicros();
}

int64_t ShardRouterClient::HedgeDelayMicros() const {
  const LatencyHistogram& latency = metrics_.call_latency_us();
  if (latency.Count() < options_.hedge_min_samples) {
    return options_.hedge_max_delay_micros;
  }
  const int64_t p99 = static_cast<int64_t>(latency.Percentile(99.0));
  return std::clamp(p99, options_.hedge_min_delay_micros,
                    options_.hedge_max_delay_micros);
}

void ShardRouterClient::RecordSuccess(size_t shard) {
  Shard& s = *shards_[shard];
  s.consecutive_failures.store(0, std::memory_order_relaxed);
  s.open_until_us.store(0, std::memory_order_relaxed);
}

void ShardRouterClient::RecordFailure(size_t shard) {
  Shard& s = *shards_[shard];
  metrics_.shard_errors(shard).Increment();
  const uint32_t failures =
      s.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= options_.breaker_failure_threshold) {
    const int64_t now = MonotonicMicros();
    const int64_t previous = s.open_until_us.exchange(
        now + options_.breaker_open_micros, std::memory_order_relaxed);
    // Count only the closed -> open transition, not re-trips while open.
    if (previous <= now) metrics_.breaker_trips.Increment();
  }
}

Result<Frame> ShardRouterClient::CallWithHedge(
    size_t primary, int hedge_shard, Verb verb,
    const std::vector<uint8_t>& payload, int64_t deadline_micros) {
  metrics_.shard_requests(primary).Increment();
  // Each physical send is its own trace arm: same trace_id, fresh span_id,
  // parented on the routed-call span. Hedged duplicates therefore show up
  // as two overlapping net.client.send spans in the Chrome export, and the
  // wire prefix carries the arm's span id so the server's spans parent on
  // the arm that actually delivered the request.
  const obs::TraceContext parent = obs::CurrentTraceContext();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  struct Arm {
    obs::TraceContext ctx;
    int64_t send_us = 0;
    bool open = false;
  };
  Arm primary_arm;
  Arm hedge_arm;
  auto begin_arm = [&](Arm& arm) {
    if (parent.valid()) {
      arm.ctx = obs::TraceContext{parent.trace_id, obs::MintSpanId()};
    }
    arm.send_us = MonotonicMicros();
    arm.open = true;
  };
  auto end_arm = [&](Arm& arm) {
    if (!arm.open) return;
    arm.open = false;
    if (recorder.enabled() && arm.ctx.valid()) {
      recorder.RecordSpan("net.client.send", arm.send_us,
                          MonotonicMicros() - arm.send_us, arm.ctx,
                          parent.span_id);
    }
  };
  // Connect and send failures count toward the breaker like read failures —
  // connection-refused is the clearest shard-down signal there is.
  Result<std::unique_ptr<RpcChannel>> acquired =
      shards_[primary]->pool.Acquire(options_.connect_timeout_ms);
  if (!acquired.ok()) {
    RecordFailure(primary);
    return acquired.status();
  }
  std::unique_ptr<RpcChannel> channel = std::move(*acquired);
  begin_arm(primary_arm);
  Result<uint64_t> tag = [&]() -> Result<uint64_t> {
    obs::ScopedTraceContext arm_scope(primary_arm.ctx);
    return channel->SendRequest(verb, payload, deadline_micros);
  }();
  if (!tag.ok()) {  // Channel discarded (send failed).
    end_arm(primary_arm);
    RecordFailure(primary);
    return tag.status();
  }

  const bool may_hedge = options_.enable_hedging && hedge_shard >= 0;
  if (may_hedge) {
    const int64_t hedge_at =
        std::min(MonotonicMicros() + HedgeDelayMicros(), deadline_micros);
    const Status readable = WaitReadable(channel->fd(), hedge_at);
    if (!readable.ok() &&
        readable.code() == StatusCode::kUnavailable &&
        MonotonicMicros() < deadline_micros) {
      // Primary is slow, not dead: duplicate to the hedge target and let
      // the first responder win.
      metrics_.hedges.Increment();
      metrics_.shard_requests(static_cast<size_t>(hedge_shard)).Increment();
      auto hedge_channel =
          shards_[static_cast<size_t>(hedge_shard)]->pool.Acquire(
              options_.connect_timeout_ms);
      if (hedge_channel.ok()) {
        begin_arm(hedge_arm);
        Result<uint64_t> hedge_tag = [&]() -> Result<uint64_t> {
          obs::ScopedTraceContext arm_scope(hedge_arm.ctx);
          return (*hedge_channel)
              ->SendRequest(verb, payload, deadline_micros);
        }();
        if (hedge_tag.ok()) {
          // Poll both arms for the first response.
          pollfd fds[2] = {{channel->fd(), POLLIN, 0},
                           {(*hedge_channel)->fd(), POLLIN, 0}};
          while (MonotonicMicros() < deadline_micros) {
            const int budget_ms = static_cast<int>(
                (deadline_micros - MonotonicMicros() + 999) / 1000);
            const int n = ::poll(fds, 2, std::max(budget_ms, 1));
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) break;
            if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
              Result<Frame> frame =
                  channel->ReadResponse(*tag, deadline_micros);
              if (frame.ok() || IsWireLevelError(frame.status())) {
                end_arm(primary_arm);
                end_arm(hedge_arm);  // abandoned: closes at the same moment
                RecordSuccess(primary);
                shards_[primary]->pool.Release(std::move(channel));
                // Hedge arm abandoned: its channel (with a response still
                // in flight) is discarded, not pooled.
                if (frame.ok()) return frame;
                return frame.status();
              }
              end_arm(primary_arm);
              RecordFailure(primary);
              // Primary arm is dead; fall through to waiting on the hedge.
              fds[0].fd = -1;  // poll ignores negative fds
              continue;
            }
            if (fds[1].revents & (POLLIN | POLLERR | POLLHUP)) {
              Result<Frame> frame = (*hedge_channel)
                                        ->ReadResponse(*hedge_tag,
                                                       deadline_micros);
              if (frame.ok() || IsWireLevelError(frame.status())) {
                end_arm(hedge_arm);
                end_arm(primary_arm);  // abandoned primary closes here too
                metrics_.hedge_wins.Increment();
                RecordSuccess(static_cast<size_t>(hedge_shard));
                shards_[static_cast<size_t>(hedge_shard)]->pool.Release(
                    std::move(*hedge_channel));
                if (frame.ok()) return frame;
                return frame.status();
              }
              end_arm(hedge_arm);
              RecordFailure(static_cast<size_t>(hedge_shard));
              fds[1].fd = -1;
              continue;
            }
          }
          end_arm(primary_arm);
          end_arm(hedge_arm);
          return Status::Unavailable("hedged call deadline exceeded");
        }
        end_arm(hedge_arm);
        RecordFailure(static_cast<size_t>(hedge_shard));
      } else {
        RecordFailure(static_cast<size_t>(hedge_shard));
      }
      // Hedge arm unusable: fall back to waiting out the primary alone.
    } else if (!readable.ok() &&
               readable.code() != StatusCode::kUnavailable) {
      end_arm(primary_arm);
      RecordFailure(primary);
      return readable;
    }
  }

  Result<Frame> frame = channel->ReadResponse(*tag, deadline_micros);
  end_arm(primary_arm);
  if (frame.ok() || IsWireLevelError(frame.status())) {
    RecordSuccess(primary);
    shards_[primary]->pool.Release(std::move(channel));
    return frame;
  }
  RecordFailure(primary);
  return frame;
}

Result<std::vector<float>> ShardRouterClient::RoutedCall(
    uint64_t user_id, Verb verb, const std::vector<uint8_t>& payload) {
  metrics_.requests.Increment();
  const int64_t start = MonotonicMicros();
  const int64_t deadline = start + options_.call_deadline_micros;
  // Root of the distributed trace. An ambient context (an outer span the
  // caller opened) is reused so nested routed calls stay in one trace;
  // otherwise a fresh root is minted. The wire carries the context even
  // when local span recording is disabled, so server-side tail capture and
  // exemplars work regardless of client-side recorder state.
  const obs::TraceContext ambient = obs::CurrentTraceContext();
  obs::ScopedTraceContext scoped(
      ambient.valid() ? ambient : obs::MintTraceContext());
  obs::TraceSpan call_span("net.client.call");

  // Breaker-closed candidates first; open ones kept as a last resort so a
  // fully-tripped fleet still gets tried rather than failing fast forever.
  const std::vector<size_t> ring_order = CandidatesFor(user_id);
  std::vector<size_t> order;
  order.reserve(ring_order.size());
  for (size_t shard : ring_order) {
    if (!BreakerOpen(shard)) order.push_back(shard);
  }
  for (size_t shard : ring_order) {
    if (BreakerOpen(shard)) order.push_back(shard);
  }

  Status last_error = Status::Unavailable("no shards attempted");
  for (size_t i = 0; i < order.size(); ++i) {
    if (MonotonicMicros() >= deadline) break;
    if (i > 0) metrics_.failovers.Increment();
    const int hedge_shard =
        i + 1 < order.size() ? static_cast<int>(order[i + 1]) : -1;
    Result<Frame> frame =
        CallWithHedge(order[i], hedge_shard, verb, payload, deadline);
    if (frame.ok()) {
      metrics_.call_latency_us().Record(
          static_cast<double>(MonotonicMicros() - start));
      return DecodeEmbeddingResponse(frame->payload.data(),
                                     frame->payload.size());
    }
    // A wire-level error status (kNotFound, ...) proves the shard is alive:
    // surface it to the caller instead of walking further.
    const StatusCode code = frame.status().code();
    if (code == StatusCode::kNotFound ||
        code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kResourceExhausted ||
        code == StatusCode::kInvalidArgument) {
      metrics_.call_latency_us().Record(
          static_cast<double>(MonotonicMicros() - start));
      return frame.status();
    }
    // By design the wire-level early return above supersedes this value.
    last_error = frame.status();  // fvae-lint: allow(status-path)
  }
  metrics_.failures.Increment();
  return last_error;
}

Result<std::vector<float>> ShardRouterClient::Lookup(uint64_t user_id) {
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, user_id);
  return RoutedCall(user_id, Verb::kLookup, payload);
}

Result<std::vector<float>> ShardRouterClient::EncodeFoldIn(
    uint64_t user_id, const core::RawUserFeatures& features) {
  std::vector<uint8_t> payload;
  EncodeFoldInRequest(payload, user_id, features);
  return RoutedCall(user_id, Verb::kEncodeFoldIn, payload);
}

void ShardRouterClient::HealthLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (stopping_.load(std::memory_order_acquire)) return;
      metrics_.health_probes.Increment();
      Result<std::unique_ptr<RpcChannel>> channel =
          shards_[i]->pool.Acquire(options_.connect_timeout_ms);
      if (!channel.ok()) {
        metrics_.health_failures.Increment();
        RecordFailure(i);
        continue;
      }
      const Status healthy = (*channel)->Health(
          MonotonicMicros() + options_.health_period_micros);
      if (healthy.ok()) {
        RecordSuccess(i);  // A passing probe closes the breaker early.
        shards_[i]->pool.Release(std::move(*channel));
      } else {
        metrics_.health_failures.Increment();
        RecordFailure(i);
      }
    }
    MutexLock lock(health_mutex_);
    // Timeout and shutdown wakeup are equally fine; the loop re-checks
    // stop_health_ either way.
    (void)health_cv_.WaitUntil(
        health_mutex_,
        std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.health_period_micros));
  }
}

}  // namespace fvae::net
