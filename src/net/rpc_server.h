#ifndef FVAE_NET_RPC_SERVER_H_
#define FVAE_NET_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/epoll_loop.h"
#include "net/fd.h"
#include "net/net_metrics.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "serving/embedding_service.h"

namespace fvae::net {

struct RpcServerOptions {
  /// 0 picks an ephemeral port — read it back with port().
  uint16_t port = 0;
  /// Worker event loops; connections are distributed round-robin.
  size_t num_workers = 2;
  /// Read side pauses (backpressure) while a connection's pending write
  /// buffer exceeds this.
  size_t write_buffer_high_watermark = 1 << 20;
  /// A connection holding an incomplete frame longer than this is closed —
  /// the slow-loris defense. Byte dribbling resets nothing: the clock runs
  /// from the first byte of the unfinished frame.
  int64_t frame_assembly_timeout_micros = 2'000'000;
  /// Graceful-drain budget on Stop(): connections flush pending responses
  /// until this expires, then are force-closed.
  int64_t drain_timeout_micros = 2'000'000;
  /// Tail capture: a completed request slower than this (or finishing with
  /// a non-ok wire status) lands in the slow-trace ring served by the
  /// Introspect verb. 0 captures errors only.
  int64_t slow_trace_threshold_micros = 50'000;
};

/// Epoll-based network front-end over an EmbeddingService.
///
/// One acceptor thread distributes connections round-robin to N worker
/// threads; each worker runs a private EpollLoop that owns its connections
/// outright, so the data path is lock-free — frames are parsed, dispatched
/// and answered entirely on the owning loop thread. The only cross-thread
/// hops are the acceptor's connection handoff and fold-in completions
/// (batcher worker -> loop), both via EpollLoop::Post. Connections are
/// addressed by a monotonically increasing id, never by fd, so a completion
/// racing a close cannot hit a recycled descriptor.
class RpcServer {
 public:
  /// `service` must outlive the server. `registry` null keeps the server's
  /// transport metrics in a private registry.
  RpcServer(serving::EmbeddingService* service, RpcServerOptions options,
            obs::MetricsRegistry* registry = nullptr);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens, and spins up acceptor + workers.
  Status Start();

  /// Graceful drain: stop accepting, let in-flight responses flush (up to
  /// drain_timeout), close everything, join threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  ServerMetrics& metrics() { return metrics_; }

 private:
  struct Connection;

  /// Per-request bookkeeping threaded from frame arrival to response
  /// queueing — across the batcher completion hop for fold-ins. POD by
  /// design: it is captured by value into cross-thread lambdas.
  struct RequestState {
    uint64_t tag = 0;
    Verb verb = Verb::kHealth;
    /// Protocol version the request arrived with; the response mirrors it
    /// so a v1 client never sees v2-only framing.
    uint8_t version = kProtocolVersion;
    int64_t start_us = 0;
    /// Wire-extracted context: the trace id plus the client's span id
    /// (our parent). Invalid (zero) on untraced requests.
    obs::TraceContext trace;
  };

  /// One worker thread: a private event loop plus the connections it owns.
  /// All members except the loop's Post queue are loop-thread-only.
  struct Worker {
    EpollLoop loop;
    std::thread thread;
    // Loop-thread-only: connection table and drain flag.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections;
    // Closed connections whose memory must outlive the current event:
    // CloseConnection runs deep inside ReadFrames/FlushWrites call chains
    // whose callers still test `conn->closing` on the way out. The fd is
    // closed eagerly; the object is freed at the next top-of-event safe
    // point (or with the worker).
    std::vector<std::unique_ptr<Connection>> reaped;
    bool draining = false;
    RpcServer* server = nullptr;
  };

  void AcceptLoop();
  // Everything below AcceptLoop runs on a worker's loop thread (directly
  // as an epoll/timer callback or via Post); FVAE_EVENT_LOOP holds the
  // whole data path to the no-blocking discipline (tools/lint_graph.h).
  FVAE_EVENT_LOOP void AdoptConnection(Worker* worker, Fd fd);
  /// Schedules the self-rearming slow-loris watchdog for a connection.
  FVAE_EVENT_LOOP void ArmAssemblyWatchdog(Worker* worker, uint64_t conn_id);
  FVAE_EVENT_LOOP void HandleIo(Worker* worker, uint64_t conn_id,
                                EpollLoop::Events events);
  FVAE_EVENT_LOOP void ReadFrames(Worker* worker, Connection* conn);
  /// Takes the frame by pointer: extracting the trace-context prefix
  /// mutates the payload in place.
  FVAE_EVENT_LOOP void DispatchFrame(Worker* worker, Connection* conn,
                                     Frame* frame);
  /// Terminal step for every request: records the reply span, per-verb
  /// latency, exemplars and slow-trace capture, then frames the response.
  FVAE_EVENT_LOOP void QueueResponse(Worker* worker, Connection* conn,
                                     const RequestState& req,
                                     WireStatus status, const uint8_t* payload,
                                     size_t payload_size);
  FVAE_EVENT_LOOP void FlushWrites(Worker* worker, Connection* conn);
  FVAE_EVENT_LOOP void UpdateInterest(Worker* worker, Connection* conn);
  FVAE_EVENT_LOOP void CloseConnection(Worker* worker, uint64_t conn_id);
  /// During drain: close once nothing is pending; stop the loop when the
  /// worker has no connections left.
  FVAE_EVENT_LOOP void MaybeFinishDrain(Worker* worker, Connection* conn);

  serving::EmbeddingService* service_;
  RpcServerOptions options_;
  ServerMetrics metrics_;

  Fd listener_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_worker_{0};
};

}  // namespace fvae::net

#endif  // FVAE_NET_RPC_SERVER_H_
