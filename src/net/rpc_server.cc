#include "net/rpc_server.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace fvae::net {

/// Per-connection state, owned by exactly one worker loop.
struct RpcServer::Connection {
  uint64_t id = 0;
  Fd fd;
  FrameParser parser;
  /// Encoded responses not yet handed to the kernel; [sent, size) pending.
  std::vector<uint8_t> write_buffer;
  size_t write_sent = 0;
  /// Read interest currently disabled (write buffer over watermark).
  bool paused = false;
  /// EPOLLOUT currently armed.
  bool want_write = false;
  /// Fold-in requests dispatched to the batcher, responses not yet queued.
  size_t inflight = 0;
  /// Micros timestamp of the first byte of the frame being assembled;
  /// 0 = no partial frame pending. The slow-loris clock.
  int64_t incomplete_since = 0;
  TimerWheel::TimerId assembly_timer = TimerWheel::kInvalidTimer;
  bool closing = false;

  size_t pending_write_bytes() const {
    return write_buffer.size() - write_sent;
  }
};

RpcServer::RpcServer(serving::EmbeddingService* service,
                     RpcServerOptions options, obs::MetricsRegistry* registry)
    : service_(service), options_(options), metrics_(registry) {
  FVAE_CHECK(service_ != nullptr) << "RpcServer needs a service";
  options_.num_workers = std::max<size_t>(options_.num_workers, 1);
}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  FVAE_ASSIGN_OR_RETURN(listener_, TcpListen(options_.port));
  FVAE_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->server = this;
    FVAE_RETURN_IF_ERROR(worker->loop.Init());
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([w] { w->loop.Run(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_.store(true, std::memory_order_release);
  return Status::Ok();
}

void RpcServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.get(), POLLIN, 0};
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n < 0 && errno != EINTR) break;
    if (n <= 0) continue;
    for (;;) {
      Result<Fd> conn = Accept(listener_);
      if (!conn.ok()) break;  // EAGAIN drained or transient error.
      metrics_.connections_accepted.Increment();
      metrics_.UpdateOpenConnections(+1);
      Worker* worker =
          workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                   workers_.size()]
              .get();
      // Fd is move-only but std::function wants copyable — park it in a
      // shared_ptr for the hop onto the loop thread.
      auto shared_fd = std::make_shared<Fd>(std::move(conn).value());
      worker->loop.Post([this, worker, shared_fd]() mutable {
        AdoptConnection(worker, std::move(*shared_fd));
      });
    }
  }
}

void RpcServer::AdoptConnection(Worker* worker, Fd fd) {
  if (worker->draining || !fd.valid()) {
    metrics_.connections_closed.Increment();
    metrics_.UpdateOpenConnections(-1);
    return;
  }
  auto conn = std::make_unique<Connection>();
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->fd = std::move(fd);
  const uint64_t conn_id = conn->id;
  const int raw_fd = conn->fd.get();
  worker->connections.emplace(conn_id, std::move(conn));
  const Status added = worker->loop.Add(
      raw_fd, /*want_write=*/false,
      [this, worker, conn_id](EpollLoop::Events events) {
        HandleIo(worker, conn_id, events);
      });
  if (!added.ok()) {
    FVAE_LOG(WARNING) << "net: failed to register connection: "
                   << added.ToString();
    worker->connections.erase(conn_id);
    metrics_.connections_closed.Increment();
    metrics_.UpdateOpenConnections(-1);
    return;
  }
  ArmAssemblyWatchdog(worker, conn_id);
}

void RpcServer::ArmAssemblyWatchdog(Worker* worker, uint64_t conn_id) {
  auto it = worker->connections.find(conn_id);
  if (it == worker->connections.end()) return;
  // Fires at half the assembly budget so a slow-loris violation is caught
  // within 1.5x the configured timeout; rearms itself while the connection
  // lives.
  it->second->assembly_timer = worker->loop.ScheduleTimer(
      options_.frame_assembly_timeout_micros / 2, [this, worker, conn_id] {
        auto it2 = worker->connections.find(conn_id);
        if (it2 == worker->connections.end()) return;
        Connection* conn = it2->second.get();
        conn->assembly_timer = TimerWheel::kInvalidTimer;
        if (conn->incomplete_since != 0 &&
            MonotonicMicros() - conn->incomplete_since >
                options_.frame_assembly_timeout_micros) {
          metrics_.idle_timeouts.Increment();
          CloseConnection(worker, conn_id);
          return;
        }
        ArmAssemblyWatchdog(worker, conn_id);
      });
}

void RpcServer::HandleIo(Worker* worker, uint64_t conn_id,
                         EpollLoop::Events events) {
  // Top of a fresh event: the previous event's closed connections can no
  // longer be referenced by any live stack frame — free them now.
  worker->reaped.clear();
  auto it = worker->connections.find(conn_id);
  if (it == worker->connections.end()) return;
  Connection* conn = it->second.get();
  if (events.error) {
    CloseConnection(worker, conn_id);
    return;
  }
  if (events.writable) {
    FlushWrites(worker, conn);
    if (conn->closing) return;  // FlushWrites may close on write error.
  }
  if (events.readable && !conn->paused) {
    ReadFrames(worker, conn);
    if (conn->closing) return;
  }
  if (worker->draining) MaybeFinishDrain(worker, conn);
}

void RpcServer::ReadFrames(Worker* worker, Connection* conn) {
  uint8_t buffer[16 * 1024];
  for (;;) {
    // MSG_DONTWAIT: the socket is already O_NONBLOCK, but the explicit
    // flag keeps this read non-blocking even if a future code path hands
    // over a descriptor whose flag was dropped (and satisfies fvae_lint's
    // event-loop discipline without trusting per-fd state).
    const ssize_t n =
        ::recv(conn->fd.get(), buffer, sizeof(buffer), MSG_DONTWAIT);
    if (n > 0) {
      metrics_.bytes_rx.Add(static_cast<uint64_t>(n));
      conn->parser.Feed(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // Peer closed.
      CloseConnection(worker, conn->id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(worker, conn->id);
    return;
  }
  for (;;) {
    Result<Frame> frame = conn->parser.Next();
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kUnavailable) break;
      // Malformed input: no way to resynchronize a corrupt byte stream,
      // drop the connection.
      metrics_.protocol_errors.Increment();
      CloseConnection(worker, conn->id);
      return;
    }
    metrics_.frames_rx.Increment();
    DispatchFrame(worker, conn, &*frame);
    if (conn->closing) return;
  }
  // Track the start of an unfinished frame for the slow-loris watchdog.
  if (conn->parser.buffered_bytes() > 0) {
    if (conn->incomplete_since == 0) {
      conn->incomplete_since = MonotonicMicros();
    }
  } else {
    conn->incomplete_since = 0;
  }
}

void RpcServer::DispatchFrame(Worker* worker, Connection* conn,
                              Frame* frame) {
  RequestState req;
  req.tag = frame->header.tag;
  req.verb = static_cast<Verb>(frame->header.verb);
  req.version = frame->header.version;
  req.start_us = MonotonicMicros();
  // Peel the trace prefix off the payload before any verb decoding. A
  // malformed prefix is a protocol error (ValidateHeader already vetoed
  // the flag-on-v1 and too-short cases, but stay defensive).
  Result<obs::TraceContext> extracted = ExtractTraceContext(frame);
  if (!extracted.ok()) {
    metrics_.protocol_errors.Increment();
    CloseConnection(worker, conn->id);
    return;
  }
  req.trace = *extracted;
  // Install the wire context for the dispatch: spans opened below (and any
  // synchronous service work) stitch into the client's trace.
  obs::ScopedTraceContext scoped(req.trace);
  obs::TraceSpan parse_span("net.server.parse");
  switch (req.verb) {
    case Verb::kHealth: {
      parse_span.End();
      QueueResponse(worker, conn, req, WireStatus::kOk, nullptr, 0);
      break;
    }
    case Verb::kStats: {
      parse_span.End();
      const std::string json = "{\"serving\":" + service_->TelemetryJson() +
                               ",\"net\":" + metrics_.ToJson() + "}";
      QueueResponse(worker, conn, req, WireStatus::kOk,
                    reinterpret_cast<const uint8_t*>(json.data()),
                    json.size());
      break;
    }
    case Verb::kIntrospect: {
      Result<IntrospectFormat> format = DecodeIntrospectRequest(
          frame->payload.data(), frame->payload.size());
      parse_span.End();
      if (!format.ok()) {
        const std::string& msg = format.status().message();
        QueueResponse(worker, conn, req, WireStatus::kInvalidArgument,
                      reinterpret_cast<const uint8_t*>(msg.data()),
                      msg.size());
        break;
      }
      std::string body;
      if (*format == IntrospectFormat::kPrometheus) {
        body = obs::PrometheusText(metrics_.registry());
      } else {
        body = "{\"serving\":" + service_->TelemetryJson() +
               ",\"net\":" + metrics_.ToJson() +
               ",\"slow_traces\":" + metrics_.slow_traces().ToJson() +
               ",\"exemplars\":" + metrics_.registry().ExemplarsJson() + "}";
      }
      QueueResponse(worker, conn, req, WireStatus::kOk,
                    reinterpret_cast<const uint8_t*>(body.data()),
                    body.size());
      break;
    }
    case Verb::kLookup: {
      Result<uint64_t> user =
          DecodeLookupRequest(frame->payload.data(), frame->payload.size());
      parse_span.End();
      if (!user.ok()) {
        const std::string& msg = user.status().message();
        QueueResponse(worker, conn, req, WireStatus::kInvalidArgument,
                      reinterpret_cast<const uint8_t*>(msg.data()),
                      msg.size());
        break;
      }
      serving::EmbeddingService::EmbeddingResult result =
          service_->Lookup(*user);
      if (result.ok()) {
        std::vector<uint8_t> payload;
        EncodeEmbeddingResponse(payload, *result);
        QueueResponse(worker, conn, req, WireStatus::kOk, payload.data(),
                      payload.size());
      } else {
        const std::string& msg = result.status().message();
        QueueResponse(worker, conn, req, ToWireStatus(result.status()),
                      reinterpret_cast<const uint8_t*>(msg.data()),
                      msg.size());
      }
      break;
    }
    case Verb::kEncodeFoldIn: {
      Result<FoldInRequest> request =
          DecodeFoldInRequest(frame->payload.data(), frame->payload.size());
      parse_span.End();
      if (!request.ok()) {
        const std::string& msg = request.status().message();
        QueueResponse(worker, conn, req, WireStatus::kInvalidArgument,
                      reinterpret_cast<const uint8_t*>(msg.data()),
                      msg.size());
        break;
      }
      ++conn->inflight;
      const uint64_t conn_id = conn->id;
      // The completion may fire on a batcher thread; hop back to the loop
      // and re-resolve the connection by id (it may be gone by then). The
      // ambient trace context is live here, so the batcher submission
      // captures it synchronously and req (POD, by value) carries it back
      // for the reply span.
      service_->LookupOrEncodeAsync(
          request->user_id, request->features, /*deadline_micros=*/0,
          [this, worker, conn_id,
           req](serving::EmbeddingService::EmbeddingResult result) {
            worker->loop.Post([this, worker, conn_id, req,
                               result = std::move(result)]() {
              auto it = worker->connections.find(conn_id);
              if (it == worker->connections.end()) return;
              Connection* conn = it->second.get();
              --conn->inflight;
              if (result.ok()) {
                std::vector<uint8_t> payload;
                EncodeEmbeddingResponse(payload, *result);
                QueueResponse(worker, conn, req, WireStatus::kOk,
                              payload.data(), payload.size());
              } else {
                const std::string& msg = result.status().message();
                QueueResponse(worker, conn, req,
                              ToWireStatus(result.status()),
                              reinterpret_cast<const uint8_t*>(msg.data()),
                              msg.size());
              }
              if (worker->draining) MaybeFinishDrain(worker, conn);
            });
          });
      break;
    }
  }
}

void RpcServer::QueueResponse(Worker* worker, Connection* conn,
                              const RequestState& req, WireStatus status,
                              const uint8_t* payload, size_t payload_size) {
  const int64_t now_us = MonotonicMicros();
  const double latency_us = static_cast<double>(now_us - req.start_us);
  // One reply span per request, parented on the client's send span, so the
  // stitched trace shows the full server-side envelope (queue wait for
  // fold-ins included — this runs after the batcher hop, not at dispatch).
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  if (recorder.enabled() && req.trace.valid()) {
    const obs::TraceContext reply_ctx{req.trace.trace_id, obs::MintSpanId()};
    recorder.RecordSpan("net.server.reply", req.start_us,
                        now_us - req.start_us, reply_ctx,
                        /*parent_span_id=*/req.trace.span_id);
  }
  metrics_.request_latency_us().Record(latency_us);
  metrics_.verb_latency_us(req.verb).Record(latency_us);
  if (req.trace.valid()) {
    metrics_.request_exemplars().Offer(latency_us, req.trace.trace_id);
  }
  if (latency_us > static_cast<double>(options_.slow_trace_threshold_micros) ||
      status != WireStatus::kOk) {
    obs::SlowTraceRing::Entry entry;
    entry.trace_id = req.trace.trace_id;
    entry.parent_span_id = req.trace.span_id;
    entry.tag = req.tag;
    entry.start_us = req.start_us;
    entry.duration_us = now_us - req.start_us;
    entry.verb = static_cast<uint8_t>(req.verb);
    entry.status = static_cast<uint8_t>(status);
    metrics_.slow_traces().Record(entry);
  }
  // Responses mirror the request's version (a v1 client must be able to
  // parse its reply) and always advertise v2 capability; the flag is just
  // a bit, invisible to v1 clients that never check it.
  AppendFrame(conn->write_buffer, req.verb, status,
              kFlagResponse | kFlagTraceCapable, req.tag, payload,
              payload_size, req.version);
  metrics_.frames_tx.Increment();
  FlushWrites(worker, conn);
}

void RpcServer::FlushWrites(Worker* worker, Connection* conn) {
  while (conn->pending_write_bytes() > 0) {
    // MSG_DONTWAIT for the same reason as the read side: the loop thread
    // must never park in a send, whatever the descriptor's flags say.
    const ssize_t n =
        ::send(conn->fd.get(), conn->write_buffer.data() + conn->write_sent,
               conn->pending_write_bytes(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      metrics_.bytes_tx.Add(static_cast<uint64_t>(n));
      conn->write_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(worker, conn->id);
    return;
  }
  if (conn->pending_write_bytes() == 0) {
    conn->write_buffer.clear();
    conn->write_sent = 0;
  }
  UpdateInterest(worker, conn);
}

void RpcServer::UpdateInterest(Worker* worker, Connection* conn) {
  const bool over_watermark =
      conn->pending_write_bytes() > options_.write_buffer_high_watermark;
  const bool want_write = conn->pending_write_bytes() > 0;
  const bool want_read = !over_watermark;
  if (over_watermark && !conn->paused) {
    metrics_.backpressure_pauses.Increment();
  }
  if (conn->paused != over_watermark || conn->want_write != want_write) {
    conn->paused = over_watermark;
    conn->want_write = want_write;
    const Status modified =
        worker->loop.Mod(conn->fd.get(), want_read, want_write);
    if (!modified.ok()) CloseConnection(worker, conn->id);
  }
}

void RpcServer::CloseConnection(Worker* worker, uint64_t conn_id) {
  auto it = worker->connections.find(conn_id);
  if (it == worker->connections.end()) return;
  Connection* conn = it->second.get();
  if (conn->closing) return;
  conn->closing = true;
  if (conn->assembly_timer != TimerWheel::kInvalidTimer) {
    worker->loop.CancelTimer(conn->assembly_timer);
    conn->assembly_timer = TimerWheel::kInvalidTimer;
  }
  // Del before close so the loop never sees a recycled fd number.
  (void)worker->loop.Del(conn->fd.get());  // ok to fail on dead sockets
  conn->fd.Reset();  // eager close: the peer sees EOF/RST immediately
  metrics_.connections_closed.Increment();
  metrics_.UpdateOpenConnections(-1);
  // Fold-in completions still in flight address the connection by id and
  // find it gone. But callers up the current stack (ReadFrames loops,
  // HandleIo) still hold `conn` and test `conn->closing` after this
  // returns, so the object must outlive the event: park it in the
  // graveyard, freed at the next top-of-event safe point.
  worker->reaped.push_back(std::move(it->second));
  worker->connections.erase(it);
  if (worker->draining && worker->connections.empty()) {
    worker->loop.Stop();
  }
}

void RpcServer::MaybeFinishDrain(Worker* worker, Connection* conn) {
  if (conn->inflight == 0 && conn->pending_write_bytes() == 0) {
    CloseConnection(worker, conn->id);
  }
}

void RpcServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Reset();
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->loop.Post([this, w] {
      w->draining = true;
      // Snapshot ids: MaybeFinishDrain mutates the table.
      std::vector<uint64_t> ids;
      ids.reserve(w->connections.size());
      for (const auto& [id, conn] : w->connections) ids.push_back(id);
      for (uint64_t id : ids) {
        auto it = w->connections.find(id);
        if (it != w->connections.end()) MaybeFinishDrain(w, it->second.get());
      }
      if (w->connections.empty()) {
        w->loop.Stop();
        return;
      }
      // Force-close stragglers once the drain budget is spent.
      w->loop.ScheduleTimer(options_.drain_timeout_micros, [this, w] {
        std::vector<uint64_t> left;
        left.reserve(w->connections.size());
        for (const auto& [id, conn] : w->connections) left.push_back(id);
        for (uint64_t id : left) CloseConnection(w, id);
        w->loop.Stop();
      });
    });
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  started_.store(false, std::memory_order_release);
}

}  // namespace fvae::net
