#ifndef FVAE_NET_NET_METRICS_H_
#define FVAE_NET_NET_METRICS_H_

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "net/wire.h"
#include "obs/exemplars.h"
#include "obs/metrics_registry.h"
#include "obs/slow_trace_ring.h"

namespace fvae::net {

/// Server-side transport instruments, registered under `net.server.`.
/// Same lock-free design as serving::ServingTelemetry: references bound
/// once at construction, relaxed-atomic updates from the worker loops.
class ServerMetrics {
 private:
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;

 public:
  explicit ServerMetrics(obs::MetricsRegistry* registry = nullptr);
  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  obs::MetricsRegistry& registry() { return *registry_; }

  obs::Counter& connections_accepted;
  obs::Counter& connections_closed;
  /// Connections dropped for protocol violations (bad magic/CRC/length).
  obs::Counter& protocol_errors;
  /// Connections kicked by the idle/slow-loris timeout.
  obs::Counter& idle_timeouts;
  obs::Counter& frames_rx;
  obs::Counter& frames_tx;
  obs::Counter& bytes_rx;
  obs::Counter& bytes_tx;
  /// Read-side pauses while a connection's write buffer is over watermark.
  obs::Counter& backpressure_pauses;

  /// Currently open connections.
  void UpdateOpenConnections(double delta) { open_connections_.Add(delta); }
  double open_connections() const { return open_connections_.Value(); }

  /// Server-side request latency (frame in -> response queued), micros.
  LatencyHistogram& request_latency_us() { return request_latency_us_; }

  /// One latency histogram per verb; Introspect serves the per-verb p50/p99
  /// the `fvae top` dashboard renders.
  static constexpr size_t kNumVerbs =
      static_cast<size_t>(Verb::kIntrospect) + 1;
  LatencyHistogram& verb_latency_us(Verb verb) {
    return *verb_latency_us_[static_cast<size_t>(verb)];
  }

  /// Tail-based slow/errored request capture (lock-free ring).
  obs::SlowTraceRing& slow_traces() { return slow_traces_; }
  const obs::SlowTraceRing& slow_traces() const { return slow_traces_; }

  /// Trace exemplars for the aggregate request-latency histogram.
  obs::ExemplarStore& request_exemplars() { return request_exemplars_; }

  std::string ToJson() const;

 private:
  obs::Gauge& open_connections_;
  LatencyHistogram& request_latency_us_;
  std::array<LatencyHistogram*, kNumVerbs> verb_latency_us_;
  obs::ExemplarStore& request_exemplars_;
  obs::SlowTraceRing slow_traces_;
};

/// Client/router-side instruments, registered under `net.client.` plus
/// dynamic per-shard counters `net.client.shard<i>.requests`.
class RouterMetrics {
 private:
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;

 public:
  /// `num_shards` fixes the per-shard counter set at construction so hot
  /// paths never build metric names.
  explicit RouterMetrics(size_t num_shards,
                         obs::MetricsRegistry* registry = nullptr);
  RouterMetrics(const RouterMetrics&) = delete;
  RouterMetrics& operator=(const RouterMetrics&) = delete;

  obs::MetricsRegistry& registry() { return *registry_; }

  obs::Counter& requests;
  obs::Counter& failures;
  /// Hedged (duplicate) sends issued after the p99-derived delay.
  obs::Counter& hedges;
  /// Requests won by the hedge rather than the primary.
  obs::Counter& hedge_wins;
  /// Requests retried on the next ring candidate after a shard failure.
  obs::Counter& failovers;
  /// Breaker state transitions to open.
  obs::Counter& breaker_trips;
  obs::Counter& health_probes;
  obs::Counter& health_failures;

  obs::Counter& shard_requests(size_t shard) { return *shard_requests_[shard]; }
  obs::Counter& shard_errors(size_t shard) { return *shard_errors_[shard]; }
  size_t num_shards() const { return shard_requests_.size(); }

  /// End-to-end call latency through the router, micros.
  LatencyHistogram& call_latency_us() { return call_latency_us_; }
  const LatencyHistogram& call_latency_us() const { return call_latency_us_; }

  std::string ToJson() const;

 private:
  LatencyHistogram& call_latency_us_;
  std::vector<obs::Counter*> shard_requests_;
  std::vector<obs::Counter*> shard_errors_;
};

}  // namespace fvae::net

#endif  // FVAE_NET_NET_METRICS_H_
