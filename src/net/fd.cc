#include "net/fd.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace fvae::net {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::IoError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return Status::Ok();
}

/// Remaining poll budget in whole milliseconds, rounded up so a deadline a
/// few microseconds away still polls once instead of spinning.
int PollBudgetMs(int64_t deadline_micros) {
  if (deadline_micros == 0) return -1;  // Block indefinitely.
  const int64_t left = deadline_micros - MonotonicMicros();
  if (left <= 0) return 0;
  return static_cast<int>((left + 999) / 1000);
}

}  // namespace

void Fd::Reset(int fd) {
  if (fd_ >= 0) {
    // The single sanctioned close in the codebase: fvae_lint routes every
    // other subsystem through this wrapper.
    ::close(fd_);
  }
  fd_ = fd;
}

Result<Fd> TcpListen(uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::IoError(Errno("socket"));
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Status::IoError(Errno("setsockopt(SO_REUSEADDR)"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(Errno("bind"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IoError(Errno("listen"));
  }
  return fd;
}

Result<Fd> Accept(const Fd& listener) {
  for (;;) {
    Fd conn(::accept4(listener.get(), nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (conn.valid()) {
      FVAE_RETURN_IF_ERROR(SetNoDelay(conn.get()));
      return conn;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no pending connection");
    }
    return Status::IoError(Errno("accept4"));
  }
}

Result<Fd> TcpConnect(uint16_t port, int timeout_ms) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::IoError(Errno("socket"));
  FVAE_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Unavailable(Errno("connect"));
  }
  if (rc != 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    for (;;) {
      const int n = ::poll(&pfd, 1, timeout_ms);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) return Status::IoError(Errno("poll"));
      if (n == 0) return Status::Unavailable("connect timed out");
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Status::IoError(Errno("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      return Status::Unavailable(std::string("connect: ") +
                                 std::strerror(err));
    }
  }
  // Flip back to blocking: RpcChannel callers do blocking round-trips with
  // explicit poll deadlines.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
    return Status::IoError(Errno("fcntl(~O_NONBLOCK)"));
  }
  FVAE_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  return fd;
}

Result<uint16_t> EndpointPort(const std::string& endpoint) {
  const std::vector<std::string> parts = Split(endpoint, ':');
  if (parts.size() != 2 ||
      (parts[0] != "127.0.0.1" && parts[0] != "localhost")) {
    return Status::InvalidArgument("endpoint must be 127.0.0.1:<port>, got " +
                                   endpoint);
  }
  const Result<int64_t> port = ParseInt64(parts[1]);
  if (!port.ok() || *port <= 0 || *port > 65535) {
    return Status::InvalidArgument("bad port in endpoint " + endpoint);
  }
  return static_cast<uint16_t>(*port);
}

Result<Fd> ConnectEndpoint(const std::string& endpoint, int timeout_ms) {
  FVAE_ASSIGN_OR_RETURN(const uint16_t port, EndpointPort(endpoint));
  return TcpConnect(port, timeout_ms);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IoError(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::Ok();
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IoError(Errno("getsockname"));
  }
  return ntohs(addr.sin_port);
}

Status SendAll(int fd, const void* data, size_t size,
               int64_t deadline_micros) {
  const char* p = static_cast<const char*>(data);
  size_t left = size;
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      const int budget = PollBudgetMs(deadline_micros);
      if (budget == 0) return Status::Unavailable("send deadline exceeded");
      const int rc = ::poll(&pfd, 1, budget);
      if (rc < 0 && errno != EINTR) return Status::IoError(Errno("poll"));
      if (rc == 0) return Status::Unavailable("send deadline exceeded");
      continue;
    }
    return Status::IoError(Errno("send"));
  }
  return Status::Ok();
}

Status RecvAll(int fd, void* data, size_t size, int64_t deadline_micros) {
  char* p = static_cast<char*>(data);
  size_t left = size;
  while (left > 0) {
    FVAE_RETURN_IF_ERROR(WaitReadable(fd, deadline_micros));
    const ssize_t n = ::recv(fd, p, left, 0);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::IoError("connection closed by peer");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IoError(Errno("recv"));
  }
  return Status::Ok();
}

Status WaitReadable(int fd, int64_t deadline_micros) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int budget = PollBudgetMs(deadline_micros);
    if (budget == 0) return Status::Unavailable("recv deadline exceeded");
    const int rc = ::poll(&pfd, 1, budget);
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) return Status::IoError(Errno("poll"));
    if (rc == 0) return Status::Unavailable("recv deadline exceeded");
    return Status::Ok();
  }
}

}  // namespace fvae::net
