#include "net/wire.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/string_util.h"

namespace fvae::net {
namespace {

/// Bounds-checked little-endian cursor over a payload buffer.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool Done() const { return pos_ == size_; }
  size_t Remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

template <typename T>
void Append(std::vector<uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

}  // namespace

WireStatus ToWireStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case StatusCode::kResourceExhausted:
      return WireStatus::kResourceExhausted;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    default:  // codes with no wire equivalent collapse to kInternal
      return WireStatus::kInternal;
  }
}

Status FromWireStatus(WireStatus code, const std::string& message) {
  switch (code) {
    case WireStatus::kOk:
      return Status::Ok();
    case WireStatus::kNotFound:
      return Status::NotFound(message);
    case WireStatus::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case WireStatus::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireStatus::kInternal:
      return Status::Internal(message);
  }
  return Status::Internal("unknown wire status " +
                          std::to_string(static_cast<int>(code)));
}

Status ValidateHeader(const FrameHeader& header) {
  if (header.magic != kFrameMagic) {
    return Status::InvalidArgument(
        StrFormat("bad frame magic 0x%08x", header.magic));
  }
  if (header.version < kMinProtocolVersion ||
      header.version > kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported protocol version %u", header.version));
  }
  if (header.length > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        StrFormat("frame length %u exceeds cap %u", header.length,
                  kMaxPayloadBytes));
  }
  if (header.verb > static_cast<uint8_t>(Verb::kIntrospect)) {
    return Status::InvalidArgument(
        StrFormat("unknown verb %u", header.verb));
  }
  if ((header.flags & kFlagTraceContext) != 0) {
    // The trace prefix is a v2 construct; a v1 frame carrying the bit is
    // a peer that negotiated wrong (or noise in the flags byte).
    if (header.version < 2) {
      return Status::InvalidArgument(
          "trace-context flag on a v1 frame");
    }
    if (header.length < kTraceContextBytes) {
      return Status::InvalidArgument(
          StrFormat("frame length %u cannot hold the %zu-byte trace prefix",
                    header.length, kTraceContextBytes));
    }
  }
  return Status::Ok();
}

Status ValidatePayload(const FrameHeader& header, const uint8_t* payload,
                       size_t size) {
  const uint32_t crc = Crc32(payload, size);
  if (crc != header.crc) {
    return Status::IoError(
        StrFormat("frame crc mismatch: header 0x%08x payload 0x%08x",
                  header.crc, crc));
  }
  return Status::Ok();
}

void AppendFrame(std::vector<uint8_t>& out, Verb verb, WireStatus status,
                 uint8_t flags, uint64_t tag, const uint8_t* payload,
                 size_t payload_size, uint8_t version,
                 const obs::TraceContext* trace) {
  const bool traced = trace != nullptr && trace->valid() && version >= 2;
  const size_t prefix = traced ? kTraceContextBytes : 0;
  FrameHeader header;
  header.version = version;
  header.verb = static_cast<uint8_t>(verb);
  header.status = static_cast<uint8_t>(status);
  header.flags = traced ? (flags | kFlagTraceContext) : flags;
  header.tag = tag;
  header.length = static_cast<uint32_t>(prefix + payload_size);
  const size_t at = out.size();
  out.resize(at + kHeaderBytes + prefix + payload_size);
  uint8_t* body = out.data() + at + kHeaderBytes;
  if (traced) {
    std::memcpy(body, &trace->trace_id, sizeof(uint64_t));
    std::memcpy(body + sizeof(uint64_t), &trace->span_id, sizeof(uint64_t));
  }
  if (payload_size > 0) {
    std::memcpy(body + prefix, payload, payload_size);
  }
  // CRC over the assembled payload region (prefix + body), then the header
  // is patched in last.
  header.crc = Crc32(body, prefix + payload_size);
  std::memcpy(out.data() + at, &header, kHeaderBytes);
}

Result<obs::TraceContext> ExtractTraceContext(Frame* frame) {
  obs::TraceContext context;
  if ((frame->header.flags & kFlagTraceContext) == 0) return context;
  if (frame->payload.size() < kTraceContextBytes) {
    return Status::InvalidArgument(
        "trace-context flag on a frame too short for the prefix");
  }
  std::memcpy(&context.trace_id, frame->payload.data(), sizeof(uint64_t));
  std::memcpy(&context.span_id,
              frame->payload.data() + sizeof(uint64_t), sizeof(uint64_t));
  frame->payload.erase(
      frame->payload.begin(),
      frame->payload.begin() + static_cast<ptrdiff_t>(kTraceContextBytes));
  frame->header.flags &= static_cast<uint8_t>(~kFlagTraceContext);
  frame->header.length -= static_cast<uint32_t>(kTraceContextBytes);
  return context;
}

void EncodeLookupRequest(std::vector<uint8_t>& out, uint64_t user_id) {
  Append(out, user_id);
}

Result<uint64_t> DecodeLookupRequest(const uint8_t* payload, size_t size) {
  Reader reader(payload, size);
  uint64_t user_id = 0;
  if (!reader.Read(&user_id) || !reader.Done()) {
    return Status::InvalidArgument("malformed lookup request payload");
  }
  return user_id;
}

void EncodeFoldInRequest(std::vector<uint8_t>& out, uint64_t user_id,
                         const core::RawUserFeatures& features) {
  Append(out, user_id);
  Append(out, static_cast<uint32_t>(features.size()));
  for (const auto& field : features) {
    Append(out, static_cast<uint32_t>(field.size()));
    for (const FeatureEntry& entry : field) {
      Append(out, entry.id);
      Append(out, entry.value);
    }
  }
}

Result<FoldInRequest> DecodeFoldInRequest(const uint8_t* payload,
                                          size_t size) {
  Reader reader(payload, size);
  FoldInRequest request;
  uint32_t num_fields = 0;
  if (!reader.Read(&request.user_id) || !reader.Read(&num_fields)) {
    return Status::InvalidArgument("truncated fold-in request header");
  }
  // Each declared field costs at least its 4-byte count, so num_fields is
  // bounded by the remaining bytes — rejects absurd counts before reserve.
  if (num_fields > reader.Remaining() / sizeof(uint32_t)) {
    return Status::InvalidArgument("fold-in field count exceeds payload");
  }
  request.features.resize(num_fields);
  for (uint32_t f = 0; f < num_fields; ++f) {
    uint32_t count = 0;
    if (!reader.Read(&count)) {
      return Status::InvalidArgument("truncated fold-in field count");
    }
    constexpr size_t kEntryBytes = sizeof(uint64_t) + sizeof(float);
    if (count > reader.Remaining() / kEntryBytes) {
      return Status::InvalidArgument("fold-in entry count exceeds payload");
    }
    auto& field = request.features[f];
    field.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!reader.Read(&field[i].id) || !reader.Read(&field[i].value)) {
        return Status::InvalidArgument("truncated fold-in entry");
      }
    }
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes after fold-in request");
  }
  return request;
}

void EncodeEmbeddingResponse(std::vector<uint8_t>& out,
                             const std::vector<float>& embedding) {
  Append(out, static_cast<uint32_t>(embedding.size()));
  const size_t at = out.size();
  out.resize(at + embedding.size() * sizeof(float));
  std::memcpy(out.data() + at, embedding.data(),
              embedding.size() * sizeof(float));
}

Result<std::vector<float>> DecodeEmbeddingResponse(const uint8_t* payload,
                                                   size_t size) {
  Reader reader(payload, size);
  uint32_t dim = 0;
  if (!reader.Read(&dim) || reader.Remaining() != dim * sizeof(float)) {
    return Status::InvalidArgument("malformed embedding response payload");
  }
  std::vector<float> embedding(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    if (!reader.Read(&embedding[i])) {
      return Status::InvalidArgument("truncated embedding response");
    }
  }
  return embedding;
}

void EncodeIntrospectRequest(std::vector<uint8_t>& out,
                             IntrospectFormat format) {
  Append(out, static_cast<uint8_t>(format));
}

Result<IntrospectFormat> DecodeIntrospectRequest(const uint8_t* payload,
                                                 size_t size) {
  Reader reader(payload, size);
  uint8_t format = 0;
  if (!reader.Read(&format) || !reader.Done()) {
    return Status::InvalidArgument("malformed introspect request payload");
  }
  if (format > static_cast<uint8_t>(IntrospectFormat::kPrometheus)) {
    return Status::InvalidArgument(
        StrFormat("unknown introspect format %u", format));
  }
  return static_cast<IntrospectFormat>(format);
}

void FrameParser::Feed(const uint8_t* data, size_t size) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // do not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<Frame> FrameParser::Next() {
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) {
    return Status::Unavailable("incomplete header");
  }
  FrameHeader header;
  std::memcpy(&header, buffer_.data() + consumed_, kHeaderBytes);
  FVAE_RETURN_IF_ERROR(ValidateHeader(header));
  if (available < kHeaderBytes + header.length) {
    return Status::Unavailable("incomplete payload");
  }
  const uint8_t* payload = buffer_.data() + consumed_ + kHeaderBytes;
  FVAE_RETURN_IF_ERROR(ValidatePayload(header, payload, header.length));
  Frame frame;
  frame.header = header;
  frame.payload.assign(payload, payload + header.length);
  consumed_ += kHeaderBytes + header.length;
  return frame;
}

}  // namespace fvae::net
