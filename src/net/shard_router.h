#ifndef FVAE_NET_SHARD_ROUTER_H_
#define FVAE_NET_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/fvae_model.h"
#include "net/net_metrics.h"
#include "net/rpc_client.h"
#include "net/wire.h"

namespace fvae::net {

struct ShardRouterOptions {
  /// Virtual nodes per endpoint on the hash ring. More nodes smooth the
  /// key distribution; 64 keeps the max/min shard load within ~10%.
  size_t virtual_nodes = 64;
  int connect_timeout_ms = 1000;
  /// Per-call budget (relative micros) covering send + wait + failover.
  int64_t call_deadline_micros = 1'000'000;

  /// Hedged retries: after the hedge delay with no response, the same
  /// request is duplicated to the next ring candidate and the first answer
  /// wins. The delay tracks the observed p99 call latency (clamped below)
  /// once enough samples exist.
  bool enable_hedging = true;
  int64_t hedge_min_delay_micros = 2'000;
  int64_t hedge_max_delay_micros = 100'000;
  uint64_t hedge_min_samples = 64;

  /// Per-shard circuit breaker: this many consecutive transport failures
  /// open the breaker for `breaker_open_micros`, during which the shard is
  /// deprioritized in candidate order (still used as a last resort).
  uint32_t breaker_failure_threshold = 3;
  int64_t breaker_open_micros = 500'000;

  /// Background health prober; a passing probe closes the breaker early.
  bool enable_health_checks = true;
  int64_t health_period_micros = 100'000;
};

/// Client-side consistent-hash router over N `fvae serve` endpoints.
///
/// User IDs map to shards via a ring of FNV-hashed virtual nodes, so adding
/// or removing an endpoint remaps only ~1/N of the key space. Every call
/// walks the candidate list (ring successors, breaker-open shards last):
/// transport failures fail over to the next candidate; slow responses are
/// hedged to it after a p99-derived delay. Wire-level error statuses
/// (kNotFound, kDeadlineExceeded, ...) are successful transport — they
/// prove the shard is alive and terminate the walk.
///
/// Thread-safe: the ring is immutable after construction, per-shard state
/// is atomics + a mutex-guarded channel pool, and metrics are lock-free.
class ShardRouterClient {
 public:
  ShardRouterClient(std::vector<std::string> endpoints,
                    ShardRouterOptions options = {},
                    obs::MetricsRegistry* registry = nullptr);
  ~ShardRouterClient();

  ShardRouterClient(const ShardRouterClient&) = delete;
  ShardRouterClient& operator=(const ShardRouterClient&) = delete;

  // Blocking round trips (candidate walk + hedge polling): never call
  // from an event-loop thread — route through the batcher instead.
  FVAE_MAY_BLOCK Result<std::vector<float>> Lookup(uint64_t user_id);
  FVAE_MAY_BLOCK Result<std::vector<float>> EncodeFoldIn(
      uint64_t user_id, const core::RawUserFeatures& features);

  /// The shard a user's key maps to (ring owner, ignoring health).
  size_t OwnerOf(uint64_t user_id) const;
  /// Ring successors of the owner: the failover/hedge order for this key.
  std::vector<size_t> CandidatesFor(uint64_t user_id) const;

  size_t num_shards() const { return shards_.size(); }
  const std::string& endpoint(size_t shard) const {
    return shards_[shard]->endpoint;
  }
  /// Breaker currently open for this shard.
  bool BreakerOpen(size_t shard) const;

  RouterMetrics& metrics() { return metrics_; }

 private:
  struct Shard {
    explicit Shard(std::string ep) : endpoint(ep), pool(std::move(ep)) {}
    std::string endpoint;
    ChannelPool pool;
    std::atomic<uint32_t> consecutive_failures{0};
    std::atomic<int64_t> open_until_us{0};
  };

  /// One request over the candidate walk with hedging; decoded embedding
  /// or the last error.
  FVAE_MAY_BLOCK Result<std::vector<float>> RoutedCall(
      uint64_t user_id, Verb verb, const std::vector<uint8_t>& payload);

  /// Sends on `primary`; hedges to `hedge_shard` (if >= 0) after the hedge
  /// delay; first response wins. Transport-level result.
  FVAE_MAY_BLOCK Result<Frame> CallWithHedge(
      size_t primary, int hedge_shard, Verb verb,
      const std::vector<uint8_t>& payload, int64_t deadline_micros);

  int64_t HedgeDelayMicros() const;
  void RecordSuccess(size_t shard);
  void RecordFailure(size_t shard);
  void HealthLoop();

  ShardRouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Sorted (hash, shard) ring; immutable after construction.
  std::vector<std::pair<uint64_t, size_t>> ring_;
  RouterMetrics metrics_;

  std::atomic<bool> stopping_{false};
  // Declared rank for the net subsystem's lock DAG: if prober pacing ever
  // nests with a shard's pool (today the probe walk runs unlocked), the
  // pacing lock comes first — a pool mutex must never be held while
  // touching prober state (RecordSuccess/Failure stay atomics-only).
  Mutex health_mutex_ FVAE_ACQUIRED_BEFORE(ChannelPool::mutex_);
  CondVar health_cv_;
  std::thread health_thread_;
};

}  // namespace fvae::net

#endif  // FVAE_NET_SHARD_ROUTER_H_
