#ifndef FVAE_NET_FD_H_
#define FVAE_NET_FD_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/hot_path.h"
#include "common/result.h"
#include "common/status.h"

namespace fvae::net {

/// RAII owner of a POSIX file descriptor.
///
/// Every descriptor in the networking subsystem lives in one of these:
/// fvae_lint's `raw-socket` rule bans bare `socket(` / `accept(` /
/// `close(` calls outside `src/net/`, so a descriptor can never leak
/// through an early return and can never be double-closed. Move-only;
/// destruction closes.
class Fd {
 public:
  Fd() = default;
  /// Takes ownership of `fd` (-1 = empty).
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the held descriptor (if any) and takes ownership of `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a non-blocking IPv4 listening socket bound to 127.0.0.1:`port`
/// (`port` 0 picks an ephemeral port — read it back with LocalPort).
/// SO_REUSEADDR is set so restarts do not trip over TIME_WAIT.
Result<Fd> TcpListen(uint16_t port, int backlog = 128);

/// Accepts one pending connection from a listening socket, non-blocking
/// and TCP_NODELAY already applied. kUnavailable when no connection is
/// pending (EAGAIN) — callers in an epoll loop just wait for the next
/// EPOLLIN.
Result<Fd> Accept(const Fd& listener);

/// Blocking connect to 127.0.0.1:`port` with a timeout; the returned
/// socket is in blocking mode with TCP_NODELAY set.
FVAE_MAY_BLOCK Result<Fd> TcpConnect(uint16_t port, int timeout_ms = 1000);

/// Parses "host:port" (host must be 127.0.0.1 or localhost — the serving
/// tier is fronted by a local proxy in this reproduction) and connects.
FVAE_MAY_BLOCK Result<Fd> ConnectEndpoint(const std::string& endpoint,
                                          int timeout_ms = 1000);

/// Splits "host:port" into its port. kInvalidArgument on malformed input.
Result<uint16_t> EndpointPort(const std::string& endpoint);

/// Marks `fd` non-blocking.
Status SetNonBlocking(int fd);

/// The locally bound port of a socket (after TcpListen with port 0).
Result<uint16_t> LocalPort(int fd);

/// Sends the full buffer on a blocking socket, retrying short writes and
/// EINTR; MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE. Fails with
/// kUnavailable once `deadline_micros` (MonotonicMicros scale; 0 = none)
/// passes.
FVAE_MAY_BLOCK Status SendAll(int fd, const void* data, size_t size,
                              int64_t deadline_micros = 0);

/// Receives exactly `size` bytes on a blocking socket, polling against the
/// deadline. kUnavailable on timeout, kIoError on EOF/reset.
FVAE_MAY_BLOCK Status RecvAll(int fd, void* data, size_t size,
                              int64_t deadline_micros = 0);

/// Polls `fd` for readability until `deadline_micros`. Ok when readable,
/// kUnavailable on timeout, kIoError on poll failure.
FVAE_MAY_BLOCK Status WaitReadable(int fd, int64_t deadline_micros);

}  // namespace fvae::net

#endif  // FVAE_NET_FD_H_
