#include "net/rpc_client.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/stopwatch.h"

namespace fvae::net {

Result<std::unique_ptr<RpcChannel>> RpcChannel::Connect(
    const std::string& endpoint, int timeout_ms) {
  FVAE_ASSIGN_OR_RETURN(Fd fd, ConnectEndpoint(endpoint, timeout_ms));
  return std::unique_ptr<RpcChannel>(
      new RpcChannel(std::move(fd), endpoint));
}

Result<uint64_t> RpcChannel::SendRequest(Verb verb,
                                         const std::vector<uint8_t>& payload,
                                         int64_t deadline_micros) {
  const uint64_t tag = next_tag_++;
  send_buffer_.clear();
  // The thread-ambient trace context rides the frame once the peer has
  // proven v2-capable; on a v1 channel AppendFrame drops it silently, so
  // the first request to a new server is always a plain v1 frame.
  const obs::TraceContext context = obs::CurrentTraceContext();
  AppendFrame(send_buffer_, verb, WireStatus::kOk, /*flags=*/0, tag,
              payload.data(), payload.size(), peer_version_,
              context.valid() ? &context : nullptr);
  FVAE_RETURN_IF_ERROR(SendAll(fd_.get(), send_buffer_.data(),
                               send_buffer_.size(), deadline_micros));
  return tag;
}

Result<Frame> RpcChannel::ReadResponse(uint64_t tag,
                                       int64_t deadline_micros) {
  for (;;) {
    // Drain any frame already buffered before touching the socket.
    Result<Frame> frame = parser_.Next();
    if (frame.ok()) {
      // Any response doubles as the capability advertisement — even a
      // stale one from an abandoned hedge arm upgrades the channel.
      if ((frame->header.flags & kFlagTraceCapable) != 0) {
        peer_version_ = kProtocolVersion;
      }
      if (frame->header.tag == tag) {
        // Responses are not expected to carry a trace prefix today, but a
        // future server minting server-side contexts may; strip it so verb
        // wrappers always see the bare payload.
        FVAE_RETURN_IF_ERROR(
            ExtractTraceContext(&*frame).status());
        return CheckResponse(*std::move(frame));
      }
      // Stale response from an abandoned hedge arm on a reused channel:
      // skip it and keep reading.
      continue;
    }
    if (frame.status().code() != StatusCode::kUnavailable) {
      return frame.status();  // Corrupt stream.
    }
    uint8_t buffer[16 * 1024];
    FVAE_RETURN_IF_ERROR(WaitReadable(fd_.get(), deadline_micros));
    const ssize_t n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      parser_.Feed(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IoError("connection closed by server");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
}

Result<Frame> RpcChannel::Call(Verb verb, const std::vector<uint8_t>& payload,
                               int64_t deadline_micros) {
  FVAE_ASSIGN_OR_RETURN(const uint64_t tag,
                        SendRequest(verb, payload, deadline_micros));
  return ReadResponse(tag, deadline_micros);
}

Result<Frame> RpcChannel::CheckResponse(Frame frame) {
  const auto code = static_cast<WireStatus>(frame.header.status);
  if (code != WireStatus::kOk) {
    return FromWireStatus(
        code, std::string(frame.payload.begin(), frame.payload.end()));
  }
  return frame;
}

Status RpcChannel::Health(int64_t deadline_micros) {
  const std::vector<uint8_t> empty;
  FVAE_ASSIGN_OR_RETURN(Frame frame,
                        Call(Verb::kHealth, empty, deadline_micros));
  (void)frame;  // Ok status frame carries no payload.
  return Status::Ok();
}

Result<std::vector<float>> RpcChannel::Lookup(uint64_t user_id,
                                              int64_t deadline_micros) {
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, user_id);
  FVAE_ASSIGN_OR_RETURN(Frame frame,
                        Call(Verb::kLookup, payload, deadline_micros));
  return DecodeEmbeddingResponse(frame.payload.data(), frame.payload.size());
}

Result<std::vector<float>> RpcChannel::EncodeFoldIn(
    uint64_t user_id, const core::RawUserFeatures& features,
    int64_t deadline_micros) {
  std::vector<uint8_t> payload;
  EncodeFoldInRequest(payload, user_id, features);
  FVAE_ASSIGN_OR_RETURN(Frame frame,
                        Call(Verb::kEncodeFoldIn, payload, deadline_micros));
  return DecodeEmbeddingResponse(frame.payload.data(), frame.payload.size());
}

Result<std::string> RpcChannel::Stats(int64_t deadline_micros) {
  const std::vector<uint8_t> empty;
  FVAE_ASSIGN_OR_RETURN(Frame frame,
                        Call(Verb::kStats, empty, deadline_micros));
  return std::string(frame.payload.begin(), frame.payload.end());
}

Result<std::string> RpcChannel::Introspect(IntrospectFormat format,
                                           int64_t deadline_micros) {
  std::vector<uint8_t> payload;
  EncodeIntrospectRequest(payload, format);
  FVAE_ASSIGN_OR_RETURN(Frame frame,
                        Call(Verb::kIntrospect, payload, deadline_micros));
  return std::string(frame.payload.begin(), frame.payload.end());
}

Result<std::unique_ptr<RpcChannel>> ChannelPool::Acquire(int timeout_ms) {
  {
    MutexLock lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<RpcChannel> channel = std::move(idle_.back());
      idle_.pop_back();
      return channel;
    }
  }
  return RpcChannel::Connect(endpoint_, timeout_ms);
}

void ChannelPool::Release(std::unique_ptr<RpcChannel> channel) {
  if (channel == nullptr) return;
  MutexLock lock(mutex_);
  idle_.push_back(std::move(channel));
}

size_t ChannelPool::idle() const {
  MutexLock lock(mutex_);
  return idle_.size();
}

}  // namespace fvae::net
