#ifndef FVAE_NET_RPC_CLIENT_H_
#define FVAE_NET_RPC_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/fvae_model.h"
#include "net/fd.h"
#include "net/wire.h"

namespace fvae::net {

/// Blocking client connection: one in-flight request at a time, matched to
/// its response by tag. Not thread-safe — each thread (or each hedged arm)
/// uses its own channel; ChannelPool below hands them out.
///
/// Version negotiation: the channel starts pessimistic at v1 (an old
/// server rejects anything newer). Servers advertise v2 support with the
/// kFlagTraceCapable bit on every response; the first response carrying it
/// upgrades the channel, after which requests go out as v2 with the
/// thread-ambient obs::TraceContext injected as the payload trace prefix.
class RpcChannel {
 public:
  /// Connects to "127.0.0.1:<port>".
  FVAE_MAY_BLOCK static Result<std::unique_ptr<RpcChannel>> Connect(
      const std::string& endpoint, int timeout_ms = 1000);

  /// Full round trip: send + wait for the tagged response.
  /// `deadline_micros` is absolute (MonotonicMicros scale; 0 = no limit).
  FVAE_MAY_BLOCK Result<Frame> Call(Verb verb,
                                    const std::vector<uint8_t>& payload,
                                    int64_t deadline_micros = 0);

  /// Split-phase API for hedging: send now, collect later.
  /// Returns the tag the response will carry.
  FVAE_MAY_BLOCK Result<uint64_t> SendRequest(
      Verb verb, const std::vector<uint8_t>& payload,
      int64_t deadline_micros = 0);
  /// Blocks until the response tagged `tag` arrives (skipping stale earlier
  /// responses) or the deadline passes (kUnavailable).
  FVAE_MAY_BLOCK Result<Frame> ReadResponse(uint64_t tag,
                                            int64_t deadline_micros);

  /// Raw socket for poll-based readiness checks (hedging).
  int fd() const { return fd_.get(); }
  const std::string& endpoint() const { return endpoint_; }
  /// The protocol version this channel currently speaks to its peer
  /// (starts at kMinProtocolVersion, upgraded by kFlagTraceCapable).
  uint8_t peer_version() const { return peer_version_; }

  // --- Verb wrappers ---
  FVAE_MAY_BLOCK Status Health(int64_t deadline_micros = 0);
  FVAE_MAY_BLOCK Result<std::vector<float>> Lookup(
      uint64_t user_id, int64_t deadline_micros = 0);
  FVAE_MAY_BLOCK Result<std::vector<float>> EncodeFoldIn(
      uint64_t user_id, const core::RawUserFeatures& features,
      int64_t deadline_micros = 0);
  FVAE_MAY_BLOCK Result<std::string> Stats(int64_t deadline_micros = 0);
  /// Live introspection snapshot (v2 servers; an old server rejects the
  /// verb as a protocol error and drops the connection).
  FVAE_MAY_BLOCK Result<std::string> Introspect(
      IntrospectFormat format = IntrospectFormat::kJson,
      int64_t deadline_micros = 0);

 private:
  RpcChannel(Fd fd, std::string endpoint)
      : fd_(std::move(fd)), endpoint_(std::move(endpoint)) {}

  /// Turns a response frame into the caller-facing result: wire errors map
  /// back to Status, Ok frames hand back the payload.
  static Result<Frame> CheckResponse(Frame frame);

  Fd fd_;
  std::string endpoint_;
  uint64_t next_tag_ = 1;
  uint8_t peer_version_ = kMinProtocolVersion;
  std::vector<uint8_t> send_buffer_;
  FrameParser parser_;
};

/// Mutex-guarded free list of channels to one endpoint. Channels check out
/// for the duration of a call and return on clean completion; channels that
/// saw a transport error are discarded (their stream state is unknown).
class ChannelPool {
 public:
  explicit ChannelPool(std::string endpoint) : endpoint_(std::move(endpoint)) {}

  /// Pops a pooled channel or dials a new one (a fresh dial blocks in
  /// connect).
  FVAE_MAY_BLOCK Result<std::unique_ptr<RpcChannel>> Acquire(
      int timeout_ms = 1000) FVAE_EXCLUDES(mutex_);

  /// Returns a healthy channel for reuse.
  void Release(std::unique_ptr<RpcChannel> channel) FVAE_EXCLUDES(mutex_);

  const std::string& endpoint() const { return endpoint_; }
  size_t idle() const FVAE_EXCLUDES(mutex_);

 private:
  const std::string endpoint_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<RpcChannel>> idle_ FVAE_GUARDED_BY(mutex_);
};

}  // namespace fvae::net

#endif  // FVAE_NET_RPC_CLIENT_H_
