#ifndef FVAE_NET_TIMER_WHEEL_H_
#define FVAE_NET_TIMER_WHEEL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <vector>

namespace fvae::net {

/// Hashed timer wheel for coarse connection timeouts (idle kicks, health
/// probes, hedge delays). Single-threaded by design: it is owned by one
/// EpollLoop and only touched from that loop's thread, so it needs no lock.
///
/// Resolution is one tick (default 10 ms) — connection timeouts are
/// hundreds of milliseconds, so coarse buckets beat a balanced tree on both
/// insert cost and cache behavior. Timers far beyond one rotation carry a
/// remaining-rotations count, seastar-style.
class TimerWheel {
 public:
  using TimerId = uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  explicit TimerWheel(int64_t tick_micros = 10'000, size_t num_slots = 256)
      : tick_micros_(tick_micros), slots_(num_slots) {}

  /// Schedules `callback` to fire `delay_micros` from `now_micros`
  /// (MonotonicMicros scale). Returns an id usable with Cancel.
  TimerId Schedule(int64_t now_micros, int64_t delay_micros,
                   std::function<void()> callback);

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  void Cancel(TimerId id);

  /// Fires every timer that came due by `now_micros`. Callbacks run inline
  /// on the caller's (= loop) thread and may schedule new timers.
  void Advance(int64_t now_micros);

  /// Micros until the next pending timer fires, or `fallback` when empty —
  /// the epoll_wait timeout hint.
  int64_t MicrosToNext(int64_t now_micros, int64_t fallback) const;

  size_t pending() const { return pending_; }

 private:
  struct Entry {
    TimerId id = kInvalidTimer;
    uint32_t rotations = 0;  // Fire when zero on slot sweep.
    std::function<void()> callback;
  };

  int64_t tick_micros_;
  std::vector<std::list<Entry>> slots_;
  size_t cursor_ = 0;          // Slot the next Advance sweep starts at.
  int64_t last_tick_ = 0;      // Tick number last fully processed.
  bool started_ = false;       // last_tick_ is meaningful.
  TimerId next_id_ = 1;
  size_t pending_ = 0;
};

}  // namespace fvae::net

#endif  // FVAE_NET_TIMER_WHEEL_H_
