#ifndef FVAE_NET_WIRE_H_
#define FVAE_NET_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/fvae_model.h"

namespace fvae::net {

// The wire format is raw little-endian structs; a big-endian host would
// need byte swaps this codec does not implement.
static_assert(std::endian::native == std::endian::little,
              "fvae wire protocol requires a little-endian host");

/// Request verbs. Numeric values are wire contract — append only.
enum class Verb : uint8_t {
  kHealth = 0,
  kLookup = 1,
  kEncodeFoldIn = 2,
  kStats = 3,
};

/// Response status codes on the wire. A transport-level CRC/framing error
/// never gets a response — the server closes the connection instead.
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kDeadlineExceeded = 2,
  kResourceExhausted = 3,
  kInvalidArgument = 4,
  kInternal = 5,
};

/// Converts a serving-layer Status into its wire code (and back, for client
/// error reporting).
WireStatus ToWireStatus(const Status& status);
Status FromWireStatus(WireStatus code, const std::string& message);

inline constexpr uint32_t kFrameMagic = 0x50525646;  // "FVRP" little-endian.
inline constexpr uint8_t kProtocolVersion = 1;
/// Hard payload ceiling: a fold-in request for even a pathological user fits
/// in well under 16 MiB, so anything bigger is a corrupt or hostile length
/// prefix and the connection is dropped before allocating.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 24;

inline constexpr uint8_t kFlagResponse = 0x01;

/// Fixed 24-byte frame header. `length` counts payload bytes only; `crc`
/// covers payload bytes only (header corruption is caught by the magic /
/// version / length sanity checks).
struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint8_t version = kProtocolVersion;
  uint8_t verb = 0;
  uint8_t status = 0;  // WireStatus; meaningful on responses.
  uint8_t flags = 0;
  uint64_t tag = 0;  // Echoed verbatim: matches responses to requests.
  uint32_t length = 0;
  uint32_t crc = 0;
};
static_assert(sizeof(FrameHeader) == 24, "header layout is wire contract");

inline constexpr size_t kHeaderBytes = sizeof(FrameHeader);

/// A fully parsed inbound frame.
struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// Validates magic / version / length bounds of a header freshly copied off
/// the wire. Does NOT check the CRC (the payload has not been read yet).
Status ValidateHeader(const FrameHeader& header);

/// Checks the payload against the header CRC.
Status ValidatePayload(const FrameHeader& header, const uint8_t* payload,
                       size_t size);

/// Appends header + payload to `out` with the CRC computed over `payload`.
void AppendFrame(std::vector<uint8_t>& out, Verb verb, WireStatus status,
                 uint8_t flags, uint64_t tag, const uint8_t* payload,
                 size_t payload_size);

// --- Payload codecs -------------------------------------------------------
//
// Lookup request:       u64 user_id
// EncodeFoldIn request: u64 user_id, u32 num_fields,
//                       per field: u32 count, count × (u64 id, f32 value)
// Embedding response:   u32 dim, dim × f32
// Error response:       UTF-8 message bytes (no terminator)
// Health / Stats req:   empty
// Health response:      empty payload, WireStatus::kOk
// Stats response:       UTF-8 JSON document

void EncodeLookupRequest(std::vector<uint8_t>& out, uint64_t user_id);
Result<uint64_t> DecodeLookupRequest(const uint8_t* payload, size_t size);

void EncodeFoldInRequest(std::vector<uint8_t>& out, uint64_t user_id,
                         const core::RawUserFeatures& features);
struct FoldInRequest {
  uint64_t user_id = 0;
  core::RawUserFeatures features;
};
Result<FoldInRequest> DecodeFoldInRequest(const uint8_t* payload, size_t size);

void EncodeEmbeddingResponse(std::vector<uint8_t>& out,
                             const std::vector<float>& embedding);
Result<std::vector<float>> DecodeEmbeddingResponse(const uint8_t* payload,
                                                   size_t size);

/// Incremental frame parser: feed bytes as they arrive, pop complete frames.
/// One instance per connection; headers and payloads that span reads are
/// buffered internally.
class FrameParser {
 public:
  /// Appends newly received bytes to the parse buffer.
  void Feed(const uint8_t* data, size_t size);

  /// Extracts the next complete, CRC-valid frame. Returns:
  ///  - Ok(frame) when a full frame was parsed,
  ///  - kUnavailable when more bytes are needed (not an error),
  ///  - kInvalidArgument / kIoError on malformed input — the connection
  ///    must be closed, the buffer is poisoned.
  Result<Frame> Next();

  /// Bytes currently buffered (for backpressure accounting and tests).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already handed out as frames.
};

}  // namespace fvae::net

#endif  // FVAE_NET_WIRE_H_
