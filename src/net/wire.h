#ifndef FVAE_NET_WIRE_H_
#define FVAE_NET_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/fvae_model.h"
#include "obs/trace.h"

namespace fvae::net {

// The wire format is raw little-endian structs; a big-endian host would
// need byte swaps this codec does not implement.
static_assert(std::endian::native == std::endian::little,
              "fvae wire protocol requires a little-endian host");

/// Request verbs. Numeric values are wire contract — append only.
enum class Verb : uint8_t {
  kHealth = 0,
  kLookup = 1,
  kEncodeFoldIn = 2,
  kStats = 3,
  kIntrospect = 4,  // v2: metrics snapshot + slow traces + Prometheus text
};

/// Response status codes on the wire. A transport-level CRC/framing error
/// never gets a response — the server closes the connection instead.
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kDeadlineExceeded = 2,
  kResourceExhausted = 3,
  kInvalidArgument = 4,
  kInternal = 5,
};

/// Converts a serving-layer Status into its wire code (and back, for client
/// error reporting).
WireStatus ToWireStatus(const Status& status);
Status FromWireStatus(WireStatus code, const std::string& message);

inline constexpr uint32_t kFrameMagic = 0x50525646;  // "FVRP" little-endian.
/// Current protocol version. v2 adds the trace-context payload prefix, the
/// trace-capability response flag, and the Introspect verb; v1 peers are
/// still fully supported (kMinProtocolVersion) — see the negotiation notes
/// on the flag constants below and docs/PROTOCOL.md.
inline constexpr uint8_t kProtocolVersion = 2;
inline constexpr uint8_t kMinProtocolVersion = 1;
/// Hard payload ceiling: a fold-in request for even a pathological user fits
/// in well under 16 MiB, so anything bigger is a corrupt or hostile length
/// prefix and the connection is dropped before allocating.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 24;

inline constexpr uint8_t kFlagResponse = 0x01;
/// v2: the payload begins with a 16-byte trace-context prefix (u64
/// trace_id, u64 parent span_id, little-endian). `length` and `crc` cover
/// prefix + body. Only valid on version >= 2 frames — ValidateHeader
/// rejects the bit on v1, which is what lets v1 peers stay oblivious.
inline constexpr uint8_t kFlagTraceContext = 0x02;
/// v2: set by the server on every response to advertise that it
/// understands v2 frames. Responses mirror the *request's* version (a v1
/// request gets a v1 response, which an old client parses; old clients
/// never inspect flags), so this bit is the upgrade signal: a client that
/// sees it switches the channel to v2 and starts injecting trace context.
inline constexpr uint8_t kFlagTraceCapable = 0x04;

/// Size of the trace-context payload prefix (u64 trace_id + u64 span_id).
inline constexpr size_t kTraceContextBytes = 16;

/// Fixed 24-byte frame header. `length` counts payload bytes only; `crc`
/// covers payload bytes only (header corruption is caught by the magic /
/// version / length sanity checks).
struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint8_t version = kProtocolVersion;
  uint8_t verb = 0;
  uint8_t status = 0;  // WireStatus; meaningful on responses.
  uint8_t flags = 0;
  uint64_t tag = 0;  // Echoed verbatim: matches responses to requests.
  uint32_t length = 0;
  uint32_t crc = 0;
};
static_assert(sizeof(FrameHeader) == 24, "header layout is wire contract");

inline constexpr size_t kHeaderBytes = sizeof(FrameHeader);

/// A fully parsed inbound frame.
struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// Validates magic / version / flag / length bounds of a header freshly
/// copied off the wire. Versions in [kMinProtocolVersion,
/// kProtocolVersion] are accepted; the trace-context flag is rejected on
/// v1 frames and on frames too short to hold the prefix. Does NOT check
/// the CRC (the payload has not been read yet).
Status ValidateHeader(const FrameHeader& header);

/// Checks the payload against the header CRC.
Status ValidatePayload(const FrameHeader& header, const uint8_t* payload,
                       size_t size);

/// Appends header + payload to `out` with the CRC computed over the
/// payload region. `version` stamps the header (peers negotiate down to
/// v1 for old servers). When `trace` is non-null, valid, and `version`
/// >= 2, the kFlagTraceContext bit is set and the 16-byte prefix
/// (trace->trace_id, trace->span_id — the sender's current span, i.e. the
/// receiver's parent) is written ahead of the payload; `length`/`crc`
/// cover both.
void AppendFrame(std::vector<uint8_t>& out, Verb verb, WireStatus status,
                 uint8_t flags, uint64_t tag, const uint8_t* payload,
                 size_t payload_size, uint8_t version = kProtocolVersion,
                 const obs::TraceContext* trace = nullptr);

/// Strips the trace-context prefix from `frame` (payload shrinks by 16
/// bytes, the flag bit clears) and returns it as a TraceContext whose
/// span_id is the *sender's* span — the parent of everything the receiver
/// records. Frames without the flag return {0,0} untouched. A flagged
/// frame with a short payload is an error (ValidateHeader already rejects
/// it; this guards direct callers).
Result<obs::TraceContext> ExtractTraceContext(Frame* frame);

// --- Payload codecs -------------------------------------------------------
//
// Lookup request:       u64 user_id
// EncodeFoldIn request: u64 user_id, u32 num_fields,
//                       per field: u32 count, count × (u64 id, f32 value)
// Embedding response:   u32 dim, dim × f32
// Error response:       UTF-8 message bytes (no terminator)
// Health / Stats req:   empty
// Health response:      empty payload, WireStatus::kOk
// Stats response:       UTF-8 JSON document
// Introspect request:   u8 format (IntrospectFormat)
// Introspect response:  UTF-8 document (JSON or Prometheus text)

void EncodeLookupRequest(std::vector<uint8_t>& out, uint64_t user_id);
Result<uint64_t> DecodeLookupRequest(const uint8_t* payload, size_t size);

void EncodeFoldInRequest(std::vector<uint8_t>& out, uint64_t user_id,
                         const core::RawUserFeatures& features);
struct FoldInRequest {
  uint64_t user_id = 0;
  core::RawUserFeatures features;
};
Result<FoldInRequest> DecodeFoldInRequest(const uint8_t* payload, size_t size);

void EncodeEmbeddingResponse(std::vector<uint8_t>& out,
                             const std::vector<float>& embedding);
Result<std::vector<float>> DecodeEmbeddingResponse(const uint8_t* payload,
                                                   size_t size);

/// Requested rendering of the Introspect snapshot.
enum class IntrospectFormat : uint8_t {
  kJson = 0,        // metrics + per-verb latency + slow traces + exemplars
  kPrometheus = 1,  // text exposition format for scrapers
};

void EncodeIntrospectRequest(std::vector<uint8_t>& out,
                             IntrospectFormat format);
Result<IntrospectFormat> DecodeIntrospectRequest(const uint8_t* payload,
                                                 size_t size);

/// Incremental frame parser: feed bytes as they arrive, pop complete frames.
/// One instance per connection; headers and payloads that span reads are
/// buffered internally.
class FrameParser {
 public:
  /// Appends newly received bytes to the parse buffer.
  void Feed(const uint8_t* data, size_t size);

  /// Extracts the next complete, CRC-valid frame. Returns:
  ///  - Ok(frame) when a full frame was parsed,
  ///  - kUnavailable when more bytes are needed (not an error),
  ///  - kInvalidArgument / kIoError on malformed input — the connection
  ///    must be closed, the buffer is poisoned.
  Result<Frame> Next();

  /// Bytes currently buffered (for backpressure accounting and tests).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already handed out as frames.
};

}  // namespace fvae::net

#endif  // FVAE_NET_WIRE_H_
