#ifndef FVAE_NET_EPOLL_LOOP_H_
#define FVAE_NET_EPOLL_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/fd.h"
#include "net/timer_wheel.h"

namespace fvae::net {

/// Single-threaded level-triggered epoll reactor.
///
/// One loop per worker thread. All fd registration, timers, and callbacks
/// run on the loop thread; the only cross-thread entry point is Post(),
/// which enqueues a task under a mutex and wakes the loop via an eventfd.
/// This is the standard one-lock-per-loop design: the hot path (epoll_wait
/// + dispatch) never takes the mutex unless the eventfd fired.
class EpollLoop {
 public:
  /// Bitmask of readiness events delivered to an IoCallback.
  struct Events {
    bool readable = false;
    bool writable = false;
    bool error = false;  // EPOLLERR / EPOLLHUP — peer is gone.
  };
  using IoCallback = std::function<void(Events)>;
  using Task = std::function<void()>;

  EpollLoop();
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Whether construction succeeded (epoll_create1 / eventfd can fail).
  Status Init() const { return init_status_; }

  /// Registers `fd` for readiness callbacks. `want_write` adds EPOLLOUT —
  /// only enable it while the write buffer is non-empty, or the loop spins.
  /// Loop thread only.
  Status Add(int fd, bool want_write, IoCallback callback);
  Status Mod(int fd, bool want_read, bool want_write);
  Status Del(int fd);

  /// Schedules `callback` on the loop thread after `delay_micros`.
  /// Loop thread only (cross-thread: Post a task that schedules).
  TimerWheel::TimerId ScheduleTimer(int64_t delay_micros,
                                    std::function<void()> callback);
  void CancelTimer(TimerWheel::TimerId id);

  /// Enqueues `task` to run on the loop thread. Safe from any thread; the
  /// only cross-thread entry point.
  void Post(Task task) FVAE_EXCLUDES(post_mutex_);

  /// Runs the reactor until Stop(). Call from exactly one thread.
  void Run();

  /// Requests Run() to return after the current dispatch round. Safe from
  /// any thread.
  void Stop();

  /// True when called from inside a callback on the running loop thread.
  bool InLoopThread() const;

 private:
  void DrainPosted() FVAE_EXCLUDES(post_mutex_);
  void WakeUp();

  Status init_status_;
  Fd epoll_fd_;
  Fd wake_fd_;  // eventfd; EPOLLIN on it means posted tasks are pending.
  TimerWheel timers_;
  std::unordered_map<int, IoCallback> callbacks_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> loop_thread_id_{0};  // 0 = not running.

  // Bounded critical section (queue push/swap + eventfd write, no IO, no
  // nested locks), so loop threads may take it: DrainPosted holds it for
  // one swap when the eventfd fires. Ranks below the client-side locks —
  // fold-in completions Post() while the router still holds its own state
  // (ChannelPool::Release, breaker bookkeeping), never the reverse.
  Mutex post_mutex_ FVAE_LOOP_LOCK_EXEMPT FVAE_ACQUIRED_AFTER(
      ChannelPool::mutex_, ShardRouterClient::health_mutex_);
  std::deque<Task> posted_ FVAE_GUARDED_BY(post_mutex_);
};

}  // namespace fvae::net

#endif  // FVAE_NET_EPOLL_LOOP_H_
