#include "net/timer_wheel.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace fvae::net {

TimerWheel::TimerId TimerWheel::Schedule(int64_t now_micros,
                                         int64_t delay_micros,
                                         std::function<void()> callback) {
  if (!started_) {
    last_tick_ = now_micros / tick_micros_;
    started_ = true;
  }
  if (delay_micros < 0) delay_micros = 0;
  // Round the due time up so a timer never fires a tick early.
  const int64_t due_tick =
      (now_micros + delay_micros + tick_micros_ - 1) / tick_micros_;
  // At least one tick out: a delay shorter than the resolution still waits
  // for the next sweep instead of firing inside Schedule.
  const int64_t ticks_ahead = std::max<int64_t>(1, due_tick - last_tick_);
  const size_t slot =
      (cursor_ + static_cast<size_t>(ticks_ahead)) % slots_.size();
  Entry entry;
  entry.id = next_id_++;
  entry.rotations =
      static_cast<uint32_t>((ticks_ahead - 1) / slots_.size());
  entry.callback = std::move(callback);
  const TimerId id = entry.id;
  slots_[slot].push_back(std::move(entry));
  ++pending_;
  return id;
}

void TimerWheel::Cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  for (auto& slot : slots_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --pending_;
        return;
      }
    }
  }
}

void TimerWheel::Advance(int64_t now_micros) {
  if (!started_) return;
  const int64_t now_tick = now_micros / tick_micros_;
  // Cap the sweep at one full rotation: after a long stall every slot has
  // been visited once and every due timer (rotations already decremented
  // the previous pass at most once — acceptable coarse behavior) fired.
  int64_t steps = now_tick - last_tick_;
  if (steps <= 0) return;
  steps = std::min<int64_t>(steps, static_cast<int64_t>(slots_.size()));
  for (int64_t s = 0; s < steps; ++s) {
    cursor_ = (cursor_ + 1) % slots_.size();
    std::list<Entry> due;
    auto& slot = slots_[cursor_];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->rotations == 0) {
        auto next = std::next(it);
        due.splice(due.end(), slot, it);
        it = next;
      } else {
        --it->rotations;
        ++it;
      }
    }
    pending_ -= due.size();
    for (Entry& entry : due) {
      // Callback may call Schedule/Cancel on this wheel; `due` is already
      // detached so iteration stays valid.
      entry.callback();
    }
  }
  last_tick_ = now_tick;
}

int64_t TimerWheel::MicrosToNext(int64_t now_micros, int64_t fallback) const {
  if (pending_ == 0) return fallback;
  for (size_t ahead = 1; ahead <= slots_.size(); ++ahead) {
    const size_t slot = (cursor_ + ahead) % slots_.size();
    for (const Entry& entry : slots_[slot]) {
      if (entry.rotations == 0) {
        const int64_t due =
            (last_tick_ + static_cast<int64_t>(ahead)) * tick_micros_;
        return std::max<int64_t>(0, due - now_micros);
      }
    }
  }
  // Only multi-rotation timers pending: wake once per rotation.
  return static_cast<int64_t>(slots_.size()) * tick_micros_;
}

}  // namespace fvae::net
