#include "distributed/parallel_trainer.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "data/batching.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace fvae::distributed {

ParallelFvaeTrainer::ParallelFvaeTrainer(const core::FvaeConfig& model_config,
                                         const DistributedConfig& config)
    : model_config_(model_config), config_(config) {
  FVAE_CHECK(config_.num_workers >= 1);
  FVAE_CHECK(config_.sync_every_batches >= 1);
}

core::FieldVae& ParallelFvaeTrainer::model() {
  FVAE_CHECK(!replicas_.empty()) << "Train must be called first";
  return *replicas_[0];
}

void ParallelFvaeTrainer::AverageReplicas() {
  const size_t num_replicas = replicas_.size();
  if (num_replicas < 2) return;
  FVAE_TRACE_SCOPE("distributed.merge");
  Stopwatch merge_watch;

  // Dense parameters: elementwise mean, broadcast back.
  std::vector<std::vector<Matrix*>> params(num_replicas);
  for (size_t r = 0; r < num_replicas; ++r) {
    params[r] = replicas_[r]->DenseParams();
    FVAE_CHECK(params[r].size() == params[0].size());
  }
  const float inv = 1.0f / float(num_replicas);
  for (size_t p = 0; p < params[0].size(); ++p) {
    Matrix& base = *params[0][p];
    for (size_t r = 1; r < num_replicas; ++r) {
      FVAE_CHECK(params[r][p]->size() == base.size());
      base.Add(*params[r][p]);
    }
    base.Scale(inv);
    for (size_t r = 1; r < num_replicas; ++r) *params[r][p] = base;
  }

  // Embedding tables: delta synchronization. Only rows some replica
  // actually updated since the last barrier are exchanged (the realistic
  // parameter-server behaviour — and what keeps the sync cost proportional
  // to the recent work, not to the full table). The merged value of a key
  // is the mean over the replicas that know it; every replica then adopts
  // the merged rows.
  const size_t num_fields = replicas_[0]->num_fields();
  for (size_t k = 0; k < num_fields; ++k) {
    for (int which = 0; which < 2; ++which) {
      auto table_of = [&](size_t r) -> nn::EmbeddingTable& {
        return which == 0 ? replicas_[r]->input_table(k)
                          : replicas_[r]->output_table(k);
      };
      const size_t dim = table_of(0).dim();
      const bool with_bias = table_of(0).with_bias();

      // Union of dirty keys across replicas.
      std::unordered_map<uint64_t, bool> dirty_keys;
      for (size_t r = 0; r < num_replicas; ++r) {
        nn::EmbeddingTable& table = table_of(r);
        for (uint32_t row : table.TakeDirtyRows()) {
          dirty_keys.emplace(table.KeyOfRow(row), true);
        }
      }

      // key -> (sum vector, sum bias, count) over replicas knowing it.
      struct Accum {
        std::vector<float> sum;
        float bias = 0.0f;
        uint32_t count = 0;
      };
      std::unordered_map<uint64_t, Accum> merged;
      merged.reserve(dirty_keys.size());
      for (size_t r = 0; r < num_replicas; ++r) {
        nn::EmbeddingTable& table = table_of(r);
        for (const auto& [key, unused] : dirty_keys) {
          (void)unused;
          const auto row = table.FindRow(key);
          if (!row.has_value()) continue;
          Accum& acc = merged[key];
          if (acc.sum.empty()) acc.sum.assign(dim, 0.0f);
          std::span<const float> w = table.Row(*row);
          for (size_t d = 0; d < dim; ++d) acc.sum[d] += w[d];
          if (with_bias) acc.bias += table.bias(*row);
          ++acc.count;
        }
      }
      for (auto& [key, acc] : merged) {
        const float scale = 1.0f / float(acc.count);
        for (float& v : acc.sum) v *= scale;
        acc.bias *= scale;
      }
      for (size_t r = 0; r < num_replicas; ++r) {
        nn::EmbeddingTable& table = table_of(r);
        for (const auto& [key, acc] : merged) {
          const uint32_t row = table.GetOrCreateRow(key);
          std::span<float> w = table.Row(row);
          std::copy(acc.sum.begin(), acc.sum.end(), w.begin());
          if (with_bias) table.set_bias(row, acc.bias);
        }
      }
    }
  }
  obs::MetricsRegistry::Global()
      .Histo("distributed.merge_us")
      .Record(merge_watch.ElapsedSeconds() * 1e6);
}

DistributedResult ParallelFvaeTrainer::Train(
    const MultiFieldDataset& dataset) {
  const size_t workers = config_.num_workers;
  replicas_.clear();

  std::unique_ptr<core::CheckpointManager> checkpointer;
  if (config_.checkpoint_every_rounds > 0 || config_.resume) {
    FVAE_CHECK(!config_.checkpoint_dir.empty())
        << "distributed checkpointing requires checkpoint_dir";
    core::CheckpointManagerOptions manager_options;
    manager_options.dir = config_.checkpoint_dir;
    manager_options.retain = config_.checkpoint_retain;
    checkpointer =
        std::make_unique<core::CheckpointManager>(manager_options);
  }

  // Resume: every replica restarts from the checkpointed post-barrier
  // model (loaded once per replica — FieldVae is non-copyable), giving a
  // consensus warm start at the saved round.
  size_t start_round = 0;
  size_t resumed_users = 0;
  if (config_.resume) {
    auto latest = core::CheckpointManager::LatestIn(config_.checkpoint_dir);
    if (latest.ok()) {
      auto loaded = checkpointer->LoadLatest();
      FVAE_CHECK(loaded.ok()) << "cannot resume from " << *latest << ": "
                              << loaded.status().ToString();
      FVAE_CHECK(loaded->has_cursor)
          << *latest << " has no training cursor to resume from";
      start_round = size_t(loaded->cursor.step);
      resumed_users = size_t(loaded->cursor.users_processed);
      replicas_.push_back(std::move(loaded->model));
      for (size_t r = 1; r < workers; ++r) {
        auto replica = core::LoadFieldVae(*latest);
        FVAE_CHECK(replica.ok()) << "cannot resume from " << *latest << ": "
                                 << replica.status().ToString();
        replicas_.push_back(std::move(replica).value());
      }
    } else {
      FVAE_LOG(INFO) << "no checkpoint to resume from in "
                     << config_.checkpoint_dir << ", starting fresh";
    }
  }
  if (replicas_.empty()) {
    for (size_t r = 0; r < workers; ++r) {
      // Identical dense init across replicas (same seed) so model averaging
      // starts from a consensus point.
      replicas_.push_back(
          std::make_unique<core::FieldVae>(model_config_, dataset.fields()));
    }
  }

  // Round-robin user shards.
  std::vector<std::vector<uint32_t>> shards(workers);
  for (uint32_t u = 0; u < dataset.num_users(); ++u) {
    shards[u % workers].push_back(u);
  }
  for (const auto& shard : shards) {
    FVAE_CHECK(!shard.empty()) << "more workers than users";
  }

  // Per-worker local batch iterators over shard-local indices.
  std::vector<BatchIterator> iterators;
  iterators.reserve(workers);
  for (size_t r = 0; r < workers; ++r) {
    iterators.emplace_back(shards[r].size(), config_.batch_size,
                           config_.seed + r);
  }

  DistributedResult result;
  Stopwatch watch;
  const size_t batches_per_epoch = iterators[0].BatchesPerEpoch();
  const size_t total_rounds =
      (config_.epochs * batches_per_epoch + config_.sync_every_batches - 1) /
      config_.sync_every_batches;

  // Replay the consumed batch schedule up to the resumed round: iterator
  // state is a pure function of the seed and the consumption pattern.
  if (start_round > 0) {
    std::vector<uint32_t> discard;
    for (size_t round = 0; round < start_round; ++round) {
      for (size_t r = 0; r < workers; ++r) {
        for (size_t step = 0; step < config_.sync_every_batches; ++step) {
          if (!iterators[r].Next(&discard)) {
            iterators[r].NewEpoch();
            if (!iterators[r].Next(&discard)) break;
          }
        }
      }
    }
  }

  {
    MutexLock lock(progress_mutex_);
    users_processed_ = resumed_users;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter& rounds_counter = metrics.Counter("distributed.rounds");
  LatencyHistogram& round_us_histo = metrics.Histo("distributed.round_us");
  for (size_t round = start_round; round < total_rounds; ++round) {
    Stopwatch round_watch;
    // One worker's share of the round (steps between barriers). Progress
    // accumulates locally and folds into the guarded counter once per
    // round, so the lock is off the training hot path.
    auto run_worker = [&](size_t r) {
      FVAE_TRACE_SCOPE("distributed.worker_round");
      std::vector<uint32_t> local, global;
      size_t worker_processed = 0;
      for (size_t step = 0; step < config_.sync_every_batches; ++step) {
        if (!iterators[r].Next(&local)) {
          iterators[r].NewEpoch();
          if (!iterators[r].Next(&local)) break;
        }
        global.clear();
        global.reserve(local.size());
        for (uint32_t idx : local) global.push_back(shards[r][idx]);
        const float beta =
            model_config_.beta *
            std::min(1.0f,
                     float(round * config_.sync_every_batches + step + 1) /
                         float(std::max<size_t>(
                             1, model_config_.anneal_steps)));
        replicas_[r]->TrainStep(dataset, global, beta);
        worker_processed += global.size();
      }
      obs::MetricsRegistry::Global()
          .Counter("distributed.users")
          .Add(worker_processed);
      MutexLock lock(progress_mutex_);
      users_processed_ += worker_processed;
    };

    if (config_.simulate_cluster) {
      // Discrete-event accounting: workers execute sequentially; the
      // modeled round time is the slowest worker (they would run in
      // parallel on a real cluster) plus the synchronization barrier.
      double max_busy = 0.0;
      for (size_t r = 0; r < workers; ++r) {
        Stopwatch busy;
        run_worker(r);
        max_busy = std::max(max_busy, busy.ElapsedSeconds());
      }
      Stopwatch sync;
      AverageReplicas();
      result.simulated_seconds += max_busy + sync.ElapsedSeconds();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (size_t r = 0; r < workers; ++r) {
        threads.emplace_back(run_worker, r);
      }
      for (std::thread& t : threads) t.join();
      AverageReplicas();
    }
    ++result.rounds;
    rounds_counter.Increment();
    round_us_histo.Record(round_watch.ElapsedSeconds() * 1e6);

    if (checkpointer != nullptr && config_.checkpoint_every_rounds > 0 &&
        (round + 1) % config_.checkpoint_every_rounds == 0) {
      // Post-barrier is the one moment a single model represents the run:
      // replica 0 carries the averaged parameters. The cursor's `step` is
      // the number of completed rounds.
      const core::FieldVae& snapshot = *replicas_[0];
      core::TrainingCursor cursor;
      cursor.step = round + 1;
      {
        MutexLock lock(progress_mutex_);
        cursor.users_processed = users_processed_;
      }
      cursor.shuffle_seed = config_.seed;
      cursor.model_rng = snapshot.rng_state();
      for (size_t k = 0; k < snapshot.num_fields(); ++k) {
        cursor.input_table_rng.push_back(
            snapshot.input_table(k).rng_state());
        cursor.output_table_rng.push_back(
            snapshot.output_table(k).rng_state());
      }
      const Status saved = checkpointer->Save(snapshot, cursor);
      // Same policy as TrainFvae: a failed save costs resumability only.
      if (!saved.ok()) {
        FVAE_LOG(WARNING) << "distributed checkpoint save failed: "
                          << saved.ToString();
      }
    }
  }

  result.seconds = watch.ElapsedSeconds();
  if (!config_.simulate_cluster) {
    result.simulated_seconds = result.seconds;
  }
  {
    MutexLock lock(progress_mutex_);
    result.users_processed = users_processed_;
  }
  return result;
}

}  // namespace fvae::distributed
