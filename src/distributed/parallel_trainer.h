#ifndef FVAE_DISTRIBUTED_PARALLEL_TRAINER_H_
#define FVAE_DISTRIBUTED_PARALLEL_TRAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/fvae_config.h"
#include "core/fvae_model.h"
#include "data/dataset.h"

namespace fvae::distributed {

/// Configuration of the simulated multi-server training run (paper §V-E3 /
/// Fig. 10; substitution documented in DESIGN.md §5).
struct DistributedConfig {
  /// Number of simulated training servers.
  size_t num_workers = 4;
  /// Local steps each worker runs between synchronization barriers.
  size_t sync_every_batches = 8;
  size_t epochs = 2;
  size_t batch_size = 256;
  /// true  — discrete-event cluster simulation: workers run sequentially
  ///         and the per-round wall clock is modeled as
  ///         max(worker busy time) + synchronization time. Gives faithful
  ///         scaling curves on any host, including single-core machines.
  /// false — real worker threads (requires >= num_workers cores for
  ///         meaningful speedup numbers).
  bool simulate_cluster = true;
  uint64_t seed = 77;
  /// Save a crash-safe checkpoint of the averaged model after every this
  /// many synchronization rounds (0 = never). Requires checkpoint_dir.
  /// Rounds are the only safe granularity: between barriers the replicas
  /// hold divergent state that no single checkpoint could capture.
  size_t checkpoint_every_rounds = 0;
  /// Directory for `checkpoint-<round>.fvmd` files (core/checkpoint.h).
  std::string checkpoint_dir;
  size_t checkpoint_retain = 3;
  /// Resume from the newest checkpoint in checkpoint_dir when one exists
  /// (otherwise start fresh). The batch schedule is replayed to the saved
  /// round, so the resumed run is deterministic — but unlike TrainFvae it
  /// is a warm start, not bitwise-identical: every worker restarts from
  /// the replica-0 post-barrier model, while an uninterrupted run's
  /// replicas keep private never-merged embedding rows.
  bool resume = false;
};

/// Outcome of a distributed run.
struct DistributedResult {
  /// Real elapsed time of the run.
  double seconds = 0.0;
  /// Modeled cluster time: with simulate_cluster, the sum over rounds of
  /// max(per-worker busy time) + sync time; otherwise equal to `seconds`.
  double simulated_seconds = 0.0;
  size_t users_processed = 0;
  size_t rounds = 0;

  double UsersPerSecond() const {
    return seconds > 0.0 ? double(users_processed) / seconds : 0.0;
  }
  /// Throughput of the modeled cluster — the Fig. 10 quantity.
  double SimulatedUsersPerSecond() const {
    return simulated_seconds > 0.0
               ? double(users_processed) / simulated_seconds
               : 0.0;
  }
};

/// Data-parallel FVAE training with periodic model averaging (local SGD).
///
/// Users are sharded round-robin across `num_workers` model replicas; each
/// worker runs `sync_every_batches` Algorithm-1 steps on its shard, then a
/// barrier averages the dense parameters and key-merges the embedding
/// tables across replicas. This mirrors the compute/communication profile
/// of the paper's multi-server setup: gradient work is embarrassingly
/// parallel and the synchronization cost is proportional to the model, not
/// the data — hence the near-linear speedup of Fig. 10.
class ParallelFvaeTrainer {
 public:
  ParallelFvaeTrainer(const core::FvaeConfig& model_config,
                      const DistributedConfig& config);

  /// Runs the distributed training to completion.
  DistributedResult Train(const MultiFieldDataset& dataset);

  /// The averaged model (replica 0) after Train.
  core::FieldVae& model();

 private:
  void AverageReplicas();

  core::FvaeConfig model_config_;
  DistributedConfig config_;
  std::vector<std::unique_ptr<core::FieldVae>> replicas_;
  /// Progress aggregated across worker threads: with simulate_cluster off,
  /// every worker folds its per-round user count in concurrently.
  Mutex progress_mutex_;
  size_t users_processed_ FVAE_GUARDED_BY(progress_mutex_) = 0;
};

}  // namespace fvae::distributed

#endif  // FVAE_DISTRIBUTED_PARALLEL_TRAINER_H_
