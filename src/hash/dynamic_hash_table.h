#ifndef FVAE_HASH_DYNAMIC_HASH_TABLE_H_
#define FVAE_HASH_DYNAMIC_HASH_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace fvae {

/// Dynamic hash table mapping raw 64-bit feature IDs to dense row indices
/// (paper §IV-C1).
///
/// This is the structure that lets the FVAE encoder handle an *open* feature
/// vocabulary: when an unseen feature ID arrives during training, it is
/// assigned the next dense index (the embedding row is then lazily created
/// by the embedding layer), so the model grows with the data instead of
/// suffering the collisions of static feature hashing.
///
/// Implementation: open addressing with linear probing, power-of-two
/// capacity, max load factor 0.7, incremental doubling. Dense indices are
/// assigned 0, 1, 2, ... in insertion order and are never reused, which is
/// exactly what an embedding table needs.
///
/// Thread-compatible: concurrent readers are safe only with no concurrent
/// writer; the trainers shard or lock externally.
class DynamicHashTable {
 public:
  /// `initial_capacity` is rounded up to a power of two (minimum 16).
  explicit DynamicHashTable(size_t initial_capacity = 16);

  /// Returns the dense index for `key`, inserting a fresh one if absent.
  uint32_t GetOrInsert(uint64_t key);

  /// Returns the dense index for `key` or nullopt when the key is unknown.
  std::optional<uint32_t> Find(uint64_t key) const;

  /// True iff `key` has been inserted.
  bool Contains(uint64_t key) const { return Find(key).has_value(); }

  /// Number of distinct keys inserted so far (== next dense index).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Current number of slots (for load-factor tests).
  size_t capacity() const { return slots_.size(); }

  /// All (key, index) pairs in unspecified order.
  std::vector<std::pair<uint64_t, uint32_t>> Items() const;

  /// Removes every entry; subsequent inserts restart dense indices at 0.
  void Clear();

 private:
  struct Slot {
    uint64_t key = kEmptyKey;
    uint32_t index = 0;
  };

  // Sentinel for unoccupied slots. A genuine key equal to the sentinel is
  // stored out-of-band (has_sentinel_key_), so any uint64 key is supported.
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  static uint64_t Mix(uint64_t key);
  void Grow();
  size_t ProbeStart(uint64_t mixed) const {
    return mixed & (slots_.size() - 1);
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  bool has_sentinel_key_ = false;
  uint32_t sentinel_index_ = 0;
};

}  // namespace fvae

#endif  // FVAE_HASH_DYNAMIC_HASH_TABLE_H_
