#ifndef FVAE_HASH_FEATURE_HASHING_H_
#define FVAE_HASH_FEATURE_HASHING_H_

#include <cstdint>
#include <vector>

namespace fvae {

/// Static feature hashing ("the hashing trick").
///
/// Maps raw 64-bit feature IDs to a fixed 2^bits bucket space. This is the
/// collision-prone alternative to DynamicHashTable discussed in the paper's
/// introduction and used by the Mult-VAE baseline at billion scale (the
/// paper maps KD/QB features to a 20-bit space for Mult-VAE, Table V
/// footnote). Collisions merge unrelated features and the bucket space
/// cannot grow with the data.
class FeatureHasher {
 public:
  /// `bits` in [1, 31]: bucket space size is 2^bits.
  explicit FeatureHasher(int bits);

  /// Bucket for a raw feature ID, in [0, num_buckets()).
  uint32_t Bucket(uint64_t feature_id) const;

  /// Bucket for a (field, feature) pair; fields get decorrelated streams.
  uint32_t Bucket(uint32_t field, uint64_t feature_id) const;

  uint32_t num_buckets() const { return num_buckets_; }
  int bits() const { return bits_; }

  /// Fraction of distinct IDs that collide with an earlier ID, measured over
  /// `ids` (diagnostic used in tests and the Table V harness).
  double CollisionRate(const std::vector<uint64_t>& ids) const;

 private:
  int bits_;
  uint32_t num_buckets_;
};

}  // namespace fvae

#endif  // FVAE_HASH_FEATURE_HASHING_H_
