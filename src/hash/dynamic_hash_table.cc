#include "hash/dynamic_hash_table.h"

#include <bit>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace fvae {

DynamicHashTable::DynamicHashTable(size_t initial_capacity) {
  size_t capacity = std::bit_ceil(std::max<size_t>(initial_capacity, 16));
  slots_.assign(capacity, Slot{});
}

uint64_t DynamicHashTable::Mix(uint64_t key) {
  // splitmix64 finalizer: full-avalanche mixing of the raw ID. Also remaps
  // the empty-slot sentinel onto a different probe sequence start.
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint32_t DynamicHashTable::GetOrInsert(uint64_t key) {
  if (key == kEmptyKey) {
    if (!has_sentinel_key_) {
      has_sentinel_key_ = true;
      sentinel_index_ = static_cast<uint32_t>(size_);
      ++size_;
    }
    return sentinel_index_;
  }
  if ((size_ + 1) * 10 > slots_.size() * 7) Grow();
  size_t pos = ProbeStart(Mix(key));
  for (;;) {
    Slot& slot = slots_[pos];
    if (slot.key == kEmptyKey) {
      slot.key = key;
      slot.index = static_cast<uint32_t>(size_);
      ++size_;
      static obs::Counter& inserts_counter =
          obs::MetricsRegistry::Global().Counter("hash.inserts");
      inserts_counter.Increment();
      return slot.index;
    }
    if (slot.key == key) return slot.index;
    pos = (pos + 1) & (slots_.size() - 1);
  }
}

std::optional<uint32_t> DynamicHashTable::Find(uint64_t key) const {
  if (key == kEmptyKey) {
    if (has_sentinel_key_) return sentinel_index_;
    return std::nullopt;
  }
  size_t pos = ProbeStart(Mix(key));
  for (;;) {
    const Slot& slot = slots_[pos];
    if (slot.key == kEmptyKey) return std::nullopt;
    if (slot.key == key) return slot.index;
    pos = (pos + 1) & (slots_.size() - 1);
  }
}

std::vector<std::pair<uint64_t, uint32_t>> DynamicHashTable::Items() const {
  std::vector<std::pair<uint64_t, uint32_t>> items;
  items.reserve(size_);
  for (const Slot& slot : slots_) {
    if (slot.key != kEmptyKey) items.emplace_back(slot.key, slot.index);
  }
  if (has_sentinel_key_) items.emplace_back(kEmptyKey, sentinel_index_);
  return items;
}

void DynamicHashTable::Clear() {
  for (Slot& slot : slots_) slot = Slot{};
  size_ = 0;
  has_sentinel_key_ = false;
  sentinel_index_ = 0;
}

void DynamicHashTable::Grow() {
  FVAE_TRACE_SCOPE("hash.grow");
  Stopwatch grow_watch;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  for (const Slot& slot : old) {
    if (slot.key == kEmptyKey) continue;
    size_t pos = ProbeStart(Mix(slot.key));
    while (slots_[pos].key != kEmptyKey) {
      pos = (pos + 1) & (slots_.size() - 1);
    }
    slots_[pos] = slot;
  }
  // Tables are per-field, so the gauges reflect the most recently grown
  // table — a live sample of vocabulary growth, not a process-wide sum.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Counter("hash.grows").Increment();
  metrics.Histo("hash.grow_us").Record(grow_watch.ElapsedSeconds() * 1e6);
  metrics.Gauge("hash.size").Set(double(size_));
  metrics.Gauge("hash.capacity").Set(double(slots_.size()));
  metrics.Gauge("hash.load_factor")
      .Set(double(size_) / double(slots_.size()));
}

}  // namespace fvae
