#include "hash/feature_hashing.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace fvae {

namespace {
inline uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

FeatureHasher::FeatureHasher(int bits) : bits_(bits) {
  // bits == 32 would overflow uint32_t (2^32 buckets); 31 is plenty.
  FVAE_CHECK(bits >= 1 && bits <= 31) << "bits out of range: " << bits;
  num_buckets_ = static_cast<uint32_t>(1u << bits);
}

uint32_t FeatureHasher::Bucket(uint64_t feature_id) const {
  return static_cast<uint32_t>(Mix64(feature_id) >> (64 - bits_));
}

uint32_t FeatureHasher::Bucket(uint32_t field, uint64_t feature_id) const {
  // Fold the field into the key so identical raw IDs in different fields
  // hash independently.
  const uint64_t combined =
      Mix64(feature_id) ^ (Mix64(field) * 0xC2B2AE3D27D4EB4FULL);
  return static_cast<uint32_t>(Mix64(combined) >> (64 - bits_));
}

double FeatureHasher::CollisionRate(const std::vector<uint64_t>& ids) const {
  if (ids.empty()) return 0.0;
  std::vector<uint32_t> buckets;
  buckets.reserve(ids.size());
  for (uint64_t id : ids) buckets.push_back(Bucket(id));
  std::sort(buckets.begin(), buckets.end());
  size_t collisions = 0;
  for (size_t i = 1; i < buckets.size(); ++i) {
    if (buckets[i] == buckets[i - 1]) ++collisions;
  }
  return double(collisions) / double(ids.size());
}

}  // namespace fvae
