#include "nn/dense.h"

#include "common/check.h"

namespace fvae::nn {

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Rng& rng)
    : weight_(Matrix::XavierUniform(in_dim, out_dim, rng)),
      bias_(1, out_dim),
      weight_grad_(in_dim, out_dim),
      bias_grad_(1, out_dim) {}

void DenseLayer::Forward(const Matrix& input, Matrix* output, bool training) {
  FVAE_CHECK(input.cols() == weight_.rows())
      << "dense input dim " << input.cols() << " != " << weight_.rows();
  Gemm(input, weight_, output);
  for (size_t r = 0; r < output->rows(); ++r) {
    float* row = output->Row(r);
    const float* b = bias_.Row(0);
    for (size_t c = 0; c < output->cols(); ++c) row[c] += b[c];
  }
  // Cached unconditionally: Backward is valid after any forward pass
  // (`training` only gates stochastic layers). The copy-assign reuses
  // capacity, so a warmed-up inference pass stays allocation-free.
  (void)training;
  cached_input_ = input;
}

void DenseLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  FVAE_CHECK(grad_output.rows() == cached_input_.rows())
      << "backward batch mismatch";
  FVAE_CHECK(grad_output.cols() == weight_.cols()) << "backward dim mismatch";
  // dW = X^T dY ; db = colsum(dY) ; dX = dY W^T.
  GemmTN(cached_input_, grad_output, &weight_grad_);
  bias_grad_.SetZero();
  for (size_t r = 0; r < grad_output.rows(); ++r) {
    const float* row = grad_output.Row(r);
    float* b = bias_grad_.Row(0);
    for (size_t c = 0; c < grad_output.cols(); ++c) b[c] += row[c];
  }
  if (grad_input != nullptr) {
    GemmNT(grad_output, weight_, grad_input);
  }
}

void DenseLayer::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({&weight_, &weight_grad_});
  out->push_back({&bias_, &bias_grad_});
}

}  // namespace fvae::nn
