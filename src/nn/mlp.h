#ifndef FVAE_NN_MLP_H_
#define FVAE_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "nn/dense.h"
#include "nn/layer.h"

namespace fvae::nn {

/// Supported nonlinearities for Mlp construction.
enum class Activation { kTanh, kRelu, kSigmoid, kNone };

/// Multilayer perceptron: alternating DenseLayer + activation. By default
/// the activation is omitted after the final dense layer (linear output —
/// callers attach their own likelihood head); pass activate_output = true
/// for hidden trunks whose output feeds further layers.
///
/// The models in core/ and baselines/ use Mlp for the encoder trunk, the
/// decoder trunk, and the dense heads.
class Mlp : public Layer {
 public:
  /// `dims` = {in, h1, ..., out} with at least two entries.
  Mlp(const std::vector<size_t>& dims, Activation activation, Rng& rng,
      bool activate_output = false);

  void Forward(const Matrix& input, Matrix* output, bool training) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  void CollectParams(std::vector<ParamRef>* out) override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  size_t num_dense_layers() const { return num_dense_; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Matrix> activations_;  // outputs of each layer
  size_t in_dim_;
  size_t out_dim_;
  size_t num_dense_ = 0;
};

}  // namespace fvae::nn

#endif  // FVAE_NN_MLP_H_
