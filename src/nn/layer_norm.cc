#include "nn/layer_norm.h"

#include <cmath>

#include "common/check.h"

namespace fvae::nn {

LayerNorm::LayerNorm(size_t dim, float epsilon)
    : epsilon_(epsilon),
      gain_(1, dim, 1.0f),
      bias_(1, dim),
      gain_grad_(1, dim),
      bias_grad_(1, dim) {
  FVAE_CHECK(dim > 0);
  FVAE_CHECK(epsilon > 0.0f);
}

void LayerNorm::Forward(const Matrix& input, Matrix* output, bool training) {
  (void)training;
  const size_t dim = gain_.cols();
  FVAE_CHECK(input.cols() == dim) << "layer-norm dim mismatch";
  const size_t batch = input.rows();
  output->Resize(batch, dim);
  normalized_.Resize(batch, dim);
  // Within-capacity resize: reallocates only while batch is still growing
  // toward its high-water mark, so a warmed-up forward is allocation-free.
  inv_std_.resize(batch);  // fvae-lint: allow(hot-alloc)

  for (size_t i = 0; i < batch; ++i) {
    const float* x = input.Row(i);
    double mean = 0.0;
    for (size_t d = 0; d < dim; ++d) mean += x[d];
    mean /= double(dim);
    double var = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = x[d] - mean;
      var += diff * diff;
    }
    var /= double(dim);
    const float inv_std = 1.0f / std::sqrt(float(var) + epsilon_);
    inv_std_[i] = inv_std;
    float* n = normalized_.Row(i);
    float* y = output->Row(i);
    const float* g = gain_.Row(0);
    const float* b = bias_.Row(0);
    for (size_t d = 0; d < dim; ++d) {
      n[d] = (x[d] - float(mean)) * inv_std;
      y[d] = g[d] * n[d] + b[d];
    }
  }
}

void LayerNorm::Backward(const Matrix& grad_output, Matrix* grad_input) {
  const size_t dim = gain_.cols();
  const size_t batch = normalized_.rows();
  FVAE_CHECK(grad_output.rows() == batch && grad_output.cols() == dim)
      << "layer-norm backward shape";

  gain_grad_.SetZero();
  bias_grad_.SetZero();
  if (grad_input != nullptr) grad_input->Resize(batch, dim);

  for (size_t i = 0; i < batch; ++i) {
    const float* dy = grad_output.Row(i);
    const float* n = normalized_.Row(i);
    const float* g = gain_.Row(0);
    float* gg = gain_grad_.Row(0);
    float* bg = bias_grad_.Row(0);

    // Parameter gradients.
    for (size_t d = 0; d < dim; ++d) {
      gg[d] += dy[d] * n[d];
      bg[d] += dy[d];
    }
    if (grad_input == nullptr) continue;

    // dx = (inv_std / dim) * (dim * h - sum(h) - n * sum(h ⊙ n)),
    // where h = dy ⊙ gain.
    double sum_h = 0.0, sum_hn = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double h = double(dy[d]) * g[d];
      sum_h += h;
      sum_hn += h * n[d];
    }
    float* dx = grad_input->Row(i);
    const float scale = inv_std_[i] / float(dim);
    for (size_t d = 0; d < dim; ++d) {
      const double h = double(dy[d]) * g[d];
      dx[d] = scale * static_cast<float>(double(dim) * h - sum_h -
                                         double(n[d]) * sum_hn);
    }
  }
}

void LayerNorm::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({&gain_, &gain_grad_});
  out->push_back({&bias_, &bias_grad_});
}

}  // namespace fvae::nn
