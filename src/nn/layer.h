#ifndef FVAE_NN_LAYER_H_
#define FVAE_NN_LAYER_H_

#include <vector>

#include "math/matrix.h"

namespace fvae::nn {

/// A trainable parameter: value plus its gradient, both owned by a layer.
struct ParamRef {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

/// A differentiable transformation over mini-batches (rows = examples).
///
/// Contract: Backward must be called after Forward with the same batch, and
/// consumes the activations Forward cached. Backward *sets* (not
/// accumulates) parameter gradients; one optimizer Step per Forward/Backward
/// pair.
class Layer {
 public:
  virtual ~Layer() = default;

  /// output = f(input). `training` enables stochastic behaviour (dropout).
  virtual void Forward(const Matrix& input, Matrix* output, bool training) = 0;

  /// grad_input = df/dinput^T grad_output; also fills parameter gradients.
  /// `grad_input` may be null when the input gradient is not needed (first
  /// layer of a network).
  virtual void Backward(const Matrix& grad_output, Matrix* grad_input) = 0;

  /// Appends this layer's trainable parameters to `out`.
  virtual void CollectParams(std::vector<ParamRef>* out) { (void)out; }
};

}  // namespace fvae::nn

#endif  // FVAE_NN_LAYER_H_
