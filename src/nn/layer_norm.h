#ifndef FVAE_NN_LAYER_NORM_H_
#define FVAE_NN_LAYER_NORM_H_

#include "math/matrix.h"
#include "nn/layer.h"

namespace fvae::nn {

/// Layer normalization (Ba et al. 2016): per example,
///   y = gain ⊙ (x - mean(x)) / sqrt(var(x) + eps) + bias.
/// RecVAE's published encoder uses it between dense blocks; provided here
/// as a standard building block with trainable gain/bias.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(size_t dim, float epsilon = 1e-5f);

  void Forward(const Matrix& input, Matrix* output, bool training) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  void CollectParams(std::vector<ParamRef>* out) override;

  size_t dim() const { return gain_.cols(); }

  Matrix& gain() { return gain_; }
  Matrix& bias() { return bias_; }

 private:
  float epsilon_;
  Matrix gain_;   // 1 x dim, init 1
  Matrix bias_;   // 1 x dim, init 0
  Matrix gain_grad_;
  Matrix bias_grad_;
  // Forward caches.
  Matrix normalized_;          // (x - mu) / sigma
  std::vector<float> inv_std_;  // per row
};

}  // namespace fvae::nn

#endif  // FVAE_NN_LAYER_NORM_H_
