#include "nn/losses.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "math/kernels/kernel_table.h"
#include "math/vector_ops.h"

namespace fvae::nn {

double GaussianKl(const Matrix& mu, const Matrix& logvar) {
  FVAE_CHECK(mu.rows() == logvar.rows() && mu.cols() == logvar.cols())
      << "KL shape mismatch";
  FVAE_CHECK(mu.rows() > 0);
  double total = 0.0;
  for (size_t i = 0; i < mu.size(); ++i) {
    const double m = mu.data()[i];
    const double lv = logvar.data()[i];
    total += -0.5 * (1.0 + lv - m * m - std::exp(lv));
  }
  return total / double(mu.rows());
}

void GaussianKlBackward(const Matrix& mu, const Matrix& logvar, float weight,
                        Matrix* mu_grad, Matrix* logvar_grad) {
  FVAE_CHECK(mu_grad->rows() == mu.rows() && mu_grad->cols() == mu.cols())
      << "mu grad shape mismatch";
  FVAE_CHECK(logvar_grad->rows() == logvar.rows() &&
             logvar_grad->cols() == logvar.cols())
      << "logvar grad shape mismatch";
  for (size_t i = 0; i < mu.size(); ++i) {
    mu_grad->data()[i] += weight * mu.data()[i];
    logvar_grad->data()[i] +=
        weight * 0.5f * (std::exp(logvar.data()[i]) - 1.0f);
  }
}

double MultinomialNll(std::span<const float> logits,
                      std::span<const float> counts, std::span<float> grad) {
  FVAE_CHECK(logits.size() == counts.size()) << "logits/counts mismatch";
  FVAE_CHECK(grad.size() == logits.size()) << "grad size mismatch";
  if (logits.empty()) return 0.0;

  // Stable log-softmax.
  std::vector<float> log_probs(logits.begin(), logits.end());
  LogSoftmaxInPlace(log_probs);

  double total_count = 0.0;
  double loss = 0.0;
  for (size_t j = 0; j < counts.size(); ++j) {
    total_count += counts[j];
    loss -= double(counts[j]) * log_probs[j];
  }
  // grad = total_count * softmax - counts, via the ISA-dispatched kernel.
  // Candidates whose softmax mass underflows below FLT_MIN are flushed to
  // exactly zero there, so the gradient never feeds subnormal garbage into
  // the optimizer even when FVAE_FTZ=0.
  Kernels().multinomial_grad(log_probs.data(), counts.data(),
                             static_cast<float>(total_count), grad.data(),
                             grad.size());
  return loss;
}

double MultinomialNll(std::span<const float> logits,
                      std::span<const float> counts) {
  FVAE_CHECK(logits.size() == counts.size()) << "logits/counts mismatch";
  if (logits.empty()) return 0.0;
  std::vector<float> log_probs(logits.begin(), logits.end());
  LogSoftmaxInPlace(log_probs);
  double loss = 0.0;
  for (size_t j = 0; j < counts.size(); ++j) {
    loss -= double(counts[j]) * log_probs[j];
  }
  return loss;
}

}  // namespace fvae::nn
