#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace fvae::nn {

SgdOptimizer::SgdOptimizer(std::vector<ParamRef> params, float learning_rate,
                           float momentum)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  FVAE_CHECK(learning_rate > 0.0f);
  FVAE_CHECK(momentum >= 0.0f && momentum < 1.0f);
  velocity_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    velocity_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& value = *params_[i].value;
    Matrix& grad = *params_[i].grad;
    Matrix& vel = velocity_[i];
    FVAE_CHECK(grad.rows() == value.rows() && grad.cols() == value.cols())
        << "gradient shape mismatch";
    if (momentum_ > 0.0f) {
      for (size_t j = 0; j < value.size(); ++j) {
        vel.data()[j] = momentum_ * vel.data()[j] + grad.data()[j];
        value.data()[j] -= learning_rate_ * vel.data()[j];
      }
    } else {
      for (size_t j = 0; j < value.size(); ++j) {
        value.data()[j] -= learning_rate_ * grad.data()[j];
      }
    }
    grad.SetZero();
  }
}

AdamOptimizer::AdamOptimizer(std::vector<ParamRef> params,
                             float learning_rate, float beta1, float beta2,
                             float epsilon)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  FVAE_CHECK(learning_rate > 0.0f);
  FVAE_CHECK(beta1 >= 0.0f && beta1 < 1.0f);
  FVAE_CHECK(beta2 >= 0.0f && beta2 < 1.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void AdamOptimizer::RestoreState(int64_t step_count, std::vector<Matrix> m,
                                 std::vector<Matrix> v) {
  FVAE_CHECK(step_count >= 0);
  FVAE_CHECK(m.size() == params_.size() && v.size() == params_.size())
      << "optimizer moment count mismatch";
  for (size_t i = 0; i < params_.size(); ++i) {
    const Matrix& value = *params_[i].value;
    FVAE_CHECK(m[i].rows() == value.rows() && m[i].cols() == value.cols() &&
               v[i].rows() == value.rows() && v[i].cols() == value.cols())
        << "optimizer moment shape mismatch";
  }
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

void AdamOptimizer::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, float(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, float(step_count_));
  const float alpha = learning_rate_ * std::sqrt(bias2) / bias1;
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix& value = *params_[i].value;
    Matrix& grad = *params_[i].grad;
    FVAE_CHECK(grad.rows() == value.rows() && grad.cols() == value.cols())
        << "gradient shape mismatch";
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (size_t j = 0; j < value.size(); ++j) {
      const float g = grad.data()[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      value.data()[j] -= alpha * m[j] / (std::sqrt(v[j]) + epsilon_);
    }
    grad.SetZero();
  }
}

}  // namespace fvae::nn
