#include "nn/mlp.h"

#include "common/check.h"
#include "nn/activations.h"

namespace fvae::nn {

namespace {
std::unique_ptr<Layer> MakeActivation(Activation activation) {
  switch (activation) {
    case Activation::kTanh:
      return std::make_unique<TanhLayer>();
    case Activation::kRelu:
      return std::make_unique<ReluLayer>();
    case Activation::kSigmoid:
      return std::make_unique<SigmoidLayer>();
    case Activation::kNone:
      return nullptr;
  }
  return nullptr;
}
}  // namespace

Mlp::Mlp(const std::vector<size_t>& dims, Activation activation, Rng& rng,
         bool activate_output) {
  FVAE_CHECK(dims.size() >= 2) << "Mlp needs at least input and output dims";
  in_dim_ = dims.front();
  out_dim_ = dims.back();
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<DenseLayer>(dims[i], dims[i + 1], rng));
    ++num_dense_;
    const bool is_last = i + 2 == dims.size();
    if (!is_last || activate_output) {
      auto act = MakeActivation(activation);
      if (act != nullptr) layers_.push_back(std::move(act));
    }
  }
}

void Mlp::Forward(const Matrix& input, Matrix* output, bool training) {
  // Fixed-size after the first pass (layer count never changes), so this
  // is a no-op on every warmed-up call.
  activations_.resize(layers_.size());  // fvae-lint: allow(hot-alloc)
  const Matrix* current = &input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->Forward(*current, &activations_[i], training);
    current = &activations_[i];
  }
  *output = *current;  // capacity-reusing copy once *output has seen the shape
}

void Mlp::Backward(const Matrix& grad_output, Matrix* grad_input) {
  FVAE_CHECK(!layers_.empty());
  Matrix grad = grad_output;
  Matrix next;
  for (size_t i = layers_.size(); i-- > 0;) {
    const bool need_input_grad = (i > 0) || (grad_input != nullptr);
    layers_[i]->Backward(grad, need_input_grad ? &next : nullptr);
    if (need_input_grad) grad = std::move(next);
  }
  if (grad_input != nullptr) *grad_input = std::move(grad);
}

void Mlp::CollectParams(std::vector<ParamRef>* out) {
  for (auto& layer : layers_) layer->CollectParams(out);
}

}  // namespace fvae::nn
