#ifndef FVAE_NN_EMBEDDING_H_
#define FVAE_NN_EMBEDDING_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "hash/dynamic_hash_table.h"

namespace fvae::nn {

/// Growable per-feature parameter store backed by a DynamicHashTable
/// (paper §IV-C1).
///
/// Each raw 64-bit feature ID owns one dense row of `dim` floats (plus an
/// optional scalar bias). Rows are created lazily the first time an ID is
/// touched, with N(0, init_stddev^2) entries — this is exactly the paper's
/// "weights of this ID are randomly initialized and pushed into the hash
/// table" behaviour, and is what lets the model absorb new features during
/// training without a fixed vocabulary.
///
/// The table doubles as (a) the encoder's first-layer weights (embedding
/// sum over a user's features) and (b) each decoder field head's output
/// weights (one logit row per candidate feature).
///
/// Training uses sparse AdaGrad: gradients are accumulated per touched row
/// and applied in ApplyGradients, which also clears the accumulation state.
class EmbeddingTable {
 public:
  /// `dim` > 0; `with_bias` adds a scalar bias per row.
  EmbeddingTable(size_t dim, bool with_bias, float init_stddev,
                 uint64_t seed);

  /// Dense row index for `key`, creating and initializing it if new.
  uint32_t GetOrCreateRow(uint64_t key);

  /// Dense row index for `key`, or nullopt for unseen keys.
  std::optional<uint32_t> FindRow(uint64_t key) const;

  /// Row weight vectors.
  std::span<float> Row(uint32_t row);
  std::span<const float> Row(uint32_t row) const;

  float bias(uint32_t row) const;
  void set_bias(uint32_t row, float value);

  size_t num_rows() const { return hash_.size(); }
  size_t dim() const { return dim_; }
  bool with_bias() const { return with_bias_; }

  /// Accumulates a gradient contribution for a row (and its bias).
  void AccumulateGrad(uint32_t row, std::span<const float> grad,
                      float bias_grad = 0.0f);

  /// AdaGrad update over all rows touched since the last call, then resets
  /// the accumulated gradients. `epsilon` guards the adaptive denominator.
  void ApplyGradients(float learning_rate, float epsilon = 1e-8f);

  /// Rows touched by AccumulateGrad since the last ApplyGradients (for
  /// tests and for the distributed trainer's gradient exchange).
  const std::vector<uint32_t>& touched_rows() const { return touched_; }

  /// Direct access to accumulated row gradient (valid for touched rows).
  std::span<const float> RowGrad(uint32_t row) const;

  /// All (key, row) pairs currently in the table (distributed merging).
  std::vector<std::pair<uint64_t, uint32_t>> Items() const {
    return hash_.Items();
  }

  /// Raw key that owns `row` (rows are created in insertion order).
  uint64_t KeyOfRow(uint32_t row) const;

  /// Rows modified by ApplyGradients since the last TakeDirtyRows call.
  /// The distributed trainer uses this for delta synchronization: only
  /// rows that actually changed are exchanged between replicas.
  std::vector<uint32_t> TakeDirtyRows();

  /// AdaGrad accumulator row, for checkpointing (core/model_io.h).
  std::span<const float> AdagradRow(uint32_t row) const;
  float adagrad_bias(uint32_t row) const;

  /// Restores a row's checkpointed AdaGrad accumulators so resumed
  /// training takes the same adaptive step sizes as the original run.
  void RestoreAdagradRow(uint32_t row, std::span<const float> accum,
                         float bias_accum);

  /// Snapshot/restore of the row-initializer RNG, so rows created after a
  /// resume draw the same values the uninterrupted run would have.
  RngState rng_state() const { return rng_.GetState(); }
  void set_rng_state(const RngState& state) { rng_.SetState(state); }

 private:
  void EnsureCapacity(uint32_t row);

  size_t dim_;
  bool with_bias_;
  float init_stddev_;
  Rng rng_;
  DynamicHashTable hash_;
  std::vector<float> weights_;       // num_rows x dim
  std::vector<float> biases_;        // num_rows (if with_bias_)
  std::vector<float> adagrad_;       // num_rows x dim accumulators
  std::vector<float> adagrad_bias_;  // num_rows
  // Sparse gradient accumulation.
  std::vector<float> grad_;          // num_rows x dim (zeroed when untouched)
  std::vector<float> grad_bias_;
  std::vector<uint32_t> touched_;
  std::vector<bool> is_touched_;
  std::vector<uint64_t> keys_;       // row -> raw key
  std::vector<uint32_t> dirty_;      // rows updated since TakeDirtyRows
  std::vector<bool> is_dirty_;
};

}  // namespace fvae::nn

#endif  // FVAE_NN_EMBEDDING_H_
