#include "nn/activations.h"

#include <cmath>

#include "common/check.h"

namespace fvae::nn {

void TanhLayer::Forward(const Matrix& input, Matrix* output, bool training) {
  *output = input;
  for (size_t i = 0; i < output->size(); ++i) {
    output->data()[i] = std::tanh(output->data()[i]);
  }
  // Cached unconditionally: Backward is valid after any forward pass
  // (`training` only gates stochastic layers). Capacity-reusing once warm.
  (void)training;
  cached_output_ = *output;
}

void TanhLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  if (grad_input == nullptr) return;
  FVAE_CHECK(grad_output.rows() == cached_output_.rows() &&
             grad_output.cols() == cached_output_.cols())
      << "tanh backward shape mismatch";
  grad_input->Resize(grad_output.rows(), grad_output.cols());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    const float y = cached_output_.data()[i];
    grad_input->data()[i] = grad_output.data()[i] * (1.0f - y * y);
  }
}

void ReluLayer::Forward(const Matrix& input, Matrix* output, bool training) {
  *output = input;
  for (size_t i = 0; i < output->size(); ++i) {
    if (output->data()[i] < 0.0f) output->data()[i] = 0.0f;
  }
  (void)training;
  cached_output_ = *output;
}

void ReluLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  if (grad_input == nullptr) return;
  FVAE_CHECK(grad_output.size() == cached_output_.size())
      << "relu backward shape mismatch";
  grad_input->Resize(grad_output.rows(), grad_output.cols());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    grad_input->data()[i] =
        cached_output_.data()[i] > 0.0f ? grad_output.data()[i] : 0.0f;
  }
}

void SigmoidLayer::Forward(const Matrix& input, Matrix* output,
                           bool training) {
  *output = input;
  for (size_t i = 0; i < output->size(); ++i) {
    output->data()[i] = 1.0f / (1.0f + std::exp(-output->data()[i]));
  }
  (void)training;
  cached_output_ = *output;
}

void SigmoidLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  if (grad_input == nullptr) return;
  FVAE_CHECK(grad_output.size() == cached_output_.size())
      << "sigmoid backward shape mismatch";
  grad_input->Resize(grad_output.rows(), grad_output.cols());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    const float y = cached_output_.data()[i];
    grad_input->data()[i] = grad_output.data()[i] * y * (1.0f - y);
  }
}

DropoutLayer::DropoutLayer(double drop_prob, uint64_t seed)
    : drop_prob_(drop_prob), rng_(seed) {
  FVAE_CHECK(drop_prob >= 0.0 && drop_prob < 1.0)
      << "drop probability out of range: " << drop_prob;
}

void DropoutLayer::Forward(const Matrix& input, Matrix* output,
                           bool training) {
  last_training_ = training;
  *output = input;
  if (!training || drop_prob_ == 0.0) return;
  mask_.Resize(input.rows(), input.cols());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - drop_prob_));
  for (size_t i = 0; i < input.size(); ++i) {
    const float m = rng_.Bernoulli(drop_prob_) ? 0.0f : keep_scale;
    mask_.data()[i] = m;
    output->data()[i] *= m;
  }
}

void DropoutLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  if (grad_input == nullptr) return;
  *grad_input = grad_output;
  if (!last_training_ || drop_prob_ == 0.0) return;
  FVAE_CHECK(grad_output.size() == mask_.size())
      << "dropout backward shape mismatch";
  for (size_t i = 0; i < grad_output.size(); ++i) {
    grad_input->data()[i] *= mask_.data()[i];
  }
}

}  // namespace fvae::nn
