#ifndef FVAE_NN_DENSE_H_
#define FVAE_NN_DENSE_H_

#include "common/random.h"
#include "math/matrix.h"
#include "nn/layer.h"

namespace fvae::nn {

/// Fully connected layer: output = input * W + b.
/// W has shape (in_dim x out_dim), b is a (1 x out_dim) row vector.
class DenseLayer : public Layer {
 public:
  DenseLayer(size_t in_dim, size_t out_dim, Rng& rng);

  void Forward(const Matrix& input, Matrix* output, bool training) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  void CollectParams(std::vector<ParamRef>* out) override;

  size_t in_dim() const { return weight_.rows(); }
  size_t out_dim() const { return weight_.cols(); }

  Matrix& weight() { return weight_; }
  const Matrix& weight() const { return weight_; }
  Matrix& bias() { return bias_; }
  const Matrix& bias() const { return bias_; }

 private:
  Matrix weight_;
  Matrix bias_;
  Matrix weight_grad_;
  Matrix bias_grad_;
  Matrix cached_input_;
};

}  // namespace fvae::nn

#endif  // FVAE_NN_DENSE_H_
