#include "nn/embedding.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fvae::nn {

EmbeddingTable::EmbeddingTable(size_t dim, bool with_bias, float init_stddev,
                               uint64_t seed)
    : dim_(dim), with_bias_(with_bias), init_stddev_(init_stddev),
      rng_(seed) {
  FVAE_CHECK(dim > 0) << "embedding dim must be positive";
  FVAE_CHECK(init_stddev >= 0.0f) << "negative init stddev";
}

uint32_t EmbeddingTable::GetOrCreateRow(uint64_t key) {
  const size_t before = hash_.size();
  const uint32_t row = hash_.GetOrInsert(key);
  if (hash_.size() > before) {
    EnsureCapacity(row);
    FVAE_CHECK(keys_.size() == row) << "row/key bookkeeping out of sync";
    keys_.push_back(key);
    float* w = weights_.data() + size_t(row) * dim_;
    for (size_t d = 0; d < dim_; ++d) {
      w[d] = static_cast<float>(rng_.Normal(0.0, init_stddev_));
    }
  }
  return row;
}

uint64_t EmbeddingTable::KeyOfRow(uint32_t row) const {
  FVAE_CHECK(row < keys_.size()) << "row out of range";
  return keys_[row];
}

std::vector<uint32_t> EmbeddingTable::TakeDirtyRows() {
  std::vector<uint32_t> out = std::move(dirty_);
  dirty_.clear();
  for (uint32_t row : out) is_dirty_[row] = false;
  return out;
}

std::optional<uint32_t> EmbeddingTable::FindRow(uint64_t key) const {
  return hash_.Find(key);
}

std::span<float> EmbeddingTable::Row(uint32_t row) {
  FVAE_CHECK(row < num_rows()) << "row out of range";
  return {weights_.data() + size_t(row) * dim_, dim_};
}

std::span<const float> EmbeddingTable::Row(uint32_t row) const {
  FVAE_CHECK(row < num_rows()) << "row out of range";
  return {weights_.data() + size_t(row) * dim_, dim_};
}

float EmbeddingTable::bias(uint32_t row) const {
  FVAE_CHECK(with_bias_ && row < num_rows());
  return biases_[row];
}

void EmbeddingTable::set_bias(uint32_t row, float value) {
  FVAE_CHECK(with_bias_ && row < num_rows());
  biases_[row] = value;
}

void EmbeddingTable::AccumulateGrad(uint32_t row, std::span<const float> grad,
                                    float bias_grad) {
  FVAE_CHECK(row < num_rows()) << "row out of range";
  FVAE_CHECK(grad.size() == dim_) << "gradient dim mismatch";
  if (!is_touched_[row]) {
    is_touched_[row] = true;
    touched_.push_back(row);
  }
  float* g = grad_.data() + size_t(row) * dim_;
  for (size_t d = 0; d < dim_; ++d) g[d] += grad[d];
  if (with_bias_) grad_bias_[row] += bias_grad;
}

void EmbeddingTable::ApplyGradients(float learning_rate, float epsilon) {
  for (uint32_t row : touched_) {
    if (!is_dirty_[row]) {
      is_dirty_[row] = true;
      dirty_.push_back(row);
    }
    float* w = weights_.data() + size_t(row) * dim_;
    float* g = grad_.data() + size_t(row) * dim_;
    float* acc = adagrad_.data() + size_t(row) * dim_;
    for (size_t d = 0; d < dim_; ++d) {
      acc[d] += g[d] * g[d];
      w[d] -= learning_rate * g[d] / (std::sqrt(acc[d]) + epsilon);
      g[d] = 0.0f;
    }
    if (with_bias_) {
      const float gb = grad_bias_[row];
      adagrad_bias_[row] += gb * gb;
      biases_[row] -=
          learning_rate * gb / (std::sqrt(adagrad_bias_[row]) + epsilon);
      grad_bias_[row] = 0.0f;
    }
    is_touched_[row] = false;
  }
  touched_.clear();
}

std::span<const float> EmbeddingTable::AdagradRow(uint32_t row) const {
  FVAE_CHECK(row < num_rows());
  return {adagrad_.data() + size_t(row) * dim_, dim_};
}

float EmbeddingTable::adagrad_bias(uint32_t row) const {
  FVAE_CHECK(with_bias_ && row < num_rows());
  return adagrad_bias_[row];
}

void EmbeddingTable::RestoreAdagradRow(uint32_t row,
                                       std::span<const float> accum,
                                       float bias_accum) {
  FVAE_CHECK(row < num_rows());
  FVAE_CHECK(accum.size() == dim_) << "accumulator dim mismatch";
  float* acc = adagrad_.data() + size_t(row) * dim_;
  std::copy(accum.begin(), accum.end(), acc);
  if (with_bias_) adagrad_bias_[row] = bias_accum;
}

std::span<const float> EmbeddingTable::RowGrad(uint32_t row) const {
  FVAE_CHECK(row < num_rows());
  return {grad_.data() + size_t(row) * dim_, dim_};
}

void EmbeddingTable::EnsureCapacity(uint32_t row) {
  const size_t needed = (size_t(row) + 1) * dim_;
  if (weights_.size() < needed) {
    weights_.resize(needed, 0.0f);
    adagrad_.resize(needed, 0.0f);
    grad_.resize(needed, 0.0f);
  }
  if (is_touched_.size() < size_t(row) + 1) {
    is_touched_.resize(size_t(row) + 1, false);
    is_dirty_.resize(size_t(row) + 1, false);
  }
  if (with_bias_ && biases_.size() < size_t(row) + 1) {
    biases_.resize(size_t(row) + 1, 0.0f);
    adagrad_bias_.resize(size_t(row) + 1, 0.0f);
    grad_bias_.resize(size_t(row) + 1, 0.0f);
  }
}

}  // namespace fvae::nn
