#ifndef FVAE_NN_LOSSES_H_
#define FVAE_NN_LOSSES_H_

#include <span>

#include "math/matrix.h"

namespace fvae::nn {

/// KL(q || p) between the diagonal Gaussian q = N(mu, diag(exp(logvar)))
/// and the standard normal prior p = N(0, I), summed over dimensions and
/// averaged over the batch.
///
/// Forward value:  KL = -0.5 * sum(1 + logvar - mu^2 - exp(logvar)).
/// Gradients (per element, before the 1/batch factor the caller applies):
///   d/dmu     = mu
///   d/dlogvar = 0.5 * (exp(logvar) - 1)
double GaussianKl(const Matrix& mu, const Matrix& logvar);

/// Writes the KL gradients scaled by `weight` into the (already correctly
/// sized) gradient matrices, *accumulating* into them.
void GaussianKlBackward(const Matrix& mu, const Matrix& logvar, float weight,
                        Matrix* mu_grad, Matrix* logvar_grad);

/// Multinomial negative log-likelihood over a candidate set.
///
/// `logits` are unnormalized scores for C candidates; `counts` are the
/// observed counts for the same candidates (target distribution). Computes
/// -sum_j counts[j] * log softmax(logits)[j], and writes the gradient wrt
/// the logits into `grad` (resized to C):
///    grad[j] = N * softmax(logits)[j] - counts[j],  N = sum(counts).
/// This is the per-field reconstruction term of the FVAE ELBO (Eq. 4) and
/// of the Mult-VAE likelihood, evaluated over either the full vocabulary or
/// a batched-softmax candidate subset.
double MultinomialNll(std::span<const float> logits,
                      std::span<const float> counts, std::span<float> grad);

/// Convenience overload without a gradient (evaluation paths).
double MultinomialNll(std::span<const float> logits,
                      std::span<const float> counts);

}  // namespace fvae::nn

#endif  // FVAE_NN_LOSSES_H_
