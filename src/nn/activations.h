#ifndef FVAE_NN_ACTIVATIONS_H_
#define FVAE_NN_ACTIVATIONS_H_

#include "common/random.h"
#include "math/matrix.h"
#include "nn/layer.h"

namespace fvae::nn {

/// Elementwise tanh. Backward uses the cached output: d = (1 - y^2).
class TanhLayer : public Layer {
 public:
  void Forward(const Matrix& input, Matrix* output, bool training) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;

 private:
  Matrix cached_output_;
};

/// Elementwise ReLU.
class ReluLayer : public Layer {
 public:
  void Forward(const Matrix& input, Matrix* output, bool training) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;

 private:
  Matrix cached_output_;
};

/// Elementwise logistic sigmoid.
class SigmoidLayer : public Layer {
 public:
  void Forward(const Matrix& input, Matrix* output, bool training) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;

 private:
  Matrix cached_output_;
};

/// Inverted dropout: at training time zeroes entries with probability p and
/// scales survivors by 1/(1-p); identity at inference time. Used by the
/// Mult-DAE baseline's corrupted input and by VAE encoder regularization.
class DropoutLayer : public Layer {
 public:
  DropoutLayer(double drop_prob, uint64_t seed);

  void Forward(const Matrix& input, Matrix* output, bool training) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;

  double drop_prob() const { return drop_prob_; }

 private:
  double drop_prob_;
  Rng rng_;
  Matrix mask_;
  bool last_training_ = false;
};

}  // namespace fvae::nn

#endif  // FVAE_NN_ACTIVATIONS_H_
