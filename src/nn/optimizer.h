#ifndef FVAE_NN_OPTIMIZER_H_
#define FVAE_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layer.h"

namespace fvae::nn {

/// Dense-parameter optimizer interface. Layers fill gradients in Backward;
/// Step consumes and zeroes them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamRef> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in the params,
  /// then zeroes the gradients.
  virtual void Step() = 0;

  const std::vector<ParamRef>& params() const { return params_; }

 protected:
  std::vector<ParamRef> params_;
};

/// Plain SGD with optional momentum.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<ParamRef> params, float learning_rate,
               float momentum = 0.0f);

  void Step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 private:
  float learning_rate_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<ParamRef> params, float learning_rate,
                float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f);

  void Step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }
  int64_t step_count() const { return step_count_; }

  /// Moment estimates, parallel to params() and shaped like them from
  /// construction. Checkpointing persists these (plus step_count) so a
  /// resumed run takes bitwise-identical Adam steps.
  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }

  /// Restores checkpointed state; moment shapes must match the params.
  void RestoreState(int64_t step_count, std::vector<Matrix> m,
                    std::vector<Matrix> v);

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace fvae::nn

#endif  // FVAE_NN_OPTIMIZER_H_
