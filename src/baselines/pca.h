#ifndef FVAE_BASELINES_PCA_H_
#define FVAE_BASELINES_PCA_H_

#include <string>

#include "baselines/feature_indexer.h"
#include "eval/representation_model.h"
#include "math/svd.h"

namespace fvae::baselines {

/// PCA baseline (paper §V-A1): truncated SVD of the sparse user-feature
/// matrix U (users x J). The user embedding is the projection U V_k; scores
/// are the rank-k reconstruction restricted to the candidate columns.
/// Mean-centering is skipped, as is standard for sparse high-dimensional
/// data (centering would densify the matrix).
class PcaModel : public eval::RepresentationModel {
 public:
  struct Options {
    size_t latent_dim = 64;
    size_t oversample = 8;
    int power_iterations = 2;
    uint64_t seed = 11;
  };

  explicit PcaModel(Options options) : options_(options) {}

  std::string Name() const override { return "PCA"; }

  void Fit(const MultiFieldDataset& train) override;

  Matrix Embed(const MultiFieldDataset& data,
               std::span<const uint32_t> users) const override;

  Matrix Score(const MultiFieldDataset& input,
               std::span<const uint32_t> users, size_t field,
               std::span<const uint64_t> candidates) const override;

  /// Singular values of the fit (decreasing), for tests/diagnostics.
  const std::vector<float>& singular_values() const {
    return singular_values_;
  }

 private:
  Options options_;
  FeatureIndexer indexer_;
  Matrix components_;  // J x latent_dim (right singular vectors)
  std::vector<float> singular_values_;
};

}  // namespace fvae::baselines

#endif  // FVAE_BASELINES_PCA_H_
