#include "baselines/mult_vae.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/stopwatch.h"
#include "data/batching.h"
#include "math/vector_ops.h"

namespace fvae::baselines {

namespace {
constexpr float kLogVarClamp = 10.0f;
constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)

/// Sum over dims of log N(z; mu, exp(logvar)) for one row.
double LogGaussian(const float* z, const float* mu, const float* logvar,
                   size_t dim) {
  double acc = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double var = std::exp(double(logvar[d]));
    const double diff = double(z[d]) - mu[d];
    acc += -0.5 * (kLog2Pi + logvar[d] + diff * diff / var);
  }
  return acc;
}
}  // namespace

MultVaeModel::MultVaeModel(Options options)
    : options_(options), rng_(options.seed) {
  FVAE_CHECK(options_.hidden_dim > 0 && options_.latent_dim > 0);
  FVAE_CHECK(options_.batch_size > 0 && options_.epochs > 0);
}

std::string MultVaeModel::Name() const {
  switch (options_.variant) {
    case Variant::kDae:
      return "Mult-DAE";
    case Variant::kVae:
      return "Mult-VAE";
    case Variant::kRecVae:
      return "RecVAE";
  }
  return "?";
}

MultVaeModel::SparseRow MultVaeModel::MakeRow(const MultiFieldDataset& data,
                                              uint32_t user) const {
  SparseRow row;
  double sq_sum = 0.0;
  for (size_t k = 0; k < data.num_fields(); ++k) {
    for (const FeatureEntry& e : data.UserField(user, k)) {
      auto col = indexer_.Column(static_cast<uint32_t>(k), e.id);
      if (!col.has_value()) continue;
      row.cols.push_back(*col);
      row.raw_counts.push_back(e.value);
      row.total_count += e.value;
      sq_sum += double(e.value) * e.value;
    }
  }
  // L2-normalized input (Liang et al.'s preprocessing).
  const float inv_norm =
      sq_sum > 0.0 ? static_cast<float>(1.0 / std::sqrt(sq_sum)) : 0.0f;
  row.values.resize(row.raw_counts.size());
  for (size_t i = 0; i < row.raw_counts.size(); ++i) {
    row.values[i] = row.raw_counts[i] * inv_norm;
  }
  return row;
}

void MultVaeModel::EncodeRows(const std::vector<SparseRow>& rows, Matrix* mu,
                              Matrix* logvar, Matrix* h1, Rng* dropout_rng,
                              std::vector<SparseRow>* dropped) const {
  const size_t batch = rows.size();
  const size_t hidden = options_.hidden_dim;
  h1->Resize(batch, hidden);
  if (dropped != nullptr) dropped->assign(batch, {});

  const float keep_scale =
      options_.dropout > 0.0f ? 1.0f / (1.0f - options_.dropout) : 1.0f;
  for (size_t i = 0; i < batch; ++i) {
    float* out = h1->Row(i);
    const float* bias = b1_.Row(0);
    for (size_t d = 0; d < hidden; ++d) out[d] = bias[d];
    const SparseRow& row = rows[i];
    for (size_t j = 0; j < row.cols.size(); ++j) {
      float value = row.values[j];
      if (dropout_rng != nullptr && options_.dropout > 0.0f) {
        if (dropout_rng->Bernoulli(options_.dropout)) continue;
        value *= keep_scale;
      }
      const float* e_row = embed_.Row(row.cols[j]);
      for (size_t d = 0; d < hidden; ++d) out[d] += value * e_row[d];
      if (dropped != nullptr) {
        (*dropped)[i].cols.push_back(row.cols[j]);
        (*dropped)[i].values.push_back(value);
      }
    }
    for (size_t d = 0; d < hidden; ++d) out[d] = std::tanh(out[d]);
  }

  mu_head_->Forward(*h1, mu, /*training=*/false);
  if (options_.variant != Variant::kDae) {
    logvar_head_->Forward(*h1, logvar, /*training=*/false);
    for (size_t i = 0; i < logvar->size(); ++i) {
      logvar->data()[i] =
          std::clamp(logvar->data()[i], -kLogVarClamp, kLogVarClamp);
    }
  }
}

void MultVaeModel::EncodeRowsOld(const std::vector<SparseRow>& rows,
                                 Matrix* mu, Matrix* logvar) const {
  const size_t batch = rows.size();
  const size_t hidden = options_.hidden_dim;
  const size_t latent = options_.latent_dim;
  Matrix h1(batch, hidden);
  for (size_t i = 0; i < batch; ++i) {
    float* out = h1.Row(i);
    const float* bias = old_b1_.Row(0);
    for (size_t d = 0; d < hidden; ++d) out[d] = bias[d];
    for (size_t j = 0; j < rows[i].cols.size(); ++j) {
      const float* e_row = old_embed_.Row(rows[i].cols[j]);
      const float value = rows[i].values[j];
      for (size_t d = 0; d < hidden; ++d) out[d] += value * e_row[d];
    }
    for (size_t d = 0; d < hidden; ++d) out[d] = std::tanh(out[d]);
  }
  Gemm(h1, old_mu_w_, mu);
  Gemm(h1, old_lv_w_, logvar);
  for (size_t i = 0; i < batch; ++i) {
    for (size_t d = 0; d < latent; ++d) {
      (*mu)(i, d) += old_mu_b_(0, d);
      (*logvar)(i, d) = std::clamp(
          (*logvar)(i, d) + old_lv_b_(0, d), -kLogVarClamp, kLogVarClamp);
    }
  }
}

void MultVaeModel::SnapshotEncoder() {
  old_embed_ = embed_;
  old_b1_ = b1_;
  old_mu_w_ = mu_head_->weight();
  old_mu_b_ = mu_head_->bias();
  old_lv_w_ = logvar_head_->weight();
  old_lv_b_ = logvar_head_->bias();
  has_snapshot_ = true;
}

void MultVaeModel::Fit(const MultiFieldDataset& train) {
  if (options_.hash_bits > 0) {
    indexer_ = FeatureIndexer::BuildHashed(train.num_fields(),
                                           options_.hash_bits);
  } else {
    indexer_ = FeatureIndexer::BuildExact(train);
  }
  const size_t J = indexer_.num_columns();
  const size_t hidden = options_.hidden_dim;
  const size_t latent = options_.latent_dim;
  FVAE_CHECK(J > 0) << "empty feature space";

  // Parameter init.
  const float embed_scale = std::sqrt(6.0f / float(hidden + 64));
  embed_.Resize(J, hidden);
  for (size_t i = 0; i < embed_.size(); ++i) {
    embed_.data()[i] = static_cast<float>(rng_.Uniform(-embed_scale,
                                                       embed_scale));
  }
  embed_grad_.Resize(J, hidden);
  b1_.Resize(1, hidden);
  b1_grad_.Resize(1, hidden);
  mu_head_ = std::make_unique<nn::DenseLayer>(hidden, latent, rng_);
  if (options_.variant != Variant::kDae) {
    logvar_head_ = std::make_unique<nn::DenseLayer>(hidden, latent, rng_);
  }
  dec_ = std::make_unique<nn::DenseLayer>(latent, hidden, rng_);
  out_weight_.Resize(J, hidden);
  for (size_t i = 0; i < out_weight_.size(); ++i) {
    out_weight_.data()[i] =
        static_cast<float>(rng_.Uniform(-embed_scale, embed_scale));
  }
  out_weight_grad_.Resize(J, hidden);
  out_bias_.Resize(1, J);
  out_bias_grad_.Resize(1, J);

  std::vector<nn::ParamRef> params;
  params.push_back({&embed_, &embed_grad_});
  params.push_back({&b1_, &b1_grad_});
  mu_head_->CollectParams(&params);
  if (logvar_head_) logvar_head_->CollectParams(&params);
  dec_->CollectParams(&params);
  params.push_back({&out_weight_, &out_weight_grad_});
  params.push_back({&out_bias_, &out_bias_grad_});
  optimizer_ = std::make_unique<nn::AdamOptimizer>(std::move(params),
                                                   options_.learning_rate);

  // Pre-extract sparse rows once.
  std::vector<SparseRow> all_rows(train.num_users());
  for (size_t u = 0; u < train.num_users(); ++u) {
    all_rows[u] = MakeRow(train, static_cast<uint32_t>(u));
  }

  fit_stats_ = FitStats{};
  Stopwatch watch;
  BatchIterator batches(train.num_users(), options_.batch_size,
                        options_.seed ^ 0xB00F);
  std::vector<uint32_t> batch;
  std::vector<SparseRow> rows;
  bool stop = false;
  for (size_t epoch = 0; epoch < options_.epochs && !stop; ++epoch) {
    if (options_.variant == Variant::kRecVae) SnapshotEncoder();
    while (batches.Next(&batch)) {
      rows.clear();
      rows.reserve(batch.size());
      for (uint32_t u : batch) rows.push_back(all_rows[u]);
      const float anneal =
          std::min(1.0f, float(fit_stats_.steps + 1) /
                             float(std::max<size_t>(1,
                                                    options_.anneal_steps)));
      TrainStep(rows, anneal);
      ++fit_stats_.steps;
      fit_stats_.users_processed += batch.size();
      if (options_.time_budget_seconds > 0.0 &&
          watch.ElapsedSeconds() >= options_.time_budget_seconds) {
        stop = true;
        break;
      }
    }
    batches.NewEpoch();
  }
  fit_stats_.seconds = watch.ElapsedSeconds();
}

double MultVaeModel::TrainStep(const std::vector<SparseRow>& rows,
                               float anneal) {
  const size_t batch = rows.size();
  const size_t hidden = options_.hidden_dim;
  const size_t latent = options_.latent_dim;
  const size_t J = indexer_.num_columns();
  const bool variational = options_.variant != Variant::kDae;

  // ---- Encoder forward (with input dropout) ----
  Matrix mu, logvar, h1;
  std::vector<SparseRow> dropped;
  EncodeRows(rows, &mu, &logvar, &h1, &rng_, &dropped);

  // ---- Latent ----
  Matrix z = mu;
  Matrix eps;
  if (variational) {
    eps.Resize(batch, latent);
    for (size_t i = 0; i < eps.size(); ++i) {
      eps.data()[i] = static_cast<float>(rng_.Normal());
      z.data()[i] = mu.data()[i] +
                    std::exp(0.5f * logvar.data()[i]) * eps.data()[i];
    }
  }

  // ---- Decoder forward: full softmax over all J columns ----
  Matrix hdec_pre;
  dec_->Forward(z, &hdec_pre, /*training=*/true);
  Matrix hdec = hdec_pre;
  for (size_t i = 0; i < hdec.size(); ++i) {
    hdec.data()[i] = std::tanh(hdec.data()[i]);
  }
  Matrix logits;
  GemmNT(hdec, out_weight_, &logits);  // batch x J
  for (size_t i = 0; i < batch; ++i) {
    float* row = logits.Row(i);
    const float* ob = out_bias_.Row(0);
    for (size_t j = 0; j < J; ++j) row[j] += ob[j];
  }

  // ---- Multinomial NLL + gradient over the full vocabulary ----
  double loss = 0.0;
  Matrix logits_grad(batch, J);
  const float inv_batch = 1.0f / float(batch);
  std::vector<float> log_probs(J);
  for (size_t i = 0; i < batch; ++i) {
    const float* row = logits.Row(i);
    std::copy(row, row + J, log_probs.begin());
    LogSoftmaxInPlace(log_probs);
    const SparseRow& target = rows[i];
    for (size_t j = 0; j < target.cols.size(); ++j) {
      loss -= double(target.raw_counts[j]) * log_probs[target.cols[j]];
    }
    float* grad = logits_grad.Row(i);
    const float n = target.total_count;
    for (size_t j = 0; j < J; ++j) {
      grad[j] = n * std::exp(log_probs[j]) * inv_batch;
    }
    for (size_t j = 0; j < target.cols.size(); ++j) {
      grad[target.cols[j]] -= target.raw_counts[j] * inv_batch;
    }
  }
  loss /= double(batch);

  // ---- Backward through the decoder ----
  Matrix hdec_grad;
  Gemm(logits_grad, out_weight_, &hdec_grad);  // batch x hidden
  GemmTN(logits_grad, hdec, &out_weight_grad_);  // J x hidden
  out_bias_grad_.SetZero();
  for (size_t i = 0; i < batch; ++i) {
    const float* g = logits_grad.Row(i);
    float* ob = out_bias_grad_.Row(0);
    for (size_t j = 0; j < J; ++j) ob[j] += g[j];
  }
  for (size_t i = 0; i < hdec_grad.size(); ++i) {
    const float y = hdec.data()[i];
    hdec_grad.data()[i] *= (1.0f - y * y);
  }
  Matrix z_grad;
  dec_->Backward(hdec_grad, &z_grad);

  // ---- KL / prior terms ----
  Matrix mu_grad(batch, latent);
  Matrix logvar_grad(batch, latent);
  if (variational) {
    if (options_.variant == Variant::kVae) {
      const float beta_eff = options_.beta * anneal * inv_batch;
      for (size_t i = 0; i < mu.size(); ++i) {
        mu_grad.data()[i] = beta_eff * mu.data()[i];
        logvar_grad.data()[i] =
            beta_eff * 0.5f * (std::exp(logvar.data()[i]) - 1.0f);
      }
    } else {
      // RecVAE composite prior, single-sample KL estimate.
      Matrix old_mu, old_lv;
      if (has_snapshot_) {
        EncodeRowsOld(rows, &old_mu, &old_lv);
      }
      const float* w = options_.prior_weights;
      const double log_w[3] = {std::log(std::max(1e-12f, w[0])),
                               std::log(std::max(1e-12f, w[1])),
                               std::log(std::max(1e-12f, w[2]))};
      for (size_t i = 0; i < batch; ++i) {
        const float beta_u =
            options_.gamma * std::max(1.0f, rows[i].total_count) * anneal *
            inv_batch;
        const float* z_row = z.Row(i);
        const float* mu_row = mu.Row(i);
        const float* lv_row = logvar.Row(i);
        // Component parameters: {standard, old posterior, wide}.
        std::vector<float> zeros(latent, 0.0f);
        std::vector<float> wide_lv(latent, options_.wide_logvar);
        const float* c_mu[3] = {zeros.data(),
                                has_snapshot_ ? old_mu.Row(i) : zeros.data(),
                                zeros.data()};
        std::vector<float> old_lv_fallback(latent, 0.0f);
        const float* c_lv[3] = {
            zeros.data(),
            has_snapshot_ ? old_lv.Row(i) : old_lv_fallback.data(),
            wide_lv.data()};
        double comp_log[3];
        for (int c = 0; c < 3; ++c) {
          comp_log[c] =
              log_w[c] + LogGaussian(z_row, c_mu[c], c_lv[c], latent);
        }
        const double max_log =
            std::max({comp_log[0], comp_log[1], comp_log[2]});
        double denom = 0.0;
        double resp[3];
        for (int c = 0; c < 3; ++c) {
          resp[c] = std::exp(comp_log[c] - max_log);
          denom += resp[c];
        }
        for (int c = 0; c < 3; ++c) resp[c] /= denom;

        for (size_t d = 0; d < latent; ++d) {
          const double var = std::exp(double(lv_row[d]));
          const double diff = double(z_row[d]) - mu_row[d];
          // d log q / dz and d log p / dz.
          const double dlogq_dz = -diff / var;
          double dlogp_dz = 0.0;
          for (int c = 0; c < 3; ++c) {
            const double cvar = std::exp(double(c_lv[c][d]));
            dlogp_dz += resp[c] * (-(double(z_row[d]) - c_mu[c][d]) / cvar);
          }
          const float dz_kl =
              beta_u * static_cast<float>(dlogq_dz - dlogp_dz);
          z_grad(i, d) += dz_kl;
          // Direct (non-reparam) derivatives of log q.
          mu_grad(i, d) += beta_u * static_cast<float>(diff / var);
          logvar_grad(i, d) +=
              beta_u *
              static_cast<float>(-0.5 + 0.5 * diff * diff / var);
        }
      }
    }
    // Reparameterization chain into mu / logvar.
    for (size_t i = 0; i < z_grad.size(); ++i) {
      mu_grad.data()[i] += z_grad.data()[i];
      logvar_grad.data()[i] += z_grad.data()[i] * eps.data()[i] * 0.5f *
                               std::exp(0.5f * logvar.data()[i]);
    }
  } else {
    mu_grad = z_grad;
  }

  // ---- Heads -> h1 -> embedding scatter ----
  Matrix h1_grad_mu, h1_grad_lv;
  mu_head_->Backward(mu_grad, &h1_grad_mu);
  if (variational) {
    logvar_head_->Backward(logvar_grad, &h1_grad_lv);
    h1_grad_mu.Add(h1_grad_lv);
  }
  for (size_t i = 0; i < h1_grad_mu.size(); ++i) {
    const float y = h1.data()[i];
    h1_grad_mu.data()[i] *= (1.0f - y * y);
  }
  b1_grad_.SetZero();
  for (size_t i = 0; i < batch; ++i) {
    const float* g = h1_grad_mu.Row(i);
    float* bg = b1_grad_.Row(0);
    for (size_t d = 0; d < hidden; ++d) bg[d] += g[d];
  }
  for (size_t i = 0; i < batch; ++i) {
    const float* g = h1_grad_mu.Row(i);
    const SparseRow& row = dropped[i];
    for (size_t j = 0; j < row.cols.size(); ++j) {
      float* eg = embed_grad_.Row(row.cols[j]);
      const float value = row.values[j];
      for (size_t d = 0; d < hidden; ++d) eg[d] += value * g[d];
    }
  }

  optimizer_->Step();
  return loss;
}

Matrix MultVaeModel::Embed(const MultiFieldDataset& data,
                           std::span<const uint32_t> users) const {
  FVAE_CHECK(optimizer_ != nullptr) << "Fit must be called before Embed";
  std::vector<SparseRow> rows;
  rows.reserve(users.size());
  for (uint32_t u : users) rows.push_back(MakeRow(data, u));
  Matrix mu, logvar, h1;
  EncodeRows(rows, &mu, &logvar, &h1, nullptr, nullptr);
  return mu;
}

Matrix MultVaeModel::Score(const MultiFieldDataset& input,
                           std::span<const uint32_t> users, size_t field,
                           std::span<const uint64_t> candidates) const {
  const Matrix z = Embed(input, users);
  Matrix hdec_pre;
  dec_->Forward(z, &hdec_pre, /*training=*/false);
  Matrix hdec = hdec_pre;
  for (size_t i = 0; i < hdec.size(); ++i) {
    hdec.data()[i] = std::tanh(hdec.data()[i]);
  }
  Matrix scores(users.size(), candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto col = indexer_.Column(static_cast<uint32_t>(field), candidates[c]);
    if (!col.has_value()) continue;
    const float* w = out_weight_.Row(*col);
    const float b = out_bias_(0, *col);
    for (size_t i = 0; i < users.size(); ++i) {
      const float* h = hdec.Row(i);
      double acc = b;
      for (size_t d = 0; d < options_.hidden_dim; ++d) {
        acc += double(h[d]) * w[d];
      }
      scores(i, c) = static_cast<float>(acc);
    }
  }
  return scores;
}

}  // namespace fvae::baselines
