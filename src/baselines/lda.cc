#include "baselines/lda.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "math/special.h"

namespace fvae::baselines {

LdaModel::Doc LdaModel::MakeDoc(const MultiFieldDataset& data,
                                uint32_t user) const {
  Doc doc;
  for (size_t k = 0; k < data.num_fields(); ++k) {
    for (const FeatureEntry& e : data.UserField(user, k)) {
      auto col = indexer_.Column(static_cast<uint32_t>(k), e.id);
      if (!col.has_value()) continue;
      doc.cols.push_back(*col);
      doc.counts.push_back(e.value);
    }
  }
  return doc;
}

std::vector<double> LdaModel::EStep(const Doc& doc,
                                    const Matrix& exp_elog_beta,
                                    Matrix* sstats) const {
  const size_t T = options_.num_topics;
  std::vector<double> gamma(T, options_.alpha + 1.0);
  std::vector<double> exp_elog_theta(T);
  const size_t nnz = doc.cols.size();
  if (nnz == 0) return gamma;

  // phi is stored implicitly: phinorm_w = sum_t expElogTheta_t *
  // expElogBeta_{t,w}; gamma_t = alpha + sum_w count_w * expElogTheta_t *
  // expElogBeta_{t,w} / phinorm_w.
  std::vector<double> phinorm(nnz);
  for (size_t iter = 0; iter < options_.e_step_iterations; ++iter) {
    double gamma_sum = 0.0;
    for (double g : gamma) gamma_sum += g;
    const double psi_total = Digamma(gamma_sum);
    for (size_t t = 0; t < T; ++t) {
      exp_elog_theta[t] = std::exp(Digamma(gamma[t]) - psi_total);
    }
    for (size_t w = 0; w < nnz; ++w) {
      double acc = 1e-100;
      for (size_t t = 0; t < T; ++t) {
        acc += exp_elog_theta[t] * exp_elog_beta(t, doc.cols[w]);
      }
      phinorm[w] = acc;
    }
    double max_change = 0.0;
    for (size_t t = 0; t < T; ++t) {
      double acc = 0.0;
      for (size_t w = 0; w < nnz; ++w) {
        acc += doc.counts[w] * exp_elog_beta(t, doc.cols[w]) / phinorm[w];
      }
      const double updated = options_.alpha + exp_elog_theta[t] * acc;
      max_change = std::max(max_change, std::fabs(updated - gamma[t]));
      gamma[t] = updated;
    }
    if (max_change < options_.e_step_tolerance) break;
  }

  if (sstats != nullptr) {
    // sstats_{t,w} += count_w * phi_{t,w}
    //              =  count_w * expElogTheta_t expElogBeta_{t,w} / phinorm_w.
    double gamma_sum = 0.0;
    for (double g : gamma) gamma_sum += g;
    const double psi_total = Digamma(gamma_sum);
    for (size_t t = 0; t < T; ++t) {
      exp_elog_theta[t] = std::exp(Digamma(gamma[t]) - psi_total);
    }
    for (size_t w = 0; w < nnz; ++w) {
      double acc = 1e-100;
      for (size_t t = 0; t < T; ++t) {
        acc += exp_elog_theta[t] * exp_elog_beta(t, doc.cols[w]);
      }
      for (size_t t = 0; t < T; ++t) {
        (*sstats)(t, doc.cols[w]) += static_cast<float>(
            doc.counts[w] * exp_elog_theta[t] *
            exp_elog_beta(t, doc.cols[w]) / acc);
      }
    }
  }
  return gamma;
}

void LdaModel::Fit(const MultiFieldDataset& train) {
  indexer_ = FeatureIndexer::BuildExact(train);
  const size_t T = options_.num_topics;
  const size_t J = indexer_.num_columns();
  FVAE_CHECK(J > 0) << "empty vocabulary";

  Rng rng(options_.seed);
  lambda_.Resize(T, J);
  for (size_t i = 0; i < lambda_.size(); ++i) {
    // Standard init: lambda ~ Gamma(100, 1/100).
    lambda_.data()[i] = static_cast<float>(rng.Gamma(100.0) / 100.0);
  }

  Matrix exp_elog_beta(T, J);
  Matrix sstats(T, J);
  for (size_t pass = 0; pass < options_.passes; ++pass) {
    // E[log beta_{t,w}] = psi(lambda_tw) - psi(sum_w lambda_tw).
    for (size_t t = 0; t < T; ++t) {
      double row_sum = 0.0;
      for (size_t w = 0; w < J; ++w) row_sum += lambda_(t, w);
      const double psi_row = Digamma(row_sum);
      for (size_t w = 0; w < J; ++w) {
        exp_elog_beta(t, w) =
            static_cast<float>(std::exp(Digamma(lambda_(t, w)) - psi_row));
      }
    }
    sstats.SetZero();
    for (size_t u = 0; u < train.num_users(); ++u) {
      const Doc doc = MakeDoc(train, static_cast<uint32_t>(u));
      EStep(doc, exp_elog_beta, &sstats);
    }
    // Batch M-step.
    for (size_t i = 0; i < lambda_.size(); ++i) {
      lambda_.data()[i] =
          static_cast<float>(options_.eta) + sstats.data()[i];
    }
  }

  // Posterior-mean topic-word distributions for scoring.
  expected_beta_.Resize(T, J);
  for (size_t t = 0; t < T; ++t) {
    double row_sum = 0.0;
    for (size_t w = 0; w < J; ++w) row_sum += lambda_(t, w);
    for (size_t w = 0; w < J; ++w) {
      expected_beta_(t, w) = static_cast<float>(lambda_(t, w) / row_sum);
    }
  }
}

Matrix LdaModel::Embed(const MultiFieldDataset& data,
                       std::span<const uint32_t> users) const {
  FVAE_CHECK(!lambda_.empty()) << "Fit must be called before Embed";
  const size_t T = options_.num_topics;
  const size_t J = indexer_.num_columns();

  // exp(E[log beta]) for fold-in E-steps.
  Matrix exp_elog_beta(T, J);
  for (size_t t = 0; t < T; ++t) {
    double row_sum = 0.0;
    for (size_t w = 0; w < J; ++w) row_sum += lambda_(t, w);
    const double psi_row = Digamma(row_sum);
    for (size_t w = 0; w < J; ++w) {
      exp_elog_beta(t, w) =
          static_cast<float>(std::exp(Digamma(lambda_(t, w)) - psi_row));
    }
  }

  Matrix z(users.size(), T);
  for (size_t i = 0; i < users.size(); ++i) {
    const Doc doc = MakeDoc(data, users[i]);
    const std::vector<double> gamma = EStep(doc, exp_elog_beta, nullptr);
    double total = 0.0;
    for (double g : gamma) total += g;
    for (size_t t = 0; t < T; ++t) {
      z(i, t) = static_cast<float>(gamma[t] / total);
    }
  }
  return z;
}

Matrix LdaModel::Score(const MultiFieldDataset& input,
                       std::span<const uint32_t> users, size_t field,
                       std::span<const uint64_t> candidates) const {
  const Matrix theta = Embed(input, users);
  const size_t T = options_.num_topics;
  Matrix scores(users.size(), candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto col = indexer_.Column(static_cast<uint32_t>(field), candidates[c]);
    if (!col.has_value()) continue;
    for (size_t i = 0; i < users.size(); ++i) {
      double acc = 0.0;
      for (size_t t = 0; t < T; ++t) {
        acc += double(theta(i, t)) * expected_beta_(t, *col);
      }
      scores(i, c) = static_cast<float>(acc);
    }
  }
  return scores;
}

}  // namespace fvae::baselines
