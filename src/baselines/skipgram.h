#ifndef FVAE_BASELINES_SKIPGRAM_H_
#define FVAE_BASELINES_SKIPGRAM_H_

#include <string>
#include <vector>

#include "baselines/feature_indexer.h"
#include "common/random.h"
#include "eval/representation_model.h"
#include "math/matrix.h"

namespace fvae::baselines {

/// Skip-gram-with-negative-sampling embedding baselines.
///
///  * Item2Vec (Barkan & Koenigstein): every feature of a user is an item
///    in one "sentence"; all within-user pairs are positive examples. The
///    user representation is the (value-weighted) mean of their features'
///    input vectors.
///  * Job2Vec-style multi-view (Zhang et al., approximated): positive pairs
///    are restricted to *cross-field* pairs, aligning the per-field views
///    in one shared space; the user representation is the mean of the
///    L2-normalized per-field aggregates.
///
/// Negative contexts are drawn from the unigram^{0.75} distribution via an
/// alias table. Scores are cosine similarities between the user vector and
/// the candidate's input vector.
class SkipGramModel : public eval::RepresentationModel {
 public:
  enum class Variant { kItem2Vec, kJob2Vec };

  struct Options {
    Variant variant = Variant::kItem2Vec;
    size_t embedding_dim = 64;
    /// Positive context draws per center feature per epoch.
    size_t contexts_per_center = 4;
    size_t negatives_per_positive = 5;
    size_t epochs = 5;
    float learning_rate = 0.05f;
    /// Final learning rate after linear decay.
    float min_learning_rate = 1e-4f;
    /// Exponent of the unigram negative-sampling distribution.
    double unigram_power = 0.75;
    uint64_t seed = 33;
  };

  explicit SkipGramModel(Options options);

  std::string Name() const override {
    return options_.variant == Variant::kItem2Vec ? "Item2Vec" : "Job2Vec";
  }

  void Fit(const MultiFieldDataset& train) override;

  Matrix Embed(const MultiFieldDataset& data,
               std::span<const uint32_t> users) const override;

  Matrix Score(const MultiFieldDataset& input,
               std::span<const uint32_t> users, size_t field,
               std::span<const uint64_t> candidates) const override;

  size_t vocabulary_size() const { return indexer_.num_columns(); }

 private:
  /// Writes the user's aggregate vector into `out` (embedding_dim floats).
  void UserVector(const MultiFieldDataset& data, uint32_t user,
                  float* out) const;

  void SgnsUpdate(uint32_t center, uint32_t context, float label, float lr);

  Options options_;
  FeatureIndexer indexer_;
  Rng rng_;
  Matrix in_vectors_;   // J x dim
  Matrix out_vectors_;  // J x dim
};

}  // namespace fvae::baselines

#endif  // FVAE_BASELINES_SKIPGRAM_H_
