#include "baselines/skipgram.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "math/vector_ops.h"

namespace fvae::baselines {

SkipGramModel::SkipGramModel(Options options)
    : options_(options), rng_(options.seed) {
  FVAE_CHECK(options_.embedding_dim > 0);
  FVAE_CHECK(options_.epochs > 0);
}

void SkipGramModel::SgnsUpdate(uint32_t center, uint32_t context,
                               float label, float lr) {
  const size_t dim = options_.embedding_dim;
  float* v = in_vectors_.Row(center);
  float* u = out_vectors_.Row(context);
  double dot = 0.0;
  for (size_t d = 0; d < dim; ++d) dot += double(v[d]) * u[d];
  const float sigma = 1.0f / (1.0f + std::exp(-static_cast<float>(dot)));
  const float g = lr * (label - sigma);
  for (size_t d = 0; d < dim; ++d) {
    const float v_d = v[d];
    v[d] += g * u[d];
    u[d] += g * v_d;
  }
}

void SkipGramModel::Fit(const MultiFieldDataset& train) {
  indexer_ = FeatureIndexer::BuildExact(train);
  const size_t J = indexer_.num_columns();
  const size_t dim = options_.embedding_dim;
  FVAE_CHECK(J > 0) << "empty vocabulary";

  const float init = 0.5f / float(dim);
  in_vectors_.Resize(J, dim);
  for (size_t i = 0; i < in_vectors_.size(); ++i) {
    in_vectors_.data()[i] = static_cast<float>(rng_.Uniform(-init, init));
  }
  out_vectors_.Resize(J, dim);  // zero init, as in word2vec

  // Unigram^power negative-sampling distribution.
  std::vector<double> unigram(J, 0.0);
  for (size_t u = 0; u < train.num_users(); ++u) {
    for (size_t k = 0; k < train.num_fields(); ++k) {
      for (const FeatureEntry& e : train.UserField(u, k)) {
        auto col = indexer_.Column(static_cast<uint32_t>(k), e.id);
        if (col.has_value()) unigram[*col] += e.value;
      }
    }
  }
  for (double& w : unigram) w = std::pow(w, options_.unigram_power);
  AliasSampler negative_sampler(unigram);

  // Pre-extract each user's features as (column, field) lists.
  struct UserItems {
    std::vector<uint32_t> cols;
    std::vector<uint32_t> fields;
  };
  std::vector<UserItems> items(train.num_users());
  for (size_t u = 0; u < train.num_users(); ++u) {
    for (size_t k = 0; k < train.num_fields(); ++k) {
      for (const FeatureEntry& e : train.UserField(u, k)) {
        auto col = indexer_.Column(static_cast<uint32_t>(k), e.id);
        if (!col.has_value()) continue;
        items[u].cols.push_back(*col);
        items[u].fields.push_back(static_cast<uint32_t>(k));
      }
    }
  }

  // Total center visits, for the linear learning-rate decay.
  size_t total_centers = 0;
  for (const UserItems& ui : items) total_centers += ui.cols.size();
  total_centers *= options_.epochs;
  size_t visited = 0;

  const bool cross_field_only = options_.variant == Variant::kJob2Vec;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t u = 0; u < items.size(); ++u) {
      const UserItems& ui = items[u];
      if (ui.cols.size() < 2) {
        visited += ui.cols.size();
        continue;
      }
      for (size_t c = 0; c < ui.cols.size(); ++c) {
        const float progress =
            total_centers > 0 ? float(visited) / float(total_centers) : 0.0f;
        const float lr = std::max(
            options_.min_learning_rate,
            options_.learning_rate * (1.0f - progress));
        ++visited;
        for (size_t draw = 0; draw < options_.contexts_per_center; ++draw) {
          const size_t o = rng_.UniformInt(ui.cols.size());
          if (o == c) continue;
          if (cross_field_only && ui.fields[o] == ui.fields[c]) continue;
          SgnsUpdate(ui.cols[c], ui.cols[o], 1.0f, lr);
          for (size_t neg = 0; neg < options_.negatives_per_positive;
               ++neg) {
            const uint32_t n =
                static_cast<uint32_t>(negative_sampler.Sample(rng_));
            if (n == ui.cols[o]) continue;
            SgnsUpdate(ui.cols[c], n, 0.0f, lr);
          }
        }
      }
    }
  }
}

void SkipGramModel::UserVector(const MultiFieldDataset& data, uint32_t user,
                               float* out) const {
  const size_t dim = options_.embedding_dim;
  std::fill(out, out + dim, 0.0f);

  if (options_.variant == Variant::kItem2Vec) {
    // Value-weighted mean of feature input vectors.
    double total_weight = 0.0;
    for (size_t k = 0; k < data.num_fields(); ++k) {
      for (const FeatureEntry& e : data.UserField(user, k)) {
        auto col = indexer_.Column(static_cast<uint32_t>(k), e.id);
        if (!col.has_value()) continue;
        const float* v = in_vectors_.Row(*col);
        for (size_t d = 0; d < dim; ++d) out[d] += e.value * v[d];
        total_weight += e.value;
      }
    }
    if (total_weight > 0.0) {
      const float inv = static_cast<float>(1.0 / total_weight);
      for (size_t d = 0; d < dim; ++d) out[d] *= inv;
    }
    return;
  }

  // Job2Vec: mean of L2-normalized per-field aggregates (multi-view).
  std::vector<float> field_vec(dim);
  size_t fields_used = 0;
  for (size_t k = 0; k < data.num_fields(); ++k) {
    std::fill(field_vec.begin(), field_vec.end(), 0.0f);
    double total_weight = 0.0;
    for (const FeatureEntry& e : data.UserField(user, k)) {
      auto col = indexer_.Column(static_cast<uint32_t>(k), e.id);
      if (!col.has_value()) continue;
      const float* v = in_vectors_.Row(*col);
      for (size_t d = 0; d < dim; ++d) field_vec[d] += e.value * v[d];
      total_weight += e.value;
    }
    if (total_weight <= 0.0) continue;
    L2NormalizeInPlace(field_vec);
    for (size_t d = 0; d < dim; ++d) out[d] += field_vec[d];
    ++fields_used;
  }
  if (fields_used > 0) {
    const float inv = 1.0f / float(fields_used);
    for (size_t d = 0; d < dim; ++d) out[d] *= inv;
  }
}

Matrix SkipGramModel::Embed(const MultiFieldDataset& data,
                            std::span<const uint32_t> users) const {
  FVAE_CHECK(!in_vectors_.empty()) << "Fit must be called before Embed";
  Matrix z(users.size(), options_.embedding_dim);
  for (size_t i = 0; i < users.size(); ++i) {
    UserVector(data, users[i], z.Row(i));
  }
  return z;
}

Matrix SkipGramModel::Score(const MultiFieldDataset& input,
                            std::span<const uint32_t> users, size_t field,
                            std::span<const uint64_t> candidates) const {
  const Matrix z = Embed(input, users);
  const size_t dim = options_.embedding_dim;
  Matrix scores(users.size(), candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto col = indexer_.Column(static_cast<uint32_t>(field), candidates[c]);
    if (!col.has_value()) continue;
    // SGNS is trained to make sigma(v_center . u_context) discriminate true
    // co-occurrence, so prediction scores use the in->out dot product with
    // the user aggregate as the center. (In-in cosine is only a similarity
    // heuristic and degrades once negative sampling shapes the geometry.)
    std::span<const float> u{out_vectors_.Row(*col), dim};
    for (size_t i = 0; i < users.size(); ++i) {
      scores(i, c) = static_cast<float>(Dot({z.Row(i), dim}, u));
    }
  }
  return scores;
}

}  // namespace fvae::baselines
