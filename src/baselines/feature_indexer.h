#ifndef FVAE_BASELINES_FEATURE_INDEXER_H_
#define FVAE_BASELINES_FEATURE_INDEXER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "hash/dynamic_hash_table.h"
#include "hash/feature_hashing.h"

namespace fvae::baselines {

/// Flattens (field, feature_id) pairs into a single dense column space
/// [0, J) — the representation the single-multinomial baselines (PCA, LDA,
/// Mult-DAE/VAE, RecVAE) operate on.
///
/// Two modes:
///  * exact:   every distinct (field, id) pair seen at Build time gets its
///             own column (closed vocabulary; unseen pairs have no column).
///  * hashed:  columns are 2^bits feature-hash buckets (the paper's legacy
///             setup for Mult-VAE at billion scale; collisions possible).
class FeatureIndexer {
 public:
  /// Exact indexer over every feature occurring in `dataset`.
  static FeatureIndexer BuildExact(const MultiFieldDataset& dataset);

  /// Hashed indexer with 2^bits buckets (no dataset scan needed).
  static FeatureIndexer BuildHashed(size_t num_fields, int bits);

  /// Column for a (field, id) pair; nullopt only in exact mode for unseen
  /// pairs.
  std::optional<uint32_t> Column(uint32_t field, uint64_t id) const;

  /// Total number of columns J.
  size_t num_columns() const;

  bool hashed() const { return hasher_ != nullptr; }
  size_t num_fields() const { return num_fields_; }

  /// Exact mode only: the (field, id) owning each column.
  const std::vector<std::pair<uint32_t, uint64_t>>& column_owners() const {
    return owners_;
  }

  /// Default state: no columns; use the Build factories to populate.
  FeatureIndexer() = default;

 private:
  static uint64_t CombineKey(uint32_t field, uint64_t id);

  size_t num_fields_ = 0;
  // Exact mode.
  std::unique_ptr<DynamicHashTable> exact_;
  std::vector<std::pair<uint32_t, uint64_t>> owners_;
  // Hashed mode.
  std::unique_ptr<FeatureHasher> hasher_;
};

}  // namespace fvae::baselines

#endif  // FVAE_BASELINES_FEATURE_INDEXER_H_
