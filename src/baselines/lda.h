#ifndef FVAE_BASELINES_LDA_H_
#define FVAE_BASELINES_LDA_H_

#include <string>
#include <vector>

#include "baselines/feature_indexer.h"
#include "eval/representation_model.h"
#include "math/matrix.h"

namespace fvae::baselines {

/// Latent Dirichlet Allocation baseline (paper §V-A1), batch variational
/// Bayes (Blei et al. 2003; Hoffman et al. 2010 update form). Each user is
/// a document; each (field, feature) pair is a word; counts are feature
/// values. The user representation is the normalized variational
/// document-topic posterior gamma.
class LdaModel : public eval::RepresentationModel {
 public:
  struct Options {
    size_t num_topics = 64;
    /// Symmetric Dirichlet prior on document-topic proportions.
    double alpha = 0.1;
    /// Symmetric Dirichlet prior on topic-word distributions.
    double eta = 0.01;
    /// Full batch VB passes over the corpus.
    size_t passes = 10;
    /// Per-document E-step iterations.
    size_t e_step_iterations = 20;
    double e_step_tolerance = 1e-3;
    uint64_t seed = 13;
  };

  explicit LdaModel(Options options) : options_(options) {}

  std::string Name() const override { return "LDA"; }

  void Fit(const MultiFieldDataset& train) override;

  /// Rows are normalized document-topic posteriors (dimension num_topics).
  Matrix Embed(const MultiFieldDataset& data,
               std::span<const uint32_t> users) const override;

  /// Scores are predictive word probabilities p(w | user) = sum_t
  /// theta_t beta_{t,w} — globally comparable across fields.
  Matrix Score(const MultiFieldDataset& input,
               std::span<const uint32_t> users, size_t field,
               std::span<const uint64_t> candidates) const override;

 private:
  /// One document's sparse bag of words in column space.
  struct Doc {
    std::vector<uint32_t> cols;
    std::vector<float> counts;
  };

  Doc MakeDoc(const MultiFieldDataset& data, uint32_t user) const;

  /// Runs the E-step for one document against exp(E[log beta]); returns the
  /// final gamma and (optionally) accumulates sufficient statistics.
  std::vector<double> EStep(const Doc& doc, const Matrix& exp_elog_beta,
                            Matrix* sstats) const;

  Options options_;
  FeatureIndexer indexer_;
  Matrix lambda_;  // num_topics x J variational topic-word parameters
  Matrix expected_beta_;  // normalized E[beta], used for scoring
};

}  // namespace fvae::baselines

#endif  // FVAE_BASELINES_LDA_H_
