#ifndef FVAE_BASELINES_MULT_VAE_H_
#define FVAE_BASELINES_MULT_VAE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/feature_indexer.h"
#include "common/random.h"
#include "eval/representation_model.h"
#include "math/matrix.h"
#include "nn/dense.h"
#include "nn/optimizer.h"

namespace fvae::baselines {

/// The single-multinomial autoencoder family of baselines (paper §V-A1):
///
///  * Mult-DAE  — denoising autoencoder with input dropout, no latent
///                sampling, multinomial likelihood (Liang et al. 2018).
///  * Mult-VAE  — variational, diagonal Gaussian posterior, standard normal
///                prior, KL annealed to beta (Liang et al. 2018).
///  * RecVAE    — Mult-VAE plus (a) a composite prior mixing the standard
///                normal, the *previous epoch's* posterior, and a wide
///                Gaussian, and (b) a user-specific KL weight
///                beta_u = gamma * N_u (Shenbin et al. 2020).
///
/// All three flatten the multi-field profile into one feature space (exact
/// indexing, or feature hashing when hash_bits > 0 — the paper's legacy
/// billion-scale configuration) and model it with ONE multinomial over all
/// J features. Training therefore computes the full softmax every step,
/// which is exactly the cost the FVAE's batched softmax removes (Table V).
class MultVaeModel : public eval::RepresentationModel {
 public:
  enum class Variant { kDae, kVae, kRecVae };

  struct Options {
    Variant variant = Variant::kVae;
    size_t hidden_dim = 128;
    size_t latent_dim = 64;
    /// Input (feature-level) dropout probability.
    float dropout = 0.5f;
    /// Peak KL weight (Mult-VAE) / base KL scale (RecVAE composite term).
    float beta = 0.2f;
    size_t anneal_steps = 2000;
    /// RecVAE user-specific KL weight: beta_u = gamma * N_u.
    float gamma = 0.005f;
    /// RecVAE composite-prior mixture weights {standard, old posterior,
    /// wide} and the wide component's log-variance.
    float prior_weights[3] = {0.15f, 0.75f, 0.10f};
    float wide_logvar = 2.0f;
    size_t epochs = 10;
    size_t batch_size = 256;
    float learning_rate = 1e-3f;
    /// 0 = exact feature indexing; > 0 = feature hashing to 2^bits buckets.
    int hash_bits = 0;
    /// Abort training after this many wall-clock seconds (0 = off); used by
    /// the Table V throughput harness.
    double time_budget_seconds = 0.0;
    uint64_t seed = 21;
  };

  /// Timing statistics of the last Fit (Table V).
  struct FitStats {
    size_t steps = 0;
    size_t users_processed = 0;
    double seconds = 0.0;
    double UsersPerSecond() const {
      return seconds > 0.0 ? double(users_processed) / seconds : 0.0;
    }
  };

  explicit MultVaeModel(Options options);

  std::string Name() const override;

  void Fit(const MultiFieldDataset& train) override;

  Matrix Embed(const MultiFieldDataset& data,
               std::span<const uint32_t> users) const override;

  Matrix Score(const MultiFieldDataset& input,
               std::span<const uint32_t> users, size_t field,
               std::span<const uint64_t> candidates) const override;

  const FitStats& fit_stats() const { return fit_stats_; }
  size_t num_columns() const { return indexer_.num_columns(); }

 private:
  /// One user's L2-normalized sparse input in column space.
  struct SparseRow {
    std::vector<uint32_t> cols;
    std::vector<float> values;     // normalized
    std::vector<float> raw_counts; // multinomial targets
    float total_count = 0.0f;      // N_u
  };

  SparseRow MakeRow(const MultiFieldDataset& data, uint32_t user) const;

  /// Encoder forward to (mu, logvar) — or (z, unused) for the DAE — using
  /// the live parameters. With `dropout_rng` non-null, applies feature-level
  /// input dropout (training only).
  void EncodeRows(const std::vector<SparseRow>& rows, Matrix* mu,
                  Matrix* logvar, Matrix* h1, Rng* dropout_rng,
                  std::vector<SparseRow>* dropped) const;

  /// Frozen-snapshot encoder used by the RecVAE composite prior.
  void EncodeRowsOld(const std::vector<SparseRow>& rows, Matrix* mu,
                     Matrix* logvar) const;

  void SnapshotEncoder();

  double TrainStep(const std::vector<SparseRow>& rows, float anneal);

  Options options_;
  FeatureIndexer indexer_;
  Rng rng_;
  FitStats fit_stats_;

  // Encoder: gather-sum "dense first layer" + heads.
  Matrix embed_;        // J x hidden
  Matrix embed_grad_;
  Matrix b1_;           // 1 x hidden
  Matrix b1_grad_;
  std::unique_ptr<nn::DenseLayer> mu_head_;      // hidden -> latent
  std::unique_ptr<nn::DenseLayer> logvar_head_;  // hidden -> latent (VAE)
  // Decoder.
  std::unique_ptr<nn::DenseLayer> dec_;          // latent -> hidden
  Matrix out_weight_;   // J x hidden
  Matrix out_weight_grad_;
  Matrix out_bias_;     // 1 x J
  Matrix out_bias_grad_;

  std::unique_ptr<nn::AdamOptimizer> optimizer_;

  // RecVAE old-posterior snapshot.
  Matrix old_embed_, old_b1_;
  Matrix old_mu_w_, old_mu_b_, old_lv_w_, old_lv_b_;
  bool has_snapshot_ = false;
};

}  // namespace fvae::baselines

#endif  // FVAE_BASELINES_MULT_VAE_H_
