#ifndef FVAE_BASELINES_FVAE_ADAPTER_H_
#define FVAE_BASELINES_FVAE_ADAPTER_H_

#include <memory>
#include <string>

#include "core/fvae_config.h"
#include "core/fvae_model.h"
#include "core/trainer.h"
#include "eval/representation_model.h"

namespace fvae::baselines {

/// Exposes the core FieldVae through the common RepresentationModel
/// interface so the evaluation tasks and benchmark harnesses can treat it
/// uniformly with the baselines.
class FvaeAdapter : public eval::RepresentationModel {
 public:
  FvaeAdapter(core::FvaeConfig config, core::TrainOptions train_options)
      : config_(std::move(config)), train_options_(std::move(train_options)) {}

  std::string Name() const override { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void Fit(const MultiFieldDataset& train) override;

  Matrix Embed(const MultiFieldDataset& data,
               std::span<const uint32_t> users) const override;

  Matrix Score(const MultiFieldDataset& input,
               std::span<const uint32_t> users, size_t field,
               std::span<const uint64_t> candidates) const override;

  /// The trained model (valid after Fit).
  core::FieldVae& model() { return *model_; }
  const core::FieldVae& model() const { return *model_; }

  /// Training statistics of the last Fit call.
  const core::TrainResult& train_result() const { return train_result_; }

 private:
  core::FvaeConfig config_;
  core::TrainOptions train_options_;
  std::unique_ptr<core::FieldVae> model_;
  core::TrainResult train_result_;
  std::string name_ = "FVAE";
};

}  // namespace fvae::baselines

#endif  // FVAE_BASELINES_FVAE_ADAPTER_H_
