#ifndef FVAE_BASELINES_MOST_POPULAR_H_
#define FVAE_BASELINES_MOST_POPULAR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "eval/representation_model.h"

namespace fvae::baselines {

/// Non-personalized popularity baseline: scores every candidate by its
/// global training-set frequency, identically for every user. The sanity
/// floor every personalized model must clear — any AUC it achieves comes
/// purely from the popularity skew of the negatives, not from user
/// understanding.
class MostPopularModel : public eval::RepresentationModel {
 public:
  MostPopularModel() = default;

  std::string Name() const override { return "MostPopular"; }

  void Fit(const MultiFieldDataset& train) override;

  /// Embeddings are meaningless for a non-personalized model; returns a
  /// single-column zero matrix so downstream plumbing keeps working.
  Matrix Embed(const MultiFieldDataset& data,
               std::span<const uint32_t> users) const override;

  Matrix Score(const MultiFieldDataset& input,
               std::span<const uint32_t> users, size_t field,
               std::span<const uint64_t> candidates) const override;

 private:
  /// Per field: id -> total observed value across users.
  std::vector<std::unordered_map<uint64_t, double>> popularity_;
};

}  // namespace fvae::baselines

#endif  // FVAE_BASELINES_MOST_POPULAR_H_
