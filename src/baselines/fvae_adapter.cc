#include "baselines/fvae_adapter.h"

#include "common/check.h"

namespace fvae::baselines {

void FvaeAdapter::Fit(const MultiFieldDataset& train) {
  model_ = std::make_unique<core::FieldVae>(config_, train.fields());
  train_result_ = core::TrainFvae(*model_, train, train_options_);
}

Matrix FvaeAdapter::Embed(const MultiFieldDataset& data,
                          std::span<const uint32_t> users) const {
  FVAE_CHECK(model_ != nullptr) << "Fit must be called before Embed";
  return model_->Encode(data, users);
}

Matrix FvaeAdapter::Score(const MultiFieldDataset& input,
                          std::span<const uint32_t> users, size_t field,
                          std::span<const uint64_t> candidates) const {
  FVAE_CHECK(model_ != nullptr) << "Fit must be called before Score";
  return model_->EncodeAndScore(input, users, field, candidates);
}

}  // namespace fvae::baselines
