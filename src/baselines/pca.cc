#include "baselines/pca.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace fvae::baselines {

namespace {

/// LinearOperator view of a MultiFieldDataset through a FeatureIndexer:
/// A[u][col(field, id)] = value. Never materializes the dense matrix.
class SparseDatasetOperator : public LinearOperator {
 public:
  SparseDatasetOperator(const MultiFieldDataset* dataset,
                        const FeatureIndexer* indexer)
      : dataset_(dataset), indexer_(indexer) {}

  size_t rows() const override { return dataset_->num_users(); }
  size_t cols() const override { return indexer_->num_columns(); }

  void Apply(const Matrix& x, Matrix* out) const override {
    FVAE_CHECK(x.rows() == cols()) << "operator apply shape";
    out->Resize(rows(), x.cols());
    for (size_t u = 0; u < rows(); ++u) {
      float* out_row = out->Row(u);
      for (size_t k = 0; k < dataset_->num_fields(); ++k) {
        for (const FeatureEntry& e : dataset_->UserField(u, k)) {
          auto col = indexer_->Column(static_cast<uint32_t>(k), e.id);
          if (!col.has_value()) continue;
          const float* x_row = x.Row(*col);
          for (size_t j = 0; j < x.cols(); ++j) {
            out_row[j] += e.value * x_row[j];
          }
        }
      }
    }
  }

  void ApplyTranspose(const Matrix& x, Matrix* out) const override {
    FVAE_CHECK(x.rows() == rows()) << "operator apply-transpose shape";
    out->Resize(cols(), x.cols());
    for (size_t u = 0; u < rows(); ++u) {
      const float* x_row = x.Row(u);
      for (size_t k = 0; k < dataset_->num_fields(); ++k) {
        for (const FeatureEntry& e : dataset_->UserField(u, k)) {
          auto col = indexer_->Column(static_cast<uint32_t>(k), e.id);
          if (!col.has_value()) continue;
          float* out_row = out->Row(*col);
          for (size_t j = 0; j < x.cols(); ++j) {
            out_row[j] += e.value * x_row[j];
          }
        }
      }
    }
  }

 private:
  const MultiFieldDataset* dataset_;
  const FeatureIndexer* indexer_;
};

}  // namespace

void PcaModel::Fit(const MultiFieldDataset& train) {
  indexer_ = FeatureIndexer::BuildExact(train);
  SparseDatasetOperator op(&train, &indexer_);
  const size_t rank = std::min(
      options_.latent_dim, std::min(op.rows(), op.cols()));
  FVAE_CHECK(rank > 0) << "empty training matrix";
  Rng rng(options_.seed);
  SvdResult svd = RandomizedSvd(op, rank, rng, options_.oversample,
                                options_.power_iterations);
  components_ = std::move(svd.v);  // J x rank
  singular_values_ = std::move(svd.singular_values);
}

Matrix PcaModel::Embed(const MultiFieldDataset& data,
                       std::span<const uint32_t> users) const {
  FVAE_CHECK(!components_.empty()) << "Fit must be called before Embed";
  const size_t rank = components_.cols();
  Matrix z(users.size(), rank);
  for (size_t i = 0; i < users.size(); ++i) {
    float* z_row = z.Row(i);
    for (size_t k = 0; k < data.num_fields(); ++k) {
      for (const FeatureEntry& e : data.UserField(users[i], k)) {
        auto col = indexer_.Column(static_cast<uint32_t>(k), e.id);
        if (!col.has_value()) continue;
        const float* v_row = components_.Row(*col);
        for (size_t d = 0; d < rank; ++d) z_row[d] += e.value * v_row[d];
      }
    }
  }
  return z;
}

Matrix PcaModel::Score(const MultiFieldDataset& input,
                       std::span<const uint32_t> users, size_t field,
                       std::span<const uint64_t> candidates) const {
  const Matrix z = Embed(input, users);
  const size_t rank = components_.cols();
  Matrix scores(users.size(), candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto col = indexer_.Column(static_cast<uint32_t>(field), candidates[c]);
    if (!col.has_value()) continue;  // unseen candidate scores 0
    const float* v_row = components_.Row(*col);
    for (size_t i = 0; i < users.size(); ++i) {
      const float* z_row = z.Row(i);
      double acc = 0.0;
      for (size_t d = 0; d < rank; ++d) acc += double(z_row[d]) * v_row[d];
      scores(i, c) = static_cast<float>(acc);
    }
  }
  return scores;
}

}  // namespace fvae::baselines
