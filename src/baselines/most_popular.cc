#include "baselines/most_popular.h"

#include "common/check.h"

namespace fvae::baselines {

void MostPopularModel::Fit(const MultiFieldDataset& train) {
  popularity_.assign(train.num_fields(), {});
  for (size_t k = 0; k < train.num_fields(); ++k) {
    for (size_t u = 0; u < train.num_users(); ++u) {
      for (const FeatureEntry& e : train.UserField(u, k)) {
        popularity_[k][e.id] += e.value;
      }
    }
  }
}

Matrix MostPopularModel::Embed(const MultiFieldDataset&,
                               std::span<const uint32_t> users) const {
  return Matrix(users.size(), 1);
}

Matrix MostPopularModel::Score(const MultiFieldDataset&,
                               std::span<const uint32_t> users, size_t field,
                               std::span<const uint64_t> candidates) const {
  FVAE_CHECK(field < popularity_.size()) << "Fit before Score";
  Matrix scores(users.size(), candidates.size());
  const auto& field_popularity = popularity_[field];
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto it = field_popularity.find(candidates[c]);
    const float score =
        it == field_popularity.end() ? 0.0f : float(it->second);
    for (size_t i = 0; i < users.size(); ++i) scores(i, c) = score;
  }
  return scores;
}

}  // namespace fvae::baselines
