#include "baselines/feature_indexer.h"

#include "common/check.h"

namespace fvae::baselines {

uint64_t FeatureIndexer::CombineKey(uint32_t field, uint64_t id) {
  // Mix the field into the high bits so identical IDs in different fields
  // stay distinct keys.
  uint64_t z = id + (uint64_t(field) + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

FeatureIndexer FeatureIndexer::BuildExact(const MultiFieldDataset& dataset) {
  FeatureIndexer indexer;
  indexer.num_fields_ = dataset.num_fields();
  indexer.exact_ = std::make_unique<DynamicHashTable>();
  for (size_t k = 0; k < dataset.num_fields(); ++k) {
    for (size_t u = 0; u < dataset.num_users(); ++u) {
      for (const FeatureEntry& e : dataset.UserField(u, k)) {
        const uint64_t key = CombineKey(static_cast<uint32_t>(k), e.id);
        const size_t before = indexer.exact_->size();
        const uint32_t column = indexer.exact_->GetOrInsert(key);
        if (indexer.exact_->size() > before) {
          FVAE_CHECK(column == indexer.owners_.size());
          indexer.owners_.emplace_back(static_cast<uint32_t>(k), e.id);
        }
      }
    }
  }
  return indexer;
}

FeatureIndexer FeatureIndexer::BuildHashed(size_t num_fields, int bits) {
  FeatureIndexer indexer;
  indexer.num_fields_ = num_fields;
  indexer.hasher_ = std::make_unique<FeatureHasher>(bits);
  return indexer;
}

std::optional<uint32_t> FeatureIndexer::Column(uint32_t field,
                                               uint64_t id) const {
  FVAE_CHECK(field < num_fields_) << "field out of range";
  if (hasher_ != nullptr) {
    return hasher_->Bucket(field, id);
  }
  return exact_->Find(CombineKey(field, id));
}

size_t FeatureIndexer::num_columns() const {
  if (hasher_ != nullptr) return hasher_->num_buckets();
  return exact_->size();
}

}  // namespace fvae::baselines
