#include "lookalike/ab_test.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "lookalike/lookalike_system.h"

namespace fvae::lookalike {

namespace {
// Field-salted key so pooled profiles keep fields distinct.
uint64_t FieldKey(uint32_t field, uint64_t id) {
  uint64_t z = id + (uint64_t(field) + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

LookalikeAbTest::LookalikeAbTest(
    std::vector<std::vector<float>> topic_mixture, const AbTestConfig& config)
    : config_(config), topic_mixture_(std::move(topic_mixture)) {
  FVAE_CHECK(!topic_mixture_.empty()) << "no users";
  FVAE_CHECK(config_.num_accounts > 0);
  const size_t num_users = topic_mixture_.size();
  const size_t num_topics = topic_mixture_[0].size();
  FVAE_CHECK(num_topics > 0);

  Rng rng(config_.seed);

  // Account topic profiles: peaked Dirichlet draws; each account's niche
  // is its top-2 profile topics.
  account_profiles_.Resize(config_.num_accounts, num_topics);
  account_pair_.resize(config_.num_accounts);
  const std::vector<double> alpha(num_topics, 0.15);
  for (size_t a = 0; a < config_.num_accounts; ++a) {
    const std::vector<double> profile = rng.Dirichlet(alpha);
    size_t top = 0, second = (num_topics > 1) ? 1 : 0;
    for (size_t t = 0; t < num_topics; ++t) {
      account_profiles_(a, t) = static_cast<float>(profile[t]);
      if (profile[t] > profile[top]) {
        second = top;
        top = t;
      } else if (t != top && profile[t] > profile[second]) {
        second = t;
      }
    }
    account_pair_[a] = {std::min<uint32_t>(top, second),
                        std::max<uint32_t>(top, second)};
  }

  // Users' top-2 topic pairs (the compositional interest).
  user_pair_.resize(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    size_t top = 0, second = (num_topics > 1) ? 1 : 0;
    for (size_t t = 0; t < num_topics; ++t) {
      if (topic_mixture_[u][t] > topic_mixture_[u][top]) {
        second = top;
        top = t;
      } else if (t != top &&
                 topic_mixture_[u][t] > topic_mixture_[u][second]) {
        second = t;
      }
    }
    user_pair_[u] = {std::min<uint32_t>(top, second),
                     std::max<uint32_t>(top, second)};
  }

  BuildSeedGraph(num_users, rng);
}

LookalikeAbTest::LookalikeAbTest(const MultiFieldDataset& profiles,
                                 const AbTestConfig& config)
    : config_(config), profile_mode_(true) {
  FVAE_CHECK(profiles.num_users() > 0) << "no users";
  FVAE_CHECK(config_.num_accounts > 0);
  const size_t num_users = profiles.num_users();

  // L2-normalized sparse tf vectors per user, all fields pooled.
  user_profile_.resize(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    auto& profile = user_profile_[u];
    double sq_sum = 0.0;
    for (size_t k = 0; k < profiles.num_fields(); ++k) {
      for (const FeatureEntry& e : profiles.UserField(u, k)) {
        profile[FieldKey(static_cast<uint32_t>(k), e.id)] += e.value;
      }
    }
    for (const auto& [key, value] : profile) {
      sq_sum += double(value) * value;
    }
    if (sq_sum > 0.0) {
      const float inv = static_cast<float>(1.0 / std::sqrt(sq_sum));
      for (auto& [key, value] : profile) value *= inv;
    }
  }

  // Account content signatures: profiles of random prototype users.
  Rng rng(config_.seed);
  account_prototype_.resize(config_.num_accounts);
  const std::vector<uint64_t> picks = rng.SampleWithoutReplacement(
      num_users, std::min<size_t>(config_.num_accounts, num_users));
  for (size_t a = 0; a < config_.num_accounts; ++a) {
    account_prototype_[a] =
        static_cast<uint32_t>(picks[a % picks.size()]);
  }

  BuildSeedGraph(num_users, rng);
}

void LookalikeAbTest::BuildSeedGraph(size_t num_users, Rng& rng) {
  // Per-user normalization: affinity is scaled so the user's best account
  // has affinity ~1 (keeps the response curve comparable across users).
  user_affinity_norm_.assign(num_users, 1e-6f);
  for (size_t u = 0; u < num_users; ++u) {
    for (size_t a = 0; a < config_.num_accounts; ++a) {
      user_affinity_norm_[u] = std::max(
          user_affinity_norm_[u],
          static_cast<float>(RawAffinity(static_cast<uint32_t>(u),
                                         static_cast<uint32_t>(a))));
    }
  }

  // Seed follow graph: each account is followed by its highest-affinity
  // users (with a little noise to avoid deterministic ties).
  seed_followers_.assign(config_.num_accounts, {});
  user_seed_follows_.assign(num_users, {});
  std::vector<std::pair<double, uint32_t>> ranked(num_users);
  for (size_t a = 0; a < config_.num_accounts; ++a) {
    for (size_t u = 0; u < num_users; ++u) {
      ranked[u] = {Affinity(static_cast<uint32_t>(u),
                            static_cast<uint32_t>(a)) +
                       0.02 * rng.Uniform(),
                   static_cast<uint32_t>(u)};
    }
    const size_t take =
        std::min(config_.seed_followers_per_account, num_users);
    std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                      [](const auto& x, const auto& y) {
                        return x.first > y.first;
                      });
    for (size_t i = 0; i < take; ++i) {
      seed_followers_[a].push_back(ranked[i].second);
      user_seed_follows_[ranked[i].second].push_back(
          static_cast<uint32_t>(a));
    }
  }
}

double LookalikeAbTest::RawAffinity(uint32_t user, uint32_t account) const {
  if (profile_mode_) {
    // Cosine overlap of L2-normalized sparse profiles; iterate the smaller.
    const auto& a = user_profile_[user];
    const auto& b = user_profile_[account_prototype_[account]];
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    double dot = 0.0;
    for (const auto& [key, value] : small) {
      auto it = large.find(key);
      if (it != large.end()) dot += double(value) * it->second;
    }
    return dot;
  }
  double raw = 0.0;
  for (size_t t = 0; t < account_profiles_.cols(); ++t) {
    raw += double(topic_mixture_[user][t]) * account_profiles_(account, t);
  }
  if (user_pair_[user] == account_pair_[account]) {
    raw += config_.pair_affinity_weight;
  }
  return raw;
}

double LookalikeAbTest::Affinity(uint32_t user, uint32_t account) const {
  FVAE_CHECK(user < user_affinity_norm_.size());
  FVAE_CHECK(account < config_.num_accounts);
  return std::min(
      1.0, RawAffinity(user, account) / double(user_affinity_norm_[user]));
}

ArmMetrics LookalikeAbTest::RunArm(const std::string& name,
                                   const Matrix& user_embeddings) {
  FVAE_CHECK(user_embeddings.rows() == user_affinity_norm_.size())
      << "embedding row count mismatch";
  ArmMetrics metrics;
  metrics.name = name;

  LookalikeSystem system(user_embeddings, seed_followers_);
  // A fixed per-arm RNG seed: both arms face identical user randomness, so
  // metric differences come from recall quality only.
  Rng rng(config_.seed ^ 0xAB);

  for (uint32_t u = 0; u < user_embeddings.rows(); ++u) {
    const std::vector<uint32_t> recalled = system.Recall(
        u, config_.recommendations_per_user, user_seed_follows_[u]);
    bool liked = false;
    bool shared = false;
    for (uint32_t account : recalled) {
      const double affinity = Affinity(u, account);
      const double p_click =
          std::min(0.95, config_.click_scale * affinity * affinity);
      if (!rng.Bernoulli(p_click)) continue;
      ++metrics.following_clicks;
      if (rng.Bernoulli(config_.like_given_click)) {
        ++metrics.likes;
        liked = true;
      }
      if (rng.Bernoulli(config_.share_given_click)) {
        ++metrics.shares;
        shared = true;
      }
    }
    if (liked) ++metrics.users_liked;
    if (shared) ++metrics.users_shared;
  }
  return metrics;
}

}  // namespace fvae::lookalike
