#ifndef FVAE_LOOKALIKE_AUDIENCE_EXPANDER_H_
#define FVAE_LOOKALIKE_AUDIENCE_EXPANDER_H_

#include <cstdint>
#include <vector>

#include "math/matrix.h"

namespace fvae::lookalike {

/// Classic look-alike audience extension: given a small *seed audience*
/// (e.g., users who converted on a campaign), rank the remaining users by
/// similarity to the seed and return the top-N as the extended audience —
/// the paper's motivating use of user embeddings ("extend audiences with
/// high quality long-tail contents", §V-F).
///
/// Seed pooling is the same average pooling the account embeddings use;
/// ranking is cosine similarity (scale-invariant, robust to embedding norm
/// differences across users).
class AudienceExpander {
 public:
  /// `user_embeddings`: one row per user; must outlive the expander.
  explicit AudienceExpander(const Matrix& user_embeddings);

  /// Top `count` non-seed users most similar to the pooled seed audience,
  /// most similar first.
  std::vector<uint32_t> Expand(const std::vector<uint32_t>& seed_users,
                               size_t count) const;

  /// The pooled (mean) embedding of a user set.
  std::vector<float> PoolEmbedding(
      const std::vector<uint32_t>& users) const;

 private:
  const Matrix& embeddings_;
};

}  // namespace fvae::lookalike

#endif  // FVAE_LOOKALIKE_AUDIENCE_EXPANDER_H_
