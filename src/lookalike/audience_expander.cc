#include "lookalike/audience_expander.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "math/vector_ops.h"

namespace fvae::lookalike {

AudienceExpander::AudienceExpander(const Matrix& user_embeddings)
    : embeddings_(user_embeddings) {
  FVAE_CHECK(user_embeddings.rows() > 0) << "no users";
}

std::vector<float> AudienceExpander::PoolEmbedding(
    const std::vector<uint32_t>& users) const {
  FVAE_CHECK(!users.empty()) << "empty user set";
  std::vector<float> pooled(embeddings_.cols(), 0.0f);
  for (uint32_t u : users) {
    FVAE_CHECK(u < embeddings_.rows()) << "user out of range";
    const float* row = embeddings_.Row(u);
    for (size_t d = 0; d < pooled.size(); ++d) pooled[d] += row[d];
  }
  const float inv = 1.0f / float(users.size());
  for (float& v : pooled) v *= inv;
  return pooled;
}

std::vector<uint32_t> AudienceExpander::Expand(
    const std::vector<uint32_t>& seed_users, size_t count) const {
  const std::vector<float> pooled = PoolEmbedding(seed_users);
  const std::unordered_set<uint32_t> seeds(seed_users.begin(),
                                           seed_users.end());
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(embeddings_.rows());
  for (size_t u = 0; u < embeddings_.rows(); ++u) {
    if (seeds.count(static_cast<uint32_t>(u))) continue;
    const double similarity = CosineSimilarity(
        pooled, {embeddings_.Row(u), embeddings_.cols()});
    scored.emplace_back(-similarity, static_cast<uint32_t>(u));
  }
  const size_t take = std::min(count, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  std::vector<uint32_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace fvae::lookalike
