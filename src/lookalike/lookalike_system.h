#ifndef FVAE_LOOKALIKE_LOOKALIKE_SYSTEM_H_
#define FVAE_LOOKALIKE_LOOKALIKE_SYSTEM_H_

#include <cstdint>
#include <vector>

#include "math/matrix.h"

namespace fvae::lookalike {

/// The recall stage of the paper's look-alike deployment (§V-F): account
/// (uploader) embeddings are built by average-pooling the embeddings of the
/// users who already follow the account, and candidate accounts are
/// recalled for a user by L2 similarity between the user's embedding and
/// the account embeddings.
class LookalikeSystem {
 public:
  /// `user_embeddings`: one row per user. `followers[a]` lists the user
  /// rows following account `a` (accounts with no followers get a zero
  /// embedding and are effectively never recalled).
  LookalikeSystem(const Matrix& user_embeddings,
                  const std::vector<std::vector<uint32_t>>& followers);

  /// Top-`count` account indices for user row `user`, most similar first
  /// (smallest L2 distance). Excludes accounts in `exclude` (e.g., already
  /// followed).
  std::vector<uint32_t> Recall(uint32_t user, size_t count,
                               const std::vector<uint32_t>& exclude) const;

  const Matrix& account_embeddings() const { return account_embeddings_; }
  size_t num_accounts() const { return account_embeddings_.rows(); }

 private:
  const Matrix& user_embeddings_;
  Matrix account_embeddings_;
};

}  // namespace fvae::lookalike

#endif  // FVAE_LOOKALIKE_LOOKALIKE_SYSTEM_H_
