#include "lookalike/ann_index.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "math/vector_ops.h"

namespace fvae::lookalike {

namespace {

size_t NearestCentroid(const Matrix& centroids, std::span<const float> x) {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.rows(); ++c) {
    const double dist =
        SquaredDistance(x, {centroids.Row(c), centroids.cols()});
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

}  // namespace

AnnIndex::AnnIndex(const Matrix& points, const Options& options)
    : points_(points) {
  FVAE_CHECK(points.rows() > 0) << "empty index";
  const size_t n = points.rows();
  const size_t dim = points.cols();
  const size_t cells = std::max<size_t>(1, std::min(options.num_cells, n));
  Rng rng(options.seed);

  // k-means++: seed centroids from distinct random points (plain random
  // restarts suffice at this scale), then Lloyd iterations.
  centroids_.Resize(cells, dim);
  const std::vector<uint64_t> seeds = rng.SampleWithoutReplacement(n, cells);
  for (size_t c = 0; c < cells; ++c) {
    const float* src = points.Row(seeds[c]);
    std::copy(src, src + dim, centroids_.Row(c));
  }

  std::vector<uint32_t> assignment(n, 0);
  std::vector<size_t> counts(cells);
  for (size_t iter = 0; iter < options.kmeans_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t nearest = static_cast<uint32_t>(
          NearestCentroid(centroids_, {points.Row(i), dim}));
      if (nearest != assignment[i]) {
        assignment[i] = nearest;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    centroids_.SetZero();
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      float* centroid = centroids_.Row(assignment[i]);
      const float* src = points.Row(i);
      for (size_t d = 0; d < dim; ++d) centroid[d] += src[d];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < cells; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cell from a random point.
        const float* src = points.Row(rng.UniformInt(n));
        std::copy(src, src + dim, centroids_.Row(c));
        continue;
      }
      const float inv = 1.0f / float(counts[c]);
      float* centroid = centroids_.Row(c);
      for (size_t d = 0; d < dim; ++d) centroid[d] *= inv;
    }
  }

  // Final assignment -> posting lists.
  cells_.assign(cells, {});
  for (size_t i = 0; i < n; ++i) {
    cells_[NearestCentroid(centroids_, {points.Row(i), dim})].push_back(
        static_cast<uint32_t>(i));
  }
}

std::vector<uint32_t> AnnIndex::Query(std::span<const float> query,
                                      size_t top_k, size_t nprobe) const {
  FVAE_CHECK(query.size() == points_.cols()) << "query dim mismatch";
  nprobe = std::max<size_t>(1, std::min(nprobe, cells_.size()));

  // Rank cells by centroid distance.
  std::vector<std::pair<double, uint32_t>> cell_order(cells_.size());
  for (size_t c = 0; c < cells_.size(); ++c) {
    cell_order[c] = {
        SquaredDistance(query, {centroids_.Row(c), centroids_.cols()}),
        static_cast<uint32_t>(c)};
  }
  std::partial_sort(cell_order.begin(), cell_order.begin() + nprobe,
                    cell_order.end());

  // Exact ranking within the probed cells.
  std::vector<std::pair<double, uint32_t>> scored;
  for (size_t p = 0; p < nprobe; ++p) {
    for (uint32_t idx : cells_[cell_order[p].second]) {
      scored.emplace_back(
          SquaredDistance(query, {points_.Row(idx), points_.cols()}), idx);
    }
  }
  const size_t take = std::min(top_k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  std::vector<uint32_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<uint32_t> AnnIndex::QueryExact(std::span<const float> query,
                                           size_t top_k) const {
  FVAE_CHECK(query.size() == points_.cols()) << "query dim mismatch";
  std::vector<std::pair<double, uint32_t>> scored(points_.rows());
  for (size_t i = 0; i < points_.rows(); ++i) {
    scored[i] = {SquaredDistance(query, {points_.Row(i), points_.cols()}),
                 static_cast<uint32_t>(i)};
  }
  const size_t take = std::min(top_k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  std::vector<uint32_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

double AnnIndex::MeasureRecall(const Matrix& queries, size_t top_k,
                               size_t nprobe) const {
  FVAE_CHECK(queries.rows() > 0);
  double total = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    std::span<const float> query{queries.Row(q), queries.cols()};
    const auto exact = QueryExact(query, top_k);
    const auto approx = Query(query, top_k, nprobe);
    size_t hits = 0;
    for (uint32_t e : exact) {
      for (uint32_t a : approx) {
        if (a == e) {
          ++hits;
          break;
        }
      }
    }
    total += exact.empty() ? 1.0 : double(hits) / double(exact.size());
  }
  return total / double(queries.rows());
}

}  // namespace fvae::lookalike
