#ifndef FVAE_LOOKALIKE_AB_TEST_H_
#define FVAE_LOOKALIKE_AB_TEST_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "math/matrix.h"

namespace fvae::lookalike {

/// Configuration of the simulated uploader-recommendation A/B test
/// (stand-in for the production experiment of paper §V-F; see DESIGN.md §5).
struct AbTestConfig {
  size_t num_accounts = 200;
  /// Accounts recommended to each user per impression round.
  size_t recommendations_per_user = 10;
  /// Users initially following each account (seed follow graph), drawn from
  /// the account's best-affinity users.
  size_t seed_followers_per_account = 20;
  /// Behavioural response curve: P(click) = click_scale * affinity^2,
  /// capped at 0.95; likes/shares are conditional on a click.
  double click_scale = 1.6;
  double like_given_click = 0.30;
  double share_given_click = 0.12;
  /// Weight of the compositional affinity term: an account whose niche
  /// (its top-2 profile topics) matches the user's own top-2 topic pair
  /// gets this bonus. Real uploader audiences are niche intersections
  /// ("sports x gaming"), not linear topic blends — this is the part of
  /// the ground truth that rewards representations which capture feature
  /// interactions rather than mean-pooled topic proportions.
  double pair_affinity_weight = 0.6;
  uint64_t seed = 55;
};

/// Online metrics of one A/B arm (Table VI rows).
struct ArmMetrics {
  std::string name;
  size_t following_clicks = 0;
  size_t likes = 0;
  size_t shares = 0;
  size_t users_liked = 0;
  size_t users_shared = 0;

  double AvgLike() const {
    return users_liked == 0 ? 0.0 : double(likes) / double(users_liked);
  }
  double AvgShare() const {
    return users_shared == 0 ? 0.0 : double(shares) / double(users_shared);
  }
};

/// Simulated look-alike A/B test.
///
/// Ground truth: each account has a Dirichlet topic profile; a user's true
/// affinity for an account is the inner product of the user's latent topic
/// mixture (from the profile generator) and the account profile, normalized
/// to [0, 1] per user. Each arm builds account embeddings from the arm's
/// *user embeddings* via average pooling, recalls top-N accounts per user
/// by L2 similarity, and the simulated users then click / like / share
/// according to their true affinities. Better embeddings recall
/// higher-affinity accounts and therefore score better on every metric —
/// the comparison the paper's production test makes.
class LookalikeAbTest {
 public:
  /// Latent-driven ground truth: `topic_mixture[u]` is user u's topic
  /// mixture; accounts get Dirichlet topic profiles and an affinity that is
  /// linear in topic space plus a top-2-pair niche bonus.
  LookalikeAbTest(std::vector<std::vector<float>> topic_mixture,
                  const AbTestConfig& config);

  /// Profile-driven ground truth (closer to production): each account's
  /// content signature is the profile of a randomly chosen prototype user,
  /// and a user's affinity for an account is the cosine overlap between
  /// their sparse feature profiles (all fields pooled, tf-weighted). Users
  /// follow uploaders whose *content* matches what they consume — the
  /// signal a reconstruction-trained representation must preserve.
  LookalikeAbTest(const MultiFieldDataset& profiles,
                  const AbTestConfig& config);

  /// Runs one arm with the given user embeddings (row u = user u).
  ArmMetrics RunArm(const std::string& name, const Matrix& user_embeddings);

  /// True affinity in [0, 1] of user u for account a.
  double Affinity(uint32_t user, uint32_t account) const;

  /// The seed follow graph (account -> follower users), shared by all arms.
  const std::vector<std::vector<uint32_t>>& seed_followers() const {
    return seed_followers_;
  }

 private:
  /// Unnormalized affinity (mode-dependent).
  double RawAffinity(uint32_t user, uint32_t account) const;

  /// Shared tail of both constructors: per-user normalization and the seed
  /// follow graph, built from RawAffinity.
  void BuildSeedGraph(size_t num_users, Rng& rng);

  AbTestConfig config_;
  bool profile_mode_ = false;
  // Latent mode state.
  std::vector<std::vector<float>> topic_mixture_;
  // Profile mode state: sparse tf vectors (L2-normalized) per user, and
  // the prototype signature per account.
  std::vector<std::unordered_map<uint64_t, float>> user_profile_;
  std::vector<uint32_t> account_prototype_;
  Matrix account_profiles_;  // num_accounts x num_topics
  std::vector<std::pair<uint32_t, uint32_t>> account_pair_;  // sorted top-2
  std::vector<std::pair<uint32_t, uint32_t>> user_pair_;     // sorted top-2
  std::vector<std::vector<uint32_t>> seed_followers_;
  std::vector<std::vector<uint32_t>> user_seed_follows_;  // user -> accounts
  std::vector<float> user_affinity_norm_;  // per-user max affinity
};

}  // namespace fvae::lookalike

#endif  // FVAE_LOOKALIKE_AB_TEST_H_
