#ifndef FVAE_LOOKALIKE_ANN_INDEX_H_
#define FVAE_LOOKALIKE_ANN_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "math/matrix.h"

namespace fvae::lookalike {

/// IVF-flat approximate nearest-neighbor index over L2 distance.
///
/// The production look-alike system must recall similar accounts from
/// millions of candidates per request; brute force does not scale. This is
/// the standard inverted-file design: k-means coarse quantizer, one posting
/// list per centroid, query probes the `nprobe` nearest lists and ranks
/// their members exactly.
class AnnIndex {
 public:
  struct Options {
    /// Number of k-means cells (rule of thumb: ~sqrt(num_points)).
    size_t num_cells = 64;
    size_t kmeans_iterations = 10;
    uint64_t seed = 97;
  };

  /// Builds the index over the rows of `points` (copied).
  AnnIndex(const Matrix& points, const Options& options);

  /// Returns the indices of the (approximately) `top_k` nearest rows to
  /// `query`, nearest first. `nprobe` cells are scanned (clamped to the
  /// cell count); larger nprobe = better recall, more work.
  std::vector<uint32_t> Query(std::span<const float> query, size_t top_k,
                              size_t nprobe) const;

  /// Exact brute-force reference (for recall measurement and tests).
  std::vector<uint32_t> QueryExact(std::span<const float> query,
                                   size_t top_k) const;

  size_t num_points() const { return points_.rows(); }
  size_t num_cells() const { return centroids_.rows(); }

  /// Fraction of QueryExact(top_k) results found by Query(top_k, nprobe),
  /// averaged over the given queries.
  double MeasureRecall(const Matrix& queries, size_t top_k,
                       size_t nprobe) const;

 private:
  Matrix points_;
  Matrix centroids_;                        // num_cells x dim
  std::vector<std::vector<uint32_t>> cells_;  // posting lists
};

}  // namespace fvae::lookalike

#endif  // FVAE_LOOKALIKE_ANN_INDEX_H_
