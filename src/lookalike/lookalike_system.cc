#include "lookalike/lookalike_system.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "math/vector_ops.h"

namespace fvae::lookalike {

LookalikeSystem::LookalikeSystem(
    const Matrix& user_embeddings,
    const std::vector<std::vector<uint32_t>>& followers)
    : user_embeddings_(user_embeddings) {
  const size_t dim = user_embeddings.cols();
  account_embeddings_.Resize(followers.size(), dim);
  for (size_t a = 0; a < followers.size(); ++a) {
    if (followers[a].empty()) continue;
    float* acc = account_embeddings_.Row(a);
    for (uint32_t u : followers[a]) {
      FVAE_CHECK(u < user_embeddings.rows()) << "follower index out of range";
      const float* row = user_embeddings.Row(u);
      for (size_t d = 0; d < dim; ++d) acc[d] += row[d];
    }
    const float inv = 1.0f / float(followers[a].size());
    for (size_t d = 0; d < dim; ++d) acc[d] *= inv;
  }
}

std::vector<uint32_t> LookalikeSystem::Recall(
    uint32_t user, size_t count,
    const std::vector<uint32_t>& exclude) const {
  FVAE_CHECK(user < user_embeddings_.rows()) << "user out of range";
  const size_t dim = user_embeddings_.cols();
  const std::unordered_set<uint32_t> excluded(exclude.begin(), exclude.end());

  std::span<const float> u{user_embeddings_.Row(user), dim};
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(num_accounts());
  for (size_t a = 0; a < num_accounts(); ++a) {
    if (excluded.count(static_cast<uint32_t>(a))) continue;
    const double dist =
        SquaredDistance(u, {account_embeddings_.Row(a), dim});
    scored.emplace_back(dist, static_cast<uint32_t>(a));
  }
  const size_t take = std::min(count, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  std::vector<uint32_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace fvae::lookalike
