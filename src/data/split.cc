#include "data/split.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace fvae {

DatasetSplit SplitUsers(size_t num_users, double valid_fraction,
                        double test_fraction, Rng& rng) {
  FVAE_CHECK(valid_fraction >= 0.0 && test_fraction >= 0.0 &&
             valid_fraction + test_fraction <= 1.0)
      << "bad split fractions";
  std::vector<uint32_t> order(num_users);
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);

  const size_t num_valid = static_cast<size_t>(num_users * valid_fraction);
  const size_t num_test = static_cast<size_t>(num_users * test_fraction);
  DatasetSplit split;
  split.valid.assign(order.begin(), order.begin() + num_valid);
  split.test.assign(order.begin() + num_valid,
                    order.begin() + num_valid + num_test);
  split.train.assign(order.begin() + num_valid + num_test, order.end());
  return split;
}

MultiFieldDataset Subset(const MultiFieldDataset& source,
                         const std::vector<uint32_t>& users) {
  MultiFieldDataset::Builder builder(source.fields());
  std::vector<std::vector<FeatureEntry>> per_field(source.num_fields());
  for (uint32_t u : users) {
    for (size_t k = 0; k < source.num_fields(); ++k) {
      auto span = source.UserField(u, k);
      per_field[k].assign(span.begin(), span.end());
    }
    builder.AddUser(per_field);
  }
  return builder.Build();
}

MultiFieldDataset MaskField(const MultiFieldDataset& source,
                            size_t held_out_field) {
  FVAE_CHECK(held_out_field < source.num_fields());
  MultiFieldDataset::Builder builder(source.fields());
  std::vector<std::vector<FeatureEntry>> per_field(source.num_fields());
  for (size_t u = 0; u < source.num_users(); ++u) {
    for (size_t k = 0; k < source.num_fields(); ++k) {
      per_field[k].clear();
      if (k == held_out_field) continue;
      auto span = source.UserField(u, k);
      per_field[k].assign(span.begin(), span.end());
    }
    builder.AddUser(per_field);
  }
  return builder.Build();
}

ReconstructionSplit HoldOutWithinUsers(const MultiFieldDataset& source,
                                       double holdout_fraction, Rng& rng) {
  FVAE_CHECK(holdout_fraction >= 0.0 && holdout_fraction < 1.0)
      << "holdout fraction out of range";
  ReconstructionSplit result;
  result.held_out.resize(source.num_users());

  MultiFieldDataset::Builder builder(source.fields());
  std::vector<std::vector<FeatureEntry>> kept(source.num_fields());
  for (size_t u = 0; u < source.num_users(); ++u) {
    result.held_out[u].resize(source.num_fields());
    for (size_t k = 0; k < source.num_fields(); ++k) {
      kept[k].clear();
      auto span = source.UserField(u, k);
      if (span.size() < 2) {
        // Too few entries to split: keep everything as input.
        kept[k].assign(span.begin(), span.end());
        continue;
      }
      size_t num_hold =
          static_cast<size_t>(double(span.size()) * holdout_fraction);
      num_hold = std::min(num_hold, span.size() - 1);  // keep >= 1 as input
      std::vector<uint64_t> picks =
          rng.SampleWithoutReplacement(span.size(), num_hold);
      std::vector<bool> held(span.size(), false);
      for (uint64_t p : picks) held[p] = true;
      for (size_t i = 0; i < span.size(); ++i) {
        if (held[i]) {
          result.held_out[u][k].push_back(span[i]);
        } else {
          kept[k].push_back(span[i]);
        }
      }
    }
    builder.AddUser(kept);
  }
  result.input = builder.Build();
  return result;
}

}  // namespace fvae
