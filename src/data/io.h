#ifndef FVAE_DATA_IO_H_
#define FVAE_DATA_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"

namespace fvae {

/// Binary dataset serialization.
///
/// Format (little-endian):
///   magic "FVDS", uint32 version,
///   uint32 num_fields, per field: uint32 name_len, name bytes, uint8 sparse,
///   uint64 num_users,
///   per field: uint64 nnz, (num_users + 1) x uint64 offsets,
///              then nnz x (uint64 id, float value).
Status SaveDatasetBinary(const MultiFieldDataset& dataset,
                         const std::string& path);

Result<MultiFieldDataset> LoadDatasetBinary(const std::string& path);

/// Text serialization, one user per line:
///   field entries separated by '|', entries "id:value" separated by ','.
/// First line is a header: "#fields name[:sparse],name,...".
/// Intended for small fixtures and interchange with scripts.
Status SaveDatasetText(const MultiFieldDataset& dataset,
                       const std::string& path);

Result<MultiFieldDataset> LoadDatasetText(const std::string& path);

}  // namespace fvae

#endif  // FVAE_DATA_IO_H_
