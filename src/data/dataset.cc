#include "data/dataset.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace fvae {

MultiFieldDataset::Builder::Builder(std::vector<FieldSchema> fields)
    : fields_(std::move(fields)) {
  FVAE_CHECK(!fields_.empty()) << "a dataset needs at least one field";
  entries_.resize(fields_.size());
  offsets_.assign(fields_.size(), std::vector<uint64_t>{0});
}

uint32_t MultiFieldDataset::Builder::AddUser(
    const std::vector<std::vector<FeatureEntry>>& features_per_field) {
  FVAE_CHECK(features_per_field.size() == fields_.size())
      << "expected " << fields_.size() << " fields, got "
      << features_per_field.size();
  for (size_t k = 0; k < fields_.size(); ++k) {
    for (const FeatureEntry& e : features_per_field[k]) {
      FVAE_CHECK(e.value >= 0.0f) << "negative feature value";
      entries_[k].push_back(e);
    }
    offsets_[k].push_back(entries_[k].size());
  }
  return static_cast<uint32_t>(offsets_[0].size() - 2);
}

MultiFieldDataset MultiFieldDataset::Builder::Build() {
  MultiFieldDataset dataset;
  dataset.fields_ = std::move(fields_);
  dataset.num_users_ = offsets_.empty() ? 0 : offsets_[0].size() - 1;
  dataset.entries_ = std::move(entries_);
  dataset.offsets_ = std::move(offsets_);
  fields_.clear();
  entries_.clear();
  offsets_.clear();
  return dataset;
}

double MultiFieldDataset::UserFieldTotal(size_t u, size_t k) const {
  double total = 0.0;
  for (const FeatureEntry& e : UserField(u, k)) total += e.value;
  return total;
}

size_t MultiFieldDataset::TotalNnz() const {
  size_t total = 0;
  for (const auto& field_entries : entries_) total += field_entries.size();
  return total;
}

std::vector<uint64_t> MultiFieldDataset::DistinctFeatureIds(size_t k) const {
  FVAE_CHECK(k < fields_.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(entries_[k].size());
  for (const FeatureEntry& e : entries_[k]) seen.insert(e.id);
  std::vector<uint64_t> ids(seen.begin(), seen.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

double MultiFieldDataset::AverageFeaturesPerUser() const {
  if (num_users_ == 0) return 0.0;
  return double(TotalNnz()) / double(num_users_);
}

std::string MultiFieldDataset::Summary() const {
  std::ostringstream out;
  out << "MultiFieldDataset{users=" << num_users_
      << ", fields=" << fields_.size();
  for (size_t k = 0; k < fields_.size(); ++k) {
    out << ", " << fields_[k].name << ":nnz=" << entries_[k].size();
  }
  out << ", avg_features/user=" << AverageFeaturesPerUser() << "}";
  return out.str();
}

}  // namespace fvae
