#include "data/batching.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "obs/metrics_registry.h"

namespace fvae {

BatchIterator::BatchIterator(size_t num_users, size_t batch_size,
                             uint64_t seed, bool drop_remainder)
    : batch_size_(batch_size), drop_remainder_(drop_remainder), rng_(seed) {
  FVAE_CHECK(num_users > 0) << "empty dataset";
  FVAE_CHECK(batch_size > 0) << "batch size must be positive";
  order_.resize(num_users);
  std::iota(order_.begin(), order_.end(), 0u);
  rng_.Shuffle(order_);
}

bool BatchIterator::Next(std::vector<uint32_t>* batch) {
  batch->clear();
  if (cursor_ >= order_.size()) return false;
  const size_t remaining = order_.size() - cursor_;
  if (drop_remainder_ && remaining < batch_size_) {
    cursor_ = order_.size();
    return false;
  }
  const size_t take = std::min(batch_size_, remaining);
  batch->assign(order_.begin() + cursor_, order_.begin() + cursor_ + take);
  cursor_ += take;
  static obs::Counter& batches_counter =
      obs::MetricsRegistry::Global().Counter("data.batches");
  static obs::Counter& rows_counter =
      obs::MetricsRegistry::Global().Counter("data.rows");
  batches_counter.Increment();
  rows_counter.Add(take);
  return true;
}

void BatchIterator::NewEpoch() {
  cursor_ = 0;
  rng_.Shuffle(order_);
}

size_t BatchIterator::BatchesPerEpoch() const {
  if (drop_remainder_) return order_.size() / batch_size_;
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace fvae
