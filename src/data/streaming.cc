#include "data/streaming.h"

#include <cstring>
#include <memory>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"

namespace fvae {

namespace {
constexpr char kMagic[4] = {'F', 'V', 'S', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}
}  // namespace

Status StreamingDatasetWriter::Open(const std::string& path,
                                    std::vector<FieldSchema> fields) {
  if (open_) return Status::FailedPrecondition("writer already open");
  if (fields.empty()) return Status::InvalidArgument("no fields");
  FVAE_RETURN_IF_ERROR(writer_.Open(path, "streaming.save"));
  fields_ = std::move(fields);
  users_written_ = 0;

  std::ostream& out = writer_.stream();
  out.write(kMagic, 4);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(fields_.size()));
  for (const FieldSchema& field : fields_) {
    WritePod(out, static_cast<uint32_t>(field.name.size()));
    out.write(field.name.data(),
              static_cast<std::streamsize>(field.name.size()));
    WritePod(out, static_cast<uint8_t>(field.is_sparse ? 1 : 0));
  }
  if (!out) return Status::IoError("header write failed");
  open_ = true;
  return Status::Ok();
}

Status StreamingDatasetWriter::WriteUser(
    const std::vector<std::vector<FeatureEntry>>& features_per_field) {
  if (!open_) return Status::FailedPrecondition("writer not open");
  if (features_per_field.size() != fields_.size()) {
    return Status::InvalidArgument("field count mismatch");
  }
  std::ostream& out = writer_.stream();
  for (const auto& field_features : features_per_field) {
    WritePod(out, static_cast<uint32_t>(field_features.size()));
    for (const FeatureEntry& e : field_features) {
      WritePod(out, e.id);
      WritePod(out, e.value);
    }
  }
  if (!out) return Status::IoError("record write failed");
  ++users_written_;
  static obs::Counter& written_counter =
      obs::MetricsRegistry::Global().Counter("data.stream_users_written");
  written_counter.Increment();
  return Status::Ok();
}

Status StreamingDatasetWriter::Close() {
  if (!open_) return Status::Ok();
  open_ = false;
  // Commit samples the stream state *after* the closing flush — the old
  // pre-close check here reported Ok for write errors the OS only
  // surfaced when the buffer actually hit the disk — then fsyncs and
  // atomically renames the temp file into place.
  return writer_.Commit();
}

Result<StreamingDatasetReader> StreamingDatasetReader::Open(
    const std::string& path) {
  auto in = std::make_shared<std::ifstream>(path, std::ios::binary);
  if (!*in) return Status::IoError("cannot open for read: " + path);

  char magic[4];
  in->read(magic, 4);
  if (!*in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(*in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported stream version");
  }
  uint32_t num_fields = 0;
  if (!ReadPod(*in, &num_fields) || num_fields == 0 || num_fields > 1024) {
    return Status::InvalidArgument("bad field count");
  }
  StreamingDatasetReader reader;
  reader.fields_.resize(num_fields);
  for (FieldSchema& field : reader.fields_) {
    uint32_t name_len = 0;
    if (!ReadPod(*in, &name_len) || name_len > 4096) {
      return Status::InvalidArgument("bad field name");
    }
    field.name.resize(name_len);
    in->read(field.name.data(), name_len);
    uint8_t sparse = 0;
    if (!ReadPod(*in, &sparse)) return Status::IoError("truncated header");
    field.is_sparse = sparse != 0;
  }
  reader.in_ = std::move(in);
  return reader;
}

bool StreamingDatasetReader::NextUser(
    std::vector<std::vector<FeatureEntry>>* features_per_field) {
  if (!status_.ok() || in_ == nullptr) return false;
  // IO-wait accounting: time spent decoding one record off the stream.
  Stopwatch read_watch;
  features_per_field->assign(fields_.size(), {});
  for (size_t k = 0; k < fields_.size(); ++k) {
    uint32_t count = 0;
    if (!ReadPod(*in_, &count)) {
      if (k == 0 && in_->eof()) return false;  // clean EOF between records
      status_ = Status::IoError("truncated record");
      return false;
    }
    if (count > (1u << 24)) {
      status_ = Status::InvalidArgument("implausible feature count");
      return false;
    }
    auto& field_features = (*features_per_field)[k];
    field_features.resize(count);
    for (FeatureEntry& e : field_features) {
      if (!ReadPod(*in_, &e.id) || !ReadPod(*in_, &e.value)) {
        status_ = Status::IoError("truncated entry");
        return false;
      }
    }
  }
  ++users_read_;
  static obs::Counter& read_counter =
      obs::MetricsRegistry::Global().Counter("data.stream_users");
  static LatencyHistogram& read_us_histo =
      obs::MetricsRegistry::Global().Histo("data.stream_read_us");
  read_counter.Increment();
  read_us_histo.Record(read_watch.ElapsedSeconds() * 1e6);
  return true;
}

Result<MultiFieldDataset> StreamingDatasetReader::ReadAll() {
  MultiFieldDataset::Builder builder(fields_);
  std::vector<std::vector<FeatureEntry>> per_field;
  while (NextUser(&per_field)) {
    builder.AddUser(per_field);
  }
  FVAE_RETURN_IF_ERROR(status_);
  return builder.Build();
}

}  // namespace fvae
