#ifndef FVAE_DATA_STREAMING_H_
#define FVAE_DATA_STREAMING_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"

namespace fvae {

/// Streaming user-record format for datasets too large to hold in memory —
/// the regime the paper's billion-scale offline pipeline lives in. Records
/// are written and read one user at a time; readers never materialize the
/// full dataset.
///
/// File layout (little-endian): magic "FVST", uint32 version,
/// uint32 num_fields, per field (uint32 name_len, name, uint8 sparse),
/// then one record per user:
///   per field: uint32 count, count x (uint64 id, float value)
/// terminated by EOF.
///
/// Writes are crash-safe: records stream into `<path>.tmp` and the file
/// appears at `path` only when Close() commits, so readers never observe a
/// half-written stream (and a crashed writer leaves at most harmless
/// `.tmp` debris). Failpoints fire under the `streaming.save.*` prefix.
class StreamingDatasetWriter {
 public:
  StreamingDatasetWriter() = default;
  // Destructors can't propagate errors; callers wanting the close status
  // call Close() explicitly first (it is idempotent).
  ~StreamingDatasetWriter() { (void)Close(); }

  StreamingDatasetWriter(const StreamingDatasetWriter&) = delete;
  StreamingDatasetWriter& operator=(const StreamingDatasetWriter&) = delete;

  /// Opens `path` for writing and emits the header.
  Status Open(const std::string& path, std::vector<FieldSchema> fields);

  /// Appends one user; `features_per_field` must match the schema arity.
  Status WriteUser(
      const std::vector<std::vector<FeatureEntry>>& features_per_field);

  /// Flushes, fsyncs, and atomically publishes the file; further writes
  /// are errors. Idempotent. Deferred write errors that the OS reports
  /// only at the final flush (e.g. ENOSPC) surface here.
  Status Close();

  size_t users_written() const { return users_written_; }

 private:
  AtomicFileWriter writer_;
  std::vector<FieldSchema> fields_;
  size_t users_written_ = 0;
  bool open_ = false;
};

/// Sequential reader over a StreamingDatasetWriter file.
class StreamingDatasetReader {
 public:
  /// Opens `path` and parses the header.
  static Result<StreamingDatasetReader> Open(const std::string& path);

  /// Reads the next user into `features_per_field` (resized to the field
  /// count). Returns false at clean EOF; corrupt trailing data is an
  /// FVAE_CHECK-free error reported through status().
  bool NextUser(std::vector<std::vector<FeatureEntry>>* features_per_field);

  /// Ok unless a record was malformed.
  const Status& status() const { return status_; }

  const std::vector<FieldSchema>& fields() const { return fields_; }
  size_t users_read() const { return users_read_; }

  /// Convenience: drains the remaining records into an in-memory dataset.
  Result<MultiFieldDataset> ReadAll();

 private:
  StreamingDatasetReader() = default;

  std::shared_ptr<std::ifstream> in_;  // shared: reader must stay movable
  std::vector<FieldSchema> fields_;
  size_t users_read_ = 0;
  Status status_;
};

}  // namespace fvae

#endif  // FVAE_DATA_STREAMING_H_
