#include "data/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/string_util.h"

namespace fvae {

namespace {

constexpr char kMagic[4] = {'F', 'V', 'D', 'S'};
constexpr uint32_t kVersionV1 = 1;
// v2 appends a CRC-32 of the body (everything after the 8-byte header) as
// a 4-byte footer, and all writes go through the atomic-rename path.
constexpr uint32_t kVersion = 2;

}  // namespace

Status SaveDatasetBinary(const MultiFieldDataset& dataset,
                         const std::string& path) {
  AtomicFileWriter writer;
  FVAE_RETURN_IF_ERROR(writer.Open(path, "data_io.save"));
  std::ostream& header = writer.stream();
  header.write(kMagic, 4);
  WritePod(header, kVersion);

  std::ostringstream body;
  std::ostream& out = body;
  WritePod(out, static_cast<uint32_t>(dataset.num_fields()));
  for (const FieldSchema& field : dataset.fields()) {
    WritePod(out, static_cast<uint32_t>(field.name.size()));
    out.write(field.name.data(),
              static_cast<std::streamsize>(field.name.size()));
    WritePod(out, static_cast<uint8_t>(field.is_sparse ? 1 : 0));
  }
  WritePod(out, static_cast<uint64_t>(dataset.num_users()));
  for (size_t k = 0; k < dataset.num_fields(); ++k) {
    WritePod(out, static_cast<uint64_t>(dataset.FieldNnz(k)));
    uint64_t offset = 0;
    WritePod(out, offset);
    for (size_t u = 0; u < dataset.num_users(); ++u) {
      offset += dataset.UserField(u, k).size();
      WritePod(out, offset);
    }
    for (size_t u = 0; u < dataset.num_users(); ++u) {
      for (const FeatureEntry& e : dataset.UserField(u, k)) {
        WritePod(out, e.id);
        WritePod(out, e.value);
      }
    }
  }
  const std::string_view payload = body.view();
  header.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  WritePod(header, Crc32(payload));
  return writer.Commit();
}

namespace {

/// The FVDS body (identical layout in v1 and v2): schemas, user count,
/// then per-field offset tables and entry arrays.
Result<MultiFieldDataset> ParseDatasetBody(BufferReader& in,
                                           const std::string& path) {
  uint32_t num_fields = 0;
  if (!in.ReadPod(&num_fields) || num_fields == 0 || num_fields > 1024) {
    return Status::InvalidArgument("bad field count");
  }
  std::vector<FieldSchema> fields(num_fields);
  for (FieldSchema& field : fields) {
    uint32_t name_len = 0;
    if (!in.ReadPod(&name_len) || name_len > 4096) {
      return Status::InvalidArgument("bad field name length");
    }
    field.name.resize(name_len);
    if (!in.ReadBytes(field.name.data(), name_len)) {
      return Status::IoError("truncated schema");
    }
    uint8_t sparse = 0;
    if (!in.ReadPod(&sparse)) return Status::IoError("truncated schema");
    field.is_sparse = sparse != 0;
  }
  uint64_t num_users = 0;
  if (!in.ReadPod(&num_users)) return Status::IoError("truncated header");

  std::vector<std::vector<FeatureEntry>> field_entries(num_fields);
  std::vector<std::vector<uint64_t>> field_offsets(num_fields);
  for (uint32_t k = 0; k < num_fields; ++k) {
    uint64_t nnz = 0;
    if (!in.ReadPod(&nnz)) return Status::IoError("truncated field header");
    field_offsets[k].resize(num_users + 1);
    for (uint64_t& off : field_offsets[k]) {
      if (!in.ReadPod(&off)) return Status::IoError("truncated offsets");
    }
    if (field_offsets[k].back() != nnz) {
      return Status::InvalidArgument("offset/nnz mismatch in " + path);
    }
    field_entries[k].resize(nnz);
    for (FeatureEntry& e : field_entries[k]) {
      if (!in.ReadPod(&e.id) || !in.ReadPod(&e.value)) {
        return Status::IoError("truncated entries");
      }
    }
  }

  MultiFieldDataset::Builder builder(std::move(fields));
  std::vector<std::vector<FeatureEntry>> per_field(num_fields);
  for (uint64_t u = 0; u < num_users; ++u) {
    for (uint32_t k = 0; k < num_fields; ++k) {
      const uint64_t lo = field_offsets[k][u];
      const uint64_t hi = field_offsets[k][u + 1];
      if (hi < lo || hi > field_entries[k].size()) {
        return Status::InvalidArgument("corrupt offsets in " + path);
      }
      per_field[k].assign(field_entries[k].begin() + lo,
                          field_entries[k].begin() + hi);
    }
    builder.AddUser(per_field);
  }
  return builder.Build();
}

}  // namespace

Result<MultiFieldDataset> LoadDatasetBinary(const std::string& path) {
  FVAE_ASSIGN_OR_RETURN(const std::string data, ReadFileToString(path));
  BufferReader header(data);
  char magic[4];
  if (!header.ReadBytes(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path +
                                   ", want \"FVDS\"");
  }
  uint32_t version = 0;
  if (!header.ReadPod(&version)) {
    return Status::IoError("truncated header in " + path);
  }
  if (version == kVersionV1) {
    // Legacy files: no checksum footer, body runs to end-of-file.
    BufferReader body(std::string_view(data).substr(8));
    return ParseDatasetBody(body, path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        "unsupported dataset version " + std::to_string(version) + " in " +
        path + " (supported: " + std::to_string(kVersionV1) + ".." +
        std::to_string(kVersion) + ")");
  }
  if (data.size() < 8 + sizeof(uint32_t)) {
    return Status::IoError("truncated checksum footer in " + path);
  }
  const std::string_view payload =
      std::string_view(data).substr(8, data.size() - 8 - sizeof(uint32_t));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t computed_crc = Crc32(payload);
  if (stored_crc != computed_crc) {
    return Status::IoError("checksum mismatch in " + path + ": stored " +
                           std::to_string(stored_crc) + ", computed " +
                           std::to_string(computed_crc));
  }
  BufferReader body(payload);
  return ParseDatasetBody(body, path);
}

Status SaveDatasetText(const MultiFieldDataset& dataset,
                       const std::string& path) {
  AtomicFileWriter writer;
  FVAE_RETURN_IF_ERROR(writer.Open(path, "data_io.save_text"));
  std::ostream& out = writer.stream();
  out << "#fields ";
  for (size_t k = 0; k < dataset.num_fields(); ++k) {
    if (k) out << ",";
    out << dataset.field(k).name;
    if (dataset.field(k).is_sparse) out << ":sparse";
  }
  out << "\n";
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    for (size_t k = 0; k < dataset.num_fields(); ++k) {
      if (k) out << "|";
      auto span = dataset.UserField(u, k);
      for (size_t i = 0; i < span.size(); ++i) {
        if (i) out << ",";
        out << span[i].id << ":" << span[i].value;
      }
    }
    out << "\n";
  }
  return writer.Commit();
}

Result<MultiFieldDataset> LoadDatasetText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, "#fields ")) {
    return Status::InvalidArgument("missing #fields header in " + path);
  }
  std::vector<FieldSchema> fields;
  for (const std::string& spec : Split(line.substr(8), ',')) {
    FieldSchema field;
    auto parts = Split(spec, ':');
    if (parts.empty() || parts[0].empty()) {
      return Status::InvalidArgument("bad field spec: " + spec);
    }
    field.name = std::string(StripWhitespace(parts[0]));
    field.is_sparse = parts.size() > 1 && parts[1] == "sparse";
    fields.push_back(field);
  }
  const size_t num_fields = fields.size();
  MultiFieldDataset::Builder builder(std::move(fields));
  std::vector<std::vector<FeatureEntry>> per_field(num_fields);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto field_specs = Split(line, '|');
    if (field_specs.size() != num_fields) {
      return Status::InvalidArgument("wrong field count on line: " + line);
    }
    for (size_t k = 0; k < num_fields; ++k) {
      per_field[k].clear();
      if (StripWhitespace(field_specs[k]).empty()) continue;
      for (const std::string& entry : Split(field_specs[k], ',')) {
        auto pieces = Split(entry, ':');
        if (pieces.size() != 2) {
          return Status::InvalidArgument("bad entry: " + entry);
        }
        FVAE_ASSIGN_OR_RETURN(int64_t id, ParseInt64(pieces[0]));
        FVAE_ASSIGN_OR_RETURN(double value, ParseDouble(pieces[1]));
        per_field[k].push_back(
            {static_cast<uint64_t>(id), static_cast<float>(value)});
      }
    }
    builder.AddUser(per_field);
  }
  return builder.Build();
}

}  // namespace fvae
