#include "data/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace fvae {

namespace {

constexpr char kMagic[4] = {'F', 'V', 'D', 'S'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveDatasetBinary(const MultiFieldDataset& dataset,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);

  out.write(kMagic, 4);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(dataset.num_fields()));
  for (const FieldSchema& field : dataset.fields()) {
    WritePod(out, static_cast<uint32_t>(field.name.size()));
    out.write(field.name.data(),
              static_cast<std::streamsize>(field.name.size()));
    WritePod(out, static_cast<uint8_t>(field.is_sparse ? 1 : 0));
  }
  WritePod(out, static_cast<uint64_t>(dataset.num_users()));
  for (size_t k = 0; k < dataset.num_fields(); ++k) {
    WritePod(out, static_cast<uint64_t>(dataset.FieldNnz(k)));
    uint64_t offset = 0;
    WritePod(out, offset);
    for (size_t u = 0; u < dataset.num_users(); ++u) {
      offset += dataset.UserField(u, k).size();
      WritePod(out, offset);
    }
    for (size_t u = 0; u < dataset.num_users(); ++u) {
      for (const FeatureEntry& e : dataset.UserField(u, k)) {
        WritePod(out, e.id);
        WritePod(out, e.value);
      }
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<MultiFieldDataset> LoadDatasetBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported dataset version");
  }
  uint32_t num_fields = 0;
  if (!ReadPod(in, &num_fields) || num_fields == 0 || num_fields > 1024) {
    return Status::InvalidArgument("bad field count");
  }
  std::vector<FieldSchema> fields(num_fields);
  for (FieldSchema& field : fields) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Status::InvalidArgument("bad field name length");
    }
    field.name.resize(name_len);
    in.read(field.name.data(), name_len);
    uint8_t sparse = 0;
    if (!ReadPod(in, &sparse)) return Status::IoError("truncated schema");
    field.is_sparse = sparse != 0;
  }
  uint64_t num_users = 0;
  if (!ReadPod(in, &num_users)) return Status::IoError("truncated header");

  std::vector<std::vector<FeatureEntry>> field_entries(num_fields);
  std::vector<std::vector<uint64_t>> field_offsets(num_fields);
  for (uint32_t k = 0; k < num_fields; ++k) {
    uint64_t nnz = 0;
    if (!ReadPod(in, &nnz)) return Status::IoError("truncated field header");
    field_offsets[k].resize(num_users + 1);
    for (uint64_t& off : field_offsets[k]) {
      if (!ReadPod(in, &off)) return Status::IoError("truncated offsets");
    }
    if (field_offsets[k].back() != nnz) {
      return Status::InvalidArgument("offset/nnz mismatch");
    }
    field_entries[k].resize(nnz);
    for (FeatureEntry& e : field_entries[k]) {
      if (!ReadPod(in, &e.id) || !ReadPod(in, &e.value)) {
        return Status::IoError("truncated entries");
      }
    }
  }

  MultiFieldDataset::Builder builder(std::move(fields));
  std::vector<std::vector<FeatureEntry>> per_field(num_fields);
  for (uint64_t u = 0; u < num_users; ++u) {
    for (uint32_t k = 0; k < num_fields; ++k) {
      const uint64_t lo = field_offsets[k][u];
      const uint64_t hi = field_offsets[k][u + 1];
      if (hi < lo || hi > field_entries[k].size()) {
        return Status::InvalidArgument("corrupt offsets");
      }
      per_field[k].assign(field_entries[k].begin() + lo,
                          field_entries[k].begin() + hi);
    }
    builder.AddUser(per_field);
  }
  return builder.Build();
}

Status SaveDatasetText(const MultiFieldDataset& dataset,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "#fields ";
  for (size_t k = 0; k < dataset.num_fields(); ++k) {
    if (k) out << ",";
    out << dataset.field(k).name;
    if (dataset.field(k).is_sparse) out << ":sparse";
  }
  out << "\n";
  for (size_t u = 0; u < dataset.num_users(); ++u) {
    for (size_t k = 0; k < dataset.num_fields(); ++k) {
      if (k) out << "|";
      auto span = dataset.UserField(u, k);
      for (size_t i = 0; i < span.size(); ++i) {
        if (i) out << ",";
        out << span[i].id << ":" << span[i].value;
      }
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<MultiFieldDataset> LoadDatasetText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, "#fields ")) {
    return Status::InvalidArgument("missing #fields header in " + path);
  }
  std::vector<FieldSchema> fields;
  for (const std::string& spec : Split(line.substr(8), ',')) {
    FieldSchema field;
    auto parts = Split(spec, ':');
    if (parts.empty() || parts[0].empty()) {
      return Status::InvalidArgument("bad field spec: " + spec);
    }
    field.name = std::string(StripWhitespace(parts[0]));
    field.is_sparse = parts.size() > 1 && parts[1] == "sparse";
    fields.push_back(field);
  }
  const size_t num_fields = fields.size();
  MultiFieldDataset::Builder builder(std::move(fields));
  std::vector<std::vector<FeatureEntry>> per_field(num_fields);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto field_specs = Split(line, '|');
    if (field_specs.size() != num_fields) {
      return Status::InvalidArgument("wrong field count on line: " + line);
    }
    for (size_t k = 0; k < num_fields; ++k) {
      per_field[k].clear();
      if (StripWhitespace(field_specs[k]).empty()) continue;
      for (const std::string& entry : Split(field_specs[k], ',')) {
        auto pieces = Split(entry, ':');
        if (pieces.size() != 2) {
          return Status::InvalidArgument("bad entry: " + entry);
        }
        FVAE_ASSIGN_OR_RETURN(int64_t id, ParseInt64(pieces[0]));
        FVAE_ASSIGN_OR_RETURN(double value, ParseDouble(pieces[1]));
        per_field[k].push_back(
            {static_cast<uint64_t>(id), static_cast<float>(value)});
      }
    }
    builder.AddUser(per_field);
  }
  return builder.Build();
}

}  // namespace fvae
