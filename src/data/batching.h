#ifndef FVAE_DATA_BATCHING_H_
#define FVAE_DATA_BATCHING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace fvae {

/// Yields shuffled mini-batches of user indices, reshuffling every epoch.
///
/// Usage:
///   BatchIterator batches(dataset.num_users(), 512, rng_seed);
///   while (batches.Next(&batch)) { ... }   // one epoch
///   batches.NewEpoch();                    // reshuffle for the next
class BatchIterator {
 public:
  /// `num_users` > 0, `batch_size` > 0. `drop_remainder` discards a final
  /// short batch (keeps gradient-noise statistics uniform).
  BatchIterator(size_t num_users, size_t batch_size, uint64_t seed,
                bool drop_remainder = false);

  /// Fills `batch` with the next batch's user indices. Returns false (and
  /// leaves `batch` empty) when the epoch is exhausted.
  bool Next(std::vector<uint32_t>* batch);

  /// Reshuffles and restarts from the beginning.
  void NewEpoch();

  /// Number of batches per epoch.
  size_t BatchesPerEpoch() const;

  size_t batch_size() const { return batch_size_; }

 private:
  std::vector<uint32_t> order_;
  size_t batch_size_;
  size_t cursor_ = 0;
  bool drop_remainder_;
  Rng rng_;
};

}  // namespace fvae

#endif  // FVAE_DATA_BATCHING_H_
