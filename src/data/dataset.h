#ifndef FVAE_DATA_DATASET_H_
#define FVAE_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace fvae {

/// One observed feature of a user: raw 64-bit ID plus a non-negative value.
/// The value is the multinomial count F^k_{i,j} (usually 1.0; the Tencent
/// profile data carries weights, which the multinomial likelihood treats as
/// fractional counts).
struct FeatureEntry {
  uint64_t id = 0;
  float value = 1.0f;

  bool operator==(const FeatureEntry&) const = default;
};

/// Static description of one feature field (paper: ch1 / ch2 / ch3 / tag).
struct FieldSchema {
  std::string name;
  /// Fields flagged sparse get the feature-sampling treatment (§IV-C3).
  bool is_sparse = false;
};

/// Sparse multi-field user-feature dataset U (paper §III).
///
/// Storage is CSR-like per field: entries of all users are concatenated and
/// indexed by per-user offsets, so iterating a user's features in one field
/// is a contiguous span. Users are dense indices [0, num_users); feature IDs
/// are raw 64-bit values with no contiguity assumption (the dynamic hash
/// table in the model layer densifies them).
///
/// Immutable once built (see Builder); cheap to share by const reference
/// across trainers and evaluation tasks.
class MultiFieldDataset {
 public:
  /// Incremental builder: add users one at a time, then Build().
  class Builder {
   public:
    explicit Builder(std::vector<FieldSchema> fields);

    /// Appends one user; `features_per_field` must have one entry per field
    /// (empty vectors are fine — users may lack a field entirely).
    /// Returns the new user's index.
    uint32_t AddUser(
        const std::vector<std::vector<FeatureEntry>>& features_per_field);

    /// Finalizes the dataset. The builder is left empty.
    MultiFieldDataset Build();

   private:
    std::vector<FieldSchema> fields_;
    std::vector<std::vector<FeatureEntry>> entries_;   // per field
    std::vector<std::vector<uint64_t>> offsets_;       // per field, N+1
  };

  MultiFieldDataset() = default;

  size_t num_users() const { return num_users_; }
  size_t num_fields() const { return fields_.size(); }
  const std::vector<FieldSchema>& fields() const { return fields_; }
  const FieldSchema& field(size_t k) const { return fields_[k]; }

  /// Features of user `u` in field `k` as a contiguous span.
  std::span<const FeatureEntry> UserField(size_t u, size_t k) const {
    FVAE_CHECK(u < num_users_ && k < fields_.size());
    const auto& off = offsets_[k];
    return {entries_[k].data() + off[u],
            static_cast<size_t>(off[u + 1] - off[u])};
  }

  /// Total observed-feature count of user `u` in field `k` (N^k_i).
  double UserFieldTotal(size_t u, size_t k) const;

  /// Number of (user, feature) incidences in field `k` across all users.
  size_t FieldNnz(size_t k) const { return entries_[k].size(); }

  /// Number of (user, feature) incidences across all fields.
  size_t TotalNnz() const;

  /// Distinct feature IDs appearing in field `k` (sorted ascending).
  std::vector<uint64_t> DistinctFeatureIds(size_t k) const;

  /// Average number of observed features per user, across fields
  /// (the paper's N̄ statistic).
  double AverageFeaturesPerUser() const;

  /// Human-readable summary line for logging.
  std::string Summary() const;

 private:
  friend class Builder;

  std::vector<FieldSchema> fields_;
  size_t num_users_ = 0;
  // Per field: concatenated user entries and N+1 offsets.
  std::vector<std::vector<FeatureEntry>> entries_;
  std::vector<std::vector<uint64_t>> offsets_;
};

}  // namespace fvae

#endif  // FVAE_DATA_DATASET_H_
