#ifndef FVAE_DATA_SPLIT_H_
#define FVAE_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace fvae {

/// User-level split into train / validation / test index sets.
struct DatasetSplit {
  std::vector<uint32_t> train;
  std::vector<uint32_t> valid;
  std::vector<uint32_t> test;
};

/// Randomly partitions users. Fractions must be in [0,1] and sum to <= 1;
/// the remainder goes to train.
DatasetSplit SplitUsers(size_t num_users, double valid_fraction,
                        double test_fraction, Rng& rng);

/// Builds a sub-dataset containing only the given users (indices refer to
/// `source`). Field schemas are preserved; users are renumbered densely in
/// the order given.
MultiFieldDataset Subset(const MultiFieldDataset& source,
                         const std::vector<uint32_t>& users);

/// Builds the fold-in view used by the tag-prediction task (paper §V-B2):
/// a copy of `source` with field `held_out_field` emptied for every user.
/// The model encodes users from the remaining fields and is scored on how
/// well it predicts the held-out field.
MultiFieldDataset MaskField(const MultiFieldDataset& source,
                            size_t held_out_field);

/// Per-user within-field holdout for the reconstruction task: for each user,
/// a `holdout_fraction` of each field's entries (at least one entry is kept
/// as input whenever the user has >= 2 entries) is removed from the input
/// copy and returned in `held_out`. Users with a single entry in a field
/// keep it in the input.
struct ReconstructionSplit {
  MultiFieldDataset input;
  /// held_out[u][k] lists the removed entries of user u, field k.
  std::vector<std::vector<std::vector<FeatureEntry>>> held_out;
};

ReconstructionSplit HoldOutWithinUsers(const MultiFieldDataset& source,
                                       double holdout_fraction, Rng& rng);

}  // namespace fvae

#endif  // FVAE_DATA_SPLIT_H_
