#ifndef FVAE_COMMON_RANDOM_H_
#define FVAE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fvae {

/// Complete serializable state of an Rng: the four xoshiro256** lanes plus
/// the Box-Muller cache. The cache is part of the state on purpose —
/// restoring only the lanes after an odd number of Normal() draws would
/// replay the cached value's twin and diverge from the uninterrupted
/// stream. Checkpoints persist this struct to make resumed training
/// bitwise-identical.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Fast, reproducible PRNG (xoshiro256**), seeded via SplitMix64.
///
/// All stochastic components of the library (initialization, sampling,
/// data generation) draw from an explicitly passed Rng so experiments are
/// deterministic given a seed. Satisfies UniformRandomBitGenerator, so it
/// can also drive <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Gamma(shape, 1) draw via Marsaglia-Tsang (shape boost for shape < 1).
  double Gamma(double shape);

  /// Poisson(lambda) draw; Knuth's method for small lambda, normal
  /// approximation (rounded, clamped at 0) for lambda > 64.
  uint64_t Poisson(double lambda);

  /// Dirichlet draw with the given concentration parameters (all > 0).
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  /// Samples k distinct indices from [0, n) without replacement
  /// (Floyd's algorithm); output order is unspecified.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Snapshot of the generator, sufficient to reproduce the exact draw
  /// stream via SetState (used by checkpoint/resume).
  RngState GetState() const;

  /// Restores a snapshot taken with GetState.
  void SetState(const RngState& state);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Weighted discrete sampling in O(1) per draw after O(n) setup
/// (Walker/Vose alias method). Used by the frequency and Zipfian feature
/// sampling strategies and by Item2Vec negative sampling.
class AliasSampler {
 public:
  /// Builds the alias table from (unnormalized, non-negative) weights.
  /// At least one weight must be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index, distributed proportionally to the weights.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace fvae

#endif  // FVAE_COMMON_RANDOM_H_
