#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"

namespace fvae {

Status RetryWithBackoff(const RetryOptions& options,
                        const std::function<Status()>& attempt) {
  FVAE_CHECK(options.max_attempts >= 1) << "need at least one attempt";
  double backoff_ms = options.initial_backoff_ms;
  Status status;
  for (size_t i = 0; i < options.max_attempts; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(options.max_backoff_ms,
                            backoff_ms * options.backoff_multiplier);
    }
    status = attempt();
    if (status.code() != StatusCode::kUnavailable) return status;
  }
  return status;
}

}  // namespace fvae
