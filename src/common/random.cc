#include "common/random.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace fvae {

namespace {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& lane : s_) lane = SplitMix64(state);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

RngState Rng::GetState() const {
  RngState state;
  for (size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  // Guard the xoshiro all-zero fixed point, same as the constructor.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  FVAE_CHECK(n > 0) << "UniformInt(0) is undefined";
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    while (l < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FVAE_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Uniform() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; u1 in (0, 1] avoids log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gamma(double shape) {
  FVAE_CHECK(shape > 0.0) << "Gamma shape must be positive";
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
    const double u = 1.0 - Uniform();  // avoid 0
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

uint64_t Rng::Poisson(double lambda) {
  FVAE_CHECK(lambda >= 0.0) << "negative Poisson rate";
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    const double draw = Normal(lambda, std::sqrt(lambda));
    return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
  }
  const double limit = std::exp(-lambda);
  uint64_t count = 0;
  double product = Uniform();
  while (product > limit) {
    ++count;
    product *= Uniform();
  }
  return count;
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  FVAE_CHECK(!alpha.empty());
  std::vector<double> draw(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    draw[i] = Gamma(alpha[i]);
    total += draw[i];
  }
  FVAE_CHECK(total > 0.0) << "degenerate Dirichlet draw";
  for (double& v : draw) v /= total;
  return draw;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  FVAE_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  // Floyd's algorithm: O(k) expected time and memory.
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = UniformInt(j + 1);
    bool seen = false;
    for (uint64_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  FVAE_CHECK(n > 0) << "AliasSampler needs at least one weight";
  double total = 0.0;
  for (double w : weights) {
    FVAE_CHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  FVAE_CHECK(total > 0.0) << "all weights are zero";

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining columns are (numerically) full.
  for (uint32_t s : small) prob_[s] = 1.0;
  for (uint32_t l : large) prob_[l] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  size_t column = rng.UniformInt(prob_.size());
  return rng.Uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace fvae
