#ifndef FVAE_COMMON_THREAD_POOL_H_
#define FVAE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fvae {

/// Fixed-size worker pool with a shared FIFO queue.
///
/// Used by the distributed-training simulator (one "server" per worker) and
/// by ParallelFor below. Tasks must not throw — library code reports errors
/// through Status and checks invariants with FVAE_CHECK.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [begin, end) across `pool`, blocking until complete.
/// Iterations are chunked to amortize scheduling overhead.
void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

}  // namespace fvae

#endif  // FVAE_COMMON_THREAD_POOL_H_
