#ifndef FVAE_COMMON_THREAD_POOL_H_
#define FVAE_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fvae {

/// Fixed-size worker pool with a shared FIFO queue.
///
/// Used by the distributed-training simulator (one "server" per worker) and
/// by ParallelFor below. Tasks must not throw — library code reports errors
/// through Status and checks invariants with FVAE_CHECK.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) FVAE_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished executing.
  void Wait() FVAE_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() FVAE_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_ FVAE_GUARDED_BY(mutex_);
  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  size_t in_flight_ FVAE_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ FVAE_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for i in [begin, end) across `pool`, blocking until complete.
/// Iterations are chunked to amortize scheduling overhead.
void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

}  // namespace fvae

#endif  // FVAE_COMMON_THREAD_POOL_H_
