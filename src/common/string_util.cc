#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fvae {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      pieces.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("not an integer: " + buffer);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return Status::InvalidArgument("empty double");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("not a double: " + buffer);
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace fvae
