#ifndef FVAE_COMMON_RETRY_H_
#define FVAE_COMMON_RETRY_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace fvae {

/// Policy for retrying transient failures (exponential backoff, bounded).
struct RetryOptions {
  /// Total attempts, including the first one. 1 disables retrying.
  size_t max_attempts = 3;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
};

/// Runs `attempt` until it succeeds, fails permanently, or the attempt
/// budget is exhausted; sleeps with exponential backoff between attempts.
///
/// Only kUnavailable is treated as transient — it is the code IO layers
/// (and the fault-injection failpoints) use for "try again" conditions.
/// Any other failure is returned immediately: retrying a corrupt file or a
/// bad argument only delays the diagnosis.
Status RetryWithBackoff(const RetryOptions& options,
                        const std::function<Status()>& attempt);

}  // namespace fvae

#endif  // FVAE_COMMON_RETRY_H_
