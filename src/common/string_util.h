#ifndef FVAE_COMMON_STRING_UTIL_H_
#define FVAE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fvae {

/// Splits `input` on `delimiter`, keeping empty pieces.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Joins pieces with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Case-sensitive prefix / suffix tests.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Strict numeric parsing: the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace fvae

#endif  // FVAE_COMMON_STRING_UTIL_H_
