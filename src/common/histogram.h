#ifndef FVAE_COMMON_HISTOGRAM_H_
#define FVAE_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fvae {

/// Lock-free latency histogram with geometric buckets.
///
/// Record() is wait-free (one relaxed atomic increment per call plus two for
/// count/sum), so request threads can stamp latencies on the hot path; the
/// percentile readers pay the traversal cost instead. Values are
/// microseconds by convention in the serving stack, but the class is
/// unit-agnostic.
///
/// Buckets cover [0, +inf): bucket 0 is [0, min_value), then geometric
/// buckets [min_value * growth^i, min_value * growth^(i+1)) with the last
/// bucket open-ended. Percentiles interpolate linearly inside a bucket, so
/// their resolution is bounded by the growth factor (default 1.3 keeps the
/// p99 estimate within ~15% of the true value — ample for load-test
/// comparisons).
class LatencyHistogram {
 public:
  /// `min_value`: upper edge of the first bucket; `growth`: geometric bucket
  /// growth factor (> 1); `num_buckets`: total buckets including the two
  /// open-ended ones.
  explicit LatencyHistogram(double min_value = 1.0, double growth = 1.3,
                            size_t num_buckets = 64);

  LatencyHistogram(const LatencyHistogram& other);
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one observation. Thread-safe, wait-free.
  void Record(double value);

  /// Number of recorded observations.
  uint64_t Count() const;

  /// Sum of recorded observations (accumulated in integer microsteps of the
  /// value unit; sub-unit fractions are rounded).
  double Sum() const;

  double Mean() const;

  /// Estimated percentile, p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  /// Resets all buckets to zero. NOT thread-safe against concurrent
  /// Record() — quiesce writers first. (Unannotatable: the contract is
  /// "no concurrent writers", not "hold a lock" — there is no capability
  /// to require. TSan covers this one; see ARCHITECTURE.md.)
  void Reset();

  /// Folds `other`'s observations into this histogram (bucket-wise add).
  /// Both histograms must share the same bucket geometry (min_value,
  /// growth, bucket count) — FVAE_CHECKed. Safe against concurrent
  /// Record() on either side; the merged totals are eventually consistent
  /// like any concurrent read. Used to aggregate per-thread span profiles
  /// (obs::TraceRecorder::Profile).
  void Merge(const LatencyHistogram& other);

  /// {"count":N,"mean":...,"p50":...,"p95":...,"p99":...} — a JSON object
  /// fragment used by the serving telemetry dump.
  std::string SummaryJson() const;

  size_t num_buckets() const { return buckets_.size(); }

  /// Observations recorded into bucket `i` (relaxed read; eventually
  /// consistent like every other reader). For cumulative-bucket exporters
  /// (Prometheus text exposition).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper edge of bucket `i`. The last bucket is open-ended — exporters
  /// must render it as +Inf rather than calling this on it.
  double BucketUpperEdge(size_t i) const { return BucketUpper(i); }

 private:
  size_t BucketIndex(double value) const;
  /// Lower edge of bucket i (0 for bucket 0).
  double BucketLower(size_t i) const;
  /// Upper edge of bucket i (last bucket reuses its lower edge — the open
  /// tail has no meaningful midpoint).
  double BucketUpper(size_t i) const;

  double min_value_;
  double log_growth_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace fvae

#endif  // FVAE_COMMON_HISTOGRAM_H_
