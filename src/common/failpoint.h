#ifndef FVAE_COMMON_FAILPOINT_H_
#define FVAE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fvae {

/// Fault-injection hooks for the crash-safety tests.
///
/// IO code marks its hazardous boundaries with FailpointCheck("name") —
/// e.g. the atomic writer fires `model_io.save.after_tmp_write` between
/// writing the temp file and renaming it onto the canonical path. Names
/// follow the `<module>.<operation>.<stage>` convention (dotted
/// snake_case, same grammar as metric names; see ARCHITECTURE.md §10).
///
/// A failpoint is dormant (one relaxed atomic load, no lock) until armed:
///
///   - programmatically, via ScopedFailpoint in tests;
///   - via the environment: FVAE_FAILPOINT="name[:action][,name2...]"
///     where action is `kill` (default — die with SIGKILL, simulating a
///     crash at exactly that boundary) or `error` (return a transient
///     Status::Unavailable, exercising retry paths).
///
/// Arming takes an optional hit budget: `error@2` fails the first two
/// hits and then succeeds, which is how the bounded-retry tests model a
/// transient failure that clears.
enum class FailpointAction {
  kOff = 0,
  /// Report Status::Unavailable from FailpointCheck.
  kError,
  /// Terminate the process with SIGKILL (no flushing, no destructors) —
  /// the honest simulation of a power cut or OOM kill.
  kKill,
};

/// Arms `name` with `action`. `max_hits` > 0 disarms the point after that
/// many hits; 0 means unlimited. Replaces any previous arming of `name`.
void ArmFailpoint(std::string_view name, FailpointAction action,
                  uint64_t max_hits = 0);

/// Disarms `name` (no-op when not armed).
void DisarmFailpoint(std::string_view name);

/// Total times `name` fired (kError or kKill) since it was last armed.
uint64_t FailpointHitCount(std::string_view name);

/// The hook itself: returns Ok when `name` is dormant or its hit budget is
/// exhausted, Status::Unavailable when armed as kError, and does not
/// return when armed as kKill. The first call parses FVAE_FAILPOINT.
Status FailpointCheck(std::string_view name);

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointAction action,
                  uint64_t max_hits = 0)
      : name_(std::move(name)) {
    ArmFailpoint(name_, action, max_hits);
  }
  ~ScopedFailpoint() { DisarmFailpoint(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  uint64_t hits() const { return FailpointHitCount(name_); }

 private:
  std::string name_;
};

}  // namespace fvae

#endif  // FVAE_COMMON_FAILPOINT_H_
