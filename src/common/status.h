#ifndef FVAE_COMMON_STATUS_H_
#define FVAE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace fvae {

/// Error categories used across the library. Kept deliberately small:
/// callers usually only branch on ok() vs. not, the code exists for
/// diagnostics and tests.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kIoError,
  kInternal,
  kUnimplemented,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object returned from fallible operations. The library
/// does not throw exceptions; every operation that can fail reports failure
/// through a Status (or a Result<T>, see result.h).
///
/// An OK status carries no message and no allocation.
///
/// [[nodiscard]]: silently dropping a Status return hides failures, so the
/// compiler flags every ignored call. Intentional discards must be written
/// `(void)expr;` with an inline comment justifying why failure is
/// ignorable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fvae

/// Propagates a non-OK status to the caller. Usable in any function that
/// returns Status.
#define FVAE_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::fvae::Status _status = (expr);              \
    if (!_status.ok()) return _status;            \
  } while (0)

#endif  // FVAE_COMMON_STATUS_H_
