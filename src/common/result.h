#ifndef FVAE_COMMON_RESULT_H_
#define FVAE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace fvae {

/// Value-or-error return type, in the spirit of absl::StatusOr<T>.
///
/// A Result is either OK and holds a T, or holds a non-OK Status. Accessing
/// the value of a non-OK Result aborts via FVAE_CHECK — callers must test
/// ok() (or use FVAE_ASSIGN_OR_RETURN) first.
///
/// [[nodiscard]] for the same reason as Status: an ignored Result is an
/// ignored failure (and a discarded value). Use `(void)` plus a
/// justification comment for the rare intentional drop.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit on purpose, mirrors StatusOr).
  Result(T value) : value_(std::move(value)) {}

  /// Constructs from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    FVAE_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::Ok() when a value is held.
  const Status& status() const { return status_; }

  /// Value accessors. Abort when !ok().
  const T& value() const& {
    FVAE_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FVAE_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FVAE_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set.
};

}  // namespace fvae

/// Evaluates `rexpr` (a Result<T>); on error returns the status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define FVAE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  FVAE_ASSIGN_OR_RETURN_IMPL_(                                 \
      FVAE_RESULT_CONCAT_(_fvae_result, __LINE__), lhs, rexpr)

#define FVAE_RESULT_CONCAT_INNER_(a, b) a##b
#define FVAE_RESULT_CONCAT_(a, b) FVAE_RESULT_CONCAT_INNER_(a, b)
#define FVAE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // FVAE_COMMON_RESULT_H_
