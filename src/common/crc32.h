#ifndef FVAE_COMMON_CRC32_H_
#define FVAE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fvae {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected, table-driven).
///
/// The persistence formats (model checkpoints, binary datasets, embedding
/// dumps) frame their payloads with this checksum so that truncation or
/// bit-rot is detected at load time as a clean IoError instead of being
/// deserialized into a garbage model. Incremental use: feed the previous
/// return value back as `seed` to checksum a payload in chunks.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace fvae

#endif  // FVAE_COMMON_CRC32_H_
