#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace fvae {

LatencyHistogram::LatencyHistogram(double min_value, double growth,
                                   size_t num_buckets)
    : min_value_(min_value),
      log_growth_(std::log(growth)),
      buckets_(num_buckets) {
  FVAE_CHECK(min_value > 0.0) << "histogram min_value must be positive";
  FVAE_CHECK(growth > 1.0) << "histogram growth must exceed 1";
  FVAE_CHECK(num_buckets >= 2) << "histogram needs at least 2 buckets";
}

LatencyHistogram::LatencyHistogram(const LatencyHistogram& other)
    : min_value_(other.min_value_),
      log_growth_(other.log_growth_),
      buckets_(other.buckets_.size()) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(double value) const {
  if (!(value >= min_value_)) return 0;  // also catches NaN
  const size_t i =
      1 + static_cast<size_t>(std::log(value / min_value_) / log_growth_);
  return std::min(i, buckets_.size() - 1);
}

double LatencyHistogram::BucketLower(size_t i) const {
  if (i == 0) return 0.0;
  return min_value_ * std::exp(log_growth_ * double(i - 1));
}

double LatencyHistogram::BucketUpper(size_t i) const {
  if (i + 1 >= buckets_.size()) return BucketLower(i);
  return min_value_ * std::exp(log_growth_ * double(i));
}

void LatencyHistogram::Record(double value) {
  if (!(value >= 0.0)) value = 0.0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(static_cast<uint64_t>(std::llround(value)),
                 std::memory_order_relaxed);
}

uint64_t LatencyHistogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Sum() const {
  return double(sum_.load(std::memory_order_relaxed));
}

double LatencyHistogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / double(n);
}

double LatencyHistogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t n = Count();
  if (n == 0) return 0.0;
  // Rank of the target observation (1-based, nearest-rank with
  // interpolation inside the containing bucket).
  const double rank = p / 100.0 * double(n);
  double seen = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket =
        double(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      const double frac =
          in_bucket == 0.0 ? 0.0
                           : std::clamp((rank - seen) / in_bucket, 0.0, 1.0);
      return BucketLower(i) + frac * (BucketUpper(i) - BucketLower(i));
    }
    seen += in_bucket;
  }
  return BucketUpper(buckets_.size() - 1);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  FVAE_CHECK(buckets_.size() == other.buckets_.size() &&
             min_value_ == other.min_value_ &&
             log_growth_ == other.log_growth_)
      << "cannot merge histograms with different bucket geometry";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string LatencyHistogram::SummaryJson() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"mean\":%.1f,\"p50\":%.1f,\"p95\":%.1f,"
                "\"p99\":%.1f}",
                static_cast<unsigned long long>(Count()), Mean(),
                Percentile(50.0), Percentile(95.0), Percentile(99.0));
  return buf;
}

}  // namespace fvae
