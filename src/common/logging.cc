#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace fvae {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Trim the path to the basename to keep records short.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

}  // namespace internal_log
}  // namespace fvae
