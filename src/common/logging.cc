#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fvae {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

/// Serializes record emission so concurrent log lines never interleave
/// mid-record on stderr. Each record formats into its own stringstream
/// first; only the final write is under the lock.
Mutex& EmitMutex() {
  static Mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Trim the path to the basename to keep records short.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string record = stream_.str();
  MutexLock lock(EmitMutex());
  std::cerr << record;
}

}  // namespace internal_log
}  // namespace fvae
