#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

#include "common/failpoint.h"

namespace fvae {

namespace {

/// fsync(2)s `path`. `O_RDONLY` is enough for fsync on both files and
/// directories on the platforms we target.
Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open for fsync failed: " + path);
  }
  const int rc = ::fsync(fd);
  // Transient fsync handle, open and closed within six lines — wrapping it
  // in net::Fd would invert the layering (common must not depend on net).
  const int close_rc = ::close(fd);  // fvae-lint: allow(raw-socket)
  if (rc != 0 || close_rc != 0) {
    return Status::IoError("fsync failed: " + path);
  }
  return Status::Ok();
}

/// Parent directory of `path`, for the post-rename directory fsync.
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status AtomicFileWriter::Open(const std::string& path,
                              const std::string& failpoint_prefix) {
  if (open_) {
    return Status::InvalidArgument("AtomicFileWriter already open: " + path_);
  }
  path_ = path;
  tmp_path_ = path + ".tmp";
  failpoint_prefix_ = failpoint_prefix;
  FVAE_RETURN_IF_ERROR(FailpointCheck(failpoint_prefix_ + ".before_tmp_write"));
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError("cannot open temp file for writing: " + tmp_path_);
  }
  open_ = true;
  return Status::Ok();
}

Status AtomicFileWriter::Commit() {
  if (!open_) {
    return Status::InvalidArgument("AtomicFileWriter not open");
  }
  out_.flush();
  const int64_t bytes = out_.good() ? int64_t(out_.tellp()) : -1;
  // close() performs the final flush, so stream health must be sampled
  // again afterwards — a deferred write error (e.g. ENOSPC) surfaces only
  // there.
  out_.close();
  const bool stream_ok = bytes >= 0 && out_.good();
  open_ = false;
  if (!stream_ok) {
    Abort();
    return Status::IoError("write to temp file failed: " + tmp_path_);
  }
  Status status = FailpointCheck(failpoint_prefix_ + ".after_tmp_write");
  if (status.ok()) status = FsyncPath(tmp_path_);
  if (status.ok()) status = FailpointCheck(failpoint_prefix_ + ".before_rename");
  if (!status.ok()) {
    Abort();
    return status;
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    Abort();
    return Status::IoError("rename failed: " + tmp_path_ + " -> " + path_);
  }
  FVAE_RETURN_IF_ERROR(FailpointCheck(failpoint_prefix_ + ".after_rename"));
  // The rename already published the file; syncing the directory entry is
  // durability hardening, not a correctness requirement, so its failure is
  // not worth failing the commit over.
  (void)FsyncPath(ParentDir(path_));  // best-effort directory durability
  bytes_committed_ = uint64_t(bytes);
  return Status::Ok();
}

void AtomicFileWriter::Abort() {
  if (out_.is_open()) out_.close();
  if (!tmp_path_.empty()) {
    // The temp file may already be gone (renamed or never created);
    // removal is best-effort cleanup either way.
    (void)std::remove(tmp_path_.c_str());
  }
  open_ = false;
}

}  // namespace fvae
