#ifndef FVAE_COMMON_THREAD_ANNOTATIONS_H_
#define FVAE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety (capability) annotation macros.
///
/// These attach locking contracts to types, members and functions so that
/// Clang's `-Wthread-safety` analysis can prove, at compile time, that every
/// access to a guarded member happens with the right capability held. Under
/// any other compiler (or with the analysis off) they expand to nothing, so
/// annotated code stays portable.
///
/// Conventions used throughout this repository:
///  - shared mutable state is declared `FVAE_GUARDED_BY(mutex_)`;
///  - private helpers that expect the caller to hold a lock are declared
///    `FVAE_REQUIRES(mutex_)` instead of re-locking;
///  - the only lock types are `fvae::Mutex` / `fvae::SharedMutex`
///    (common/mutex.h), which carry `FVAE_CAPABILITY` — raw std::mutex
///    declarations outside that header are a lint error (tools/fvae_lint).
///
/// Build with `-DFVAE_THREAD_SAFETY=ON` under Clang to turn violations into
/// build breaks (`-Werror=thread-safety`); see ARCHITECTURE.md.

#if defined(__clang__) && (!defined(SWIG))
#define FVAE_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define FVAE_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Declares a class to be a capability (a lock type). The string names the
/// capability kind in diagnostics, e.g. FVAE_CAPABILITY("mutex").
#define FVAE_CAPABILITY(x) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define FVAE_SCOPED_CAPABILITY \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Declares that a data member may only be accessed while holding `x`.
#define FVAE_GUARDED_BY(x) FVAE_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member may only be
/// dereferenced while holding `x` (the pointer itself is unguarded).
#define FVAE_PT_GUARDED_BY(x) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Declares that the annotated function must be called with the given
/// capabilities held exclusively (and does not release them).
#define FVAE_REQUIRES(...) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// As FVAE_REQUIRES, but shared (reader) access suffices.
#define FVAE_REQUIRES_SHARED(...) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Declares that the annotated function acquires the given capabilities
/// exclusively and holds them on return.
#define FVAE_ACQUIRE(...) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// As FVAE_ACQUIRE, but acquires shared (reader) capabilities.
#define FVAE_ACQUIRE_SHARED(...) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// Declares that the annotated function releases the given capabilities
/// (exclusive form).
#define FVAE_RELEASE(...) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// As FVAE_RELEASE, but for shared (reader) capabilities.
#define FVAE_RELEASE_SHARED(...) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// Declares that the annotated function may not be called while holding the
/// given capabilities (deadlock prevention for self-locking methods).
#define FVAE_EXCLUDES(...) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Declares a lock-rank edge on a mutex member: this lock must always be
/// acquired before the listed locks. Consumed by fvae_lint's lock-order
/// analysis, which combines declared ranks with statically observed nesting
/// and fails the build on any cycle in the acquisition-order graph.
///
/// Deliberately NOT mapped to Clang's acquired_before attribute: plain
/// `-Wthread-safety` ignores it (it is checked only under the -beta
/// analysis), and rank edges routinely cross classes — e.g. declaring that
/// EpollLoop's post mutex ranks below ChannelPool's — which is not
/// expressible as a Clang capability expression from another header.
/// fvae_lint resolves the argument by qualified-name suffix instead, so
/// `FVAE_ACQUIRED_BEFORE(ChannelPool::mutex_)` works without an #include.
#define FVAE_ACQUIRED_BEFORE(...)  // lint-only; see tools/lint_graph.h

/// As FVAE_ACQUIRED_BEFORE, but declares that this lock is acquired after
/// the listed locks (the reverse edge direction).
#define FVAE_ACQUIRED_AFTER(...)  // lint-only; see tools/lint_graph.h

/// Declares a function that tries to acquire a capability and reports
/// success via its return value: FVAE_TRY_ACQUIRE(true, mu).
#define FVAE_TRY_ACQUIRE(...) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability
/// (used by accessor methods that expose a lock).
#define FVAE_RETURN_CAPABILITY(x) \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Opts a function out of the analysis entirely. Use sparingly, with a
/// comment explaining why the contract cannot be expressed.
#define FVAE_NO_THREAD_SAFETY_ANALYSIS \
  FVAE_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // FVAE_COMMON_THREAD_ANNOTATIONS_H_
