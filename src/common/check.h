#ifndef FVAE_COMMON_CHECK_H_
#define FVAE_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fvae {
namespace internal_check {

/// Stream sink that aborts the process when destroyed. Used by FVAE_CHECK to
/// collect a failure message with `<<` and then terminate.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "FVAE_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lets FVAE_CHECK expand to a void expression while still allowing a
/// streamed message (the glog "voidify" idiom: `&` binds looser than `<<`).
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_check
}  // namespace fvae

/// Aborts with a message when `cond` is false. Supports streaming extra
/// context: FVAE_CHECK(n > 0) << "n=" << n;
/// For programmer errors / invariant violations only — recoverable failures
/// must return Status.
#define FVAE_CHECK(cond)                                   \
  (cond) ? (void)0                                         \
         : ::fvae::internal_check::Voidify() &             \
               ::fvae::internal_check::CheckFailureStream( \
                   #cond, __FILE__, __LINE__)

/// Convenience comparisons.
#define FVAE_CHECK_EQ(a, b) FVAE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define FVAE_CHECK_NE(a, b) FVAE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define FVAE_CHECK_LT(a, b) FVAE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define FVAE_CHECK_LE(a, b) FVAE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define FVAE_CHECK_GT(a, b) FVAE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define FVAE_CHECK_GE(a, b) FVAE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // FVAE_COMMON_CHECK_H_
