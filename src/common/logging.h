#ifndef FVAE_COMMON_LOGGING_H_
#define FVAE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace fvae {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns / sets the global minimum severity that is actually emitted.
/// Default is kInfo. Thread-compatible: set once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_log {

/// One log record; formats "[LEVEL ts] message\n" to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidify {
  void operator&(const LogMessage&) {}
};

// Macro-friendly aliases: FVAE_LOG(INFO) expands to kINFO.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARNING = LogLevel::kWarning;
inline constexpr LogLevel kERROR = LogLevel::kError;

}  // namespace internal_log
}  // namespace fvae

#define FVAE_LOG_INTERNAL(level)                                     \
  (level) < ::fvae::GetLogLevel()                                    \
      ? (void)0                                                      \
      : ::fvae::internal_log::LogVoidify() &                         \
            ::fvae::internal_log::LogMessage(level, __FILE__, __LINE__)

/// Usage: FVAE_LOG(INFO) << "epoch " << e << " loss " << loss;
#define FVAE_LOG(severity) \
  FVAE_LOG_INTERNAL(::fvae::internal_log::k##severity)

#endif  // FVAE_COMMON_LOGGING_H_
