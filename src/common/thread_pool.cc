#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace fvae {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  FVAE_CHECK(task != nullptr);
  {
    MutexLock lock(mutex_);
    FVAE_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(mutex_);
      }
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t num_chunks = std::min(n, pool.num_threads() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = begin; c < end; c += chunk) {
    const size_t hi = std::min(end, c + chunk);
    pool.Submit([c, hi, &fn] {
      for (size_t i = c; i < hi; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace fvae
