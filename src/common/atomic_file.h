#ifndef FVAE_COMMON_ATOMIC_FILE_H_
#define FVAE_COMMON_ATOMIC_FILE_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/status.h"

namespace fvae {

/// Crash-safe file writer shared by every persistence path (model
/// checkpoints, binary datasets, streaming dumps, embedding stores, obs
/// snapshot exporters).
///
/// All bytes stream into `<path>.tmp`; Commit() flushes, fsyncs, and
/// atomically rename(2)s the temp file onto `path`, then fsyncs the parent
/// directory. A crash at ANY point therefore leaves the canonical path
/// either untouched (the previous complete file, or absent) or fully
/// replaced — never truncated, never interleaved. Stale `.tmp` debris from
/// a crash is harmless: writers truncate it on the next open and readers
/// never look at it.
///
/// Commit() deliberately samples the stream state *after* close(): close
/// performs the final flush, so a deferred write error (ENOSPC discovered
/// at flush time) surfaces only there.
///
/// Fault injection: the failpoints `<prefix>.before_tmp_write` (in Open),
/// `<prefix>.after_tmp_write`, `<prefix>.before_rename` and
/// `<prefix>.after_rename` (in Commit) fire with the prefix passed to
/// Open, e.g. `model_io.save.after_tmp_write`. The crash-safety tests kill
/// the process at each of them and assert the old-or-new invariant above.
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  /// An uncommitted writer aborts: the temp file is removed, the canonical
  /// path is untouched. Call Commit() explicitly to publish.
  ~AtomicFileWriter() { Abort(); }

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens `<path>.tmp` for writing (binary, truncating). `failpoint_prefix`
  /// names this write's fault-injection points (see class comment).
  Status Open(const std::string& path,
              const std::string& failpoint_prefix = "atomic_file.write");

  /// The stream to write payload bytes to. Valid between Open and
  /// Commit/Abort.
  std::ostream& stream() { return out_; }

  bool is_open() const { return open_; }

  /// Flush + fsync + rename onto the canonical path + fsync the directory.
  /// On any failure the temp file is removed and the canonical path is left
  /// as it was. After Commit (ok or not) the writer is closed.
  Status Commit();

  /// Drops the temp file without touching the canonical path. Idempotent.
  void Abort();

  /// Payload size of the last successful Commit.
  uint64_t bytes_committed() const { return bytes_committed_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::string failpoint_prefix_;
  std::ofstream out_;
  bool open_ = false;
  uint64_t bytes_committed_ = 0;
};

}  // namespace fvae

#endif  // FVAE_COMMON_ATOMIC_FILE_H_
