#include "common/config.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace fvae {

Result<ConfigMap> ConfigMap::Parse(const std::string& text) {
  ConfigMap config;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    // Strip comments, then whitespace.
    std::string line = raw_line;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;

    const size_t eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected key = value", line_number));
    }
    const std::string key(StripWhitespace(stripped.substr(0, eq)));
    const std::string value(StripWhitespace(stripped.substr(eq + 1)));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("line %zu: empty key", line_number));
    }
    config.values_[key] = value;
  }
  return config;
}

Result<ConfigMap> ConfigMap::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open config: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

void ConfigMap::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool ConfigMap::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ConfigMap::GetString(const std::string& key,
                                 const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t ConfigMap::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return ParseInt64(it->second).value_or(fallback);
}

double ConfigMap::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return ParseDouble(it->second).value_or(fallback);
}

bool ConfigMap::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  return fallback;
}

std::vector<std::string> ConfigMap::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

std::string ConfigMap::ToString() const {
  std::ostringstream out;
  for (const auto& [key, value] : values_) {
    out << key << " = " << value << "\n";
  }
  return out.str();
}

}  // namespace fvae
