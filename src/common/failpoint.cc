#include "common/failpoint.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <map>

#include "common/mutex.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"

namespace fvae {

namespace {

struct ArmedPoint {
  FailpointAction action = FailpointAction::kOff;
  uint64_t max_hits = 0;  // 0 = unlimited
  uint64_t hits = 0;
};

/// Number of currently armed points. The dormant fast path is a single
/// relaxed load of this counter, so sprinkling FailpointCheck through IO
/// code costs nothing in production.
std::atomic<uint64_t> g_armed_count{0};

Mutex& Lock() {
  static Mutex* mutex = new Mutex;
  return *mutex;
}

std::map<std::string, ArmedPoint, std::less<>>& Registry()
    FVAE_REQUIRES(Lock()) {
  static auto* registry = new std::map<std::string, ArmedPoint, std::less<>>;
  return *registry;
}

/// Parses FVAE_FAILPOINT ("name[:kill|error[@N]][,...]") once, on the
/// first FailpointCheck. Malformed entries are ignored — fault injection
/// must never take down a production run on its own.
void ArmFromEnvironment() {
  const char* raw = std::getenv("FVAE_FAILPOINT");
  if (raw == nullptr || raw[0] == '\0') return;
  for (const std::string& entry : Split(raw, ',')) {
    std::string name(StripWhitespace(entry));
    FailpointAction action = FailpointAction::kKill;
    uint64_t max_hits = 0;
    const size_t colon = name.find(':');
    if (colon != std::string::npos) {
      std::string spec = name.substr(colon + 1);
      name.resize(colon);
      const size_t at = spec.find('@');
      if (at != std::string::npos) {
        max_hits = uint64_t(ParseInt64(spec.substr(at + 1)).value_or(0));
        spec.resize(at);
      }
      if (spec == "error") {
        action = FailpointAction::kError;
      } else if (spec != "kill") {
        continue;
      }
    }
    if (!name.empty()) ArmFailpoint(name, action, max_hits);
  }
}

void EnsureEnvironmentParsed() {
  static const bool parsed = [] {
    ArmFromEnvironment();
    return true;
  }();
  (void)parsed;  // the side effect of the initializer is the point
}

}  // namespace

void ArmFailpoint(std::string_view name, FailpointAction action,
                  uint64_t max_hits) {
  MutexLock lock(Lock());
  auto [it, inserted] = Registry().insert_or_assign(
      std::string(name), ArmedPoint{action, max_hits, 0});
  (void)it;  // only the insertion flag matters for the armed count
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void DisarmFailpoint(std::string_view name) {
  MutexLock lock(Lock());
  auto it = Registry().find(name);
  if (it == Registry().end()) return;
  Registry().erase(it);
  g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t FailpointHitCount(std::string_view name) {
  MutexLock lock(Lock());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

Status FailpointCheck(std::string_view name) {
  EnsureEnvironmentParsed();
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  FailpointAction action = FailpointAction::kOff;
  {
    MutexLock lock(Lock());
    auto it = Registry().find(name);
    if (it == Registry().end()) return Status::Ok();
    ArmedPoint& point = it->second;
    if (point.max_hits > 0 && point.hits >= point.max_hits) {
      return Status::Ok();
    }
    ++point.hits;
    action = point.action;
  }
  switch (action) {
    case FailpointAction::kOff:
      return Status::Ok();
    case FailpointAction::kError:
      return Status::Unavailable("failpoint fired: " + std::string(name));
    case FailpointAction::kKill:
      // SIGKILL cannot be caught: no stream flushing, no atexit, no
      // destructors — the closest in-process stand-in for a machine crash.
      std::raise(SIGKILL);
      std::abort();  // unreachable; raise(SIGKILL) does not return
  }
  return Status::Ok();
}

}  // namespace fvae
