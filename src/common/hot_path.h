#ifndef FVAE_COMMON_HOT_PATH_H_
#define FVAE_COMMON_HOT_PATH_H_

/// Hot-path purity annotations, consumed by fvae_lint's whole-program
/// analysis (tools/lint_graph.h). They expand to nothing at compile time —
/// the contract is enforced statically by the linter (a ctest) and
/// witnessed at runtime by the operator-new interposer in serving_test.
///
/// Conventions (docs/ARCHITECTURE.md §7):
///
///  - `FVAE_HOT` marks a function on the serving fold-in encode chain
///    (ServingProxy lookup -> RequestBatcher dispatch -> FieldVae encode ->
///    GEMM kernels). The linter transitively walks every resolvable callee
///    and fails if any reachable function logs, does IO, or acquires a
///    lock whose declaration is not marked FVAE_HOT_LOCK_EXEMPT.
///
///  - `FVAE_NOALLOC` implies FVAE_HOT and additionally forbids heap
///    allocation tokens (`new`, malloc family, growing container calls)
///    anywhere on the reachable chain. Capacity-reusing calls that only
///    allocate while cold carry a `fvae-lint: allow(hot-alloc)` line
///    suppression; the warmed-up zero-allocation claim those suppressions
///    rest on is asserted for real by serving_test's global operator-new
///    interposer.
///
///  - `FVAE_HOT_LOCK_EXEMPT` goes on a Mutex/SharedMutex *member
///    declaration* whose acquisition on a hot path is by design (e.g. the
///    encoder-serialization mutex the micro-batcher amortizes, or a
///    sharded store's reader locks). Exemption is per-lock, not per-call:
///    every acquisition site of that member is allowed.
///
///  - `FVAE_EVENT_LOOP` marks a function that runs on an EpollLoop thread
///    (a readiness callback, a timer handler, or a Post()ed task — or a
///    method only ever invoked from one of those). The linter transitively
///    walks every resolvable callee and fails on anything that can stall
///    the loop: blocking syscalls (`poll`, `select`, sleeps, `recv`/`send`
///    without `MSG_DONTWAIT`), condition-variable waits, thread joins,
///    `RetryWithBackoff`, file IO, reaching an `FVAE_MAY_BLOCK` function,
///    and acquisition of locks that are neither FVAE_LOOP_LOCK_EXEMPT nor
///    FVAE_HOT_LOCK_EXEMPT. Lambdas registered inside an annotated
///    function are covered automatically: the extractor attributes a
///    lambda's body to its enclosing named function.
///
///  - `FVAE_MAY_BLOCK` marks a function that blocks by design (deadline
///    polls, full-buffer sends, connect handshakes). It is documentation
///    at the call site and a hard stop for the event-loop walk: reaching
///    one from an FVAE_EVENT_LOOP root is a finding on the call line, and
///    the walk does not descend into it (the annotation already concedes
///    everything its body could reveal).
///
///  - `FVAE_LOOP_LOCK_EXEMPT` goes on a Mutex member declaration whose
///    bounded critical section is safe to enter from a loop thread (e.g.
///    EpollLoop's own post-queue handoff mutex: push + eventfd write, no
///    IO, no nested locks). FVAE_HOT_LOCK_EXEMPT implies the same waiver —
///    a lock vetted for the serving hot path is vetted for the loop.
///
/// Annotate both the interface declaration (documentation for readers) and
/// the implementing definition — the linter matches attributes by exact
/// namespace-qualified name, so an annotation on a base-class virtual does
/// not transfer to overrides.

#define FVAE_HOT
#define FVAE_NOALLOC
#define FVAE_HOT_LOCK_EXEMPT
#define FVAE_EVENT_LOOP
#define FVAE_MAY_BLOCK
#define FVAE_LOOP_LOCK_EXEMPT

#endif  // FVAE_COMMON_HOT_PATH_H_
