#ifndef FVAE_COMMON_HOT_PATH_H_
#define FVAE_COMMON_HOT_PATH_H_

/// Hot-path purity annotations, consumed by fvae_lint's whole-program
/// analysis (tools/lint_graph.h). They expand to nothing at compile time —
/// the contract is enforced statically by the linter (a ctest) and
/// witnessed at runtime by the operator-new interposer in serving_test.
///
/// Conventions (docs/ARCHITECTURE.md §7):
///
///  - `FVAE_HOT` marks a function on the serving fold-in encode chain
///    (ServingProxy lookup -> RequestBatcher dispatch -> FieldVae encode ->
///    GEMM kernels). The linter transitively walks every resolvable callee
///    and fails if any reachable function logs, does IO, or acquires a
///    lock whose declaration is not marked FVAE_HOT_LOCK_EXEMPT.
///
///  - `FVAE_NOALLOC` implies FVAE_HOT and additionally forbids heap
///    allocation tokens (`new`, malloc family, growing container calls)
///    anywhere on the reachable chain. Capacity-reusing calls that only
///    allocate while cold carry a `fvae-lint: allow(hot-alloc)` line
///    suppression; the warmed-up zero-allocation claim those suppressions
///    rest on is asserted for real by serving_test's global operator-new
///    interposer.
///
///  - `FVAE_HOT_LOCK_EXEMPT` goes on a Mutex/SharedMutex *member
///    declaration* whose acquisition on a hot path is by design (e.g. the
///    encoder-serialization mutex the micro-batcher amortizes, or a
///    sharded store's reader locks). Exemption is per-lock, not per-call:
///    every acquisition site of that member is allowed.
///
/// Annotate both the interface declaration (documentation for readers) and
/// the implementing definition — the linter matches attributes by exact
/// namespace-qualified name, so an annotation on a base-class virtual does
/// not transfer to overrides.

#define FVAE_HOT
#define FVAE_NOALLOC
#define FVAE_HOT_LOCK_EXEMPT

#endif  // FVAE_COMMON_HOT_PATH_H_
