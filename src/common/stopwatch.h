#ifndef FVAE_COMMON_STOPWATCH_H_
#define FVAE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace fvae {

/// Microseconds on the monotonic clock since an arbitrary (but fixed)
/// epoch. The timestamp base of trace spans and the telemetry QPS clock —
/// single values are meaningless, differences are durations.
inline int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic wall-clock stopwatch used by the training loops and the
/// benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fvae

#endif  // FVAE_COMMON_STOPWATCH_H_
