#ifndef FVAE_COMMON_STOPWATCH_H_
#define FVAE_COMMON_STOPWATCH_H_

#include <chrono>

namespace fvae {

/// Monotonic wall-clock stopwatch used by the training loops and the
/// benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fvae

#endif  // FVAE_COMMON_STOPWATCH_H_
