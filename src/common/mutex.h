#ifndef FVAE_COMMON_MUTEX_H_
#define FVAE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace fvae {

/// Capability-annotated wrappers over the standard mutexes.
///
/// Every lock in the library is one of these types (raw std::mutex /
/// std::shared_mutex declarations outside this header are a fvae_lint
/// error), so Clang's `-Wthread-safety` analysis sees every acquisition and
/// can prove that members declared FVAE_GUARDED_BY(mu) are only touched
/// with `mu` held. The wrappers add no state and no overhead: each method
/// is a single inlined forward to the underlying std type.

class FVAE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FVAE_ACQUIRE() { mu_.lock(); }
  void Unlock() FVAE_RELEASE() { mu_.unlock(); }
  bool TryLock() FVAE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer lock: exclusive for writers, shared for readers.
class FVAE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() FVAE_ACQUIRE() { mu_.lock(); }
  void Unlock() FVAE_RELEASE() { mu_.unlock(); }
  void LockShared() FVAE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() FVAE_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex.
class FVAE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FVAE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FVAE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class FVAE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) FVAE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() FVAE_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class FVAE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) FVAE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() FVAE_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with fvae::Mutex.
///
/// Wait methods require the capability (annotated FVAE_REQUIRES) and keep
/// it held across the call from the analysis' point of view: internally the
/// wait adopts the already-held native mutex, sleeps, and re-acquires it
/// before returning, so the caller's lock state is unchanged.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) FVAE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) FVAE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Returns false iff the deadline passed without a notification.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      FVAE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fvae

#endif  // FVAE_COMMON_MUTEX_H_
