#ifndef FVAE_COMMON_BINARY_IO_H_
#define FVAE_COMMON_BINARY_IO_H_

#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace fvae {

/// Little shared vocabulary of the binary persistence formats (FVMD
/// checkpoints, FVDS datasets, FVST streams, FVEB embedding stores): raw
/// little-endian PODs written to any std::ostream, read back through a
/// bounds-checked cursor over an in-memory buffer.
///
/// Readers deliberately go through memory rather than streaming from an
/// ifstream: every format verifies CRC-32 checksums over raw payload bytes
/// (common/crc32.h), which need the bytes anyway, and a cursor makes the
/// "every read is bounds-checked" property trivial to audit.

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked forward cursor over a borrowed byte buffer. Any
/// out-of-bounds read returns false and pins the cursor at the end, so a
/// chain of reads after a truncation keeps failing instead of reading
/// stale values.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  bool ReadBytes(void* out, size_t n) {
    if (data_.size() - pos_ < n) {
      pos_ = data_.size();
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

inline Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return std::move(buffer).str();
}

}  // namespace fvae

#endif  // FVAE_COMMON_BINARY_IO_H_
