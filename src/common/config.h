#ifndef FVAE_COMMON_CONFIG_H_
#define FVAE_COMMON_CONFIG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fvae {

/// Flat key = value configuration, as read from a config file or assembled
/// programmatically. Used by the CLI's --config option and by experiment
/// scripts.
///
/// File syntax: one `key = value` per line; '#' starts a comment; blank
/// lines ignored; keys are dot-scoped by convention ("train.epochs").
/// Duplicate keys: last one wins.
class ConfigMap {
 public:
  ConfigMap() = default;

  /// Parses `text`; returns InvalidArgument on malformed lines.
  static Result<ConfigMap> Parse(const std::string& text);

  /// Reads and parses a file.
  static Result<ConfigMap> LoadFile(const std::string& path);

  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  /// Typed getters with defaults. Type-mismatched values return the
  /// default (callers that must distinguish use GetString + Parse*).
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// All keys, sorted (stable iteration for serialization and logging).
  std::vector<std::string> Keys() const;

  /// Serializes back to the file syntax.
  std::string ToString() const;

  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace fvae

#endif  // FVAE_COMMON_CONFIG_H_
