#include "math/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "math/kernels/kernel_table.h"

namespace fvae {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    FVAE_CHECK(rows[r].size() == m.cols_) << "ragged initializer";
    std::copy(rows[r].begin(), rows[r].end(), m.Row(r));
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, float stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data_[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::XavierUniform(size_t fan_in, size_t fan_out, Rng& rng) {
  Matrix m(fan_in, fan_out);
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (size_t i = 0; i < m.size(); ++i) {
    m.data_[i] = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // Capacity-reusing: allocates only while growing past the high-water
  // mark, so a warmed-up serving encode is allocation-free (asserted by
  // serving_test's operator-new interposer).
  data_.assign(rows * cols, 0.0f);  // fvae-lint: allow(hot-alloc)
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

void Matrix::Scale(float factor) {
  for (float& v : data_) v *= factor;
}

void Matrix::Add(const Matrix& other) {
  FVAE_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, float factor) {
  FVAE_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
}

float Matrix::FrobeniusNorm() const {
  double total = 0.0;
  for (float v : data_) total += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(total));
}

float Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  FVAE_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_) << "shape mismatch";
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.data_[i] - b.data_[i]));
  }
  return max_diff;
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < std::min(rows_, max_rows); ++r) {
    out << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < std::min(cols_, max_cols); ++c) {
      if (c > 0) out << ", ";
      out << (*this)(r, c);
    }
    if (cols_ > max_cols) out << ", ...";
    out << "]";
    if (r + 1 < std::min(rows_, max_rows)) out << "\n";
  }
  if (rows_ > max_rows) out << "\n ...";
  out << "]";
  return out.str();
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  FVAE_CHECK(a.cols() == b.rows())
      << "gemm shape mismatch: " << a.cols() << " vs " << b.rows();
  out->Resize(a.rows(), b.cols());
  GemmAccumulate(a, b, out);
}

void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  FVAE_CHECK(b.rows() == k && out->rows() == m && out->cols() == n)
      << "gemm-accumulate shape mismatch";
  // Shape checks stay here; the arithmetic runs in the ISA-dispatched
  // kernel layer (src/math/kernels/), which guarantees ascending-p
  // accumulation with no zero-operand skips in every tile and tail path.
  Kernels().gemm_accumulate(a.Row(0), b.Row(0), out->Row(0), m, k, n);
}

void GemmNT(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  FVAE_CHECK(b.cols() == k)
      << "gemm-nt shape mismatch: " << a.cols() << " vs " << b.cols();
  out->Resize(m, n);
  const KernelTable& kt = Kernels();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (size_t j = 0; j < n; ++j) {
      out_row[j] = static_cast<float>(kt.dot(a_row, b.Row(j), k));
    }
  }
}

void GemmTN(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  FVAE_CHECK(b.rows() == k)
      << "gemm-tn shape mismatch: " << a.rows() << " vs " << b.rows();
  out->Resize(m, n);
  const KernelTable& kt = Kernels();
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.Row(p);
    const float* b_row = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      // Activation gradients are mostly dense but batch-sparse rows do
      // occur; the skip is exact (+= 0*x is an fp no-op for finite x) and
      // GemmTN is not on the inf/NaN-propagation-sensitive serving path.
      if (a_pi == 0.0f) continue;
      kt.axpy(a_pi, b_row, out->Row(i), n);
    }
  }
}

}  // namespace fvae
