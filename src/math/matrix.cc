#include "math/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <type_traits>

namespace fvae {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    FVAE_CHECK(rows[r].size() == m.cols_) << "ragged initializer";
    std::copy(rows[r].begin(), rows[r].end(), m.Row(r));
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, float stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data_[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::XavierUniform(size_t fan_in, size_t fan_out, Rng& rng) {
  Matrix m(fan_in, fan_out);
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (size_t i = 0; i < m.size(); ++i) {
    m.data_[i] = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // Capacity-reusing: allocates only while growing past the high-water
  // mark, so a warmed-up serving encode is allocation-free (asserted by
  // serving_test's operator-new interposer).
  data_.assign(rows * cols, 0.0f);  // fvae-lint: allow(hot-alloc)
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

void Matrix::Scale(float factor) {
  for (float& v : data_) v *= factor;
}

void Matrix::Add(const Matrix& other) {
  FVAE_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, float factor) {
  FVAE_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
}

float Matrix::FrobeniusNorm() const {
  double total = 0.0;
  for (float v : data_) total += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(total));
}

float Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  FVAE_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_) << "shape mismatch";
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.data_[i] - b.data_[i]));
  }
  return max_diff;
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < std::min(rows_, max_rows); ++r) {
    out << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < std::min(cols_, max_cols); ++c) {
      if (c > 0) out << ", ";
      out << (*this)(r, c);
    }
    if (cols_ > max_cols) out << ", ...";
    out << "]";
    if (r + 1 < std::min(rows_, max_rows)) out << "\n";
  }
  if (rows_ > max_rows) out << "\n ...";
  out << "]";
  return out.str();
}

namespace {
// Register-tile shape for GemmAccumulate: kTileRows rows of `a` share every
// streamed row of `b`, and kStrip output columns per row stay in local
// accumulators across the whole inner-product loop. This cuts weight-row
// traffic per output element by kTileRows versus a row-at-a-time loop, which
// is what makes batched inference (e.g. micro-batched fold-in encoding)
// faster per user than repeated single-row GEMVs.
constexpr size_t kTileRows = 4;
constexpr size_t kStrip = 16;
}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  FVAE_CHECK(a.cols() == b.rows())
      << "gemm shape mismatch: " << a.cols() << " vs " << b.rows();
  out->Resize(a.rows(), b.cols());
  GemmAccumulate(a, b, out);
}

void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  FVAE_CHECK(b.rows() == k && out->rows() == m && out->cols() == n)
      << "gemm-accumulate shape mismatch";
  // Accumulators are seeded from `out` and every output element sums its
  // contributions in ascending p order, exactly like the scalar tail below,
  // so tiled and untiled paths produce bit-identical results.
  size_t i = 0;
  for (; i + kTileRows <= m; i += kTileRows) {
    const float* a0 = a.Row(i);
    const float* a1 = a.Row(i + 1);
    const float* a2 = a.Row(i + 2);
    const float* a3 = a.Row(i + 3);
    float* o0 = out->Row(i);
    float* o1 = out->Row(i + 1);
    float* o2 = out->Row(i + 2);
    float* o3 = out->Row(i + 3);
    // Full strips get a compile-time trip count so the accumulators live in
    // vector registers; the ragged tail reuses the same body with a runtime
    // width.
    const auto strip = [&](size_t j0, auto width) {
      float acc0[kStrip], acc1[kStrip], acc2[kStrip], acc3[kStrip];
      for (size_t j = 0; j < width; ++j) {
        acc0[j] = o0[j0 + j];
        acc1[j] = o1[j0 + j];
        acc2[j] = o2[j0 + j];
        acc3[j] = o3[j0 + j];
      }
      for (size_t p = 0; p < k; ++p) {
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
        const float* b_row = b.Row(p) + j0;
        for (size_t j = 0; j < width; ++j) {
          const float w = b_row[j];
          acc0[j] += v0 * w;
          acc1[j] += v1 * w;
          acc2[j] += v2 * w;
          acc3[j] += v3 * w;
        }
      }
      for (size_t j = 0; j < width; ++j) {
        o0[j0 + j] = acc0[j];
        o1[j0 + j] = acc1[j];
        o2[j0 + j] = acc2[j];
        o3[j0 + j] = acc3[j];
      }
    };
    size_t j0 = 0;
    for (; j0 + kStrip <= n; j0 += kStrip) {
      strip(j0, std::integral_constant<size_t, kStrip>{});
    }
    if (j0 < n) strip(j0, n - j0);
  }
  // Leftover rows (and any m < kTileRows batch, e.g. single-user GEMV).
  for (; i < m; ++i) {
    float* out_row = out->Row(i);
    const float* a_row = a.Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b.Row(p);
      for (size_t j = 0; j < n; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
}

void GemmNT(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  FVAE_CHECK(b.cols() == k)
      << "gemm-nt shape mismatch: " << a.cols() << " vs " << b.cols();
  out->Resize(m, n);
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b.Row(j);
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += double(a_row[p]) * b_row[p];
      out_row[j] = static_cast<float>(acc);
    }
  }
}

void GemmTN(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  FVAE_CHECK(b.rows() == k)
      << "gemm-tn shape mismatch: " << a.rows() << " vs " << b.rows();
  out->Resize(m, n);
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.Row(p);
    const float* b_row = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      if (a_pi == 0.0f) continue;
      float* out_row = out->Row(i);
      for (size_t j = 0; j < n; ++j) out_row[j] += a_pi * b_row[j];
    }
  }
}

}  // namespace fvae
