#ifndef FVAE_MATH_STATS_H_
#define FVAE_MATH_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fvae {

/// Streaming mean/variance accumulator (Welford). Used by benchmark
/// harnesses to report run-to-run variation.
class OnlineStats {
 public:
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation coefficient; 0 when either side has zero variance.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

/// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
double Percentile(std::vector<double> values, double p);

}  // namespace fvae

#endif  // FVAE_MATH_STATS_H_
