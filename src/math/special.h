#ifndef FVAE_MATH_SPECIAL_H_
#define FVAE_MATH_SPECIAL_H_

namespace fvae {

/// Special functions needed by the LDA baseline's variational updates.

/// Digamma function psi(x) = d/dx ln Gamma(x), for x > 0.
/// Uses the recurrence psi(x) = psi(x+1) - 1/x to shift into the asymptotic
/// regime, then a 6-term asymptotic series; absolute error < 1e-10 for
/// x >= 1e-3.
double Digamma(double x);

/// Natural log of the Gamma function (wrapper over std::lgamma, pinned here
/// so callers do not depend on <cmath> signatures directly).
double LogGamma(double x);

/// exp(psi(x)): convenient for LDA's expected-topic-weight geometric means.
double ExpDigamma(double x);

/// Scalar twins of the vectorized exp/log polynomial kernels in
/// src/math/kernels/: identical Cephes range reduction, coefficients, FMA
/// shapes, and special-case semantics, so tests can pin the SIMD paths
/// element-for-element without depending on libm. Relative error vs the
/// true function is < 3 ulp over the non-saturated range.
///
/// ExpApprox saturates: x > 88.3762626647950 -> +inf,
/// x < -87.3365478515625 -> 0 (never subnormal), NaN -> NaN.
float ExpApprox(float x);

/// LogApprox: 0 -> -inf, negative -> NaN, +inf -> +inf, NaN -> NaN;
/// subnormal inputs are treated as the smallest normal.
float LogApprox(float x);

}  // namespace fvae

#endif  // FVAE_MATH_SPECIAL_H_
