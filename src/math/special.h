#ifndef FVAE_MATH_SPECIAL_H_
#define FVAE_MATH_SPECIAL_H_

namespace fvae {

/// Special functions needed by the LDA baseline's variational updates.

/// Digamma function psi(x) = d/dx ln Gamma(x), for x > 0.
/// Uses the recurrence psi(x) = psi(x+1) - 1/x to shift into the asymptotic
/// regime, then a 6-term asymptotic series; absolute error < 1e-10 for
/// x >= 1e-3.
double Digamma(double x);

/// Natural log of the Gamma function (wrapper over std::lgamma, pinned here
/// so callers do not depend on <cmath> signatures directly).
double LogGamma(double x);

/// exp(psi(x)): convenient for LDA's expected-topic-weight geometric means.
double ExpDigamma(double x);

}  // namespace fvae

#endif  // FVAE_MATH_SPECIAL_H_
