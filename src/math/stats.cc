#include "math/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fvae {

void OnlineStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / double(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / double(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  FVAE_CHECK(x.size() == y.size()) << "correlation size mismatch";
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= double(n);
  my /= double(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Percentile(std::vector<double> values, double p) {
  FVAE_CHECK(!values.empty()) << "percentile of empty set";
  FVAE_CHECK(p >= 0.0 && p <= 100.0) << "p out of range";
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = p / 100.0 * double(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - double(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace fvae
