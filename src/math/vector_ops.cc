#include "math/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fvae {

double Dot(std::span<const float> a, std::span<const float> b) {
  FVAE_CHECK(a.size() == b.size()) << "dot size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += double(a[i]) * b[i];
  return acc;
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  FVAE_CHECK(x.size() == y.size()) << "axpy size mismatch";
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void ScaleInPlace(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

double Norm2(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += double(v) * v;
  return std::sqrt(acc);
}

double SquaredDistance(std::span<const float> a, std::span<const float> b) {
  FVAE_CHECK(a.size() == b.size()) << "distance size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = double(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const double na = Norm2(a), nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void SoftmaxInPlace(std::span<float> logits) {
  if (logits.empty()) return;
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (float& v : logits) {
    v = std::exp(v - max_logit);
    total += v;
  }
  const float inv = static_cast<float>(1.0 / total);
  for (float& v : logits) v *= inv;
}

void LogSoftmaxInPlace(std::span<float> logits) {
  if (logits.empty()) return;
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (float v : logits) total += std::exp(double(v) - max_logit);
  const float log_z = max_logit + static_cast<float>(std::log(total));
  for (float& v : logits) v -= log_z;
}

double LogSumExp(std::span<const float> x) {
  if (x.empty()) return -HUGE_VAL;
  const float max_v = *std::max_element(x.begin(), x.end());
  double total = 0.0;
  for (float v : x) total += std::exp(double(v) - max_v);
  return double(max_v) + std::log(total);
}

void TanhInPlace(std::span<float> x) {
  for (float& v : x) v = std::tanh(v);
}

void SigmoidInPlace(std::span<float> x) {
  for (float& v : x) v = 1.0f / (1.0f + std::exp(-v));
}

void ReluInPlace(std::span<float> x) {
  for (float& v : x) v = std::max(0.0f, v);
}

double Mean(std::span<const float> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc / double(x.size());
}

double Variance(std::span<const float> x) {
  if (x.size() < 2) return 0.0;
  const double mu = Mean(x);
  double acc = 0.0;
  for (float v : x) {
    const double d = v - mu;
    acc += d * d;
  }
  return acc / double(x.size() - 1);
}

void L2NormalizeInPlace(std::span<float> x) {
  const double norm = Norm2(x);
  if (norm == 0.0) return;
  ScaleInPlace(x, static_cast<float>(1.0 / norm));
}

}  // namespace fvae
