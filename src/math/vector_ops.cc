#include "math/vector_ops.h"

#include <cmath>

#include "common/check.h"
#include "math/kernels/kernel_table.h"

namespace fvae {

double Dot(std::span<const float> a, std::span<const float> b) {
  FVAE_CHECK(a.size() == b.size()) << "dot size mismatch";
  return Kernels().dot(a.data(), b.data(), a.size());
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  FVAE_CHECK(x.size() == y.size()) << "axpy size mismatch";
  Kernels().axpy(alpha, x.data(), y.data(), x.size());
}

void ScaleInPlace(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

double Norm2(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += double(v) * v;
  return std::sqrt(acc);
}

double SquaredDistance(std::span<const float> a, std::span<const float> b) {
  FVAE_CHECK(a.size() == b.size()) << "distance size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = double(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const double na = Norm2(a), nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void SoftmaxInPlace(std::span<float> logits) {
  Kernels().softmax_inplace(logits.data(), logits.size());
}

void LogSoftmaxInPlace(std::span<float> logits) {
  Kernels().log_softmax_inplace(logits.data(), logits.size());
}

double LogSumExp(std::span<const float> x) {
  return Kernels().log_sum_exp(x.data(), x.size());
}

void TanhInPlace(std::span<float> x) {
  Kernels().tanh_inplace(x.data(), x.size());
}

void SigmoidInPlace(std::span<float> x) {
  Kernels().sigmoid_inplace(x.data(), x.size());
}

void ReluInPlace(std::span<float> x) {
  for (float& v : x) v = v > 0.0f ? v : 0.0f;
}

void ExpInPlace(std::span<float> x) {
  Kernels().exp_inplace(x.data(), x.size());
}

void LogInPlace(std::span<float> x) {
  Kernels().log_inplace(x.data(), x.size());
}

double Mean(std::span<const float> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc / double(x.size());
}

double Variance(std::span<const float> x) {
  if (x.size() < 2) return 0.0;
  const double mu = Mean(x);
  double acc = 0.0;
  for (float v : x) {
    const double d = v - mu;
    acc += d * d;
  }
  return acc / double(x.size() - 1);
}

void L2NormalizeInPlace(std::span<float> x) {
  const double norm = Norm2(x);
  if (norm == 0.0) return;
  ScaleInPlace(x, static_cast<float>(1.0 / norm));
}

}  // namespace fvae
