#ifndef FVAE_MATH_SVD_H_
#define FVAE_MATH_SVD_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "math/matrix.h"

namespace fvae {

/// Abstract linear operator A of shape (rows x cols). Lets the randomized
/// SVD run against sparse user-feature matrices without densifying them
/// (essential for the PCA baseline at large J).
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;

  /// out = A * x, with x of shape (cols x k) and out of shape (rows x k).
  virtual void Apply(const Matrix& x, Matrix* out) const = 0;

  /// out = A^T * x, with x of shape (rows x k) and out of shape (cols x k).
  virtual void ApplyTranspose(const Matrix& x, Matrix* out) const = 0;
};

/// Adapter exposing a dense Matrix as a LinearOperator.
class DenseOperator : public LinearOperator {
 public:
  /// Does not take ownership; `matrix` must outlive the operator.
  explicit DenseOperator(const Matrix* matrix) : matrix_(matrix) {}

  size_t rows() const override { return matrix_->rows(); }
  size_t cols() const override { return matrix_->cols(); }
  void Apply(const Matrix& x, Matrix* out) const override;
  void ApplyTranspose(const Matrix& x, Matrix* out) const override;

 private:
  const Matrix* matrix_;
};

/// Result of a symmetric eigendecomposition: A = V diag(lambda) V^T with
/// eigenvalues sorted in decreasing order.
struct EigenDecomposition {
  std::vector<float> eigenvalues;
  Matrix eigenvectors;  // column i is the eigenvector for eigenvalues[i]
};

/// Cyclic Jacobi eigendecomposition of a small symmetric matrix. Intended
/// for the (k x k) core matrices inside the randomized SVD; O(n^3) per sweep.
EigenDecomposition SymmetricEigen(const Matrix& a, int max_sweeps = 50,
                                  float tolerance = 1e-9f);

/// Orthonormalizes the columns of `m` in place with modified Gram-Schmidt.
/// Columns that become numerically zero are replaced by fresh random
/// directions and re-orthogonalized, so the output always has full column
/// rank.
void OrthonormalizeColumns(Matrix* m, Rng& rng);

/// Truncated SVD A ~= U diag(s) V^T.
struct SvdResult {
  Matrix u;                       // rows x k
  std::vector<float> singular_values;  // k, decreasing
  Matrix v;                       // cols x k
};

/// Halko-Martinsson-Tropp randomized truncated SVD.
///
/// `rank` is the number of components kept; `oversample` extra random probes
/// and `power_iterations` subspace iterations trade time for accuracy
/// (defaults are the standard recommendation).
SvdResult RandomizedSvd(const LinearOperator& a, size_t rank, Rng& rng,
                        size_t oversample = 8, int power_iterations = 2);

}  // namespace fvae

#endif  // FVAE_MATH_SVD_H_
