#include "math/special.h"

#include <cmath>

#include "common/check.h"

namespace fvae {

double Digamma(double x) {
  FVAE_CHECK(x > 0.0) << "Digamma domain error";
  double result = 0.0;
  // Shift x upward until the asymptotic expansion is accurate.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: ln x - 1/(2x) - sum B_2n / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 -
                                            inv2 * (1.0 / 132.0)))));
  return result;
}

double LogGamma(double x) { return std::lgamma(x); }

double ExpDigamma(double x) { return std::exp(Digamma(x)); }

}  // namespace fvae
