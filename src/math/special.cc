#include "math/special.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace fvae {

double Digamma(double x) {
  FVAE_CHECK(x > 0.0) << "Digamma domain error";
  double result = 0.0;
  // Shift x upward until the asymptotic expansion is accurate.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: ln x - 1/(2x) - sum B_2n / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 -
                                            inv2 * (1.0 / 132.0)))));
  return result;
}

double LogGamma(double x) { return std::lgamma(x); }

double ExpDigamma(double x) { return std::exp(Digamma(x)); }

// Scalar twins of Exp8/Exp16 and Log8/Log16 in src/math/kernels/: the same
// Cephes range reduction, coefficients, and FMA shapes (std::fma mirrors
// the vector fmadd/fnmadd exactly), so the results are bit-identical to
// the SIMD lanes. Keep the three implementations in lockstep.

float ExpApprox(float x0) {
  if (std::isnan(x0)) return x0;
  if (x0 > 88.3762626647950f) return HUGE_VALF;
  if (x0 < -87.3365478515625f) return 0.0f;
  float x = x0;
  // x = n*ln2 + r via Cody-Waite; ln2 split keeps r's rounding exact.
  float fx = std::floor(std::fma(x, 1.44269504088896341f, 0.5f));
  x = std::fma(-fx, 0.693359375f, x);
  x = std::fma(fx, 2.12194440e-4f, x);
  const float z = x * x;
  float y = 1.9875691500e-4f;
  y = std::fma(y, x, 1.3981999507e-3f);
  y = std::fma(y, x, 8.3334519073e-3f);
  y = std::fma(y, x, 4.1665795894e-2f);
  y = std::fma(y, x, 1.6666665459e-1f);
  y = std::fma(y, x, 5.0000001201e-1f);
  y = std::fma(y, z, x);
  y += 1.0f;
  const int32_t n = static_cast<int32_t>(fx);
  const float pow2 = std::bit_cast<float>((n + 127) << 23);
  return y * pow2;
}

float LogApprox(float x0) {
  if (std::isnan(x0)) return x0;
  if (x0 == 0.0f) return -HUGE_VALF;
  if (x0 < 0.0f) return std::numeric_limits<float>::quiet_NaN();
  if (x0 == HUGE_VALF) return x0;
  const float min_norm = std::bit_cast<float>(0x00800000);
  float x = x0 < min_norm ? min_norm : x0;
  uint32_t bits = std::bit_cast<uint32_t>(x);
  float e = static_cast<float>(static_cast<int32_t>(bits >> 23) - 126);
  bits = (bits & 0x007fffffu) | 0x3f000000u;
  x = std::bit_cast<float>(bits);  // mantissa in [0.5, 1)
  if (x < 0.707106781186547524f) {
    e -= 1.0f;
    x += x;
  }
  x -= 1.0f;
  const float z = x * x;
  float y = 7.0376836292e-2f;
  y = std::fma(y, x, -1.1514610310e-1f);
  y = std::fma(y, x, 1.1676998740e-1f);
  y = std::fma(y, x, -1.2420140846e-1f);
  y = std::fma(y, x, 1.4249322787e-1f);
  y = std::fma(y, x, -1.6668057665e-1f);
  y = std::fma(y, x, 2.0000714765e-1f);
  y = std::fma(y, x, -2.4999993993e-1f);
  y = std::fma(y, x, 3.3333331174e-1f);
  y = (y * x) * z;
  y = std::fma(e, -2.12194440e-4f, y);
  y = std::fma(-0.5f, z, y);
  float r = x + y;
  r = std::fma(e, 0.693359375f, r);
  return r;
}

}  // namespace fvae
