#include "math/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "math/vector_ops.h"

namespace fvae {

void DenseOperator::Apply(const Matrix& x, Matrix* out) const {
  Gemm(*matrix_, x, out);
}

void DenseOperator::ApplyTranspose(const Matrix& x, Matrix* out) const {
  GemmTN(*matrix_, x, out);
}

EigenDecomposition SymmetricEigen(const Matrix& a, int max_sweeps,
                                  float tolerance) {
  FVAE_CHECK(a.rows() == a.cols()) << "SymmetricEigen needs a square matrix";
  const size_t n = a.rows();
  Matrix work = a;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Largest off-diagonal magnitude decides convergence.
    float off = 0.0f;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        off = std::max(off, std::fabs(work(p, q)));
      }
    }
    if (off < tolerance) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const float apq = work(p, q);
        if (std::fabs(apq) < tolerance) continue;
        const float app = work(p, p);
        const float aqq = work(q, q);
        const float theta = (aqq - app) / (2.0f * apq);
        // Stable tangent of the rotation angle.
        const float t = (theta >= 0 ? 1.0f : -1.0f) /
                        (std::fabs(theta) +
                         std::sqrt(theta * theta + 1.0f));
        const float c = 1.0f / std::sqrt(t * t + 1.0f);
        const float s = t * c;
        // Apply the rotation to rows/columns p and q.
        for (size_t i = 0; i < n; ++i) {
          const float aip = work(i, p);
          const float aiq = work(i, q);
          work(i, p) = c * aip - s * aiq;
          work(i, q) = s * aip + c * aiq;
        }
        for (size_t i = 0; i < n; ++i) {
          const float api = work(p, i);
          const float aqi = work(q, i);
          work(p, i) = c * api - s * aqi;
          work(q, i) = s * api + c * aqi;
        }
        for (size_t i = 0; i < n; ++i) {
          const float vip = v(i, p);
          const float viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Sort eigenpairs by decreasing eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return work(x, x) > work(y, y);
  });

  EigenDecomposition result;
  result.eigenvalues.resize(n);
  result.eigenvectors.Resize(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = work(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return result;
}

void OrthonormalizeColumns(Matrix* m, Rng& rng) {
  const size_t rows = m->rows(), cols = m->cols();
  FVAE_CHECK(rows >= cols) << "cannot orthonormalize " << cols
                           << " columns in dimension " << rows;
  std::vector<float> column(rows);
  for (size_t j = 0; j < cols; ++j) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      for (size_t i = 0; i < rows; ++i) column[i] = (*m)(i, j);
      const double original_norm = Norm2(column);
      // Modified Gram-Schmidt, applied twice ("twice is enough"): a single
      // pass loses orthogonality when the column is nearly dependent on the
      // previous ones (heavy cancellation) — exactly the situation a
      // low-rank input creates.
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t prev = 0; prev < j; ++prev) {
          double proj = 0.0;
          for (size_t i = 0; i < rows; ++i) {
            proj += double(column[i]) * (*m)(i, prev);
          }
          for (size_t i = 0; i < rows; ++i) {
            column[i] -= static_cast<float>(proj) * (*m)(i, prev);
          }
        }
      }
      const double norm = Norm2(column);
      // Degenerate when the residual is noise relative to the original
      // column (or outright zero).
      if (norm > 1e-6 * std::max(1.0, original_norm)) {
        const float inv = static_cast<float>(1.0 / norm);
        for (size_t i = 0; i < rows; ++i) (*m)(i, j) = column[i] * inv;
        break;
      }
      // Replace with a fresh random direction and retry.
      for (size_t i = 0; i < rows; ++i) {
        (*m)(i, j) = static_cast<float>(rng.Normal());
      }
    }
  }
}

SvdResult RandomizedSvd(const LinearOperator& a, size_t rank, Rng& rng,
                        size_t oversample, int power_iterations) {
  const size_t rows = a.rows(), cols = a.cols();
  FVAE_CHECK(rank > 0);
  const size_t probes = std::min(cols, std::min(rows, rank + oversample));
  FVAE_CHECK(rank <= probes) << "rank exceeds matrix dimensions";

  // Range finder: Y = (A A^T)^q A Omega, orthonormalized each pass.
  Matrix omega = Matrix::Gaussian(cols, probes, 1.0f, rng);
  Matrix y;
  a.Apply(omega, &y);  // rows x probes
  OrthonormalizeColumns(&y, rng);
  Matrix scratch;
  for (int it = 0; it < power_iterations; ++it) {
    a.ApplyTranspose(y, &scratch);  // cols x probes
    OrthonormalizeColumns(&scratch, rng);
    a.Apply(scratch, &y);  // rows x probes
    OrthonormalizeColumns(&y, rng);
  }

  // B = Q^T A  (probes x cols), realized as B^T = A^T Q.
  Matrix bt;                      // cols x probes
  a.ApplyTranspose(y, &bt);
  // Small Gram matrix B B^T = (B^T)^T (B^T)  (probes x probes).
  Matrix gram;
  GemmTN(bt, bt, &gram);
  EigenDecomposition eig = SymmetricEigen(gram);

  SvdResult result;
  result.singular_values.resize(rank);
  result.u.Resize(rows, rank);
  result.v.Resize(cols, rank);
  for (size_t j = 0; j < rank; ++j) {
    const float lambda = std::max(0.0f, eig.eigenvalues[j]);
    const float sigma = std::sqrt(lambda);
    result.singular_values[j] = sigma;
    // u_j = Q * w_j  where w_j is the eigenvector.
    for (size_t i = 0; i < rows; ++i) {
      double acc = 0.0;
      for (size_t p = 0; p < probes; ++p) {
        acc += double(y(i, p)) * eig.eigenvectors(p, j);
      }
      result.u(i, j) = static_cast<float>(acc);
    }
    // v_j = B^T w_j / sigma.
    if (sigma > 1e-12f) {
      const float inv_sigma = 1.0f / sigma;
      for (size_t i = 0; i < cols; ++i) {
        double acc = 0.0;
        for (size_t p = 0; p < probes; ++p) {
          acc += double(bt(i, p)) * eig.eigenvectors(p, j);
        }
        result.v(i, j) = static_cast<float>(acc) * inv_sigma;
      }
    }
  }
  return result;
}

}  // namespace fvae
