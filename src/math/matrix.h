#ifndef FVAE_MATH_MATRIX_H_
#define FVAE_MATH_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace fvae {

/// Dense row-major float matrix.
///
/// The workhorse container for the neural-network substrate. Deliberately
/// minimal: storage, element access, and the handful of BLAS-like kernels
/// the models need (see functions below and vector_ops.h). Copyable and
/// movable; copies are deep.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Matrix filled with `value`.
  Matrix(size_t rows, size_t cols, float value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Builds from nested initializer data (row major); all rows must have
  /// equal length.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Matrix with i.i.d. N(0, stddev^2) entries.
  static Matrix Gaussian(size_t rows, size_t cols, float stddev, Rng& rng);

  /// Xavier/Glorot uniform initialization for a (fan_in x fan_out) weight.
  static Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    FVAE_CHECK(r < rows_ && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    FVAE_CHECK(r < rows_ && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for hot loops.
  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Raw pointer to the start of row r.
  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Sets every entry to zero.
  void SetZero() { Fill(0.0f); }

  /// Resizes to rows x cols, discarding contents (zero-filled).
  void Resize(size_t rows, size_t cols);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// In-place scalar ops.
  void Scale(float factor);
  void Add(const Matrix& other);              // this += other
  void AddScaled(const Matrix& other, float factor);  // this += factor*other

  /// Frobenius norm.
  float FrobeniusNorm() const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  static float MaxAbsDiff(const Matrix& a, const Matrix& b);

  /// Compact textual rendering (for logging / debugging small matrices).
  std::string ToString(size_t max_rows = 8, size_t max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// out = a * b. Blocked triple loop (ikj order) with accumulation in the
/// innermost dimension; shapes: (m x k) * (k x n) -> (m x n).
void Gemm(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T; shapes: (m x k) * (n x k)^T -> (m x n).
void GemmNT(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b; shapes: (k x m)^T * (k x n) -> (m x n).
void GemmTN(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a * b (accumulating variant of Gemm).
void GemmAccumulate(const Matrix& a, const Matrix& b, Matrix* out);

}  // namespace fvae

#endif  // FVAE_MATH_MATRIX_H_
