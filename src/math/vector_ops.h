#ifndef FVAE_MATH_VECTOR_OPS_H_
#define FVAE_MATH_VECTOR_OPS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fvae {

/// Dense vector kernels shared by the NN layers, the baselines, and the
/// evaluation code. All functions operate on std::span<float> views so they
/// compose with Matrix rows and raw buffers alike.

/// Inner product <a, b>; sizes must match.
double Dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void ScaleInPlace(std::span<float> x, float alpha);

/// Euclidean norm.
double Norm2(std::span<const float> x);

/// Squared Euclidean distance between a and b.
double SquaredDistance(std::span<const float> a, std::span<const float> b);

/// Cosine similarity; returns 0 when either vector is all-zero.
double CosineSimilarity(std::span<const float> a, std::span<const float> b);

/// In-place numerically stable softmax (subtracts max before exp).
void SoftmaxInPlace(std::span<float> logits);

/// In-place numerically stable log-softmax.
void LogSoftmaxInPlace(std::span<float> logits);

/// log(sum_i exp(x_i)) computed stably.
double LogSumExp(std::span<const float> x);

/// Elementwise activations, in place.
void TanhInPlace(std::span<float> x);
void SigmoidInPlace(std::span<float> x);
void ReluInPlace(std::span<float> x);

/// Mean of a span; 0 for empty input.
double Mean(std::span<const float> x);

/// Unbiased sample variance; 0 for spans with fewer than two elements.
double Variance(std::span<const float> x);

/// L2-normalizes x in place; leaves an all-zero vector untouched.
void L2NormalizeInPlace(std::span<float> x);

}  // namespace fvae

#endif  // FVAE_MATH_VECTOR_OPS_H_
