#ifndef FVAE_MATH_VECTOR_OPS_H_
#define FVAE_MATH_VECTOR_OPS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fvae {

/// Dense vector kernels shared by the NN layers, the baselines, and the
/// evaluation code. All functions operate on std::span<float> views so they
/// compose with Matrix rows and raw buffers alike.
///
/// The hot entry points (Dot/Axpy/softmax family/exp/log/tanh/sigmoid)
/// forward to the runtime-dispatched SIMD kernel layer in
/// src/math/kernels/kernel_table.h; see that header for the ISA selection
/// story and the shared numeric edge-case contract (empty spans, all-(-inf)
/// logits, NaN propagation, exp saturation).

/// Inner product <a, b>; sizes must match.
double Dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void ScaleInPlace(std::span<float> x, float alpha);

/// Euclidean norm.
double Norm2(std::span<const float> x);

/// Squared Euclidean distance between a and b.
double SquaredDistance(std::span<const float> a, std::span<const float> b);

/// Cosine similarity; returns 0 when either vector is all-zero.
double CosineSimilarity(std::span<const float> a, std::span<const float> b);

/// In-place numerically stable softmax (subtracts max before exp). Empty
/// spans are a no-op; all-(-inf) logits yield the uniform distribution;
/// a NaN anywhere yields an all-NaN output.
void SoftmaxInPlace(std::span<float> logits);

/// In-place numerically stable log-softmax. Empty spans are a no-op;
/// all-(-inf) logits yield -log(n); NaN anywhere yields all-NaN.
void LogSoftmaxInPlace(std::span<float> logits);

/// log(sum_i exp(x_i)) computed stably.
double LogSumExp(std::span<const float> x);

/// Elementwise activations, in place.
void TanhInPlace(std::span<float> x);
void SigmoidInPlace(std::span<float> x);
void ReluInPlace(std::span<float> x);

/// Elementwise exp/log, in place. The vectorized exp saturates exactly like
/// ExpApprox in src/math/special.h (+inf above 88.376..., 0 below
/// -87.336...); log maps 0 to -inf and negatives to NaN.
void ExpInPlace(std::span<float> x);
void LogInPlace(std::span<float> x);

/// Mean of a span; 0 for empty input.
double Mean(std::span<const float> x);

/// Unbiased sample variance; 0 for spans with fewer than two elements.
double Variance(std::span<const float> x);

/// L2-normalizes x in place; leaves an all-zero vector untouched.
void L2NormalizeInPlace(std::span<float> x);

}  // namespace fvae

#endif  // FVAE_MATH_VECTOR_OPS_H_
