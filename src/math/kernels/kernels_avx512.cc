#include <cstddef>

#include "math/kernels/kernel_table.h"

// AVX-512 kernels: structurally the same algorithms as kernels_avx2.cc at
// twice the width, with __mmask16 predication replacing maskload/maskstore
// emulation. Compiled with -mavx512{f,dq,bw,vl} for this TU only. The
// polynomial cores (Exp16/Log16/Tanh16) use the identical Cephes
// coefficients and FMA shapes as the AVX2 versions, so per-element results
// agree bitwise between the two vector ISAs.

#if defined(__x86_64__) || defined(_M_X64)

#include <cfloat>
#include <cmath>
#include <immintrin.h>

namespace fvae {
namespace {

__mmask16 TailMask16(size_t n) {
  return static_cast<__mmask16>((1u << n) - 1u);
}

// The maskz extract variants are used throughout instead of the plain
// ones: GCC's plain _mm512_extract*/_mm512_reduce_* wrappers pass an
// _mm256_undefined_*() passthrough operand that trips -Wuninitialized.
__m256 High256(__m512 v) {
  return _mm512_maskz_extractf32x8_ps(static_cast<__mmask8>(0xff), v, 1);
}

__m256d High256d(__m512d v) {
  return _mm512_maskz_extractf64x4_pd(static_cast<__mmask8>(0xf), v, 1);
}

double HorizontalSumPd512(__m512d v) {
  const __m256d s = _mm256_add_pd(_mm512_castpd512_pd256(v), High256d(v));
  __m128d lo = _mm256_castpd256_pd128(s);
  lo = _mm_add_pd(lo, _mm256_extractf128_pd(s, 1));
  lo = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
  return _mm_cvtsd_f64(lo);
}

float HorizontalMax512(__m512 v) {
  const __m256 m8 = _mm256_max_ps(_mm512_castps512_ps256(v), High256(v));
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(m8),
                        _mm256_extractf128_ps(m8, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

void AccumulateLanesPd512(__m512 v, __m512d* acc) {
  *acc = _mm512_add_pd(*acc,
                       _mm512_cvtps_pd(_mm512_castps512_ps256(v)));
  *acc = _mm512_add_pd(*acc, _mm512_cvtps_pd(High256(v)));
}

// Cephes expf, 16-wide; see Exp8 in kernels_avx2.cc for the derivation.
__m512 Exp16(__m512 x0) {
  const __m512 hi = _mm512_set1_ps(88.3762626647950f);
  const __m512 lo = _mm512_set1_ps(-87.3365478515625f);
  __m512 x = _mm512_max_ps(_mm512_min_ps(x0, hi), lo);
  __m512 fx = _mm512_fmadd_ps(x, _mm512_set1_ps(1.44269504088896341f),
                              _mm512_set1_ps(0.5f));
  fx = _mm512_roundscale_ps(fx, 0x09);  // floor, suppress exceptions
  x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(0.693359375f), x);
  x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(-2.12194440e-4f), x);
  const __m512 z = _mm512_mul_ps(x, x);
  __m512 y = _mm512_set1_ps(1.9875691500e-4f);
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.3981999507e-3f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(8.3334519073e-3f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(4.1665795894e-2f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.6666665459e-1f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(5.0000001201e-1f));
  y = _mm512_fmadd_ps(y, z, x);
  y = _mm512_add_ps(y, _mm512_set1_ps(1.0f));
  __m512i n = _mm512_cvttps_epi32(fx);
  n = _mm512_add_epi32(n, _mm512_set1_epi32(127));
  n = _mm512_slli_epi32(n, 23);
  __m512 r = _mm512_mul_ps(y, _mm512_castsi512_ps(n));
  r = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(x0, hi, _CMP_GT_OQ), r,
                           _mm512_set1_ps(HUGE_VALF));
  r = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(x0, lo, _CMP_LT_OQ), r,
                           _mm512_setzero_ps());
  r = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(x0, x0, _CMP_UNORD_Q), r, x0);
  return r;
}

// Cephes logf, 16-wide; see Log8 in kernels_avx2.cc.
__m512 Log16(__m512 x0) {
  const __m512 min_norm =
      _mm512_castsi512_ps(_mm512_set1_epi32(0x00800000));
  __m512 x = _mm512_max_ps(x0, min_norm);
  __m512i xi = _mm512_castps_si512(x);
  const __m512i exp_bits = _mm512_srli_epi32(xi, 23);
  __m512 e = _mm512_cvtepi32_ps(
      _mm512_sub_epi32(exp_bits, _mm512_set1_epi32(126)));
  xi = _mm512_and_si512(xi, _mm512_set1_epi32(0x007fffff));
  xi = _mm512_or_si512(xi, _mm512_castps_si512(_mm512_set1_ps(0.5f)));
  x = _mm512_castsi512_ps(xi);
  const __m512 one = _mm512_set1_ps(1.0f);
  const __mmask16 below_sqrth = _mm512_cmp_ps_mask(
      x, _mm512_set1_ps(0.707106781186547524f), _CMP_LT_OQ);
  e = _mm512_mask_sub_ps(e, below_sqrth, e, one);
  x = _mm512_sub_ps(_mm512_mask_add_ps(x, below_sqrth, x, x), one);
  const __m512 z = _mm512_mul_ps(x, x);
  __m512 y = _mm512_set1_ps(7.0376836292e-2f);
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(-1.1514610310e-1f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.1676998740e-1f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(-1.2420140846e-1f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.4249322787e-1f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(-1.6668057665e-1f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(2.0000714765e-1f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(-2.4999993993e-1f));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(3.3333331174e-1f));
  y = _mm512_mul_ps(_mm512_mul_ps(y, x), z);
  y = _mm512_fmadd_ps(e, _mm512_set1_ps(-2.12194440e-4f), y);
  y = _mm512_fnmadd_ps(_mm512_set1_ps(0.5f), z, y);
  __m512 r = _mm512_add_ps(x, y);
  r = _mm512_fmadd_ps(e, _mm512_set1_ps(0.693359375f), r);
  const __m512 zero = _mm512_setzero_ps();
  r = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(x0, zero, _CMP_EQ_OQ), r,
                           _mm512_set1_ps(-HUGE_VALF));
  r = _mm512_mask_blend_ps(
      _mm512_cmp_ps_mask(x0, zero, _CMP_LT_OQ), r,
      _mm512_set1_ps(std::numeric_limits<float>::quiet_NaN()));
  r = _mm512_mask_blend_ps(
      _mm512_cmp_ps_mask(x0, _mm512_set1_ps(HUGE_VALF), _CMP_EQ_OQ), r, x0);
  r = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(x0, x0, _CMP_UNORD_Q), r, x0);
  return r;
}

// Cephes tanhf, 16-wide; see Tanh8 in kernels_avx2.cc.
__m512 Tanh16(__m512 x) {
  const __m512 sign_mask = _mm512_set1_ps(-0.0f);
  const __m512 ax = _mm512_andnot_ps(sign_mask, x);
  const __m512 z = _mm512_mul_ps(x, x);
  __m512 p = _mm512_set1_ps(-5.70498872745e-3f);
  p = _mm512_fmadd_ps(p, z, _mm512_set1_ps(2.06390887954e-2f));
  p = _mm512_fmadd_ps(p, z, _mm512_set1_ps(-5.37397155531e-2f));
  p = _mm512_fmadd_ps(p, z, _mm512_set1_ps(1.33314422036e-1f));
  p = _mm512_fmadd_ps(p, z, _mm512_set1_ps(-3.33332819422e-1f));
  const __m512 small = _mm512_fmadd_ps(_mm512_mul_ps(x, z), p, x);
  const __m512 one = _mm512_set1_ps(1.0f);
  const __m512 e = Exp16(_mm512_add_ps(ax, ax));
  __m512 big = _mm512_sub_ps(
      one, _mm512_div_ps(_mm512_set1_ps(2.0f), _mm512_add_ps(e, one)));
  big = _mm512_or_ps(big, _mm512_and_ps(x, sign_mask));
  return _mm512_mask_blend_ps(
      _mm512_cmp_ps_mask(ax, _mm512_set1_ps(0.625f), _CMP_LT_OQ), big,
      small);
}

__m512 Sigmoid16(__m512 x) {
  const __m512 one = _mm512_set1_ps(1.0f);
  const __m512 e = Exp16(_mm512_sub_ps(_mm512_setzero_ps(), x));
  return _mm512_div_ps(one, _mm512_add_ps(one, e));
}

// ---- GEMM --------------------------------------------------------------

void Gemm1RowAvx512(const float* a_row, const float* b, float* out_row,
                    size_t k, size_t n) {
  size_t j = 0;
  for (; j + 32 <= n; j += 32) {
    __m512 c0 = _mm512_loadu_ps(out_row + j);
    __m512 c1 = _mm512_loadu_ps(out_row + j + 16);
    for (size_t p = 0; p < k; ++p) {
      const __m512 va = _mm512_set1_ps(a_row[p]);
      const float* b_row = b + p * n + j;
      c0 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b_row), c0);
      c1 = _mm512_fmadd_ps(va, _mm512_loadu_ps(b_row + 16), c1);
    }
    _mm512_storeu_ps(out_row + j, c0);
    _mm512_storeu_ps(out_row + j + 16, c1);
  }
  for (; j + 16 <= n; j += 16) {
    __m512 c0 = _mm512_loadu_ps(out_row + j);
    for (size_t p = 0; p < k; ++p) {
      c0 = _mm512_fmadd_ps(_mm512_set1_ps(a_row[p]),
                           _mm512_loadu_ps(b + p * n + j), c0);
    }
    _mm512_storeu_ps(out_row + j, c0);
  }
  if (j < n) {
    const __mmask16 mask = TailMask16(n - j);
    __m512 c0 = _mm512_maskz_loadu_ps(mask, out_row + j);
    for (size_t p = 0; p < k; ++p) {
      c0 = _mm512_fmadd_ps(_mm512_set1_ps(a_row[p]),
                           _mm512_maskz_loadu_ps(mask, b + p * n + j), c0);
    }
    _mm512_mask_storeu_ps(out_row + j, mask, c0);
  }
}

void Gemm4RowsAvx512(const float* a0, const float* a1, const float* a2,
                     const float* a3, const float* b, float* o0, float* o1,
                     float* o2, float* o3, size_t k, size_t n) {
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m512 c0 = _mm512_loadu_ps(o0 + j);
    __m512 c1 = _mm512_loadu_ps(o1 + j);
    __m512 c2 = _mm512_loadu_ps(o2 + j);
    __m512 c3 = _mm512_loadu_ps(o3 + j);
    for (size_t p = 0; p < k; ++p) {
      const __m512 b0 = _mm512_loadu_ps(b + p * n + j);
      c0 = _mm512_fmadd_ps(_mm512_set1_ps(a0[p]), b0, c0);
      c1 = _mm512_fmadd_ps(_mm512_set1_ps(a1[p]), b0, c1);
      c2 = _mm512_fmadd_ps(_mm512_set1_ps(a2[p]), b0, c2);
      c3 = _mm512_fmadd_ps(_mm512_set1_ps(a3[p]), b0, c3);
    }
    _mm512_storeu_ps(o0 + j, c0);
    _mm512_storeu_ps(o1 + j, c1);
    _mm512_storeu_ps(o2 + j, c2);
    _mm512_storeu_ps(o3 + j, c3);
  }
  if (j < n) {
    const __mmask16 mask = TailMask16(n - j);
    __m512 c0 = _mm512_maskz_loadu_ps(mask, o0 + j);
    __m512 c1 = _mm512_maskz_loadu_ps(mask, o1 + j);
    __m512 c2 = _mm512_maskz_loadu_ps(mask, o2 + j);
    __m512 c3 = _mm512_maskz_loadu_ps(mask, o3 + j);
    for (size_t p = 0; p < k; ++p) {
      const __m512 b0 = _mm512_maskz_loadu_ps(mask, b + p * n + j);
      c0 = _mm512_fmadd_ps(_mm512_set1_ps(a0[p]), b0, c0);
      c1 = _mm512_fmadd_ps(_mm512_set1_ps(a1[p]), b0, c1);
      c2 = _mm512_fmadd_ps(_mm512_set1_ps(a2[p]), b0, c2);
      c3 = _mm512_fmadd_ps(_mm512_set1_ps(a3[p]), b0, c3);
    }
    _mm512_mask_storeu_ps(o0 + j, mask, c0);
    _mm512_mask_storeu_ps(o1 + j, mask, c1);
    _mm512_mask_storeu_ps(o2 + j, mask, c2);
    _mm512_mask_storeu_ps(o3 + j, mask, c3);
  }
}

void GemmAccumulateAvx512(const float* a, const float* b, float* out,
                          size_t m, size_t k, size_t n) {
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    Gemm4RowsAvx512(a + i * k, a + (i + 1) * k, a + (i + 2) * k,
                    a + (i + 3) * k, b, out + i * n, out + (i + 1) * n,
                    out + (i + 2) * n, out + (i + 3) * n, k, n);
  }
  for (; i < m; ++i) {
    Gemm1RowAvx512(a + i * k, b, out + i * n, k, n);
  }
}

// ---- reductions and elementwise ----------------------------------------

double DotAvx512(const float* a, const float* b, size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 va = _mm512_loadu_ps(a + i);
    const __m512 vb = _mm512_loadu_ps(b + i);
    acc0 = _mm512_fmadd_pd(_mm512_cvtps_pd(_mm512_castps512_ps256(va)),
                           _mm512_cvtps_pd(_mm512_castps512_ps256(vb)),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_cvtps_pd(High256(va)),
                           _mm512_cvtps_pd(High256(vb)), acc1);
  }
  double acc = HorizontalSumPd512(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

void AxpyAvx512(float alpha, const float* x, float* y, size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i),
                               _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    _mm512_mask_storeu_ps(
        y + i, mask,
        _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(mask, x + i),
                        _mm512_maskz_loadu_ps(mask, y + i)));
  }
}

float MaxOrNegInfAvx512(const float* x, size_t n) {
  __m512 vm = _mm512_set1_ps(-HUGE_VALF);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vm = _mm512_max_ps(vm, _mm512_loadu_ps(x + i));
  }
  float mx = HorizontalMax512(vm);
  for (; i < n; ++i) {
    if (x[i] > mx) mx = x[i];
  }
  return mx;
}

double ExpSumAvx512(const float* x, float* out, float mx, size_t n) {
  const __m512 vmx = _mm512_set1_ps(mx);
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 e = Exp16(_mm512_sub_ps(_mm512_loadu_ps(x + i), vmx));
    if (out != nullptr) _mm512_storeu_ps(out + i, e);
    AccumulateLanesPd512(e, &acc);
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    const __m512 v = _mm512_maskz_loadu_ps(mask, x + i);
    __m512 e = Exp16(_mm512_sub_ps(v, vmx));
    if (out != nullptr) _mm512_mask_storeu_ps(out + i, mask, e);
    e = _mm512_maskz_mov_ps(mask, e);
    AccumulateLanesPd512(e, &acc);
  }
  return HorizontalSumPd512(acc);
}

void ScaleAvx512(float* x, float s, size_t n) {
  const __m512 vs = _mm512_set1_ps(s);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, _mm512_mul_ps(_mm512_loadu_ps(x + i), vs));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    _mm512_mask_storeu_ps(
        x + i, mask,
        _mm512_mul_ps(_mm512_maskz_loadu_ps(mask, x + i), vs));
  }
}

void AddScalarAvx512(float* x, float s, size_t n) {
  const __m512 vs = _mm512_set1_ps(s);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, _mm512_add_ps(_mm512_loadu_ps(x + i), vs));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    _mm512_mask_storeu_ps(
        x + i, mask,
        _mm512_add_ps(_mm512_maskz_loadu_ps(mask, x + i), vs));
  }
}

void SoftmaxAvx512(float* x, size_t n) {
  if (n == 0) return;
  const float mx = MaxOrNegInfAvx512(x, n);
  if (mx == -HUGE_VALF) {
    kernel_detail::SoftmaxDegenerate(x, n);
    return;
  }
  const double total = ExpSumAvx512(x, x, mx, n);
  ScaleAvx512(x, static_cast<float>(1.0 / total), n);
}

void LogSoftmaxAvx512(float* x, size_t n) {
  if (n == 0) return;
  const float mx = MaxOrNegInfAvx512(x, n);
  if (mx == -HUGE_VALF) {
    kernel_detail::LogSoftmaxDegenerate(x, n);
    return;
  }
  const double total = ExpSumAvx512(x, nullptr, mx, n);
  const float log_z = mx + static_cast<float>(std::log(total));
  AddScalarAvx512(x, -log_z, n);
}

double LogSumExpAvx512(const float* x, size_t n) {
  if (n == 0) return -HUGE_VAL;
  const float mx = MaxOrNegInfAvx512(x, n);
  if (mx == -HUGE_VALF) {
    return kernel_detail::HasNan(x, n)
               ? static_cast<double>(std::numeric_limits<float>::quiet_NaN())
               : -HUGE_VAL;
  }
  const double total = ExpSumAvx512(x, nullptr, mx, n);
  return static_cast<double>(mx) + std::log(total);
}

void ExpInPlaceAvx512(float* x, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, Exp16(_mm512_loadu_ps(x + i)));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    _mm512_mask_storeu_ps(x + i, mask,
                          Exp16(_mm512_maskz_loadu_ps(mask, x + i)));
  }
}

void LogInPlaceAvx512(float* x, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, Log16(_mm512_loadu_ps(x + i)));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    _mm512_mask_storeu_ps(x + i, mask,
                          Log16(_mm512_maskz_loadu_ps(mask, x + i)));
  }
}

void TanhInPlaceAvx512(float* x, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, Tanh16(_mm512_loadu_ps(x + i)));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    _mm512_mask_storeu_ps(x + i, mask,
                          Tanh16(_mm512_maskz_loadu_ps(mask, x + i)));
  }
}

void SigmoidInPlaceAvx512(float* x, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, Sigmoid16(_mm512_loadu_ps(x + i)));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    _mm512_mask_storeu_ps(x + i, mask,
                          Sigmoid16(_mm512_maskz_loadu_ps(mask, x + i)));
  }
}

void MultinomialGradAvx512(const float* log_probs, const float* counts,
                           float total_count, float* grad, size_t n) {
  const __m512 vtc = _mm512_set1_ps(total_count);
  const __m512 vmin = _mm512_set1_ps(FLT_MIN);
  const __m512 zero = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 t = _mm512_mul_ps(Exp16(_mm512_loadu_ps(log_probs + i)), vtc);
    t = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(t, vmin, _CMP_LT_OQ), t,
                             zero);
    _mm512_storeu_ps(grad + i,
                     _mm512_sub_ps(t, _mm512_loadu_ps(counts + i)));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    __m512 t = _mm512_mul_ps(
        Exp16(_mm512_maskz_loadu_ps(mask, log_probs + i)), vtc);
    t = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(t, vmin, _CMP_LT_OQ), t,
                             zero);
    _mm512_mask_storeu_ps(
        grad + i, mask,
        _mm512_sub_ps(t, _mm512_maskz_loadu_ps(mask, counts + i)));
  }
}

}  // namespace

void FillAvx512(KernelTable* t) {
  t->gemm_accumulate = GemmAccumulateAvx512;
  t->dot = DotAvx512;
  t->axpy = AxpyAvx512;
  t->softmax_inplace = SoftmaxAvx512;
  t->log_softmax_inplace = LogSoftmaxAvx512;
  t->log_sum_exp = LogSumExpAvx512;
  t->exp_inplace = ExpInPlaceAvx512;
  t->log_inplace = LogInPlaceAvx512;
  t->tanh_inplace = TanhInPlaceAvx512;
  t->sigmoid_inplace = SigmoidInPlaceAvx512;
  t->multinomial_grad = MultinomialGradAvx512;
}

}  // namespace fvae

#else  // !x86_64

namespace fvae {

void FillAvx512(KernelTable* t) { FillScalar(t); }

}  // namespace fvae

#endif
