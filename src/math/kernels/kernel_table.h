#ifndef FVAE_MATH_KERNELS_KERNEL_TABLE_H_
#define FVAE_MATH_KERNELS_KERNEL_TABLE_H_

#include <cmath>
#include <cstddef>
#include <limits>

namespace fvae {

/// Runtime-dispatched SIMD kernel layer for the hot math paths.
///
/// The ISA is detected once (CPUID via __builtin_cpu_supports) the first
/// time Kernels() runs and baked into a table of plain function pointers;
/// every caller thereafter pays one indirect call, no per-call branching.
/// `FVAE_FORCE_ISA=scalar|avx2|avx512` overrides detection (an unsupported
/// forced ISA falls back to the detected best — the table's `isa` field
/// records what actually got installed). ForceIsa() rebuilds the table for
/// tests; it is not thread-safe and must not race concurrent kernel use.
///
/// Numeric contract shared by every ISA implementation:
///  - softmax/log-softmax on an empty span return immediately; on
///    all-(-inf) logits they fill the uniform distribution (1/n resp.
///    -log n) instead of NaN, unless a NaN is present, in which case the
///    whole output is NaN (NaN anywhere always poisons the full output,
///    exactly as the scalar chain exp -> sum -> normalize would).
///  - the vector exp saturates: inputs > 88.3762626647950 yield +inf,
///    inputs < -87.3365478515625 yield 0, NaN propagates; ExpApprox in
///    src/math/special.h is the scalar twin with identical semantics.
///  - GEMM accumulates in ascending-p order in every tile and tail path
///    and never skips zero multiplicands, so 0*inf/0*NaN propagation is
///    identical between the tiled body and the remainder loops.
///  - denormals: Kernels() applies FTZ+DAZ to the calling thread's MXCSR
///    once per thread (disable with FVAE_FTZ=0) so subnormal intermediates
///    in the exp/KL path cannot stall the pipeline; the multinomial-loss
///    gradient additionally flushes sub-FLT_MIN softmax mass to zero so
///    its output is denormal-free even with FVAE_FTZ=0.
///
/// fvae_lint's hot-path purity walk follows `Kernels().member(..)` calls
/// through the `t->member = Target;` registrations below (DispatchBind
/// facts in tools/tu_facts.h), so every per-ISA kernel body stays inside
/// the FVAE_HOT / FVAE_NOALLOC proof.
enum class Isa { kScalar, kAvx2, kAvx512 };

/// The dispatch table. All pointers are non-null after Kernels() returns.
/// Matrices are row-major and contiguous (Matrix guarantees stride==cols).
struct KernelTable {
  Isa isa = Isa::kScalar;
  /// out[m x n] += a[m x k] * b[k x n].
  void (*gemm_accumulate)(const float* a, const float* b, float* out,
                          size_t m, size_t k, size_t n) = nullptr;
  /// Inner product accumulated in double.
  double (*dot)(const float* a, const float* b, size_t n) = nullptr;
  /// y += alpha * x.
  void (*axpy)(float alpha, const float* x, float* y, size_t n) = nullptr;
  void (*softmax_inplace)(float* x, size_t n) = nullptr;
  void (*log_softmax_inplace)(float* x, size_t n) = nullptr;
  double (*log_sum_exp)(const float* x, size_t n) = nullptr;
  void (*exp_inplace)(float* x, size_t n) = nullptr;
  void (*log_inplace)(float* x, size_t n) = nullptr;
  void (*tanh_inplace)(float* x, size_t n) = nullptr;
  void (*sigmoid_inplace)(float* x, size_t n) = nullptr;
  /// grad[j] = total_count * exp(log_probs[j]) - counts[j], with
  /// sub-FLT_MIN reconstruction mass flushed to exactly zero first.
  void (*multinomial_grad)(const float* log_probs, const float* counts,
                           float total_count, float* grad, size_t n) = nullptr;
};

/// The process-wide table; initializes ISA detection on first call and
/// applies the FTZ/DAZ policy to the calling thread. Safe and cheap to
/// call on the hot path (no allocation, no locks, no logging).
const KernelTable& Kernels();

/// The ISA the installed table was built for.
Isa ActiveIsa();

/// Stable lowercase name ("scalar" / "avx2" / "avx512").
const char* IsaName(Isa isa);

/// Whether this CPU can run `isa` (scalar is always supported).
bool IsaSupported(Isa isa);

/// Rebuilds the dispatch table for `isa`; returns false (table unchanged)
/// when the CPU lacks it. Test/bench hook — not thread-safe, callers must
/// not race it against concurrent kernel use.
bool ForceIsa(Isa isa);

/// Per-ISA registration functions, each defined in its own TU so the
/// vector bodies can be compiled with -mavx2/-mavx512* without raising the
/// baseline ISA of the rest of the tree. FillAvx2/FillAvx512 degrade to
/// FillScalar on non-x86 builds.
void FillScalar(KernelTable* t);
void FillAvx2(KernelTable* t);
void FillAvx512(KernelTable* t);

namespace kernel_detail {

/// Shared cold-path helpers, inline here so every ISA TU executes the
/// byte-identical degenerate semantics.

inline bool HasNan(const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(x[i])) return true;
  }
  return false;
}

inline void Fill(float* x, size_t n, float v) {
  for (size_t i = 0; i < n; ++i) x[i] = v;
}

/// Degenerate softmax tail: the max reduction came back exactly -inf, so
/// every logit is -inf (possibly alongside NaNs). NaN anywhere poisons the
/// output; otherwise the distribution is uniform.
inline void SoftmaxDegenerate(float* x, size_t n) {
  if (HasNan(x, n)) {
    Fill(x, n, std::numeric_limits<float>::quiet_NaN());
    return;
  }
  Fill(x, n, 1.0f / static_cast<float>(n));
}

inline void LogSoftmaxDegenerate(float* x, size_t n) {
  if (HasNan(x, n)) {
    Fill(x, n, std::numeric_limits<float>::quiet_NaN());
    return;
  }
  Fill(x, n, -std::log(static_cast<float>(n)));
}

}  // namespace kernel_detail

}  // namespace fvae

#endif  // FVAE_MATH_KERNELS_KERNEL_TABLE_H_
