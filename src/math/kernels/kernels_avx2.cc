#include <cstddef>

#include "math/kernels/kernel_table.h"

// AVX2+FMA kernels. Compiled with -mavx2 -mfma for this TU only (see
// src/math/CMakeLists.txt); nothing here runs unless DetectBestIsa or
// FVAE_FORCE_ISA selected kAvx2/kAvx512 on a CPU that has it.
//
// Numeric-parity rules (tested per-element against the scalar kernels in
// kernels_test.cc):
//  - every tail is handled with maskload/maskstore so partial vectors see
//    exactly the same arithmetic as full ones; dead lanes are zeroed
//    before any reduction so they cannot perturb sums;
//  - exp/log/tanh are Cephes-style polynomials (~2-3 ulp on floats) with
//    specials blended from the *original* input: exp(NaN)=NaN,
//    exp(>88.376)=+inf, exp(<-87.336)=0, log(0)=-inf, log(<0)=NaN,
//    log(+inf)=+inf — ExpApprox/LogApprox in src/math/special.h are the
//    scalar twins used to pin these semantics in tests;
//  - GEMM accumulates in ascending-p order in the 4-row tiles, the 1-row
//    leftovers, and every column tail, with no zero-operand skips.

#if defined(__x86_64__) || defined(_M_X64)

#include <cfloat>
#include <cmath>
#include <immintrin.h>

namespace fvae {
namespace {

// Lane mask for an n-element tail (n in [1,7]): lane i active iff i < n.
__m256i TailMask8(size_t n) {
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(n)),
                            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
}

float HorizontalMax8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

double HorizontalSumPd(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

// Accumulates all 8 float lanes of `v` into `acc` in double precision.
void AccumulateLanesPd(__m256 v, __m256d* acc) {
  *acc = _mm256_add_pd(*acc, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
  *acc = _mm256_add_pd(*acc, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
}

// Cephes expf, 8-wide. Range reduction x = n*ln2 + r with Cody-Waite
// splitting, degree-5 polynomial on r, 2^n via exponent-field assembly.
// Specials are blended from the original input afterwards, so the
// clamping min/max (which would otherwise absorb NaN and +/-inf) cannot
// leak wrong values. Mirrors ExpApprox in src/math/special.cc exactly.
__m256 Exp8(__m256 x0) {
  const __m256 hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 lo = _mm256_set1_ps(-87.3365478515625f);
  __m256 x = _mm256_max_ps(_mm256_min_ps(x0, hi), lo);
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(127));
  n = _mm256_slli_epi32(n, 23);
  __m256 r = _mm256_mul_ps(y, _mm256_castsi256_ps(n));
  r = _mm256_blendv_ps(r, _mm256_set1_ps(HUGE_VALF),
                       _mm256_cmp_ps(x0, hi, _CMP_GT_OQ));
  r = _mm256_blendv_ps(r, _mm256_setzero_ps(),
                       _mm256_cmp_ps(x0, lo, _CMP_LT_OQ));
  r = _mm256_blendv_ps(r, x0, _mm256_cmp_ps(x0, x0, _CMP_UNORD_Q));
  return r;
}

// Cephes logf, 8-wide: exponent/mantissa split into [sqrt(1/2), sqrt(2)),
// degree-8 polynomial, Cody-Waite ln2 recombination. Specials from the
// original input: log(0)=-inf, log(<0)=NaN, log(+inf)=+inf, NaN->NaN.
// Subnormal inputs are treated as the smallest normal (the DAZ policy
// reads them as zero anyway). Mirrors LogApprox in src/math/special.cc.
__m256 Log8(__m256 x0) {
  const __m256 min_norm =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x00800000));
  __m256 x = _mm256_max_ps(x0, min_norm);
  __m256i xi = _mm256_castps_si256(x);
  const __m256i exp_bits = _mm256_srli_epi32(xi, 23);
  __m256 e = _mm256_cvtepi32_ps(
      _mm256_sub_epi32(exp_bits, _mm256_set1_epi32(126)));
  xi = _mm256_and_si256(xi, _mm256_set1_epi32(0x007fffff));
  xi = _mm256_or_si256(xi,
                       _mm256_castps_si256(_mm256_set1_ps(0.5f)));
  x = _mm256_castsi256_ps(xi);  // mantissa in [0.5, 1)
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 below_sqrth =
      _mm256_cmp_ps(x, _mm256_set1_ps(0.707106781186547524f), _CMP_LT_OQ);
  e = _mm256_sub_ps(e, _mm256_and_ps(one, below_sqrth));
  x = _mm256_sub_ps(_mm256_add_ps(x, _mm256_and_ps(x, below_sqrth)), one);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(7.0376836292e-2f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.1514610310e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.1676998740e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.2420140846e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.4249322787e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.6668057665e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(2.0000714765e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-2.4999993993e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(3.3333331174e-1f));
  y = _mm256_mul_ps(_mm256_mul_ps(y, x), z);
  y = _mm256_fmadd_ps(e, _mm256_set1_ps(-2.12194440e-4f), y);
  y = _mm256_fnmadd_ps(_mm256_set1_ps(0.5f), z, y);
  __m256 r = _mm256_add_ps(x, y);
  r = _mm256_fmadd_ps(e, _mm256_set1_ps(0.693359375f), r);
  const __m256 zero = _mm256_setzero_ps();
  r = _mm256_blendv_ps(r, _mm256_set1_ps(-HUGE_VALF),
                       _mm256_cmp_ps(x0, zero, _CMP_EQ_OQ));
  r = _mm256_blendv_ps(
      r, _mm256_set1_ps(std::numeric_limits<float>::quiet_NaN()),
      _mm256_cmp_ps(x0, zero, _CMP_LT_OQ));
  r = _mm256_blendv_ps(r, x0,
                       _mm256_cmp_ps(x0, _mm256_set1_ps(HUGE_VALF),
                                     _CMP_EQ_OQ));
  r = _mm256_blendv_ps(r, x0, _mm256_cmp_ps(x0, x0, _CMP_UNORD_Q));
  return r;
}

// Cephes tanhf, 8-wide: |x| < 0.625 uses x + x*z*P(z); otherwise
// sign(x) * (1 - 2/(exp(2|x|)+1)). exp overflow at large |x| gives
// exactly +/-1; NaN falls through the exp branch and propagates.
__m256 Tanh8(__m256 x) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 ax = _mm256_andnot_ps(sign_mask, x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(-5.70498872745e-3f);
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(2.06390887954e-2f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(-5.37397155531e-2f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(1.33314422036e-1f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(-3.33332819422e-1f));
  const __m256 small = _mm256_fmadd_ps(_mm256_mul_ps(x, z), p, x);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = Exp8(_mm256_add_ps(ax, ax));
  __m256 big = _mm256_sub_ps(
      one, _mm256_div_ps(_mm256_set1_ps(2.0f), _mm256_add_ps(e, one)));
  big = _mm256_or_ps(big, _mm256_and_ps(x, sign_mask));
  return _mm256_blendv_ps(big, small,
                          _mm256_cmp_ps(ax, _mm256_set1_ps(0.625f),
                                        _CMP_LT_OQ));
}

__m256 Sigmoid8(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = Exp8(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

// ---- GEMM --------------------------------------------------------------

// One row of out += a_row * b: out_row[j] += sum_p a_row[p] * b[p*n + j],
// ascending p per 16/8/tail column strip.
void Gemm1RowAvx2(const float* a_row, const float* b, float* out_row,
                  size_t k, size_t n) {
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 c0 = _mm256_loadu_ps(out_row + j);
    __m256 c1 = _mm256_loadu_ps(out_row + j + 8);
    for (size_t p = 0; p < k; ++p) {
      const __m256 va = _mm256_set1_ps(a_row[p]);
      const float* b_row = b + p * n + j;
      c0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b_row), c0);
      c1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b_row + 8), c1);
    }
    _mm256_storeu_ps(out_row + j, c0);
    _mm256_storeu_ps(out_row + j + 8, c1);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 c0 = _mm256_loadu_ps(out_row + j);
    for (size_t p = 0; p < k; ++p) {
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(a_row[p]),
                           _mm256_loadu_ps(b + p * n + j), c0);
    }
    _mm256_storeu_ps(out_row + j, c0);
  }
  if (j < n) {
    const __m256i mask = TailMask8(n - j);
    __m256 c0 = _mm256_maskload_ps(out_row + j, mask);
    for (size_t p = 0; p < k; ++p) {
      // maskload keeps the final B row from reading past the buffer; dead
      // lanes are zero and never stored back.
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(a_row[p]),
                           _mm256_maskload_ps(b + p * n + j, mask), c0);
    }
    _mm256_maskstore_ps(out_row + j, mask, c0);
  }
}

// Four rows of out += a * b sharing each B load across rows.
void Gemm4RowsAvx2(const float* a0, const float* a1, const float* a2,
                   const float* a3, const float* b, float* o0, float* o1,
                   float* o2, float* o3, size_t k, size_t n) {
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 c00 = _mm256_loadu_ps(o0 + j), c01 = _mm256_loadu_ps(o0 + j + 8);
    __m256 c10 = _mm256_loadu_ps(o1 + j), c11 = _mm256_loadu_ps(o1 + j + 8);
    __m256 c20 = _mm256_loadu_ps(o2 + j), c21 = _mm256_loadu_ps(o2 + j + 8);
    __m256 c30 = _mm256_loadu_ps(o3 + j), c31 = _mm256_loadu_ps(o3 + j + 8);
    for (size_t p = 0; p < k; ++p) {
      const float* b_row = b + p * n + j;
      const __m256 b0 = _mm256_loadu_ps(b_row);
      const __m256 b1 = _mm256_loadu_ps(b_row + 8);
      const __m256 v0 = _mm256_set1_ps(a0[p]);
      const __m256 v1 = _mm256_set1_ps(a1[p]);
      const __m256 v2 = _mm256_set1_ps(a2[p]);
      const __m256 v3 = _mm256_set1_ps(a3[p]);
      c00 = _mm256_fmadd_ps(v0, b0, c00);
      c01 = _mm256_fmadd_ps(v0, b1, c01);
      c10 = _mm256_fmadd_ps(v1, b0, c10);
      c11 = _mm256_fmadd_ps(v1, b1, c11);
      c20 = _mm256_fmadd_ps(v2, b0, c20);
      c21 = _mm256_fmadd_ps(v2, b1, c21);
      c30 = _mm256_fmadd_ps(v3, b0, c30);
      c31 = _mm256_fmadd_ps(v3, b1, c31);
    }
    _mm256_storeu_ps(o0 + j, c00);
    _mm256_storeu_ps(o0 + j + 8, c01);
    _mm256_storeu_ps(o1 + j, c10);
    _mm256_storeu_ps(o1 + j + 8, c11);
    _mm256_storeu_ps(o2 + j, c20);
    _mm256_storeu_ps(o2 + j + 8, c21);
    _mm256_storeu_ps(o3 + j, c30);
    _mm256_storeu_ps(o3 + j + 8, c31);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 c0 = _mm256_loadu_ps(o0 + j);
    __m256 c1 = _mm256_loadu_ps(o1 + j);
    __m256 c2 = _mm256_loadu_ps(o2 + j);
    __m256 c3 = _mm256_loadu_ps(o3 + j);
    for (size_t p = 0; p < k; ++p) {
      const __m256 b0 = _mm256_loadu_ps(b + p * n + j);
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[p]), b0, c0);
      c1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[p]), b0, c1);
      c2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[p]), b0, c2);
      c3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[p]), b0, c3);
    }
    _mm256_storeu_ps(o0 + j, c0);
    _mm256_storeu_ps(o1 + j, c1);
    _mm256_storeu_ps(o2 + j, c2);
    _mm256_storeu_ps(o3 + j, c3);
  }
  if (j < n) {
    const __m256i mask = TailMask8(n - j);
    __m256 c0 = _mm256_maskload_ps(o0 + j, mask);
    __m256 c1 = _mm256_maskload_ps(o1 + j, mask);
    __m256 c2 = _mm256_maskload_ps(o2 + j, mask);
    __m256 c3 = _mm256_maskload_ps(o3 + j, mask);
    for (size_t p = 0; p < k; ++p) {
      const __m256 b0 = _mm256_maskload_ps(b + p * n + j, mask);
      c0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[p]), b0, c0);
      c1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[p]), b0, c1);
      c2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[p]), b0, c2);
      c3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[p]), b0, c3);
    }
    _mm256_maskstore_ps(o0 + j, mask, c0);
    _mm256_maskstore_ps(o1 + j, mask, c1);
    _mm256_maskstore_ps(o2 + j, mask, c2);
    _mm256_maskstore_ps(o3 + j, mask, c3);
  }
}

void GemmAccumulateAvx2(const float* a, const float* b, float* out, size_t m,
                        size_t k, size_t n) {
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    Gemm4RowsAvx2(a + i * k, a + (i + 1) * k, a + (i + 2) * k,
                  a + (i + 3) * k, b, out + i * n, out + (i + 1) * n,
                  out + (i + 2) * n, out + (i + 3) * n, k, n);
  }
  for (; i < m; ++i) {
    Gemm1RowAvx2(a + i * k, b, out + i * n, k, n);
  }
}

// ---- reductions and elementwise ----------------------------------------

double DotAvx2(const float* a, const float* b, size_t n) {
  // Products and accumulation in double, matching the scalar kernel's
  // precision (GemmNT feeds optimizer math that expects it).
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                           _mm256_cvtps_pd(_mm256_castps256_ps128(vb)), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                           _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)),
                           acc1);
  }
  double acc = HorizontalSumPd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    _mm256_maskstore_ps(
        y + i, mask,
        _mm256_fmadd_ps(va, _mm256_maskload_ps(x + i, mask),
                        _mm256_maskload_ps(y + i, mask)));
  }
}

float MaxOrNegInfAvx2(const float* x, size_t n) {
  __m256 vm = _mm256_set1_ps(-HUGE_VALF);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + i));
  }
  float mx = HorizontalMax8(vm);
  // A NaN lane can make mx NaN (max_ps returns the second operand on
  // unordered compares) — harmless either way, since a NaN element always
  // poisons the exp/sum stage into an all-NaN output, same as scalar.
  for (; i < n; ++i) {
    if (x[i] > mx) mx = x[i];
  }
  return mx;
}

// Sum of exp(x[i] - mx) with lanes accumulated in double; when `out` is
// non-null also stores the exp values. Tail lanes are masked off before
// the reduction so dead lanes contribute exactly nothing.
double ExpSumAvx2(const float* x, float* out, float mx, size_t n) {
  const __m256 vmx = _mm256_set1_ps(mx);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmx));
    if (out != nullptr) _mm256_storeu_ps(out + i, e);
    AccumulateLanesPd(e, &acc);
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    const __m256 v = _mm256_maskload_ps(x + i, mask);
    __m256 e = Exp8(_mm256_sub_ps(v, vmx));
    if (out != nullptr) _mm256_maskstore_ps(out + i, mask, e);
    e = _mm256_and_ps(e, _mm256_castsi256_ps(mask));
    AccumulateLanesPd(e, &acc);
  }
  return HorizontalSumPd(acc);
}

void ScaleAvx2(float* x, float s, size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    _mm256_maskstore_ps(
        x + i, mask,
        _mm256_mul_ps(_mm256_maskload_ps(x + i, mask), vs));
  }
}

void AddScalarAvx2(float* x, float s, size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_add_ps(_mm256_loadu_ps(x + i), vs));
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    _mm256_maskstore_ps(
        x + i, mask,
        _mm256_add_ps(_mm256_maskload_ps(x + i, mask), vs));
  }
}

void SoftmaxAvx2(float* x, size_t n) {
  if (n == 0) return;
  const float mx = MaxOrNegInfAvx2(x, n);
  if (mx == -HUGE_VALF) {
    kernel_detail::SoftmaxDegenerate(x, n);
    return;
  }
  const double total = ExpSumAvx2(x, x, mx, n);
  ScaleAvx2(x, static_cast<float>(1.0 / total), n);
}

void LogSoftmaxAvx2(float* x, size_t n) {
  if (n == 0) return;
  const float mx = MaxOrNegInfAvx2(x, n);
  if (mx == -HUGE_VALF) {
    kernel_detail::LogSoftmaxDegenerate(x, n);
    return;
  }
  const double total = ExpSumAvx2(x, nullptr, mx, n);
  const float log_z = mx + static_cast<float>(std::log(total));
  AddScalarAvx2(x, -log_z, n);
}

double LogSumExpAvx2(const float* x, size_t n) {
  if (n == 0) return -HUGE_VAL;
  const float mx = MaxOrNegInfAvx2(x, n);
  if (mx == -HUGE_VALF) {
    return kernel_detail::HasNan(x, n)
               ? static_cast<double>(std::numeric_limits<float>::quiet_NaN())
               : -HUGE_VAL;
  }
  const double total = ExpSumAvx2(x, nullptr, mx, n);
  return static_cast<double>(mx) + std::log(total);
}

void ExpInPlaceAvx2(float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, Exp8(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    _mm256_maskstore_ps(x + i, mask,
                        Exp8(_mm256_maskload_ps(x + i, mask)));
  }
}

void LogInPlaceAvx2(float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, Log8(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    _mm256_maskstore_ps(x + i, mask,
                        Log8(_mm256_maskload_ps(x + i, mask)));
  }
}

void TanhInPlaceAvx2(float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, Tanh8(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    _mm256_maskstore_ps(x + i, mask,
                        Tanh8(_mm256_maskload_ps(x + i, mask)));
  }
}

void SigmoidInPlaceAvx2(float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, Sigmoid8(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    _mm256_maskstore_ps(x + i, mask,
                        Sigmoid8(_mm256_maskload_ps(x + i, mask)));
  }
}

void MultinomialGradAvx2(const float* log_probs, const float* counts,
                         float total_count, float* grad, size_t n) {
  const __m256 vtc = _mm256_set1_ps(total_count);
  const __m256 vmin = _mm256_set1_ps(FLT_MIN);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_mul_ps(Exp8(_mm256_loadu_ps(log_probs + i)), vtc);
    // Ordered < keeps NaN lanes intact while flushing subnormal mass.
    t = _mm256_andnot_ps(_mm256_cmp_ps(t, vmin, _CMP_LT_OQ), t);
    _mm256_storeu_ps(grad + i,
                     _mm256_sub_ps(t, _mm256_loadu_ps(counts + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask8(n - i);
    __m256 t = _mm256_mul_ps(
        Exp8(_mm256_maskload_ps(log_probs + i, mask)), vtc);
    t = _mm256_andnot_ps(_mm256_cmp_ps(t, vmin, _CMP_LT_OQ), t);
    _mm256_maskstore_ps(
        grad + i, mask,
        _mm256_sub_ps(t, _mm256_maskload_ps(counts + i, mask)));
  }
}

}  // namespace

void FillAvx2(KernelTable* t) {
  t->gemm_accumulate = GemmAccumulateAvx2;
  t->dot = DotAvx2;
  t->axpy = AxpyAvx2;
  t->softmax_inplace = SoftmaxAvx2;
  t->log_softmax_inplace = LogSoftmaxAvx2;
  t->log_sum_exp = LogSumExpAvx2;
  t->exp_inplace = ExpInPlaceAvx2;
  t->log_inplace = LogInPlaceAvx2;
  t->tanh_inplace = TanhInPlaceAvx2;
  t->sigmoid_inplace = SigmoidInPlaceAvx2;
  t->multinomial_grad = MultinomialGradAvx2;
}

}  // namespace fvae

#else  // !x86_64

namespace fvae {

void FillAvx2(KernelTable* t) { FillScalar(t); }

}  // namespace fvae

#endif
