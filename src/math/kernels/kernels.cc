#include "math/kernels/kernel_table.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <xmmintrin.h>
#endif

namespace fvae {
namespace {

KernelTable g_table;

Isa DetectBestIsa() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return Isa::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::kAvx2;
  }
#endif
  return Isa::kScalar;
}

void BuildTable(Isa isa, KernelTable* t) {
  // Scalar first so every slot holds a valid pointer even if a Fill* for a
  // narrower ISA ever leaves one untouched.
  FillScalar(t);
  switch (isa) {
    case Isa::kScalar:
      break;
    case Isa::kAvx2:
      FillAvx2(t);
      break;
    case Isa::kAvx512:
      FillAvx512(t);
      break;
  }
  t->isa = isa;
}

bool ParseIsaName(const char* s, Isa* out) {
  if (std::strcmp(s, "scalar") == 0) {
    *out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = Isa::kAvx2;
    return true;
  }
  if (std::strcmp(s, "avx512") == 0) {
    *out = Isa::kAvx512;
    return true;
  }
  return false;
}

// First-use initializer behind Kernels()'s magic static. Runs on a hot
// path, so: getenv + strcmp only — no std::string, no logging, no
// allocation (the lint purity walk enforces this transitively).
bool InitTableFromEnv() {
  Isa isa = DetectBestIsa();
  const char* force = std::getenv("FVAE_FORCE_ISA");
  Isa forced = Isa::kScalar;
  if (force != nullptr && ParseIsaName(force, &forced) &&
      IsaSupported(forced)) {
    // An unsupported or unparsable FVAE_FORCE_ISA silently keeps the
    // detected best; callers can read Kernels().isa to see what won.
    isa = forced;
  }
  BuildTable(isa, &g_table);
  return true;
}

// FTZ/DAZ policy (docs/ARCHITECTURE.md §12): subnormal intermediates in
// the exp/KL path stall the FP pipeline by ~100x on common cores, and the
// fold-in chain never needs gradual underflow. MXCSR is per-thread state,
// so this runs once per thread via the thread_local in Kernels().
// FVAE_FTZ=0 opts out (e.g. to audit underflow behavior).
bool ApplyFtzThisThread() {
#if defined(__x86_64__) || defined(_M_X64)
  const char* env = std::getenv("FVAE_FTZ");
  if (env != nullptr && std::strcmp(env, "0") == 0) return false;
  // Bit 15 = FTZ (flush results), bit 6 = DAZ (treat inputs as zero).
  _mm_setcsr(_mm_getcsr() | 0x8040u);
  return true;
#else
  return false;
#endif
}

}  // namespace

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable& Kernels() {
  static const bool inited = InitTableFromEnv();
  (void)inited;
  thread_local const bool ftz_applied = ApplyFtzThisThread();
  (void)ftz_applied;
  return g_table;
}

Isa ActiveIsa() { return Kernels().isa; }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ForceIsa(Isa isa) {
  if (!IsaSupported(isa)) return false;
  Kernels();  // settle env-driven first-init before overwriting the table
  BuildTable(isa, &g_table);
  return true;
}

}  // namespace fvae
