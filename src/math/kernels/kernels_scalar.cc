#include <cfloat>
#include <cmath>
#include <cstddef>

#include "math/kernels/kernel_table.h"

// Scalar reference kernels: the fallback ISA and the semantic ground truth
// the vector paths are tested against. Plain loops, double accumulators
// where the pre-kernel-layer code used them, and — deliberately — no
// zero-operand skips anywhere, so 0*inf / 0*NaN propagation is identical
// across every ISA and every tile/tail path (the old register-tiled GEMM
// skipped all-zero A quads in the tiled body but only single zeros in the
// leftover rows, so the same matrix could produce NaN in one region and
// stale zeros in another).

namespace fvae {
namespace {

void GemmAccumulateScalar(const float* a, const float* b, float* out,
                          size_t m, size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* out_row = out + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      const float* b_row = b + p * n;
      for (size_t j = 0; j < n; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
}

double DotScalar(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return acc;
}

void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

// NaN-ignoring max (`>` is false on NaN); -inf when nothing finite.
float MaxOrNegInf(const float* x, size_t n) {
  float mx = -HUGE_VALF;
  for (size_t i = 0; i < n; ++i) {
    if (x[i] > mx) mx = x[i];
  }
  return mx;
}

void SoftmaxScalar(float* x, size_t n) {
  if (n == 0) return;
  const float mx = MaxOrNegInf(x, n);
  if (mx == -HUGE_VALF) {
    kernel_detail::SoftmaxDegenerate(x, n);
    return;
  }
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - mx);
    total += x[i];
  }
  // total >= exp(0) = 1 here (the max element contributes 1), so the
  // normalization can never divide by zero; NaN input poisons total and
  // with it every output, matching the vector paths.
  const float inv = static_cast<float>(1.0 / total);
  for (size_t i = 0; i < n; ++i) x[i] *= inv;
}

void LogSoftmaxScalar(float* x, size_t n) {
  if (n == 0) return;
  const float mx = MaxOrNegInf(x, n);
  if (mx == -HUGE_VALF) {
    kernel_detail::LogSoftmaxDegenerate(x, n);
    return;
  }
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += std::exp(static_cast<double>(x[i]) - mx);
  }
  const float log_z = mx + static_cast<float>(std::log(total));
  for (size_t i = 0; i < n; ++i) x[i] -= log_z;
}

double LogSumExpScalar(const float* x, size_t n) {
  if (n == 0) return -HUGE_VAL;
  const float mx = MaxOrNegInf(x, n);
  if (mx == -HUGE_VALF) {
    return kernel_detail::HasNan(x, n)
               ? static_cast<double>(std::numeric_limits<float>::quiet_NaN())
               : -HUGE_VAL;
  }
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += std::exp(static_cast<double>(x[i]) - mx);
  }
  return static_cast<double>(mx) + std::log(total);
}

void ExpInPlaceScalar(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
}

void LogInPlaceScalar(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = std::log(x[i]);
}

void TanhInPlaceScalar(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

void SigmoidInPlaceScalar(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void MultinomialGradScalar(const float* log_probs, const float* counts,
                           float total_count, float* grad, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    float t = total_count * std::exp(log_probs[j]);
    // Sub-FLT_MIN reconstruction mass is numerically zero: flush it so the
    // gradient never carries subnormal garbage into the optimizer even
    // with FVAE_FTZ=0. (`<` is false on NaN, so NaN still propagates.)
    if (t < FLT_MIN) t = 0.0f;
    grad[j] = t - counts[j];
  }
}

}  // namespace

void FillScalar(KernelTable* t) {
  t->gemm_accumulate = GemmAccumulateScalar;
  t->dot = DotScalar;
  t->axpy = AxpyScalar;
  t->softmax_inplace = SoftmaxScalar;
  t->log_softmax_inplace = LogSoftmaxScalar;
  t->log_sum_exp = LogSumExpScalar;
  t->exp_inplace = ExpInPlaceScalar;
  t->log_inplace = LogInPlaceScalar;
  t->tanh_inplace = TanhInPlaceScalar;
  t->sigmoid_inplace = SigmoidInPlaceScalar;
  t->multinomial_grad = MultinomialGradScalar;
}

}  // namespace fvae
