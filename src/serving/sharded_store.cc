#include "serving/sharded_store.h"

#include <algorithm>

#include "common/check.h"
#include "common/mutex.h"

namespace fvae::serving {

namespace {

/// splitmix64 finalizer: user ids are often sequential, so mix before
/// taking the shard residue to spread them across shards.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedEmbeddingStore::ShardedEmbeddingStore(size_t num_shards)
    : dim_(std::make_unique<std::atomic<size_t>>(0)) {
  num_shards = std::max<size_t>(num_shards, 1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedEmbeddingStore ShardedEmbeddingStore::FromStore(
    const EmbeddingStore& store, size_t num_shards) {
  ShardedEmbeddingStore out(num_shards);
  for (uint64_t id : store.Ids()) {
    out.Put(id, *store.Get(id));
  }
  return out;
}

size_t ShardedEmbeddingStore::ShardOf(uint64_t user_id) const {
  return MixId(user_id) % shards_.size();
}

void ShardedEmbeddingStore::Put(uint64_t user_id,
                                std::vector<float> embedding) {
  size_t expected = 0;
  if (!dim_->compare_exchange_strong(expected, embedding.size(),
                                     std::memory_order_acq_rel)) {
    FVAE_CHECK(embedding.size() == expected)
        << "embedding dim mismatch: store " << expected << ", put "
        << embedding.size();
  }
  Shard& shard = *shards_[ShardOf(user_id)];
  WriterMutexLock lock(shard.mutex);
  shard.table[user_id] = std::move(embedding);
}

std::optional<std::vector<float>> ShardedEmbeddingStore::Get(
    uint64_t user_id) const {
  const Shard& shard = *shards_[ShardOf(user_id)];
  ReaderMutexLock lock(shard.mutex);
  auto it = shard.table.find(user_id);
  if (it == shard.table.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

bool ShardedEmbeddingStore::Contains(uint64_t user_id) const {
  const Shard& shard = *shards_[ShardOf(user_id)];
  ReaderMutexLock lock(shard.mutex);
  return shard.table.count(user_id) > 0;
}

size_t ShardedEmbeddingStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard->mutex);
    total += shard->table.size();
  }
  return total;
}

std::vector<ShardedEmbeddingStore::ShardStats> ShardedEmbeddingStore::Stats()
    const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats stats;
    stats.hits = shard->hits.load(std::memory_order_relaxed);
    stats.misses = shard->misses.load(std::memory_order_relaxed);
    {
      ReaderMutexLock lock(shard->mutex);
      stats.entries = shard->table.size();
    }
    out.push_back(stats);
  }
  return out;
}

}  // namespace fvae::serving
