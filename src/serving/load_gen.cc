#include "serving/load_gen.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"

namespace fvae::serving {

core::RawUserFeatures RawFeaturesOf(const MultiFieldDataset& dataset,
                                    uint32_t user) {
  core::RawUserFeatures features(dataset.num_fields());
  for (size_t k = 0; k < dataset.num_fields(); ++k) {
    const auto span = dataset.UserField(user, k);
    features[k].assign(span.begin(), span.end());
  }
  return features;
}

ShardedEmbeddingStore MaterializeEmbeddings(const core::FieldVae& model,
                                            const MultiFieldDataset& dataset,
                                            std::span<const uint32_t> users,
                                            size_t num_shards,
                                            size_t chunk_size) {
  chunk_size = std::max<size_t>(chunk_size, 1);
  ShardedEmbeddingStore store(num_shards);
  for (size_t begin = 0; begin < users.size(); begin += chunk_size) {
    const size_t end = std::min(begin + chunk_size, users.size());
    const std::span<const uint32_t> chunk = users.subspan(begin, end - begin);
    const Matrix mu = model.Encode(dataset, chunk);
    for (size_t i = 0; i < chunk.size(); ++i) {
      const float* row = mu.Row(i);
      store.Put(chunk[i], std::vector<float>(row, row + mu.cols()));
    }
  }
  return store;
}

std::string LoadGenReport::Json() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"qps\":%.1f,\"p50_us\":%.1f,\"p95_us\":%.1f,"
                "\"p99_us\":%.1f,\"mean_us\":%.1f,\"ok\":%llu,"
                "\"errors\":%llu,\"elapsed_s\":%.3f}",
                Qps(), latency_us.Percentile(50.0),
                latency_us.Percentile(95.0), latency_us.Percentile(99.0),
                latency_us.Mean(), static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(errors), elapsed_seconds);
  return buf;
}

LoadGenReport RunClosedLoopLoad(EmbeddingService& service,
                                const MultiFieldDataset& dataset,
                                std::span<const uint32_t> hot_ids,
                                std::span<const uint32_t> cold_ids,
                                const LoadGenOptions& options) {
  FVAE_CHECK(options.hot_fraction >= 1.0 || !cold_ids.empty())
      << "cold traffic requested but no cold ids";
  FVAE_CHECK(options.hot_fraction <= 0.0 || !hot_ids.empty())
      << "hot traffic requested but no hot ids";
  const size_t num_threads = std::max<size_t>(options.num_threads, 1);

  LoadGenReport report;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> errors{0};

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(options.seed * 1315423911u + t);
      // Strided walk: thread t owns cold_ids[t], [t + T], ... so each cold
      // id's first visit belongs to exactly one thread.
      size_t cold_cursor = t;
      for (size_t i = 0; i < options.requests_per_thread; ++i) {
        uint32_t user;
        if (rng.Uniform() < options.hot_fraction) {
          user = hot_ids[rng.UniformInt(uint64_t(hot_ids.size()))];
        } else {
          user = cold_ids[cold_cursor % cold_ids.size()];
          cold_cursor += num_threads;
        }
        Stopwatch request_watch;
        auto future = service.LookupOrEncode(
            user, RawFeaturesOf(dataset, user), options.deadline_micros);
        const auto result = future.get();
        report.latency_us.Record(request_watch.ElapsedSeconds() * 1e6);
        result.ok() ? ok.fetch_add(1, std::memory_order_relaxed)
                    : errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  report.elapsed_seconds = watch.ElapsedSeconds();
  report.ok = ok.load();
  report.errors = errors.load();
  return report;
}

}  // namespace fvae::serving
