#include "serving/request_batcher.h"

#include <algorithm>

#include "common/check.h"
#include "common/stopwatch.h"

namespace fvae::serving {

RequestBatcher::RequestBatcher(FoldInEncoder* encoder,
                               RequestBatcherOptions options,
                               ServingTelemetry* telemetry,
                               EncodedSink on_encoded)
    : encoder_(encoder),
      options_(options),
      telemetry_(telemetry),
      on_encoded_(std::move(on_encoded)) {
  FVAE_CHECK(encoder_ != nullptr) << "batcher needs an encoder";
  options_.max_batch_size = std::max<size_t>(options_.max_batch_size, 1);
  options_.queue_capacity = std::max<size_t>(options_.queue_capacity, 1);
  const size_t workers = std::max<size_t>(options_.num_workers, 1);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RequestBatcher::~RequestBatcher() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void RequestBatcher::Resolve(Request& request, EmbeddingResult result) {
  if (request.callback) {
    request.callback(std::move(result));
  } else {
    request.promise.set_value(std::move(result));
  }
}

bool RequestBatcher::Enqueue(Request request) {
  bool accepted = false;
  {
    MutexLock lock(mutex_);
    if (!shutting_down_ && queue_.size() < options_.queue_capacity) {
      queue_.push_back(std::move(request));
      if (telemetry_ != nullptr) telemetry_->UpdateQueueDepth(queue_.size());
      accepted = true;
    }
  }
  if (accepted) {
    work_available_.NotifyOne();
    return true;
  }
  // Bounced: resolve outside the lock (the callback may re-enter).
  if (telemetry_ != nullptr) telemetry_->rejected.Increment();
  // request is moved only when accepted, and the accepted path returned
  // above; this path still owns it.
  Resolve(request,  // fvae-lint: allow(use-after-move)
          Status::Unavailable("fold-in queue full or shutting down"));
  return false;
}

std::future<RequestBatcher::EmbeddingResult> RequestBatcher::Submit(
    uint64_t user_id, const core::RawUserFeatures& features,
    uint64_t deadline_micros) {
  const auto now = Clock::now();
  Request request;
  request.user_id = user_id;
  request.features = features;
  request.enqueue_time = now;
  request.deadline = deadline_micros == 0
                         ? Clock::time_point::max()
                         : now + std::chrono::microseconds(deadline_micros);
  request.trace_ctx = obs::CurrentTraceContext();
  request.enqueue_us = MonotonicMicros();
  std::future<EmbeddingResult> future = request.promise.get_future();
  Enqueue(std::move(request));
  return future;
}

void RequestBatcher::SubmitAsync(uint64_t user_id,
                                 const core::RawUserFeatures& features,
                                 uint64_t deadline_micros,
                                 DoneCallback done) {
  FVAE_CHECK(done) << "SubmitAsync needs a done callback";
  const auto now = Clock::now();
  Request request;
  request.user_id = user_id;
  request.features = features;
  request.enqueue_time = now;
  request.deadline = deadline_micros == 0
                         ? Clock::time_point::max()
                         : now + std::chrono::microseconds(deadline_micros);
  request.trace_ctx = obs::CurrentTraceContext();
  request.enqueue_us = MonotonicMicros();
  request.callback = std::move(done);
  Enqueue(std::move(request));
}

size_t RequestBatcher::QueueDepth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

std::vector<RequestBatcher::Request> RequestBatcher::TakeBatch(
    std::vector<Request>* expired) {
  std::vector<Request> batch;
  batch.reserve(std::min(queue_.size(), options_.max_batch_size));
  // Evaluate deadlines against a fresh clock at the dequeue boundary: a
  // request admitted just under its deadline but dequeued after it resolves
  // kDeadlineExceeded here instead of burning encoder throughput.
  const auto now = Clock::now();
  while (!queue_.empty() && batch.size() < options_.max_batch_size) {
    Request& front = queue_.front();
    if (front.deadline < now) {
      expired->push_back(std::move(front));
    } else {
      batch.push_back(std::move(front));
    }
    queue_.pop_front();
  }
  if (telemetry_ != nullptr) telemetry_->UpdateQueueDepth(queue_.size());
  return batch;
}

void RequestBatcher::WorkerLoop() {
  BatchScratch scratch;  // worker-owned, reused across every dispatch
  mutex_.Lock();
  for (;;) {
    while (!shutting_down_ && queue_.empty()) {
      work_available_.Wait(mutex_);
    }
    if (queue_.empty()) {
      // shutting down and drained
      mutex_.Unlock();
      return;
    }
    // Batch window: dispatch when full, or max_wait_micros after the
    // window's first request — whichever comes first. During shutdown the
    // window is skipped so the drain is prompt.
    const Clock::time_point window_end =
        queue_.front().enqueue_time +
        std::chrono::microseconds(options_.max_wait_micros);
    while (!shutting_down_ && queue_.size() < options_.max_batch_size &&
           Clock::now() < window_end) {
      work_available_.WaitUntil(mutex_, window_end);
    }

    std::vector<Request> expired;
    std::vector<Request> batch = TakeBatch(&expired);
    mutex_.Unlock();
    for (Request& request : expired) {
      if (telemetry_ != nullptr) {
        telemetry_->deadline_expired.Increment();
        telemetry_->batcher_deadline_expired.Increment();
      }
      Resolve(request,
              Status::DeadlineExceeded("expired in fold-in queue"));
    }
    ProcessBatch(std::move(batch), &scratch);
    // Off the hot path: move staged spans into the global recorder before
    // going back to sleep on the queue.
    if (scratch.spans.staged() > 0) scratch.spans.Flush();
    mutex_.Lock();
  }
}

void RequestBatcher::ProcessBatch(std::vector<Request> batch,
                                  BatchScratch* scratch) {
  // Expired requests are answered without paying for the encoder.
  const auto now = Clock::now();
  const int64_t dequeue_us = MonotonicMicros();
  std::vector<Request>& live = scratch->live;
  live.clear();
  live.reserve(batch.size());  // fvae-lint: allow(hot-alloc)
  for (Request& request : batch) {
    if (request.deadline < now) {
      if (telemetry_ != nullptr) {
        telemetry_->deadline_expired.Increment();
      }
      Resolve(request,
              Status::DeadlineExceeded("expired in fold-in queue"));
    } else {
      live.push_back(std::move(request));  // fvae-lint: allow(hot-alloc)
    }
  }
  if (live.empty()) return;

  std::vector<const core::RawUserFeatures*>& users = scratch->users;
  users.clear();
  users.reserve(live.size());  // fvae-lint: allow(hot-alloc)
  for (const Request& request : live) {
    users.push_back(&request.features);  // fvae-lint: allow(hot-alloc)
  }
  Matrix& embeddings = scratch->embeddings;
  const int64_t encode_start_us = MonotonicMicros();
  encoder_->EncodeBatchInto(users, &embeddings);
  const int64_t encode_end_us = MonotonicMicros();
  FVAE_CHECK(embeddings.rows() == live.size())
      << "encoder returned " << embeddings.rows() << " rows for "
      << live.size() << " users";

  if (telemetry_ != nullptr) {
    telemetry_->batches.Increment();
    telemetry_->batched_users.Add(live.size());
  }
  // Stage per-request queue-wait and encode spans; each parents on the
  // context captured at submit (the client's send arm for network
  // requests), so the stitched trace shows real queue time separately
  // from encoder time. Staging is a bounded write — WorkerLoop flushes.
  const bool tracing = obs::TraceRecorder::Global().enabled();
  const auto done = Clock::now();
  for (size_t i = 0; i < live.size(); ++i) {
    const float* row = embeddings.Row(i);
    std::span<const float> embedding(row, embeddings.cols());
    const double latency_us =
        std::chrono::duration<double, std::micro>(done -
                                                  live[i].enqueue_time)
            .count();
    if (tracing && live[i].trace_ctx.valid()) {
      const obs::TraceContext& submit_ctx = live[i].trace_ctx;
      scratch->spans.NoteSpan(
          "serving.batcher.queue_wait", live[i].enqueue_us,
          dequeue_us - live[i].enqueue_us,
          obs::TraceContext{submit_ctx.trace_id, obs::MintSpanId()},
          submit_ctx.span_id);
      scratch->spans.NoteSpan(
          "serving.batcher.encode", encode_start_us,
          encode_end_us - encode_start_us,
          obs::TraceContext{submit_ctx.trace_id, obs::MintSpanId()},
          submit_ctx.span_id);
    }
    if (on_encoded_) on_encoded_(live[i].user_id, embedding, latency_us);
    Resolve(live[i],
            std::vector<float>(embedding.begin(), embedding.end()));
  }
}

}  // namespace fvae::serving
