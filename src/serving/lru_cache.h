#ifndef FVAE_SERVING_LRU_CACHE_H_
#define FVAE_SERVING_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/check.h"

namespace fvae::serving {

/// Bounded LRU cache — the repository's stand-in for the paper's Redis
/// high-performance cache in the online module (Fig. 2).
///
/// Single-threaded by design (callers guard it with their own lock — see
/// ServingProxy); Get refreshes recency, Put evicts the least recently
/// used entry when full. Concurrent owners must declare their instance
/// `LruCache<...> cache_ FVAE_GUARDED_BY(mutex_)` so the thread-safety
/// analysis enforces that every access holds the owner's lock.
///
/// Capacity 0 is a valid degenerate cache: Put is a no-op and Get always
/// misses (useful for disabling caching via configuration).
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value (refreshing recency), or nullopt.
  std::optional<Value> Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites; evicts the LRU entry when at capacity.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  /// Drops every entry (capacity unchanged). Used when the backing store
  /// is swapped out (ServingProxy::ReloadFromFile) so stale embeddings
  /// cannot outlive the dump they came from.
  void Clear() {
    order_.clear();
    index_.clear();
  }

  bool Contains(const Key& key) const { return index_.count(key) > 0; }
  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_LRU_CACHE_H_
