#include "serving/embedding_service.h"

#include <chrono>

#include "common/stopwatch.h"

namespace fvae::serving {

EmbeddingService::EmbeddingService(ShardedEmbeddingStore store,
                                   FoldInEncoder* encoder,
                                   EmbeddingServiceOptions options)
    : store_(std::move(store)),
      encoder_(encoder),
      options_(options),
      telemetry_(options.metrics_registry) {
  if (encoder_ != nullptr && options_.enable_batcher) {
    batcher_ = std::make_unique<RequestBatcher>(
        encoder_, options_.batcher, &telemetry_,
        [this](uint64_t user_id, std::span<const float> embedding,
               double latency_us) {
          store_.Put(user_id,
                     std::vector<float>(embedding.begin(), embedding.end()));
          telemetry_.fold_ins.Increment();
          telemetry_.foldin_latency_us().Record(latency_us);
        });
  }
}

// Out of line so the batcher (and its worker threads) tears down before the
// store it materializes into.
EmbeddingService::~EmbeddingService() { batcher_.reset(); }

std::future<EmbeddingService::EmbeddingResult> EmbeddingService::Ready(
    EmbeddingResult result) {
  std::promise<EmbeddingResult> promise;
  std::future<EmbeddingResult> future = promise.get_future();
  promise.set_value(std::move(result));
  return future;
}

EmbeddingService::EmbeddingResult EmbeddingService::Lookup(
    uint64_t user_id) {
  Stopwatch watch;
  telemetry_.requests.Increment();
  if (auto embedding = store_.Get(user_id); embedding.has_value()) {
    telemetry_.store_hits.Increment();
    telemetry_.lookup_latency_us().Record(watch.ElapsedSeconds() * 1e6);
    return *std::move(embedding);
  }
  telemetry_.not_found.Increment();
  return Status::NotFound("user not materialized");
}

std::future<EmbeddingService::EmbeddingResult>
EmbeddingService::LookupOrEncode(uint64_t user_id,
                                 const core::RawUserFeatures& features,
                                 uint64_t deadline_micros) {
  Stopwatch watch;
  telemetry_.requests.Increment();
  if (auto embedding = store_.Get(user_id); embedding.has_value()) {
    telemetry_.store_hits.Increment();
    telemetry_.lookup_latency_us().Record(watch.ElapsedSeconds() * 1e6);
    return Ready(*std::move(embedding));
  }
  if (encoder_ == nullptr) {
    telemetry_.not_found.Increment();
    return Ready(Status::NotFound("user not materialized, no encoder"));
  }
  if (deadline_micros == 0) deadline_micros = options_.default_deadline_micros;

  if (batcher_ != nullptr) {
    // Outcome accounting (fold_ins / rejected / deadline_expired) happens
    // inside the batcher and its encoded-sink callback.
    return batcher_->Submit(user_id, features, deadline_micros);
  }

  // Synchronous fallback path (batcher disabled): encode a batch of one on
  // the request thread. The encoder serializes internally, so concurrent
  // cold lookups queue on its mutex — the cost the micro-batcher removes.
  const core::RawUserFeatures* user = &features;
  const Matrix embedding = encoder_->EncodeBatch({&user, 1});
  std::vector<float> row(embedding.Row(0), embedding.Row(0) + embedding.cols());
  store_.Put(user_id, row);
  telemetry_.fold_ins.Increment();
  telemetry_.foldin_latency_us().Record(watch.ElapsedSeconds() * 1e6);
  return Ready(std::move(row));
}

void EmbeddingService::LookupOrEncodeAsync(
    uint64_t user_id, const core::RawUserFeatures& features,
    uint64_t deadline_micros, RequestBatcher::DoneCallback done) {
  Stopwatch watch;
  telemetry_.requests.Increment();
  if (auto embedding = store_.Get(user_id); embedding.has_value()) {
    telemetry_.store_hits.Increment();
    telemetry_.lookup_latency_us().Record(watch.ElapsedSeconds() * 1e6);
    done(*std::move(embedding));
    return;
  }
  if (encoder_ == nullptr) {
    telemetry_.not_found.Increment();
    done(Status::NotFound("user not materialized, no encoder"));
    return;
  }
  if (deadline_micros == 0) deadline_micros = options_.default_deadline_micros;

  if (batcher_ != nullptr) {
    batcher_->SubmitAsync(user_id, features, deadline_micros,
                          std::move(done));
    return;
  }

  // Synchronous fallback, as in LookupOrEncode.
  const core::RawUserFeatures* user = &features;
  const Matrix embedding = encoder_->EncodeBatch({&user, 1});
  std::vector<float> row(embedding.Row(0),
                         embedding.Row(0) + embedding.cols());
  store_.Put(user_id, row);
  telemetry_.fold_ins.Increment();
  telemetry_.foldin_latency_us().Record(watch.ElapsedSeconds() * 1e6);
  done(std::move(row));
}

std::string EmbeddingService::TelemetryJson() const {
  const auto shards = store_.Stats();
  return telemetry_.ToJson(&shards);
}

}  // namespace fvae::serving
