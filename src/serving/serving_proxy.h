#ifndef FVAE_SERVING_SERVING_PROXY_H_
#define FVAE_SERVING_SERVING_PROXY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serving/embedding_store.h"
#include "serving/lru_cache.h"

namespace fvae::serving {

/// Model-serving proxy of the online module (Fig. 2): answers embedding
/// lookups from a hot LRU cache backed by the (HDFS stand-in) embedding
/// store, and tracks hit statistics.
///
/// Safe for concurrent callers: the cache and counters are guarded by one
/// mutex, so throughput is bounded by lock handoff. For the concurrent
/// serving stack (sharding, micro-batched fold-in, admission control) use
/// EmbeddingService; this proxy remains the minimal single-store reference
/// implementation.
class ServingProxy {
 public:
  struct Stats {
    size_t requests = 0;
    size_t cache_hits = 0;
    size_t store_hits = 0;
    size_t misses = 0;

    double CacheHitRate() const {
      return requests == 0 ? 0.0 : double(cache_hits) / double(requests);
    }
  };

  /// `store` must outlive the proxy.
  ServingProxy(const EmbeddingStore* store, size_t cache_capacity)
      : store_(store), cache_(cache_capacity) {}

  /// Looks up a user's embedding: cache first, then store (populating the
  /// cache on a store hit). nullopt for unknown users.
  std::optional<std::vector<float>> Lookup(uint64_t user_id)
      FVAE_EXCLUDES(mutex_);

  /// Consistent snapshot of the counters.
  Stats stats() const FVAE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  const EmbeddingStore* store_;
  mutable Mutex mutex_;
  LruCache<uint64_t, std::vector<float>> cache_ FVAE_GUARDED_BY(mutex_);
  Stats stats_ FVAE_GUARDED_BY(mutex_);
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_SERVING_PROXY_H_
