#ifndef FVAE_SERVING_SERVING_PROXY_H_
#define FVAE_SERVING_SERVING_PROXY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serving/embedding_store.h"
#include "serving/lru_cache.h"

namespace fvae::serving {

/// Model-serving proxy of the online module (Fig. 2): answers embedding
/// lookups from a hot LRU cache backed by the (HDFS stand-in) embedding
/// store, and tracks hit statistics.
///
/// Safe for concurrent callers: the cache and counters are guarded by one
/// mutex, so throughput is bounded by lock handoff. For the concurrent
/// serving stack (sharding, micro-batched fold-in, admission control) use
/// EmbeddingService; this proxy remains the minimal single-store reference
/// implementation.
class ServingProxy {
 public:
  struct Stats {
    size_t requests = 0;
    size_t cache_hits = 0;
    size_t store_hits = 0;
    size_t misses = 0;
    /// Successful ReloadFromFile swaps (failed reloads don't count — the
    /// old store keeps serving).
    size_t reloads = 0;

    double CacheHitRate() const {
      return requests == 0 ? 0.0 : double(cache_hits) / double(requests);
    }
  };

  /// `store` must outlive the proxy.
  ServingProxy(const EmbeddingStore* store, size_t cache_capacity)
      : store_(store), cache_(cache_capacity) {}

  /// Looks up a user's embedding: cache first, then store (populating the
  /// cache on a store hit). nullopt for unknown users.
  std::optional<std::vector<float>> Lookup(uint64_t user_id)
      FVAE_EXCLUDES(mutex_) FVAE_HOT;

  /// Swaps in a fresh embedding dump written by EmbeddingStore::Save — the
  /// online module's "new day's embeddings landed on HDFS" step (Fig. 2).
  ///
  /// The file is parsed and checksum-verified entirely OUTSIDE the lock, so
  /// concurrent Lookups keep serving the old store for the whole load; only
  /// the pointer swap and cache invalidation hold the mutex. On any load
  /// error (missing file, torn write, bad CRC) the proxy is untouched and
  /// keeps serving the previous store — a crashed producer can never swap a
  /// torn dump in (kill-matrix-tested in serving_test).
  Status ReloadFromFile(const std::string& path) FVAE_EXCLUDES(mutex_);

  /// Consistent snapshot of the counters.
  Stats stats() const FVAE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  // Points at either the constructor-supplied store or owned_store_ after a
  // successful reload. Guarded: reload swaps it.
  const EmbeddingStore* store_ FVAE_GUARDED_BY(mutex_);
  // Cache/stats handoff only — held for map probes, never across file IO
  // (ReloadFromFile loads outside the lock), hence hot-check exempt.
  mutable Mutex mutex_ FVAE_HOT_LOCK_EXEMPT;
  std::unique_ptr<EmbeddingStore> owned_store_ FVAE_GUARDED_BY(mutex_);
  LruCache<uint64_t, std::vector<float>> cache_ FVAE_GUARDED_BY(mutex_);
  Stats stats_ FVAE_GUARDED_BY(mutex_);
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_SERVING_PROXY_H_
