#include "serving/telemetry.h"

#include <cstdio>

namespace fvae::serving {

std::string ServingTelemetry::ToJson(
    const std::vector<ShardedEmbeddingStore::ShardStats>* shards) const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"elapsed_s\":%.3f,\"qps\":%.1f,"
      "\"requests\":%llu,\"store_hits\":%llu,\"fold_ins\":%llu,"
      "\"rejected\":%llu,\"deadline_expired\":%llu,\"not_found\":%llu,"
      "\"queue_depth\":%zu,\"queue_peak\":%zu,"
      "\"batches\":%llu,\"mean_batch_size\":%.2f",
      ElapsedSeconds(), Qps(),
      static_cast<unsigned long long>(requests.load()),
      static_cast<unsigned long long>(store_hits.load()),
      static_cast<unsigned long long>(fold_ins.load()),
      static_cast<unsigned long long>(rejected.load()),
      static_cast<unsigned long long>(deadline_expired.load()),
      static_cast<unsigned long long>(not_found.load()), queue_depth(),
      queue_peak(), static_cast<unsigned long long>(batches.load()),
      MeanBatchSize());
  std::string out = buf;
  out += ",\"lookup_latency_us\":" + lookup_latency_us_.SummaryJson();
  out += ",\"foldin_latency_us\":" + foldin_latency_us_.SummaryJson();
  if (shards != nullptr) {
    out += ",\"shards\":[";
    for (size_t i = 0; i < shards->size(); ++i) {
      const auto& s = (*shards)[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"entries\":%zu,\"hits\":%llu,\"misses\":%llu,"
                    "\"hit_rate\":%.4f}",
                    i == 0 ? "" : ",", s.entries,
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses), s.HitRate());
      out += buf;
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace fvae::serving
