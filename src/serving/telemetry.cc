#include "serving/telemetry.h"

#include <cstdio>

namespace fvae::serving {

ServingTelemetry::ServingTelemetry(obs::MetricsRegistry* registry)
    : owned_registry_(registry != nullptr
                          ? nullptr
                          : std::make_unique<obs::MetricsRegistry>()),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      requests(registry_->Counter("serving.requests")),
      store_hits(registry_->Counter("serving.store_hits")),
      fold_ins(registry_->Counter("serving.fold_ins")),
      rejected(registry_->Counter("serving.rejected")),
      deadline_expired(registry_->Counter("serving.deadline_expired")),
      batcher_deadline_expired(
          registry_->Counter("serving.batcher.deadline_expired")),
      not_found(registry_->Counter("serving.not_found")),
      batches(registry_->Counter("serving.batches")),
      batched_users(registry_->Counter("serving.batched_users")),
      queue_depth_(registry_->Gauge("serving.queue_depth")),
      queue_peak_(registry_->Gauge("serving.queue_peak")),
      lookup_latency_us_(registry_->Histo("serving.lookup_latency_us")),
      foldin_latency_us_(registry_->Histo("serving.foldin_latency_us")),
      start_us_(MonotonicMicros()) {}

std::string ServingTelemetry::ToJson(
    const std::vector<ShardedEmbeddingStore::ShardStats>* shards) const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"elapsed_s\":%.3f,\"qps\":%.1f,"
      "\"requests\":%llu,\"store_hits\":%llu,\"fold_ins\":%llu,"
      "\"rejected\":%llu,\"deadline_expired\":%llu,"
      "\"batcher_deadline_expired\":%llu,\"not_found\":%llu,"
      "\"queue_depth\":%zu,\"queue_peak\":%zu,"
      "\"batches\":%llu,\"mean_batch_size\":%.2f",
      ElapsedSeconds(), Qps(),
      static_cast<unsigned long long>(requests.Value()),
      static_cast<unsigned long long>(store_hits.Value()),
      static_cast<unsigned long long>(fold_ins.Value()),
      static_cast<unsigned long long>(rejected.Value()),
      static_cast<unsigned long long>(deadline_expired.Value()),
      static_cast<unsigned long long>(batcher_deadline_expired.Value()),
      static_cast<unsigned long long>(not_found.Value()), queue_depth(),
      queue_peak(), static_cast<unsigned long long>(batches.Value()),
      MeanBatchSize());
  std::string out = buf;
  out += ",\"lookup_latency_us\":" + lookup_latency_us_.SummaryJson();
  out += ",\"foldin_latency_us\":" + foldin_latency_us_.SummaryJson();
  if (shards != nullptr) {
    out += ",\"shards\":[";
    for (size_t i = 0; i < shards->size(); ++i) {
      const auto& s = (*shards)[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"entries\":%zu,\"hits\":%llu,\"misses\":%llu,"
                    "\"hit_rate\":%.4f}",
                    i == 0 ? "" : ",", s.entries,
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses), s.HitRate());
      out += buf;
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace fvae::serving
