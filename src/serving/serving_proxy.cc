#include "serving/serving_proxy.h"

#include <memory>
#include <utility>

namespace fvae::serving {

std::optional<std::vector<float>> ServingProxy::Lookup(uint64_t user_id) {
  MutexLock lock(mutex_);
  ++stats_.requests;
  if (auto cached = cache_.Get(user_id); cached.has_value()) {
    ++stats_.cache_hits;
    return cached;
  }
  // The store is immutable while serving, so reading it under the proxy
  // mutex is for simplicity, not correctness of the store itself.
  if (auto stored = store_->Get(user_id); stored.has_value()) {
    ++stats_.store_hits;
    cache_.Put(user_id, *stored);
    return stored;
  }
  ++stats_.misses;
  return std::nullopt;
}

Status ServingProxy::ReloadFromFile(const std::string& path) {
  // Parse + CRC-verify the dump with no lock held: Lookups serve the old
  // store until the new one is fully validated in memory.
  Result<EmbeddingStore> loaded = EmbeddingStore::Load(path);
  if (!loaded.ok()) return loaded.status();
  auto fresh = std::make_unique<EmbeddingStore>(std::move(loaded).value());

  MutexLock lock(mutex_);
  owned_store_ = std::move(fresh);
  store_ = owned_store_.get();
  // Entries cached from the previous store may no longer exist (or may
  // have new values) in the reloaded dump.
  cache_.Clear();
  ++stats_.reloads;
  return Status::Ok();
}

}  // namespace fvae::serving
