#include "serving/serving_proxy.h"

namespace fvae::serving {

std::optional<std::vector<float>> ServingProxy::Lookup(uint64_t user_id) {
  MutexLock lock(mutex_);
  ++stats_.requests;
  if (auto cached = cache_.Get(user_id); cached.has_value()) {
    ++stats_.cache_hits;
    return cached;
  }
  // The store is immutable while serving, so reading it under the proxy
  // mutex is for simplicity, not correctness of the store itself.
  if (auto stored = store_->Get(user_id); stored.has_value()) {
    ++stats_.store_hits;
    cache_.Put(user_id, *stored);
    return stored;
  }
  ++stats_.misses;
  return std::nullopt;
}

}  // namespace fvae::serving
