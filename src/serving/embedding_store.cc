#include "serving/embedding_store.h"

#include <cstring>
#include <fstream>

#include "common/check.h"

namespace fvae::serving {

namespace {
constexpr char kMagic[4] = {'F', 'V', 'E', 'B'};
constexpr uint32_t kVersion = 1;
}  // namespace

void EmbeddingStore::Put(uint64_t user_id, std::vector<float> embedding) {
  FVAE_CHECK(!embedding.empty()) << "empty embedding";
  if (table_.empty()) {
    dim_ = embedding.size();
  } else {
    FVAE_CHECK(embedding.size() == dim_)
        << "dimension mismatch: " << embedding.size() << " vs " << dim_;
  }
  table_[user_id] = std::move(embedding);
}

void EmbeddingStore::PutBatch(const std::vector<uint64_t>& user_ids,
                              const Matrix& embeddings) {
  FVAE_CHECK(user_ids.size() == embeddings.rows()) << "batch size mismatch";
  for (size_t i = 0; i < user_ids.size(); ++i) {
    const float* row = embeddings.Row(i);
    Put(user_ids[i], std::vector<float>(row, row + embeddings.cols()));
  }
}

std::optional<std::vector<float>> EmbeddingStore::Get(uint64_t user_id)
    const {
  auto it = table_.find(user_id);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::vector<uint64_t> EmbeddingStore::Ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(table_.size());
  for (const auto& [id, _] : table_) ids.push_back(id);
  return ids;
}

Status EmbeddingStore::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(kMagic, 4);
  const uint32_t version = kVersion;
  const uint32_t dim = static_cast<uint32_t>(dim_);
  const uint64_t count = table_.size();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [user_id, embedding] : table_) {
    out.write(reinterpret_cast<const char*>(&user_id), sizeof(user_id));
    out.write(reinterpret_cast<const char*>(embedding.data()),
              static_cast<std::streamsize>(embedding.size() *
                                           sizeof(float)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint32_t version = 0, dim = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || version != kVersion) {
    return Status::InvalidArgument("unsupported store version");
  }
  if (dim == 0 || dim > 1u << 20) {
    return Status::InvalidArgument("bad embedding dimension");
  }
  EmbeddingStore store;
  store.dim_ = dim;
  store.table_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t user_id = 0;
    std::vector<float> embedding(dim);
    in.read(reinterpret_cast<char*>(&user_id), sizeof(user_id));
    in.read(reinterpret_cast<char*>(embedding.data()),
            static_cast<std::streamsize>(dim * sizeof(float)));
    if (!in) return Status::IoError("truncated store: " + path);
    store.table_[user_id] = std::move(embedding);
  }
  return store;
}

}  // namespace fvae::serving
