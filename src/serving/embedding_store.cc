#include "serving/embedding_store.h"

#include <cstring>
#include <sstream>

#include "common/atomic_file.h"
#include "common/binary_io.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/failpoint.h"

namespace fvae::serving {

namespace {
constexpr char kMagic[4] = {'F', 'V', 'E', 'B'};
constexpr uint32_t kVersionV1 = 1;
// v2 appends a CRC-32 of the body (everything after the 8-byte header) as
// a 4-byte footer; writes go through the atomic-rename path. Load verifies
// the checksum before returning, so the serving reload path can never swap
// a corrupt dump in (serving_proxy reloads by Load-then-replace).
constexpr uint32_t kVersion = 2;

Result<EmbeddingStore> ParseBody(BufferReader& in, const std::string& path) {
  uint32_t dim = 0;
  uint64_t count = 0;
  if (!in.ReadPod(&dim) || !in.ReadPod(&count)) {
    return Status::IoError("truncated store header in " + path);
  }
  if (dim == 0 || dim > 1u << 20) {
    return Status::InvalidArgument("bad embedding dimension");
  }
  EmbeddingStore store;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t user_id = 0;
    std::vector<float> embedding(dim);
    if (!in.ReadPod(&user_id) ||
        !in.ReadBytes(embedding.data(), size_t(dim) * sizeof(float))) {
      return Status::IoError("truncated store: " + path);
    }
    store.Put(user_id, std::move(embedding));
  }
  return store;
}

}  // namespace

void EmbeddingStore::Put(uint64_t user_id, std::vector<float> embedding) {
  FVAE_CHECK(!embedding.empty()) << "empty embedding";
  if (table_.empty()) {
    dim_ = embedding.size();
  } else {
    FVAE_CHECK(embedding.size() == dim_)
        << "dimension mismatch: " << embedding.size() << " vs " << dim_;
  }
  table_[user_id] = std::move(embedding);
}

void EmbeddingStore::PutBatch(const std::vector<uint64_t>& user_ids,
                              const Matrix& embeddings) {
  FVAE_CHECK(user_ids.size() == embeddings.rows()) << "batch size mismatch";
  for (size_t i = 0; i < user_ids.size(); ++i) {
    const float* row = embeddings.Row(i);
    Put(user_ids[i], std::vector<float>(row, row + embeddings.cols()));
  }
}

std::optional<std::vector<float>> EmbeddingStore::Get(uint64_t user_id)
    const {
  auto it = table_.find(user_id);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::vector<uint64_t> EmbeddingStore::Ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(table_.size());
  for (const auto& [id, _] : table_) ids.push_back(id);
  return ids;
}

Status EmbeddingStore::Save(const std::string& path) const {
  AtomicFileWriter writer;
  FVAE_RETURN_IF_ERROR(writer.Open(path, "embedding_store.save"));
  std::ostream& out = writer.stream();
  out.write(kMagic, 4);
  WritePod(out, kVersion);

  std::ostringstream body;
  WritePod(body, static_cast<uint32_t>(dim_));
  WritePod(body, static_cast<uint64_t>(table_.size()));
  for (const auto& [user_id, embedding] : table_) {
    WritePod(body, user_id);
    body.write(reinterpret_cast<const char*>(embedding.data()),
               static_cast<std::streamsize>(embedding.size() *
                                            sizeof(float)));
  }
  const std::string_view payload = body.view();
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  WritePod(out, Crc32(payload));
  return writer.Commit();
}

Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  // Transient-read-failure injection point for the serving reload tests
  // (a kError arming models "HDFS read bounced"; the proxy must keep
  // serving the previous store).
  FVAE_RETURN_IF_ERROR(FailpointCheck("embedding_store.load"));
  FVAE_ASSIGN_OR_RETURN(const std::string data, ReadFileToString(path));
  BufferReader header(data);
  char magic[4];
  if (!header.ReadBytes(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path +
                                   ", want \"FVEB\"");
  }
  uint32_t version = 0;
  if (!header.ReadPod(&version)) {
    return Status::IoError("truncated header in " + path);
  }
  if (version == kVersionV1) {
    // Legacy dumps: no checksum footer, body runs to end-of-file.
    BufferReader body(std::string_view(data).substr(8));
    return ParseBody(body, path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        "unsupported store version " + std::to_string(version) + " in " +
        path + " (supported: " + std::to_string(kVersionV1) + ".." +
        std::to_string(kVersion) + ")");
  }
  if (data.size() < 8 + sizeof(uint32_t)) {
    return Status::IoError("truncated checksum footer in " + path);
  }
  const std::string_view payload =
      std::string_view(data).substr(8, data.size() - 8 - sizeof(uint32_t));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t computed_crc = Crc32(payload);
  if (stored_crc != computed_crc) {
    return Status::IoError("checksum mismatch in " + path + ": stored " +
                           std::to_string(stored_crc) + ", computed " +
                           std::to_string(computed_crc));
  }
  BufferReader body(payload);
  return ParseBody(body, path);
}

}  // namespace fvae::serving
