#ifndef FVAE_SERVING_LOAD_GEN_H_
#define FVAE_SERVING_LOAD_GEN_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/histogram.h"
#include "core/fvae_model.h"
#include "data/dataset.h"
#include "serving/embedding_service.h"
#include "serving/sharded_store.h"

namespace fvae::serving {

/// User `u`'s sparse field vector extracted from a dataset — the payload a
/// production caller would attach to a cold-user request.
core::RawUserFeatures RawFeaturesOf(const MultiFieldDataset& dataset,
                                    uint32_t user);

/// Offline-dump stand-in: encodes `users` in chunks and materializes their
/// embeddings into a fresh sharded store (Fig. 2's HDFS -> online load).
ShardedEmbeddingStore MaterializeEmbeddings(const core::FieldVae& model,
                                            const MultiFieldDataset& dataset,
                                            std::span<const uint32_t> users,
                                            size_t num_shards,
                                            size_t chunk_size = 1024);

/// Closed-loop workload shape.
struct LoadGenOptions {
  size_t num_threads = 8;
  /// Requests each thread issues (and individually waits for — closed
  /// loop: one outstanding request per thread).
  size_t requests_per_thread = 1000;
  /// Probability a request targets the hot set; the rest walk the cold ids.
  double hot_fraction = 0.8;
  /// Per-request deadline forwarded to the service (0 = none).
  uint64_t deadline_micros = 0;
  uint64_t seed = 1;
};

/// What the load generator observed from the client side.
struct LoadGenReport {
  double elapsed_seconds = 0.0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  /// Client-observed end-to-end latency (issue -> future resolved), us.
  LatencyHistogram latency_us;

  double Qps() const {
    return elapsed_seconds > 0.0 ? double(ok + errors) / elapsed_seconds
                                 : 0.0;
  }
  /// One JSON object row: qps + latency percentiles.
  std::string Json() const;
};

/// Drives `service` with num_threads closed-loop clients over `dataset`.
/// Hot requests draw uniformly from `hot_ids`; cold requests walk
/// `cold_ids` in a per-thread strided order (each cold id is first touched
/// by exactly one thread, so a pass over cold_ids measures pure fold-in).
/// Ids index `dataset`, which supplies the raw field vectors.
LoadGenReport RunClosedLoopLoad(EmbeddingService& service,
                                const MultiFieldDataset& dataset,
                                std::span<const uint32_t> hot_ids,
                                std::span<const uint32_t> cold_ids,
                                const LoadGenOptions& options);

}  // namespace fvae::serving

#endif  // FVAE_SERVING_LOAD_GEN_H_
