#ifndef FVAE_SERVING_REQUEST_BATCHER_H_
#define FVAE_SERVING_REQUEST_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/fvae_model.h"
#include "obs/trace.h"
#include "serving/fold_in.h"
#include "serving/telemetry.h"

namespace fvae::serving {

/// Micro-batching policy and capacity knobs.
struct RequestBatcherOptions {
  /// Requests coalesced into one encoder forward pass.
  size_t max_batch_size = 32;
  /// How long a batch window stays open after its first request before the
  /// (possibly partial) batch is dispatched anyway.
  uint64_t max_wait_micros = 200;
  /// Admission control: Submit() bounces with kUnavailable once this many
  /// requests are queued.
  size_t queue_capacity = 1024;
  /// Encoder worker threads. With FvaeFoldInEncoder the encoder itself
  /// serializes, so >1 only helps once the encoder is internally parallel.
  size_t num_workers = 1;
};

/// Coalesces concurrent cold-user encode requests into micro-batches.
///
/// Request threads enqueue (user id, raw field vector, deadline) and get a
/// future; worker threads drain the queue in batches of up to
/// max_batch_size, closing a batch window max_wait_micros after its first
/// request, and run one FoldInEncoder::EncodeBatch per batch. This
/// amortizes GEMM setup and the encoder's serialization across requests —
/// the difference between one matrix-matrix product per batch and one
/// matrix-vector product (plus lock handoff) per request.
///
/// Overload behaviour (documented fallback):
///  - queue full at Submit()      -> immediate kUnavailable, counted in
///    telemetry.rejected; callers fall back to a cache-only answer.
///  - deadline expired in queue   -> kDeadlineExceeded without encoding,
///    counted in telemetry.deadline_expired.
///
/// The destructor drains the queue (every accepted request gets a value or
/// an error; promises are never broken), then joins the workers.
class RequestBatcher {
 public:
  using Clock = std::chrono::steady_clock;
  using EmbeddingResult = Result<std::vector<float>>;
  /// Called by worker threads for every successfully encoded user:
  /// (user_id, embedding row, enqueue->done latency in microseconds).
  /// Used by the service to materialize embeddings into the store.
  using EncodedSink =
      std::function<void(uint64_t, std::span<const float>, double)>;

  /// `encoder` must outlive the batcher; `telemetry` may be null (counters
  /// dropped); `on_encoded` may be empty.
  RequestBatcher(FoldInEncoder* encoder, RequestBatcherOptions options,
                 ServingTelemetry* telemetry = nullptr,
                 EncodedSink on_encoded = nullptr);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Called exactly once with the request outcome (embedding or error).
  /// Runs on a batcher worker thread — or inline on the submitting thread
  /// when the request bounces at admission.
  using DoneCallback = std::function<void(EmbeddingResult)>;

  /// Enqueues one fold-in request. `features` is copied (the caller need
  /// not keep it alive). `deadline_micros` = 0 means no deadline. The
  /// returned future is always valid; overload and expiry surface as error
  /// statuses.
  std::future<EmbeddingResult> Submit(uint64_t user_id,
                                      const core::RawUserFeatures& features,
                                      uint64_t deadline_micros = 0) FVAE_HOT;

  /// Callback flavor of Submit for event-loop callers (the RPC server)
  /// that must not block a thread on a future. `done` must be non-empty.
  void SubmitAsync(uint64_t user_id, const core::RawUserFeatures& features,
                   uint64_t deadline_micros, DoneCallback done) FVAE_HOT;

  /// Current queue depth (instantaneous).
  size_t QueueDepth() const;

  const RequestBatcherOptions& options() const { return options_; }

 private:
  struct Request {
    uint64_t user_id = 0;
    core::RawUserFeatures features;
    Clock::time_point enqueue_time;
    Clock::time_point deadline;  // time_point::max() when unset
    /// Submitter's ambient trace context, captured synchronously in
    /// Submit/SubmitAsync — the hop that stitches a network request's
    /// trace across the event-loop -> batcher-worker thread boundary.
    obs::TraceContext trace_ctx;
    /// MonotonicMicros at submit: queue-wait spans need the recorder's
    /// clock, not the steady_clock the deadline math uses.
    int64_t enqueue_us = 0;
    // Exactly one delivery channel is armed: `callback` when set
    // (SubmitAsync), otherwise the promise (Submit).
    std::promise<EmbeddingResult> promise;
    DoneCallback callback;
  };

  /// Delivers the outcome through the request's armed channel.
  static void Resolve(Request& request, EmbeddingResult result);

  /// Shared enqueue path; returns false when bounced at admission (the
  /// request was already resolved with the rejection status).
  bool Enqueue(Request request) FVAE_EXCLUDES(mutex_);

  /// Per-worker reusable buffers: once warmed to the high-water batch
  /// shape, a dispatch allocates only the per-request result vectors the
  /// promise API hands out.
  struct BatchScratch {
    Matrix embeddings;
    std::vector<const core::RawUserFeatures*> users;
    std::vector<Request> live;
    /// Per-request queue-wait/encode spans staged on the hot path and
    /// flushed by WorkerLoop between dispatches. Two spans per request;
    /// beyond-capacity batches drop spans (counted), never block.
    obs::SpanScratch spans{256};
  };

  void WorkerLoop() FVAE_EXCLUDES(mutex_);
  /// Takes up to max_batch_size live requests off the queue front. Requests
  /// whose deadline passed while queued are moved to `expired` instead —
  /// they never consume a batch slot, so a burst of stale work cannot
  /// starve live requests of encoder throughput. Caller holds the queue
  /// lock and resolves `expired` after releasing it.
  std::vector<Request> TakeBatch(std::vector<Request>* expired)
      FVAE_REQUIRES(mutex_);
  void ProcessBatch(std::vector<Request> batch, BatchScratch* scratch)
      FVAE_EXCLUDES(mutex_) FVAE_HOT;

  FoldInEncoder* encoder_;
  RequestBatcherOptions options_;
  ServingTelemetry* telemetry_;
  EncodedSink on_encoded_;

  // Held only for queue handoff, never across an encode — the design the
  // micro-batcher exists for, hence exempt from the hot-path lock check.
  mutable Mutex mutex_ FVAE_HOT_LOCK_EXEMPT;
  CondVar work_available_;
  std::deque<Request> queue_ FVAE_GUARDED_BY(mutex_);
  bool shutting_down_ FVAE_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_REQUEST_BATCHER_H_
