#ifndef FVAE_SERVING_TELEMETRY_H_
#define FVAE_SERVING_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"
#include "serving/sharded_store.h"

namespace fvae::serving {

/// Counters, gauges and latency histograms of the serving stack, registered
/// in an obs::MetricsRegistry under the `serving.` prefix. One instance is
/// shared by the EmbeddingService front-end and its RequestBatcher;
/// everything is atomics / lock-free histograms, so request threads update
/// it on the hot path without contention. Accordingly the class carries no
/// capability annotations: there is no lock to hold, and all members are
/// individually thread-safe (the cross-counter invariant below is
/// eventually consistent, not a snapshot).
///
/// Pass a registry (typically obs::MetricsRegistry::Global()) to surface
/// the serving metrics in process-wide dumps next to the training, data
/// and hash-table instruments; with no registry the instance owns a
/// private one, which keeps concurrent services (and tests) isolated.
///
/// Invariant maintained by the service:
///   requests == store_hits + fold_ins + rejected + deadline_expired
///             + not_found
/// (every request terminates in exactly one of those outcomes; the stress
/// test asserts it).
class ServingTelemetry {
 private:
  // Declared before the instrument references below: members initialize in
  // declaration order, and the references bind into this registry.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;

 public:
  explicit ServingTelemetry(obs::MetricsRegistry* registry = nullptr);
  ServingTelemetry(const ServingTelemetry&) = delete;
  ServingTelemetry& operator=(const ServingTelemetry&) = delete;

  /// The registry the instruments live in (owned or injected).
  obs::MetricsRegistry& registry() { return *registry_; }
  const obs::MetricsRegistry& registry() const { return *registry_; }

  // --- request outcome counters ---
  obs::Counter& requests;
  /// Served straight from the sharded store (hot users).
  obs::Counter& store_hits;
  /// Served by running the encoder on the raw field vector (cold users).
  obs::Counter& fold_ins;
  /// Admission control: bounced because the fold-in queue was full.
  obs::Counter& rejected;
  /// Dropped in-queue because the per-request deadline expired.
  obs::Counter& deadline_expired;
  /// Subset of deadline_expired caught at the batcher's dequeue boundary:
  /// admitted under deadline, expired by the time the batch was taken.
  /// These never consume a batch slot. Not part of the outcome invariant
  /// (each is also counted in deadline_expired).
  obs::Counter& batcher_deadline_expired;
  /// No embedding and no feature vector to fold in.
  obs::Counter& not_found;

  // --- batcher accounting ---
  obs::Counter& batches;
  obs::Counter& batched_users;

  /// Sets the queue-depth gauge and folds it into the peak watermark.
  void UpdateQueueDepth(size_t depth) {
    queue_depth_.Set(double(depth));
    queue_peak_.SetMax(double(depth));
  }
  size_t queue_depth() const { return size_t(queue_depth_.Value()); }
  size_t queue_peak() const { return size_t(queue_peak_.Value()); }

  /// End-to-end latency of store-hit answers, microseconds.
  LatencyHistogram& lookup_latency_us() { return lookup_latency_us_; }
  const LatencyHistogram& lookup_latency_us() const {
    return lookup_latency_us_;
  }
  /// End-to-end latency of fold-in answers (enqueue -> embedding ready).
  LatencyHistogram& foldin_latency_us() { return foldin_latency_us_; }
  const LatencyHistogram& foldin_latency_us() const {
    return foldin_latency_us_;
  }

  /// Seconds since construction / ResetClock — the QPS denominator.
  double ElapsedSeconds() const {
    return double(MonotonicMicros() -
                  start_us_.load(std::memory_order_relaxed)) *
           1e-6;
  }
  /// Restarts the QPS clock. Safe against concurrent Qps() /
  /// ElapsedSeconds() readers: the time base is a single atomic
  /// start-timestamp.
  void ResetClock() {
    start_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  }

  double Qps() const {
    const double s = ElapsedSeconds();
    return s > 0.0 ? double(requests.Value()) / s : 0.0;
  }

  double MeanBatchSize() const {
    const uint64_t b = batches.Value();
    return b == 0 ? 0.0 : double(batched_users.Value()) / double(b);
  }

  /// Full JSON snapshot; `shards` (optional) adds per-shard hit rates.
  std::string ToJson(
      const std::vector<ShardedEmbeddingStore::ShardStats>* shards) const;

 private:
  obs::Gauge& queue_depth_;
  obs::Gauge& queue_peak_;
  LatencyHistogram& lookup_latency_us_;
  LatencyHistogram& foldin_latency_us_;
  std::atomic<int64_t> start_us_;
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_TELEMETRY_H_
