#ifndef FVAE_SERVING_TELEMETRY_H_
#define FVAE_SERVING_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/stopwatch.h"
#include "serving/sharded_store.h"

namespace fvae::serving {

/// Counters, gauges and latency histograms of the serving stack. One
/// instance is shared by the EmbeddingService front-end and its
/// RequestBatcher; everything is atomics / lock-free histograms, so request
/// threads update it on the hot path without contention. Accordingly the
/// class carries no capability annotations: there is no lock to hold, and
/// all members are individually thread-safe (the cross-counter invariant
/// below is eventually consistent, not a snapshot). The one exception is
/// ResetClock(), which restarts the non-atomic Stopwatch and must only be
/// called while no other thread reads Qps()/ElapsedSeconds().
///
/// Invariant maintained by the service:
///   requests == store_hits + fold_ins + rejected + deadline_expired
///             + not_found
/// (every request terminates in exactly one of those outcomes; the stress
/// test asserts it).
class ServingTelemetry {
 public:
  ServingTelemetry() = default;
  ServingTelemetry(const ServingTelemetry&) = delete;
  ServingTelemetry& operator=(const ServingTelemetry&) = delete;

  // --- request outcome counters ---
  std::atomic<uint64_t> requests{0};
  /// Served straight from the sharded store (hot users).
  std::atomic<uint64_t> store_hits{0};
  /// Served by running the encoder on the raw field vector (cold users).
  std::atomic<uint64_t> fold_ins{0};
  /// Admission control: bounced because the fold-in queue was full.
  std::atomic<uint64_t> rejected{0};
  /// Dropped in-queue because the per-request deadline expired.
  std::atomic<uint64_t> deadline_expired{0};
  /// No embedding and no feature vector to fold in.
  std::atomic<uint64_t> not_found{0};

  // --- batcher accounting ---
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batched_users{0};

  /// Sets the queue-depth gauge and folds it into the peak watermark.
  void UpdateQueueDepth(size_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
    size_t peak = queue_peak_.load(std::memory_order_relaxed);
    while (depth > peak && !queue_peak_.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
  }
  size_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  size_t queue_peak() const {
    return queue_peak_.load(std::memory_order_relaxed);
  }

  /// End-to-end latency of store-hit answers, microseconds.
  LatencyHistogram& lookup_latency_us() { return lookup_latency_us_; }
  const LatencyHistogram& lookup_latency_us() const {
    return lookup_latency_us_;
  }
  /// End-to-end latency of fold-in answers (enqueue -> embedding ready).
  LatencyHistogram& foldin_latency_us() { return foldin_latency_us_; }
  const LatencyHistogram& foldin_latency_us() const {
    return foldin_latency_us_;
  }

  /// Seconds since construction / ResetClock — the QPS denominator.
  double ElapsedSeconds() const { return clock_.ElapsedSeconds(); }
  void ResetClock() { clock_.Restart(); }

  double Qps() const {
    const double s = ElapsedSeconds();
    return s > 0.0 ? double(requests.load(std::memory_order_relaxed)) / s
                   : 0.0;
  }

  double MeanBatchSize() const {
    const uint64_t b = batches.load(std::memory_order_relaxed);
    return b == 0 ? 0.0
                  : double(batched_users.load(std::memory_order_relaxed)) /
                        double(b);
  }

  /// Full JSON snapshot; `shards` (optional) adds per-shard hit rates.
  std::string ToJson(
      const std::vector<ShardedEmbeddingStore::ShardStats>* shards) const;

 private:
  LatencyHistogram lookup_latency_us_;
  LatencyHistogram foldin_latency_us_;
  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> queue_peak_{0};
  Stopwatch clock_;
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_TELEMETRY_H_
