#ifndef FVAE_SERVING_EMBEDDING_SERVICE_H_
#define FVAE_SERVING_EMBEDDING_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/fvae_model.h"
#include "serving/fold_in.h"
#include "serving/request_batcher.h"
#include "serving/sharded_store.h"
#include "serving/telemetry.h"

namespace fvae::serving {

struct EmbeddingServiceOptions {
  /// Shards of the materialized-embedding store.
  size_t num_shards = 16;
  /// When false, cold users are encoded synchronously on the request
  /// thread (one encoder pass per request) — the baseline the load
  /// benchmark compares the micro-batcher against.
  bool enable_batcher = true;
  RequestBatcherOptions batcher;
  /// Deadline applied to fold-in requests that do not pass their own
  /// (microseconds; 0 = none).
  uint64_t default_deadline_micros = 0;
  /// Registry the service's telemetry registers into. Null (default) gives
  /// the service a private registry; pass &obs::MetricsRegistry::Global()
  /// to surface serving metrics in process-wide snapshots.
  obs::MetricsRegistry* metrics_registry = nullptr;
};

/// In-process front-end of the online module (Fig. 2): the look-alike
/// system's view of user embeddings under concurrent traffic.
///
/// Request path:
///   1. sharded store Get            — hot users, reader-concurrent;
///   2. on miss, fold-in encode      — micro-batched (or synchronous when
///      the batcher is disabled), result materialized into the store so
///      the user is hot from then on;
///   3. overload                     — bounded queue bounces requests with
///      kUnavailable (admission control); expired deadlines answer
///      kDeadlineExceeded. Callers degrade gracefully: a kUnavailable
///      answer means "retry later or serve the cache-only fallback".
///
/// All public methods are safe for concurrent callers. The service holds
/// no locks of its own: every member is either set in the constructor and
/// immutable afterwards (`encoder_`, `options_`, `batcher_`) or owns its
/// synchronization (`store_` is per-shard reader/writer-locked and
/// capability-annotated, `telemetry_` is lock-free atomics). Adding mutable
/// service-level state requires a `common::Mutex` with `FVAE_GUARDED_BY`
/// (docs/ARCHITECTURE.md §7).
class EmbeddingService {
 public:
  using EmbeddingResult = Result<std::vector<float>>;

  /// `store` seeds the materialized embeddings (moved in). `encoder` may be
  /// null — the service then answers store lookups only — and must outlive
  /// the service.
  EmbeddingService(ShardedEmbeddingStore store, FoldInEncoder* encoder,
                   EmbeddingServiceOptions options = {});
  ~EmbeddingService();

  EmbeddingService(const EmbeddingService&) = delete;
  EmbeddingService& operator=(const EmbeddingService&) = delete;

  /// Store-only lookup (no fold-in): kNotFound for unmaterialized users.
  EmbeddingResult Lookup(uint64_t user_id);

  /// Full serving path: store hit answers immediately (the returned future
  /// is already ready); a miss folds the raw field vector in via the
  /// batcher. `deadline_micros` overrides the configured default (0 =
  /// default).
  std::future<EmbeddingResult> LookupOrEncode(
      uint64_t user_id, const core::RawUserFeatures& features,
      uint64_t deadline_micros = 0);

  /// Callback flavor of LookupOrEncode for event-loop callers (the net
  /// RPC server) that must not park a thread on a future. `done` fires
  /// exactly once: inline on the calling thread for store hits, rejections
  /// and the synchronous-encode fallback, or on a batcher worker thread
  /// otherwise — callers needing loop affinity re-post from the callback.
  void LookupOrEncodeAsync(uint64_t user_id,
                           const core::RawUserFeatures& features,
                           uint64_t deadline_micros,
                           RequestBatcher::DoneCallback done);

  const ShardedEmbeddingStore& store() const { return store_; }
  ServingTelemetry& telemetry() { return telemetry_; }
  const ServingTelemetry& telemetry() const { return telemetry_; }

  /// Telemetry + per-shard stats as one JSON object.
  std::string TelemetryJson() const;

 private:
  static std::future<EmbeddingResult> Ready(EmbeddingResult result);

  ShardedEmbeddingStore store_;
  FoldInEncoder* encoder_;
  EmbeddingServiceOptions options_;
  ServingTelemetry telemetry_;
  std::unique_ptr<RequestBatcher> batcher_;  // null when batcher disabled
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_EMBEDDING_SERVICE_H_
