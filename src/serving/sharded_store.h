#ifndef FVAE_SERVING_SHARDED_STORE_H_
#define FVAE_SERVING_SHARDED_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serving/embedding_store.h"

namespace fvae::serving {

/// Reader-concurrent in-memory embedding store, sharded by hashed user id.
///
/// Replaces the global single-map EmbeddingStore on the serving hot path:
/// each shard owns an independent hash map guarded by a shared_mutex, so
/// concurrent Gets on different (and, via shared locking, the same) shards
/// never contend on one global lock, and a Put only stalls readers of its
/// own shard. Hit/miss counters are per-shard relaxed atomics.
///
/// The file-backed EmbeddingStore remains the offline interchange format
/// (HDFS stand-in); FromStore() is the online module's load step.
class ShardedEmbeddingStore {
 public:
  struct ShardStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;

    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };

  /// `num_shards` is clamped to at least 1.
  explicit ShardedEmbeddingStore(size_t num_shards = 16);

  ShardedEmbeddingStore(ShardedEmbeddingStore&&) = default;
  ShardedEmbeddingStore& operator=(ShardedEmbeddingStore&&) = default;

  /// Builds a sharded store holding a copy of every embedding in `store`.
  static ShardedEmbeddingStore FromStore(const EmbeddingStore& store,
                                         size_t num_shards = 16);

  /// Inserts or overwrites one embedding. All embeddings must share the
  /// dimension of the first Put. Thread-safe.
  void Put(uint64_t user_id, std::vector<float> embedding);

  /// Returns the embedding or nullopt, updating the shard's hit/miss
  /// counters. Thread-safe; takes the shard lock shared.
  std::optional<std::vector<float>> Get(uint64_t user_id) const FVAE_HOT;

  /// Membership probe without statistics side effects. Thread-safe.
  bool Contains(uint64_t user_id) const;

  /// Total entries across shards (locks each shard briefly).
  size_t size() const;

  /// Embedding dimension (0 until the first Put).
  size_t dim() const { return dim_->load(std::memory_order_acquire); }

  size_t num_shards() const { return shards_.size(); }

  /// Per-shard hit/miss/occupancy snapshot.
  std::vector<ShardStats> Stats() const;

 private:
  struct Shard {
    // Short-held reader lock per shard — sharding exists precisely so this
    // lock is cheap on the hot path, hence exempt from the hot-lock check.
    mutable SharedMutex mutex FVAE_HOT_LOCK_EXEMPT;
    std::unordered_map<uint64_t, std::vector<float>> table
        FVAE_GUARDED_BY(mutex);
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> misses{0};
  };

  size_t ShardOf(uint64_t user_id) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  // unique_ptr keeps the store movable (atomics are not).
  std::unique_ptr<std::atomic<size_t>> dim_;
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_SHARDED_STORE_H_
