#ifndef FVAE_SERVING_EMBEDDING_STORE_H_
#define FVAE_SERVING_EMBEDDING_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "math/matrix.h"

namespace fvae::serving {

/// File-backed user-embedding store — the repository's stand-in for the
/// paper's HDFS offline storage (Fig. 2). The offline module dumps inferred
/// embeddings here; the online serving proxy loads and serves them.
///
/// File format (little-endian): magic "FVEB", uint32 version, uint32 dim,
/// uint64 count, then count x (uint64 user_id, dim x float). Version 2
/// appends a CRC-32 footer over the body and Save publishes via atomic
/// rename, so the serving reload path verifies the checksum before it
/// swaps a dump in; truncated or corrupt files load as IoError. Version 1
/// files (no footer) remain loadable.
class EmbeddingStore {
 public:
  EmbeddingStore() = default;

  /// Registers / overwrites one embedding. All embeddings must share the
  /// dimension of the first Put.
  void Put(uint64_t user_id, std::vector<float> embedding);

  /// Bulk insert: row i of `embeddings` belongs to user_ids[i].
  void PutBatch(const std::vector<uint64_t>& user_ids,
                const Matrix& embeddings);

  /// Returns the embedding or nullopt.
  std::optional<std::vector<float>> Get(uint64_t user_id) const;

  /// All user ids currently in the store (unspecified order). Used to
  /// migrate an offline dump into the online ShardedEmbeddingStore.
  std::vector<uint64_t> Ids() const;

  size_t size() const { return table_.size(); }
  size_t dim() const { return dim_; }

  /// Serializes the full store to `path`.
  Status Save(const std::string& path) const;

  /// Loads a store previously written by Save.
  static Result<EmbeddingStore> Load(const std::string& path);

 private:
  size_t dim_ = 0;
  std::unordered_map<uint64_t, std::vector<float>> table_;
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_EMBEDDING_STORE_H_
