#ifndef FVAE_SERVING_FOLD_IN_H_
#define FVAE_SERVING_FOLD_IN_H_

#include <span>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/fvae_model.h"
#include "math/matrix.h"

namespace fvae::serving {

/// Batch encoder for cold users (fold-in): turns raw sparse field vectors
/// into embeddings when a user's embedding was never materialized offline.
///
/// Implementations MUST be safe for concurrent callers — the request
/// batcher may run more than one worker, and the service's synchronous
/// fallback path calls straight from request threads.
class FoldInEncoder {
 public:
  virtual ~FoldInEncoder() = default;

  /// Encodes `users` in one forward pass; returns users.size() x dim().
  virtual Matrix EncodeBatch(
      std::span<const core::RawUserFeatures* const> users) = 0;

  /// Embedding dimensionality produced by EncodeBatch.
  virtual size_t dim() const = 0;
};

/// FoldInEncoder over a frozen FieldVae.
///
/// FieldVae's forward passes reuse member scratch buffers, so encodes are
/// serialized through an internal mutex. That serialization is exactly what
/// the micro-batcher amortizes: one batched GEMM per batch instead of one
/// mutex-serialized GEMM per request.
class FvaeFoldInEncoder : public FoldInEncoder {
 public:
  /// `model` must outlive the encoder and must not be trained concurrently.
  explicit FvaeFoldInEncoder(const core::FieldVae* model) : model_(model) {}

  Matrix EncodeBatch(
      std::span<const core::RawUserFeatures* const> users) override
      FVAE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return model_->EncodeFoldIn(users);
  }

  size_t dim() const override { return model_->latent_dim(); }

 private:
  // Not FVAE_PT_GUARDED_BY(mutex_): the mutex serializes EncodeFoldIn's
  // scratch-buffer reuse only; genuinely-const reads (latent_dim) are safe
  // without it.
  const core::FieldVae* model_;
  Mutex mutex_;
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_FOLD_IN_H_
