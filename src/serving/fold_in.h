#ifndef FVAE_SERVING_FOLD_IN_H_
#define FVAE_SERVING_FOLD_IN_H_

#include <span>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/fvae_model.h"
#include "math/matrix.h"

namespace fvae::serving {

/// Batch encoder for cold users (fold-in): turns raw sparse field vectors
/// into embeddings when a user's embedding was never materialized offline.
///
/// Implementations MUST be safe for concurrent callers — the request
/// batcher may run more than one worker, and the service's synchronous
/// fallback path calls straight from request threads.
class FoldInEncoder {
 public:
  virtual ~FoldInEncoder() = default;

  /// Encodes `users` in one forward pass; returns users.size() x dim().
  virtual Matrix EncodeBatch(
      std::span<const core::RawUserFeatures* const> users) = 0;

  /// Encodes into a caller-owned matrix (users.size() x dim()), letting
  /// steady-state callers reuse `out`'s capacity across batches instead of
  /// returning a fresh Matrix per call. The default adapter just moves
  /// EncodeBatch's result; allocation-conscious implementations override.
  virtual void EncodeBatchInto(
      std::span<const core::RawUserFeatures* const> users, Matrix* out) {
    *out = EncodeBatch(users);
  }

  /// Embedding dimensionality produced by EncodeBatch.
  virtual size_t dim() const = 0;
};

/// FoldInEncoder over a frozen FieldVae.
///
/// FieldVae's forward passes reuse member scratch buffers, so encodes are
/// serialized through an internal mutex. That serialization is exactly what
/// the micro-batcher amortizes: one batched GEMM per batch instead of one
/// mutex-serialized GEMM per request. The mutex is FVAE_HOT_LOCK_EXEMPT for
/// the same reason — holding it on the hot path is the design, not a leak.
class FvaeFoldInEncoder : public FoldInEncoder {
 public:
  /// `model` must outlive the encoder and must not be trained concurrently.
  explicit FvaeFoldInEncoder(const core::FieldVae* model) : model_(model) {}

  Matrix EncodeBatch(
      std::span<const core::RawUserFeatures* const> users) override {
    Matrix out;
    EncodeBatchInto(users, &out);
    return out;
  }

  /// Zero-allocation once warm: the persistent scratch + the caller's `out`
  /// grow to the high-water batch shape and are reused ever after
  /// (FVAE_NOALLOC is checked transitively by fvae_lint and witnessed by
  /// serving_test's operator-new interposer).
  void EncodeBatchInto(std::span<const core::RawUserFeatures* const> users,
                       Matrix* out) override FVAE_EXCLUDES(mutex_)
      FVAE_HOT FVAE_NOALLOC {
    MutexLock lock(mutex_);
    model_->EncodeFoldInInto(users, &scratch_, out);
  }

  size_t dim() const override { return model_->latent_dim(); }

 private:
  // Not FVAE_PT_GUARDED_BY(mutex_): the mutex serializes EncodeFoldInInto's
  // scratch-buffer use only; genuinely-const reads (latent_dim) are safe
  // without it.
  const core::FieldVae* model_;
  Mutex mutex_ FVAE_HOT_LOCK_EXEMPT;
  core::FieldVae::FoldInScratch scratch_ FVAE_GUARDED_BY(mutex_);
};

}  // namespace fvae::serving

#endif  // FVAE_SERVING_FOLD_IN_H_
