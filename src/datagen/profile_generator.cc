#include "datagen/profile_generator.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "datagen/powerlaw.h"

namespace fvae {

namespace {

// splitmix64 finalizer used to scatter dense indices into sparse raw IDs.
uint64_t ScatterId(uint64_t field, uint64_t dense) {
  uint64_t z = (field + 1) * 0x9E3779B97F4A7C15ULL + dense;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

GeneratedProfiles GenerateProfiles(const ProfileGeneratorConfig& config) {
  FVAE_CHECK(config.num_users > 0);
  FVAE_CHECK(config.num_topics > 0);
  FVAE_CHECK(!config.fields.empty());
  FVAE_CHECK(config.topic_concentration > 0.0);
  FVAE_CHECK(config.noise_prob >= 0.0 && config.noise_prob <= 1.0);
  FVAE_CHECK(config.pair_interaction_prob >= 0.0 &&
             config.pair_interaction_prob <= 1.0);

  Rng rng(config.seed);
  const size_t num_fields = config.fields.size();
  const size_t num_topics = config.num_topics;

  GeneratedProfiles out;
  out.dominant_topic.reserve(config.num_users);
  out.topic_mixture.reserve(config.num_users);

  // Field vocabularies: dense index -> raw ID.
  out.field_vocab.resize(num_fields);
  for (size_t k = 0; k < num_fields; ++k) {
    const size_t vocab = config.fields[k].vocab_size;
    FVAE_CHECK(vocab > 0) << "empty vocabulary in field " << k;
    out.field_vocab[k].resize(vocab);
    for (size_t j = 0; j < vocab; ++j) {
      out.field_vocab[k][j] =
          config.scatter_ids ? ScatterId(k, j) : static_cast<uint64_t>(j);
    }
  }

  // One Zipf sampler per field, reused across topics: a topic t draws rank r
  // and lands on dense feature (center_t + r) mod vocab, i.e., each topic
  // prefers a Zipf-decaying window anchored at its own center. Windows of
  // adjacent topics overlap, giving realistic soft topic boundaries.
  std::vector<ZipfSampler> zipf_per_field;
  zipf_per_field.reserve(num_fields);
  for (size_t k = 0; k < num_fields; ++k) {
    zipf_per_field.emplace_back(config.fields[k].vocab_size,
                                config.fields[k].zipf_exponent);
  }

  std::vector<FieldSchema> schemas;
  schemas.reserve(num_fields);
  for (const ProfileFieldSpec& spec : config.fields) {
    schemas.push_back({spec.name, spec.is_sparse});
  }
  MultiFieldDataset::Builder builder(std::move(schemas));

  const std::vector<double> alpha(num_topics, config.topic_concentration);
  std::vector<double> topic_cdf(num_topics);
  std::vector<std::vector<FeatureEntry>> per_field(num_fields);
  std::unordered_map<uint64_t, float> merged;

  for (size_t u = 0; u < config.num_users; ++u) {
    // Latent topic mixture for this user.
    const std::vector<double> mixture = rng.Dirichlet(alpha);
    double running = 0.0;
    size_t dominant = 0;
    size_t second = 0;
    for (size_t t = 0; t < num_topics; ++t) {
      running += mixture[t];
      topic_cdf[t] = running;
      if (mixture[t] > mixture[dominant]) {
        second = dominant;
        dominant = t;
      } else if (t != dominant && mixture[t] > mixture[second]) {
        second = t;
      }
    }
    out.dominant_topic.push_back(static_cast<uint32_t>(dominant));
    std::vector<float> mixture_f(mixture.begin(), mixture.end());
    out.topic_mixture.push_back(std::move(mixture_f));

    // The user's pair-interaction anchor: a pseudo-random window center
    // determined by the (unordered) top-2 topic pair. Compositional: users
    // sharing the pair share these features across all fields.
    const uint64_t pair_lo = std::min(dominant, second);
    const uint64_t pair_hi = std::max(dominant, second);
    const uint64_t pair_key = ScatterId(pair_lo + 1, pair_hi + 1);

    for (size_t k = 0; k < num_fields; ++k) {
      const ProfileFieldSpec& spec = config.fields[k];
      const size_t vocab = spec.vocab_size;
      const uint64_t count = rng.Poisson(spec.avg_features);
      merged.clear();
      for (uint64_t draw = 0; draw < count; ++draw) {
        size_t center;
        if (rng.Bernoulli(config.pair_interaction_prob)) {
          center = static_cast<size_t>(ScatterId(k + 101, pair_key) % vocab);
        } else {
          size_t topic;
          if (rng.Bernoulli(config.noise_prob)) {
            topic = rng.UniformInt(num_topics);
          } else {
            const double coin = rng.Uniform();
            topic = static_cast<size_t>(
                std::lower_bound(topic_cdf.begin(), topic_cdf.end(), coin) -
                topic_cdf.begin());
            if (topic >= num_topics) topic = num_topics - 1;
          }
          center = topic * vocab / num_topics;
        }
        const size_t rank = zipf_per_field[k].Sample(rng);
        const size_t dense = (center + rank) % vocab;
        merged[out.field_vocab[k][dense]] += 1.0f;
      }
      per_field[k].clear();
      per_field[k].reserve(merged.size());
      for (const auto& [id, value] : merged) {
        per_field[k].push_back({id, value});
      }
    }
    builder.AddUser(per_field);
  }
  out.dataset = builder.Build();
  return out;
}

ProfileGeneratorConfig ShortContentConfig(size_t num_users, uint64_t seed) {
  ProfileGeneratorConfig config;
  config.num_users = num_users;
  config.num_topics = 16;
  config.seed = seed;
  config.fields = {
      {"ch1", /*vocab_size=*/64, /*avg_features=*/4.0,
       /*zipf_exponent=*/0.9, /*is_sparse=*/false},
      {"ch2", 512, 8.0, 1.0, false},
      {"ch3", 4096, 12.0, 1.05, false},
      {"tag", 32768, 24.0, 1.1, true},
  };
  return config;
}

ProfileGeneratorConfig KandianConfig(size_t num_users, uint64_t seed) {
  ProfileGeneratorConfig config;
  config.num_users = num_users;
  config.num_topics = 32;
  config.seed = seed;
  config.fields = {
      {"ch1", 128, 5.0, 0.9, false},
      {"ch2", 2048, 10.0, 1.0, false},
      {"ch3", 16384, 16.0, 1.05, false},
      {"tag", 131072, 40.0, 1.15, true},
  };
  return config;
}

ProfileGeneratorConfig QQBrowserConfig(size_t num_users, uint64_t seed) {
  ProfileGeneratorConfig config;
  config.num_users = num_users;
  config.num_topics = 24;
  config.seed = seed;
  config.fields = {
      {"ch1", 96, 4.0, 0.9, false},
      {"ch2", 1024, 8.0, 1.0, false},
      {"ch3", 8192, 12.0, 1.05, false},
      {"tag", 65536, 32.0, 1.1, true},
  };
  return config;
}

}  // namespace fvae
