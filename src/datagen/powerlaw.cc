#include "datagen/powerlaw.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fvae {

namespace {
std::vector<double> ZipfWeights(size_t n, double s) {
  FVAE_CHECK(n > 0) << "ZipfSampler needs n > 0";
  FVAE_CHECK(s >= 0.0) << "negative Zipf exponent";
  std::vector<double> weights(n);
  for (size_t r = 0; r < n; ++r) {
    weights[r] = 1.0 / std::pow(double(r + 1), s);
  }
  return weights;
}
}  // namespace

ZipfSampler::ZipfSampler(size_t n, double s) : alias_(ZipfWeights(n, s)) {
  std::vector<double> weights = ZipfWeights(n, s);
  double total = 0.0;
  for (double w : weights) total += w;
  probs_.resize(n);
  for (size_t r = 0; r < n; ++r) probs_[r] = weights[r] / total;
}

double ZipfSampler::Probability(size_t rank) const {
  FVAE_CHECK(rank < probs_.size());
  return probs_[rank];
}

void PopularityHistogram::Add(uint64_t feature_id) {
  ++counts_[feature_id];
  ++total_;
}

std::vector<size_t> PopularityHistogram::RankFrequency() const {
  std::vector<size_t> freqs;
  freqs.reserve(counts_.size());
  for (const auto& [id, count] : counts_) freqs.push_back(count);
  std::sort(freqs.begin(), freqs.end(), std::greater<>());
  return freqs;
}

double PopularityHistogram::LogLogSlope() const {
  const std::vector<size_t> freqs = RankFrequency();
  FVAE_CHECK(freqs.size() >= 2) << "need at least two distinct features";
  const size_t n = freqs.size();
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const double x = std::log(double(r + 1));
    const double y = std::log(double(freqs[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = double(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (double(n) * sxy - sx * sy) / denom;
}

}  // namespace fvae
