#ifndef FVAE_DATAGEN_PROFILE_GENERATOR_H_
#define FVAE_DATAGEN_PROFILE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace fvae {

/// Per-field knobs of the synthetic profile generator.
struct ProfileFieldSpec {
  std::string name;
  /// Distinct features available in the field (J_k).
  size_t vocab_size = 1000;
  /// Mean number of observed features per user (Poisson-distributed).
  double avg_features = 10.0;
  /// Popularity decay within a topic's preferred window; >= 0.
  double zipf_exponent = 1.05;
  /// Marks the field for feature sampling in the FVAE trainer.
  bool is_sparse = false;
};

/// Configuration of the topic-structured multi-field profile generator.
///
/// This is the stand-in for the paper's Tencent SC/KD/QB logs (see
/// DESIGN.md §5). A latent topic drives *all* of a user's fields, which
/// gives the inter-field correlation that makes tag prediction from
/// channel features learnable, while per-field Zipf popularity reproduces
/// the power-law sparsity the efficiency tricks rely on.
struct ProfileGeneratorConfig {
  size_t num_users = 10000;
  size_t num_topics = 16;
  std::vector<ProfileFieldSpec> fields;
  /// Dirichlet concentration of user topic mixtures; smaller = more peaked
  /// users (clearer clusters in Fig. 4).
  double topic_concentration = 0.08;
  /// Probability that an individual feature draw ignores the user's topic
  /// and samples from a random topic instead (label noise).
  double noise_prob = 0.05;
  /// Probability that a feature draw comes from the window anchored at the
  /// user's top-2 topic *pair* instead of a single topic. Pair windows are
  /// compositional structure (T*(T-1)/2 effective interest regions): real
  /// profile data has such interactions, and they are what distributed
  /// nonlinear encoders capture while purely topical models (LDA) and
  /// linear projections (PCA) underfit them.
  double pair_interaction_prob = 0.35;
  /// Scatter dense feature indices into sparse 64-bit raw IDs, exercising
  /// the dynamic hash table the way production ID spaces do.
  bool scatter_ids = true;
  uint64_t seed = 17;
};

/// Generator output: the dataset plus the latent ground truth, which the
/// evaluation harnesses use (Fig. 4 clusters; sanity checks in tests).
struct GeneratedProfiles {
  MultiFieldDataset dataset;
  /// Per user: the topic with the largest mixture weight.
  std::vector<uint32_t> dominant_topic;
  /// Per user: full mixture over topics.
  std::vector<std::vector<float>> topic_mixture;
  /// Per field: dense index -> raw 64-bit feature ID (identity when
  /// scatter_ids is false). Lets harnesses enumerate a field's vocabulary.
  std::vector<std::vector<uint64_t>> field_vocab;
};

/// Runs the generator. Deterministic given the config (including seed).
GeneratedProfiles GenerateProfiles(const ProfileGeneratorConfig& config);

/// Preset mimicking the paper's Short Content dataset (million-scale,
/// 4 fields: ch1/ch2/ch3/tag), scaled by `num_users`.
ProfileGeneratorConfig ShortContentConfig(size_t num_users, uint64_t seed);

/// Preset mimicking the Kandian dataset shape (larger vocabularies, heavier
/// tails), scaled by `num_users`.
ProfileGeneratorConfig KandianConfig(size_t num_users, uint64_t seed);

/// Preset mimicking the QQ Browser dataset shape, scaled by `num_users`.
ProfileGeneratorConfig QQBrowserConfig(size_t num_users, uint64_t seed);

}  // namespace fvae

#endif  // FVAE_DATAGEN_PROFILE_GENERATOR_H_
