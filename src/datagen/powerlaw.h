#ifndef FVAE_DATAGEN_POWERLAW_H_
#define FVAE_DATAGEN_POWERLAW_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"

namespace fvae {

/// Zipf-distributed sampler over ranks [0, n): P(rank = r) ~ 1/(r+1)^s.
///
/// User features in large platforms follow a power law (paper §IV-C2); the
/// synthetic profile generators use this sampler to reproduce that shape.
/// Implemented with an alias table, so draws are O(1).
class ZipfSampler {
 public:
  /// `n` > 0 ranks, exponent `s` >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const { return alias_.Sample(rng); }

  size_t size() const { return alias_.size(); }

  /// Probability mass at a rank (for tests and analytics).
  double Probability(size_t rank) const;

 private:
  AliasSampler alias_;
  std::vector<double> probs_;
};

/// Empirical popularity counts of feature IDs over a stream, with helpers to
/// characterize how power-law-like the distribution is.
class PopularityHistogram {
 public:
  void Add(uint64_t feature_id);

  size_t distinct_features() const { return counts_.size(); }
  size_t total_observations() const { return total_; }

  /// Counts sorted descending (the rank-frequency curve).
  std::vector<size_t> RankFrequency() const;

  /// Least-squares slope of log(frequency) vs log(rank + 1); a power law
  /// with exponent s gives approximately -s. Requires >= 2 distinct ranks.
  double LogLogSlope() const;

 private:
  std::unordered_map<uint64_t, size_t> counts_;
  size_t total_ = 0;
};

}  // namespace fvae

#endif  // FVAE_DATAGEN_POWERLAW_H_
