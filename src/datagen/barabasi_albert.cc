#include "datagen/barabasi_albert.h"

#include <unordered_map>

#include "common/check.h"

namespace fvae {

MultiFieldDataset GenerateBarabasiAlbert(const BarabasiAlbertConfig& config) {
  FVAE_CHECK(config.num_users > 0);
  FVAE_CHECK(config.features_per_user > 0);
  FVAE_CHECK(config.max_features > 0);
  FVAE_CHECK(config.new_feature_prob > 0.0 && config.new_feature_prob <= 1.0);

  Rng rng(config.seed);
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // attachment appends its feature to this list, so a uniform draw from the
  // list is a draw proportional to degree.
  std::vector<uint32_t> endpoints;
  endpoints.reserve(config.num_users * config.features_per_user);
  uint32_t next_feature = 0;

  MultiFieldDataset::Builder builder({FieldSchema{"ba", /*is_sparse=*/true}});
  std::unordered_map<uint32_t, float> user_counts;
  std::vector<std::vector<FeatureEntry>> per_field(1);

  for (size_t u = 0; u < config.num_users; ++u) {
    user_counts.clear();
    for (size_t a = 0; a < config.features_per_user; ++a) {
      uint32_t feature;
      const bool can_mint = next_feature < config.max_features;
      if (endpoints.empty() ||
          (can_mint && rng.Bernoulli(config.new_feature_prob))) {
        feature = next_feature++;
      } else {
        feature = endpoints[rng.UniformInt(endpoints.size())];
      }
      endpoints.push_back(feature);
      user_counts[feature] += 1.0f;
    }
    per_field[0].clear();
    per_field[0].reserve(user_counts.size());
    for (const auto& [id, count] : user_counts) {
      per_field[0].push_back({id, count});
    }
    builder.AddUser(per_field);
  }
  return builder.Build();
}

}  // namespace fvae
