#ifndef FVAE_DATAGEN_BARABASI_ALBERT_H_
#define FVAE_DATAGEN_BARABASI_ALBERT_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace fvae {

/// Synthetic sparse-data generator following the Barabási-Albert
/// preferential-attachment process, as used by the paper's scalability
/// study (§V-E2 / Fig. 9).
///
/// Users arrive one at a time; each user attaches to `features_per_user`
/// features. With probability `new_feature_prob` (while the vocabulary has
/// not reached `max_features`) a brand-new feature is created; otherwise an
/// existing feature is chosen proportionally to its current degree. The
/// result is a bipartite user-feature incidence whose feature popularity
/// follows a power law — the regime the batched softmax exploits.
struct BarabasiAlbertConfig {
  size_t num_users = 10000;
  /// Average number of features per user (paper fixes this to 200 while
  /// varying max_features, and vice versa).
  size_t features_per_user = 200;
  /// Hard cap on the vocabulary size J (paper fixes 1e5 while varying the
  /// average feature count).
  size_t max_features = 100000;
  /// Probability of minting a new feature on each attachment while the cap
  /// has not been reached.
  double new_feature_prob = 0.05;
  uint64_t seed = 7;
};

/// Generates a single-field dataset under the BA process. The field is
/// named "ba" and flagged sparse.
MultiFieldDataset GenerateBarabasiAlbert(const BarabasiAlbertConfig& config);

}  // namespace fvae

#endif  // FVAE_DATAGEN_BARABASI_ALBERT_H_
