#include "eval/tasks.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "eval/metrics.h"

namespace fvae::eval {

namespace {

/// Users are evaluated in chunks: one Embed/Score pass per chunk over the
/// union of the chunk's candidates, then per-user columns are extracted.
/// Keeps the candidate matrices small while amortizing the encoder cost.
constexpr size_t kChunk = 64;

struct UserCandidates {
  std::vector<uint64_t> ids;      // positives then negatives
  std::vector<uint8_t> labels;    // 1 for positives, 0 for negatives
};

/// Extracts one user's scores for their own candidates from the chunk
/// score matrix via the union-position map.
std::vector<float> GatherScores(
    const Matrix& chunk_scores, size_t row, const UserCandidates& cand,
    const std::unordered_map<uint64_t, size_t>& position) {
  std::vector<float> scores;
  scores.reserve(cand.ids.size());
  for (uint64_t id : cand.ids) {
    auto it = position.find(id);
    FVAE_CHECK(it != position.end()) << "candidate missing from union";
    scores.push_back(chunk_scores(row, it->second));
  }
  return scores;
}

}  // namespace

std::vector<uint64_t> SampleNegatives(
    const std::vector<uint64_t>& vocabulary,
    const std::vector<uint64_t>& observed, size_t count, Rng& rng) {
  std::unordered_set<uint64_t> excluded(observed.begin(), observed.end());
  std::vector<uint64_t> negatives;
  if (vocabulary.empty() || count == 0) return negatives;
  negatives.reserve(count);
  std::unordered_set<uint64_t> chosen;
  size_t attempts = 0;
  const size_t max_attempts = 50 * count + 100;
  while (negatives.size() < count && attempts++ < max_attempts) {
    const uint64_t id = vocabulary[rng.UniformInt(vocabulary.size())];
    if (excluded.count(id) || chosen.count(id)) continue;
    chosen.insert(id);
    negatives.push_back(id);
  }
  return negatives;
}

TaskMetrics RunTagPrediction(const RepresentationModel& model,
                             const MultiFieldDataset& data,
                             const std::vector<uint32_t>& test_users,
                             size_t target_field,
                             const std::vector<uint64_t>& field_vocabulary,
                             Rng& rng) {
  FVAE_CHECK(target_field < data.num_fields());
  const MultiFieldDataset masked = MaskField(data, target_field);

  std::vector<std::vector<float>> all_scores;
  std::vector<std::vector<uint8_t>> all_labels;

  for (size_t begin = 0; begin < test_users.size(); begin += kChunk) {
    const size_t end = std::min(test_users.size(), begin + kChunk);
    std::span<const uint32_t> chunk{test_users.data() + begin, end - begin};

    // Per-user candidates and the chunk union.
    std::vector<UserCandidates> candidates(chunk.size());
    std::vector<uint64_t> union_ids;
    std::unordered_map<uint64_t, size_t> position;
    for (size_t i = 0; i < chunk.size(); ++i) {
      std::vector<uint64_t> positives;
      for (const FeatureEntry& e : data.UserField(chunk[i], target_field)) {
        positives.push_back(e.id);
      }
      if (positives.empty()) continue;
      const std::vector<uint64_t> negatives = SampleNegatives(
          field_vocabulary, positives, positives.size(), rng);
      UserCandidates& cand = candidates[i];
      for (uint64_t id : positives) {
        cand.ids.push_back(id);
        cand.labels.push_back(1);
      }
      for (uint64_t id : negatives) {
        cand.ids.push_back(id);
        cand.labels.push_back(0);
      }
      for (uint64_t id : cand.ids) {
        if (position.emplace(id, union_ids.size()).second) {
          union_ids.push_back(id);
        }
      }
    }
    if (union_ids.empty()) continue;

    const Matrix scores =
        model.Score(masked, chunk, target_field, union_ids);
    for (size_t i = 0; i < chunk.size(); ++i) {
      if (candidates[i].ids.empty()) continue;
      all_scores.push_back(GatherScores(scores, i, candidates[i], position));
      all_labels.push_back(candidates[i].labels);
    }
  }

  TaskMetrics metrics;
  metrics.auc = MeanAuc(all_scores, all_labels);
  metrics.map = MeanAveragePrecision(all_scores, all_labels);
  return metrics;
}

ReconstructionMetrics RunReconstruction(
    const RepresentationModel& model, const MultiFieldDataset& full_data,
    const ReconstructionSplit& split,
    const std::vector<uint32_t>& test_users,
    const std::vector<std::vector<uint64_t>>& vocabulary_per_field,
    Rng& rng) {
  (void)full_data;
  const size_t num_fields = split.input.num_fields();
  FVAE_CHECK(vocabulary_per_field.size() == num_fields);

  std::vector<std::vector<std::vector<float>>> field_scores(num_fields);
  std::vector<std::vector<std::vector<uint8_t>>> field_labels(num_fields);
  std::vector<std::vector<float>> overall_scores;
  std::vector<std::vector<uint8_t>> overall_labels;

  for (size_t begin = 0; begin < test_users.size(); begin += kChunk) {
    const size_t end = std::min(test_users.size(), begin + kChunk);
    std::span<const uint32_t> chunk{test_users.data() + begin, end - begin};

    // Per-user overall accumulators for this chunk.
    std::vector<std::vector<float>> pooled_scores(chunk.size());
    std::vector<std::vector<uint8_t>> pooled_labels(chunk.size());

    for (size_t k = 0; k < num_fields; ++k) {
      std::vector<UserCandidates> candidates(chunk.size());
      std::vector<uint64_t> union_ids;
      std::unordered_map<uint64_t, size_t> position;
      for (size_t i = 0; i < chunk.size(); ++i) {
        const uint32_t user = chunk[i];
        const auto& held = split.held_out[user][k];
        if (held.empty()) continue;
        std::vector<uint64_t> exclude;
        for (const FeatureEntry& e : held) exclude.push_back(e.id);
        for (const FeatureEntry& e : split.input.UserField(user, k)) {
          exclude.push_back(e.id);
        }
        std::vector<uint64_t> positives;
        for (const FeatureEntry& e : held) positives.push_back(e.id);
        const std::vector<uint64_t> negatives = SampleNegatives(
            vocabulary_per_field[k], exclude, positives.size(), rng);
        UserCandidates& cand = candidates[i];
        for (uint64_t id : positives) {
          cand.ids.push_back(id);
          cand.labels.push_back(1);
        }
        for (uint64_t id : negatives) {
          cand.ids.push_back(id);
          cand.labels.push_back(0);
        }
        for (uint64_t id : cand.ids) {
          if (position.emplace(id, union_ids.size()).second) {
            union_ids.push_back(id);
          }
        }
      }
      if (union_ids.empty()) continue;

      const Matrix scores = model.Score(split.input, chunk, k, union_ids);
      for (size_t i = 0; i < chunk.size(); ++i) {
        if (candidates[i].ids.empty()) continue;
        std::vector<float> user_scores =
            GatherScores(scores, i, candidates[i], position);
        pooled_scores[i].insert(pooled_scores[i].end(), user_scores.begin(),
                                user_scores.end());
        pooled_labels[i].insert(pooled_labels[i].end(),
                                candidates[i].labels.begin(),
                                candidates[i].labels.end());
        field_scores[k].push_back(std::move(user_scores));
        field_labels[k].push_back(candidates[i].labels);
      }
    }

    for (size_t i = 0; i < chunk.size(); ++i) {
      if (pooled_scores[i].empty()) continue;
      overall_scores.push_back(std::move(pooled_scores[i]));
      overall_labels.push_back(std::move(pooled_labels[i]));
    }
  }

  ReconstructionMetrics metrics;
  metrics.per_field.resize(num_fields);
  for (size_t k = 0; k < num_fields; ++k) {
    metrics.per_field[k].auc = MeanAuc(field_scores[k], field_labels[k]);
    metrics.per_field[k].map =
        MeanAveragePrecision(field_scores[k], field_labels[k]);
  }
  metrics.overall.auc = MeanAuc(overall_scores, overall_labels);
  metrics.overall.map =
      MeanAveragePrecision(overall_scores, overall_labels);
  return metrics;
}

}  // namespace fvae::eval
