#include "eval/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace fvae::eval {

namespace {

/// Binary-searches the Gaussian bandwidth of row `i` so that the conditional
/// distribution p_{j|i} has the target perplexity, then writes p_{j|i}.
void ComputeRowAffinities(const std::vector<double>& sq_dist, size_t i,
                          double perplexity, std::vector<double>* p_row) {
  const size_t n = sq_dist.size();
  const double target_entropy = std::log(perplexity);
  double beta = 1.0;  // 1 / (2 sigma^2)
  double beta_min = 0.0, beta_max = HUGE_VAL;

  for (int iter = 0; iter < 64; ++iter) {
    double sum_p = 0.0, sum_dp = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        (*p_row)[j] = 0.0;
        continue;
      }
      const double p = std::exp(-beta * sq_dist[j]);
      (*p_row)[j] = p;
      sum_p += p;
      sum_dp += p * sq_dist[j];
    }
    if (sum_p <= 0.0) {
      // All mass collapsed; widen the kernel.
      beta_max = beta;
      beta = (beta_min + beta) / 2.0;
      continue;
    }
    // Shannon entropy of the normalized row.
    const double entropy = std::log(sum_p) + beta * sum_dp / sum_p;
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0.0) {
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : (beta + beta_max) / 2.0;
    } else {
      beta_max = beta;
      beta = (beta + beta_min) / 2.0;
    }
  }
  double sum_p = 0.0;
  for (size_t j = 0; j < n; ++j) sum_p += (*p_row)[j];
  if (sum_p > 0.0) {
    for (size_t j = 0; j < n; ++j) (*p_row)[j] /= sum_p;
  }
}

}  // namespace

Matrix Tsne(const Matrix& points, const TsneConfig& config) {
  const size_t n = points.rows();
  FVAE_CHECK(n >= 2) << "t-SNE needs at least two points";
  FVAE_CHECK(config.output_dim >= 1);
  FVAE_CHECK(config.perplexity > 1.0 && config.perplexity < double(n))
      << "perplexity out of range";

  // Pairwise squared distances in the input space.
  std::vector<std::vector<double>> sq_dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const float* a = points.Row(i);
      const float* b = points.Row(j);
      for (size_t d = 0; d < points.cols(); ++d) {
        const double diff = double(a[d]) - b[d];
        acc += diff * diff;
      }
      sq_dist[i][j] = sq_dist[j][i] = acc;
    }
  }

  // Symmetrized joint affinities P.
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  {
    std::vector<double> row(n);
    for (size_t i = 0; i < n; ++i) {
      ComputeRowAffinities(sq_dist[i], i, config.perplexity, &row);
      for (size_t j = 0; j < n; ++j) p[i][j] = row[j];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = std::max((p[i][j] + p[j][i]) / (2.0 * double(n)),
                                1e-12);
      p[i][j] = p[j][i] = v;
    }
    p[i][i] = 0.0;
  }

  // Low-dimensional map, small Gaussian init.
  Rng rng(config.seed);
  const size_t dim = config.output_dim;
  Matrix y(n, dim);
  for (size_t i = 0; i < y.size(); ++i) {
    y.data()[i] = static_cast<float>(rng.Normal(0.0, 1e-2));
  }
  Matrix velocity(n, dim);
  Matrix grad(n, dim);
  std::vector<std::vector<double>> q_num(n, std::vector<double>(n, 0.0));

  for (size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.exaggeration : 1.0;

    // Student-t numerators and normalizer.
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = double(y(i, d)) - y(j, d);
          acc += diff * diff;
        }
        const double num = 1.0 / (1.0 + acc);
        q_num[i][j] = q_num[j][i] = num;
        q_sum += 2.0 * num;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    grad.SetZero();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double q = std::max(q_num[i][j] / q_sum, 1e-12);
        const double mult =
            4.0 * (exaggeration * p[i][j] - q) * q_num[i][j];
        for (size_t d = 0; d < dim; ++d) {
          grad(i, d) += static_cast<float>(mult *
                                           (double(y(i, d)) - y(j, d)));
        }
      }
    }

    for (size_t i = 0; i < n; ++i) {
      for (size_t d = 0; d < dim; ++d) {
        velocity(i, d) = static_cast<float>(
            config.momentum * velocity(i, d) -
            config.learning_rate * grad(i, d));
        y(i, d) += velocity(i, d);
      }
    }

    // Re-center to keep the embedding bounded.
    for (size_t d = 0; d < dim; ++d) {
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += y(i, d);
      mean /= double(n);
      for (size_t i = 0; i < n; ++i) {
        y(i, d) -= static_cast<float>(mean);
      }
    }
  }
  return y;
}

}  // namespace fvae::eval
