#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/check.h"

namespace fvae::eval {

double Auc(std::span<const float> scores, std::span<const uint8_t> labels) {
  FVAE_CHECK(scores.size() == labels.size()) << "AUC size mismatch";
  const size_t n = scores.size();
  size_t num_pos = 0;
  for (uint8_t label : labels) num_pos += label != 0;
  const size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  // Midrank assignment: sort ascending by score, average ranks over ties.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  double pos_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * double(i + j) + 1.0;  // 1-based
    for (size_t t = i; t <= j; ++t) {
      if (labels[order[t]] != 0) pos_rank_sum += midrank;
    }
    i = j + 1;
  }
  const double u =
      pos_rank_sum - double(num_pos) * double(num_pos + 1) / 2.0;
  return u / (double(num_pos) * double(num_neg));
}

double AveragePrecision(std::span<const float> scores,
                        std::span<const uint8_t> labels) {
  FVAE_CHECK(scores.size() == labels.size()) << "AP size mismatch";
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return labels[a] < labels[b];  // ties: negatives first (pessimistic)
  });
  size_t hits = 0;
  double precision_sum = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    if (labels[order[rank]] != 0) {
      ++hits;
      precision_sum += double(hits) / double(rank + 1);
    }
  }
  return hits == 0 ? 0.0 : precision_sum / double(hits);
}

double MeanAveragePrecision(
    const std::vector<std::vector<float>>& scores_per_query,
    const std::vector<std::vector<uint8_t>>& labels_per_query) {
  FVAE_CHECK(scores_per_query.size() == labels_per_query.size());
  double total = 0.0;
  size_t used = 0;
  for (size_t q = 0; q < scores_per_query.size(); ++q) {
    bool has_pos = false;
    for (uint8_t label : labels_per_query[q]) has_pos |= (label != 0);
    if (!has_pos) continue;
    total += AveragePrecision(scores_per_query[q], labels_per_query[q]);
    ++used;
  }
  return used == 0 ? 0.0 : total / double(used);
}

namespace {

/// Indices sorted by (score desc, label asc) — pessimistic tie handling.
std::vector<size_t> PessimisticRanking(std::span<const float> scores,
                                       std::span<const uint8_t> labels) {
  FVAE_CHECK(scores.size() == labels.size()) << "ranking size mismatch";
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return labels[a] < labels[b];
  });
  return order;
}

}  // namespace

double RecallAtK(std::span<const float> scores,
                 std::span<const uint8_t> labels, size_t k) {
  const auto order = PessimisticRanking(scores, labels);
  size_t total_pos = 0;
  for (uint8_t label : labels) total_pos += label != 0;
  if (total_pos == 0) return 0.0;
  size_t hits = 0;
  for (size_t rank = 0; rank < std::min(k, order.size()); ++rank) {
    hits += labels[order[rank]] != 0;
  }
  return double(hits) / double(total_pos);
}

double PrecisionAtK(std::span<const float> scores,
                    std::span<const uint8_t> labels, size_t k) {
  FVAE_CHECK(k > 0);
  const auto order = PessimisticRanking(scores, labels);
  const size_t depth = std::min(k, order.size());
  if (depth == 0) return 0.0;
  size_t hits = 0;
  for (size_t rank = 0; rank < depth; ++rank) {
    hits += labels[order[rank]] != 0;
  }
  return double(hits) / double(depth);
}

double NdcgAtK(std::span<const float> scores,
               std::span<const uint8_t> labels, size_t k) {
  const auto order = PessimisticRanking(scores, labels);
  size_t total_pos = 0;
  for (uint8_t label : labels) total_pos += label != 0;
  if (total_pos == 0) return 0.0;
  const size_t depth = std::min(k, order.size());
  double dcg = 0.0;
  for (size_t rank = 0; rank < depth; ++rank) {
    if (labels[order[rank]] != 0) {
      dcg += 1.0 / std::log2(double(rank) + 2.0);
    }
  }
  double ideal = 0.0;
  for (size_t rank = 0; rank < std::min(depth, total_pos); ++rank) {
    ideal += 1.0 / std::log2(double(rank) + 2.0);
  }
  return ideal == 0.0 ? 0.0 : dcg / ideal;
}

double MeanAuc(const std::vector<std::vector<float>>& scores_per_query,
               const std::vector<std::vector<uint8_t>>& labels_per_query) {
  FVAE_CHECK(scores_per_query.size() == labels_per_query.size());
  double total = 0.0;
  size_t used = 0;
  for (size_t q = 0; q < scores_per_query.size(); ++q) {
    size_t pos = 0;
    for (uint8_t label : labels_per_query[q]) pos += label != 0;
    if (pos == 0 || pos == labels_per_query[q].size()) continue;
    total += Auc(scores_per_query[q], labels_per_query[q]);
    ++used;
  }
  return used == 0 ? 0.5 : total / double(used);
}

}  // namespace fvae::eval
