#include "eval/cluster_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"

namespace fvae::eval {

namespace {
double SquaredDist(const Matrix& points, size_t a, size_t b) {
  double acc = 0.0;
  const float* pa = points.Row(a);
  const float* pb = points.Row(b);
  for (size_t d = 0; d < points.cols(); ++d) {
    const double diff = double(pa[d]) - pb[d];
    acc += diff * diff;
  }
  return acc;
}
}  // namespace

double KnnLabelPurity(const Matrix& points,
                      const std::vector<uint32_t>& labels, size_t k) {
  const size_t n = points.rows();
  FVAE_CHECK(labels.size() == n) << "label count mismatch";
  FVAE_CHECK(n >= 2 && k >= 1);
  k = std::min(k, n - 1);

  double total_purity = 0.0;
  std::vector<std::pair<double, size_t>> dist(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dist[j] = {j == i ? std::numeric_limits<double>::infinity()
                        : SquaredDist(points, i, j),
                 j};
    }
    std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
    size_t same = 0;
    for (size_t t = 0; t < k; ++t) {
      if (labels[dist[t].second] == labels[i]) ++same;
    }
    total_purity += double(same) / double(k);
  }
  return total_purity / double(n);
}

double SilhouetteScore(const Matrix& points,
                       const std::vector<uint32_t>& labels) {
  const size_t n = points.rows();
  FVAE_CHECK(labels.size() == n) << "label count mismatch";
  std::unordered_map<uint32_t, size_t> cluster_size;
  for (uint32_t label : labels) ++cluster_size[label];
  FVAE_CHECK(cluster_size.size() >= 2) << "need at least two clusters";

  double total = 0.0;
  std::unordered_map<uint32_t, double> sum_dist;
  for (size_t i = 0; i < n; ++i) {
    sum_dist.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum_dist[labels[j]] += std::sqrt(SquaredDist(points, i, j));
    }
    const size_t own_size = cluster_size[labels[i]];
    if (own_size <= 1) continue;  // singleton clusters contribute 0
    const double a = sum_dist[labels[i]] / double(own_size - 1);
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [label, total_d] : sum_dist) {
      if (label == labels[i]) continue;
      b = std::min(b, total_d / double(cluster_size[label]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / double(n);
}

}  // namespace fvae::eval
