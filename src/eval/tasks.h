#ifndef FVAE_EVAL_TASKS_H_
#define FVAE_EVAL_TASKS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "data/split.h"
#include "eval/representation_model.h"

namespace fvae::eval {

/// AUC and mAP of one evaluation run.
struct TaskMetrics {
  double auc = 0.0;
  double map = 0.0;
};

/// Metrics of the reconstruction task (Table II): one entry per field plus
/// the cross-field "overall" pooling.
struct ReconstructionMetrics {
  TaskMetrics overall;
  std::vector<TaskMetrics> per_field;
};

/// Tag-prediction task (paper §V-B2, Tables III/IV).
///
/// For each user in `test_users`: the field `target_field` is masked from
/// the model's input (fold-in); the user's observed features of that field
/// are positives; an equal number of unobserved features drawn uniformly
/// from `field_vocabulary` are negatives. Per-user AUC/AP over the
/// positives+negatives, averaged over users with at least one positive.
TaskMetrics RunTagPrediction(const RepresentationModel& model,
                             const MultiFieldDataset& data,
                             const std::vector<uint32_t>& test_users,
                             size_t target_field,
                             const std::vector<uint64_t>& field_vocabulary,
                             Rng& rng);

/// Reconstruction task (paper §V-B1, Table II).
///
/// `split` comes from HoldOutWithinUsers: the model embeds users from the
/// reduced input and must rank each user's held-out entries above sampled
/// unobserved negatives, per field. The "overall" metric pools candidates
/// of all fields into a single per-user ranking — which is only fair to
/// models whose scores are globally comparable (the paper's explanation of
/// why Mult-VAE edges FVAE there).
ReconstructionMetrics RunReconstruction(
    const RepresentationModel& model, const MultiFieldDataset& full_data,
    const ReconstructionSplit& split,
    const std::vector<uint32_t>& test_users,
    const std::vector<std::vector<uint64_t>>& vocabulary_per_field, Rng& rng);

/// Draws `count` IDs uniformly from `vocabulary` that are not in
/// `observed` (sorted or not). May return fewer when the vocabulary is
/// nearly exhausted.
std::vector<uint64_t> SampleNegatives(
    const std::vector<uint64_t>& vocabulary,
    const std::vector<uint64_t>& observed, size_t count, Rng& rng);

}  // namespace fvae::eval

#endif  // FVAE_EVAL_TASKS_H_
