#ifndef FVAE_EVAL_METRICS_H_
#define FVAE_EVAL_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace fvae::eval {

/// Area under the ROC curve for binary labels, computed by the rank-sum
/// (Mann-Whitney U) formulation with midrank tie handling. Returns 0.5 when
/// either class is empty.
double Auc(std::span<const float> scores, std::span<const uint8_t> labels);

/// Average precision: mean of precision@rank over positive positions, with
/// ties broken pessimistically by sorting on (score desc, label asc).
/// Returns 0 when there are no positives.
double AveragePrecision(std::span<const float> scores,
                        std::span<const uint8_t> labels);

/// Per-query mean of AveragePrecision; queries with no positives are
/// skipped. This is the paper's mAP.
double MeanAveragePrecision(
    const std::vector<std::vector<float>>& scores_per_query,
    const std::vector<std::vector<uint8_t>>& labels_per_query);

/// Per-query mean of AUC; queries with a single class are skipped.
double MeanAuc(const std::vector<std::vector<float>>& scores_per_query,
               const std::vector<std::vector<uint8_t>>& labels_per_query);

/// Ranking metrics used by the look-alike / matching-stage evaluation.

/// Fraction of positives retrieved within the top k by score (ties broken
/// pessimistically). Returns 0 when there are no positives.
double RecallAtK(std::span<const float> scores,
                 std::span<const uint8_t> labels, size_t k);

/// Fraction of the top-k that is positive.
double PrecisionAtK(std::span<const float> scores,
                    std::span<const uint8_t> labels, size_t k);

/// Binary NDCG@k with log2 discounting, normalized by the ideal DCG.
/// Returns 0 when there are no positives.
double NdcgAtK(std::span<const float> scores,
               std::span<const uint8_t> labels, size_t k);

}  // namespace fvae::eval

#endif  // FVAE_EVAL_METRICS_H_
