#ifndef FVAE_EVAL_CLUSTER_METRICS_H_
#define FVAE_EVAL_CLUSTER_METRICS_H_

#include <cstdint>
#include <vector>

#include "math/matrix.h"

namespace fvae::eval {

/// Quantitative companions to the Fig. 4 visualization: how well do
/// ground-truth topic labels cluster in an embedding space?

/// Fraction of each point's k nearest neighbors (Euclidean) sharing its
/// label, averaged over points. 1.0 = perfectly separated clusters;
/// ~(class prior) = random.
double KnnLabelPurity(const Matrix& points,
                      const std::vector<uint32_t>& labels, size_t k);

/// Mean silhouette coefficient over all points (O(n^2)). Requires at least
/// two distinct labels; points in singleton clusters contribute 0.
double SilhouetteScore(const Matrix& points,
                       const std::vector<uint32_t>& labels);

}  // namespace fvae::eval

#endif  // FVAE_EVAL_CLUSTER_METRICS_H_
