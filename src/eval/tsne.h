#ifndef FVAE_EVAL_TSNE_H_
#define FVAE_EVAL_TSNE_H_

#include <cstdint>

#include "math/matrix.h"

namespace fvae::eval {

/// Exact t-SNE (van der Maaten & Hinton 2008) hyper-parameters.
struct TsneConfig {
  size_t output_dim = 2;
  double perplexity = 30.0;
  size_t iterations = 500;
  /// Early exaggeration factor applied for the first `exaggeration_iters`.
  double exaggeration = 12.0;
  size_t exaggeration_iters = 100;
  double learning_rate = 200.0;
  double momentum = 0.8;
  uint64_t seed = 42;
};

/// Embeds the rows of `points` (n x d) into `config.output_dim` dimensions
/// with exact O(n^2) t-SNE. Suitable for the Fig. 4 visualization study
/// (thousands of points). Deterministic given the config seed.
Matrix Tsne(const Matrix& points, const TsneConfig& config);

}  // namespace fvae::eval

#endif  // FVAE_EVAL_TSNE_H_
