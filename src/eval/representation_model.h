#ifndef FVAE_EVAL_REPRESENTATION_MODEL_H_
#define FVAE_EVAL_REPRESENTATION_MODEL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "math/matrix.h"

namespace fvae::eval {

/// Common interface of every user-representation learner in the repository
/// (the FVAE and all Table II/III baselines). The evaluation tasks, the
/// look-alike system, and the benchmark harnesses are written against this
/// interface only.
class RepresentationModel {
 public:
  virtual ~RepresentationModel() = default;

  /// Display name used in benchmark tables ("FVAE", "Mult-VAE", ...).
  virtual std::string Name() const = 0;

  /// Learns the representation from `train` (unsupervised).
  virtual void Fit(const MultiFieldDataset& train) = 0;

  /// Low-dimensional embeddings (one row per entry of `users`). `data` may
  /// be the training set or a fold-in view with fields masked.
  virtual Matrix Embed(const MultiFieldDataset& data,
                       std::span<const uint32_t> users) const = 0;

  /// Relevance scores of `candidates` in `field` for each user (rows follow
  /// `users`, columns follow `candidates`). Higher = more relevant. Scores
  /// of different fields need not share a scale (the paper's point about
  /// FVAE's per-field multinomials); scores within one call must be
  /// rank-comparable.
  virtual Matrix Score(const MultiFieldDataset& input,
                       std::span<const uint32_t> users, size_t field,
                       std::span<const uint64_t> candidates) const = 0;
};

}  // namespace fvae::eval

#endif  // FVAE_EVAL_REPRESENTATION_MODEL_H_
