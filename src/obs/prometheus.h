#ifndef FVAE_OBS_PROMETHEUS_H_
#define FVAE_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "obs/metrics_registry.h"

namespace fvae::obs {

/// `name` mangled into the Prometheus grammar: dots become underscores and
/// the exposition prefix "fvae_" is prepended ("net.server.frames_rx" ->
/// "fvae_net_server_frames_rx"). Metric names already satisfy
/// IsValidMetricName, whose alphabet is a subset of Prometheus's, so the
/// mangling is a pure substitution — no escaping needed.
std::string PrometheusName(std::string_view name);

/// Renders the registry as Prometheus text exposition format (version
/// 0.0.4): one `# TYPE` line per metric, counters suffixed `_total`,
/// gauges as-is, histograms as cumulative `_bucket{le="..."}` series plus
/// `_sum` and `_count`. The result is a complete scrape body — the
/// Introspect verb serves it verbatim.
std::string PrometheusText(const MetricsRegistry& registry);

}  // namespace fvae::obs

#endif  // FVAE_OBS_PROMETHEUS_H_
