#ifndef FVAE_OBS_METRICS_REGISTRY_H_
#define FVAE_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/exemplars.h"

namespace fvae::obs {

/// True iff `name` is a snake_case dotted path: two or more '.'-separated
/// segments, each matching [a-z][a-z0-9_]* ("training.epoch_loss").
/// Registration FVAE_CHECKs this, and fvae_lint's `metric-name` rule
/// enforces it statically on string literals — keep the two in sync.
bool IsValidMetricName(std::string_view name);

/// Monotonically increasing event count. Updates are wait-free (one relaxed
/// atomic add), so hot paths stamp counters without contention.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, load factor, last epoch
/// loss). Doubles cover both integral and fractional instruments; updates
/// are lock-free.
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Folds `v` into a high-watermark: the gauge only ever rises.
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<double> value_{0.0};
};

/// Read-side callback interface over a registry's instruments, invoked in
/// name order under the registration lock — keep the callbacks cheap and
/// lock-free (they feed exporters like obs::PrometheusText).
class MetricVisitor {
 public:
  virtual ~MetricVisitor() = default;
  virtual void OnCounter(const std::string& name, uint64_t value) = 0;
  virtual void OnGauge(const std::string& name, double value) = 0;
  virtual void OnHistogram(const std::string& name,
                           const LatencyHistogram& histogram) = 0;
};

/// Process-wide registry of named counters, gauges and histograms.
///
/// Registration (`Counter()`/`Gauge()`/`Histo()`) takes `mutex_` once to
/// create or look up the instrument; callers cache the returned reference
/// (instruments are never destroyed before the registry), so steady-state
/// updates never touch the lock — they are plain relaxed atomics on the
/// instrument itself. Snapshots lock only to walk the name table; the
/// values they read are the same relaxed atomics, i.e. eventually
/// consistent, not a cross-metric atomic cut.
///
/// `Global()` is the process-wide instance every instrumented module
/// (trainer, data pipeline, hash table, serving) registers into; separate
/// instances keep tests and embedded services isolated.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it on first use.
  /// `name` must satisfy IsValidMetricName and not already name an
  /// instrument of a different type (FVAE_CHECK on both).
  fvae::obs::Counter& Counter(std::string_view name);

  /// As Counter(), for gauges.
  fvae::obs::Gauge& Gauge(std::string_view name);

  /// As Counter(), for histograms. The bucket parameters apply on first
  /// creation only (see LatencyHistogram).
  LatencyHistogram& Histo(std::string_view name, double min_value = 1.0,
                          double growth = 1.3, size_t num_buckets = 64);

  /// Exemplar store attached to the histogram registered under `name`
  /// (created on first use; `name` follows the metric-name grammar).
  /// Callers cache the reference like any instrument: the store outlives
  /// every caller and its Offer path is lock-free in the common case.
  ExemplarStore& Exemplars(std::string_view name, size_t capacity = 4);

  /// All exemplar stores as one JSON object: {"<name>":[...],...}.
  std::string ExemplarsJson() const;

  /// Walks every instrument in name order. See MetricVisitor.
  void Visit(MetricVisitor& visitor) const;

  /// Number of registered instruments.
  size_t MetricCount() const;

  /// Human-readable snapshot, one instrument per line, sorted by name.
  std::string TextSnapshot() const;

  /// Machine-readable snapshot: one JSON object per line, sorted by name.
  ///   {"name":"data.batches","type":"counter","value":352}
  ///   {"name":"serving.queue_depth","type":"gauge","value":3}
  ///   {"name":"training.step_us","type":"histogram","count":64,
  ///    "mean":812.0,"p50":790.1,"p95":1180.4,"p99":1423.9}
  std::string JsonlSnapshot() const;

  /// Writes JsonlSnapshot() to `path` (append mode adds a snapshot block —
  /// the PeriodicDumper's time-series format).
  Status WriteJsonlSnapshot(const std::string& path, bool append) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    // Exactly one of these is set, per `kind`. unique_ptr keeps the
    // instrument address stable across map rebalancing.
    std::unique_ptr<fvae::obs::Counter> counter;
    std::unique_ptr<fvae::obs::Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& Register(std::string_view name, Kind kind)
      FVAE_REQUIRES(mutex_);

  // Registration happens at startup; the only steady-state acquisitions
  // are snapshot/exposition reads (Introspect on the server event loop):
  // bounded map walks and string formatting, no IO, no nested locks
  // beyond ExemplarStore's own exempt mutex — hence loop-exempt.
  mutable Mutex mutex_ FVAE_LOOP_LOCK_EXEMPT;
  std::map<std::string, Entry, std::less<>> metrics_ FVAE_GUARDED_BY(mutex_);
  /// Exemplar stores keyed by histogram name. unique_ptr keeps addresses
  /// stable so cached references survive map rebalancing.
  std::map<std::string, std::unique_ptr<ExemplarStore>, std::less<>>
      exemplars_ FVAE_GUARDED_BY(mutex_);
};

}  // namespace fvae::obs

#endif  // FVAE_OBS_METRICS_REGISTRY_H_
