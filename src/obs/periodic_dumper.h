#ifndef FVAE_OBS_PERIODIC_DUMPER_H_
#define FVAE_OBS_PERIODIC_DUMPER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics_registry.h"

namespace fvae::obs {

struct PeriodicDumperOptions {
  /// Wall-clock interval between snapshots.
  double interval_seconds = 10.0;
  /// With no custom sink, JSONL snapshots append here (one block per
  /// dump — a coarse time series of the whole registry).
  std::string path;
};

/// Background thread that snapshots a MetricsRegistry on a fixed interval.
///
/// Each tick renders MetricsRegistry::JsonlSnapshot() and hands it to the
/// sink (or appends it to `options.path`). Stop() wakes the thread, joins
/// it, and emits one final snapshot so the output always ends with the
/// end-of-run state; the destructor calls Stop(). Start()/Stop() are meant
/// for a single controlling thread (the worker itself is properly
/// synchronized via the guarded stop flag).
class PeriodicDumper {
 public:
  using Sink = std::function<void(const std::string& jsonl_snapshot)>;

  /// `registry` must outlive the dumper. `sink` may be empty — snapshots
  /// then go to `options.path` (and nowhere when that is empty too).
  PeriodicDumper(MetricsRegistry* registry, PeriodicDumperOptions options,
                 Sink sink = {});
  ~PeriodicDumper();

  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  /// Launches the background thread. No-op when already running.
  void Start();

  /// Signals the thread, joins it, and emits a final snapshot. Idempotent.
  void Stop();

  bool running() const { return thread_.joinable(); }

  /// Snapshots emitted so far (including the final one from Stop()).
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void EmitOnce();

  MetricsRegistry* registry_;
  PeriodicDumperOptions options_;
  Sink sink_;

  std::atomic<uint64_t> dumps_{0};
  Mutex mutex_;
  CondVar cv_;
  bool stop_requested_ FVAE_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace fvae::obs

#endif  // FVAE_OBS_PERIODIC_DUMPER_H_
