#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "common/atomic_file.h"

namespace fvae::obs {
namespace {

/// splitmix64 finalizer: turns a sequential counter into well-spread ids.
uint64_t Mix64(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

/// Per-process id sequence. Seeded once from the monotonic clock and pid so
/// two processes minting concurrently (client + server in the loopback
/// smoke test) do not collide; sequential after that, mixed at use.
std::atomic<uint64_t>& IdSequence() {
  static std::atomic<uint64_t>* sequence = new std::atomic<uint64_t>(
      (static_cast<uint64_t>(::getpid()) << 32) ^
      static_cast<uint64_t>(MonotonicMicros()));
  return *sequence;
}

thread_local TraceContext tls_trace_context;

}  // namespace

uint64_t MintSpanId() {
  uint64_t id = 0;
  while (id == 0) {
    id = Mix64(IdSequence().fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

TraceContext MintTraceContext() {
  return TraceContext{MintSpanId(), MintSpanId()};
}

TraceContext CurrentTraceContext() { return tls_trace_context; }

void SetCurrentTraceContext(const TraceContext& context) {
  tls_trace_context = context;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

uint64_t TraceRecorder::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  // One-entry cache: a thread overwhelmingly records into one recorder
  // (the global one), so the registration lock is paid once per thread.
  // Keyed on the recorder's unique id, not its address — addresses get
  // reused after a recorder dies, and the stale buffer pointer with them.
  struct Cache {
    uint64_t recorder_id = 0;  // ids start at 1: never a false hit
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.recorder_id == id_) return *cache.buffer;

  MutexLock lock(mutex_);
  const std::thread::id me = std::this_thread::get_id();
  for (const auto& buffer : buffers_) {
    if (buffer->owner == me) {
      cache = {id_, buffer.get()};
      return *cache.buffer;
    }
  }
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      static_cast<uint32_t>(buffers_.size()), me));
  cache = {id_, buffers_.back().get()};
  return *cache.buffer;
}

void TraceRecorder::RecordSpan(const char* name, int64_t start_us,
                               int64_t duration_us) {
  RecordSpan(name, start_us, duration_us, TraceContext{}, 0);
}

void TraceRecorder::RecordSpan(const char* name, int64_t start_us,
                               int64_t duration_us,
                               const TraceContext& context,
                               uint64_t parent_span_id) {
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  MutexLock lock(buffer.mutex);
  if (buffer.events.size() < kMaxEventsPerThread) {
    buffer.events.push_back({name, start_us, duration_us, buffer.tid,
                             context.trace_id, context.span_id,
                             parent_span_id});
  } else {
    ++buffer.dropped;
  }
  auto it = buffer.profile.find(name);
  if (it == buffer.profile.end()) {
    it = buffer.profile.try_emplace(name).first;
  }
  it->second.Record(double(duration_us));
}

void SpanScratch::Flush(TraceRecorder* recorder) {
  if (recorder == nullptr) recorder = &TraceRecorder::Global();
  for (const TraceEvent& span : spans_) {
    recorder->RecordSpan(span.name, span.start_us, span.duration_us,
                         TraceContext{span.trace_id, span.span_id},
                         span.parent_span_id);
  }
  spans_.clear();
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(mutex_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  return events;
}

std::string TraceRecorder::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[384];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"fvae\",\"ph\":\"X\","
                  "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%u",
                  i == 0 ? "" : ",", e.name,
                  static_cast<long long>(e.start_us),
                  static_cast<long long>(e.duration_us), e.tid);
    out += buf;
    if (e.trace_id != 0) {
      // Hex strings, not numbers: 64-bit ids do not survive a JSON
      // consumer's double conversion.
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"trace_id\":\"%016llx\","
                    "\"span_id\":\"%016llx\","
                    "\"parent_span_id\":\"%016llx\"}",
                    static_cast<unsigned long long>(e.trace_id),
                    static_cast<unsigned long long>(e.span_id),
                    static_cast<unsigned long long>(e.parent_span_id));
      out += buf;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  AtomicFileWriter writer;
  FVAE_RETURN_IF_ERROR(writer.Open(path, "obs.trace_export"));
  writer.stream() << ChromeTraceJson();
  return writer.Commit();
}

std::vector<SpanProfile> TraceRecorder::Profile() const {
  // Merge the per-thread duration histograms name by name; all of them use
  // the default bucket geometry, which Histogram::Merge requires.
  std::map<std::string, LatencyHistogram> merged;
  {
    MutexLock lock(mutex_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mutex);
      for (const auto& [name, histogram] : buffer->profile) {
        auto it = merged.find(name);
        if (it == merged.end()) it = merged.try_emplace(name).first;
        it->second.Merge(histogram);
      }
    }
  }
  std::vector<SpanProfile> profiles;
  profiles.reserve(merged.size());
  for (const auto& [name, histogram] : merged) {
    SpanProfile p;
    p.name = name;
    p.count = histogram.Count();
    p.total_us = histogram.Sum();
    p.p50_us = histogram.Percentile(50.0);
    p.p99_us = histogram.Percentile(99.0);
    profiles.push_back(std::move(p));
  }
  std::sort(profiles.begin(), profiles.end(),
            [](const SpanProfile& a, const SpanProfile& b) {
              return a.total_us > b.total_us;
            });
  return profiles;
}

std::string TraceRecorder::ProfileText() const {
  const std::vector<SpanProfile> profiles = Profile();
  if (profiles.empty()) return "";
  std::string out =
      "span                                  count     total_ms    p50_us"
      "    p99_us\n";
  char buf[192];
  for (const SpanProfile& p : profiles) {
    std::snprintf(buf, sizeof(buf), "%-36s %6llu %12.1f %9.1f %9.1f\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.count),
                  p.total_us / 1e3, p.p50_us, p.p99_us);
    out += buf;
  }
  return out;
}

uint64_t TraceRecorder::EventCount() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

uint64_t TraceRecorder::DroppedCount() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void TraceRecorder::Reset() {
  MutexLock lock(mutex_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
    buffer->profile.clear();
  }
}

}  // namespace fvae::obs
