#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/atomic_file.h"

namespace fvae::obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

uint64_t TraceRecorder::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  // One-entry cache: a thread overwhelmingly records into one recorder
  // (the global one), so the registration lock is paid once per thread.
  // Keyed on the recorder's unique id, not its address — addresses get
  // reused after a recorder dies, and the stale buffer pointer with them.
  struct Cache {
    uint64_t recorder_id = 0;  // ids start at 1: never a false hit
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.recorder_id == id_) return *cache.buffer;

  MutexLock lock(mutex_);
  const std::thread::id me = std::this_thread::get_id();
  for (const auto& buffer : buffers_) {
    if (buffer->owner == me) {
      cache = {id_, buffer.get()};
      return *cache.buffer;
    }
  }
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      static_cast<uint32_t>(buffers_.size()), me));
  cache = {id_, buffers_.back().get()};
  return *cache.buffer;
}

void TraceRecorder::RecordSpan(const char* name, int64_t start_us,
                               int64_t duration_us) {
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  MutexLock lock(buffer.mutex);
  if (buffer.events.size() < kMaxEventsPerThread) {
    buffer.events.push_back({name, start_us, duration_us, buffer.tid});
  } else {
    ++buffer.dropped;
  }
  auto it = buffer.profile.find(name);
  if (it == buffer.profile.end()) {
    it = buffer.profile.try_emplace(name).first;
  }
  it->second.Record(double(duration_us));
}

std::string TraceRecorder::ChromeTraceJson() const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(mutex_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"fvae\",\"ph\":\"X\","
                  "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%u}",
                  i == 0 ? "" : ",", e.name,
                  static_cast<long long>(e.start_us),
                  static_cast<long long>(e.duration_us), e.tid);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  AtomicFileWriter writer;
  FVAE_RETURN_IF_ERROR(writer.Open(path, "obs.trace_export"));
  writer.stream() << ChromeTraceJson();
  return writer.Commit();
}

std::vector<SpanProfile> TraceRecorder::Profile() const {
  // Merge the per-thread duration histograms name by name; all of them use
  // the default bucket geometry, which Histogram::Merge requires.
  std::map<std::string, LatencyHistogram> merged;
  {
    MutexLock lock(mutex_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mutex);
      for (const auto& [name, histogram] : buffer->profile) {
        auto it = merged.find(name);
        if (it == merged.end()) it = merged.try_emplace(name).first;
        it->second.Merge(histogram);
      }
    }
  }
  std::vector<SpanProfile> profiles;
  profiles.reserve(merged.size());
  for (const auto& [name, histogram] : merged) {
    SpanProfile p;
    p.name = name;
    p.count = histogram.Count();
    p.total_us = histogram.Sum();
    p.p50_us = histogram.Percentile(50.0);
    p.p99_us = histogram.Percentile(99.0);
    profiles.push_back(std::move(p));
  }
  std::sort(profiles.begin(), profiles.end(),
            [](const SpanProfile& a, const SpanProfile& b) {
              return a.total_us > b.total_us;
            });
  return profiles;
}

std::string TraceRecorder::ProfileText() const {
  const std::vector<SpanProfile> profiles = Profile();
  if (profiles.empty()) return "";
  std::string out =
      "span                                  count     total_ms    p50_us"
      "    p99_us\n";
  char buf[192];
  for (const SpanProfile& p : profiles) {
    std::snprintf(buf, sizeof(buf), "%-36s %6llu %12.1f %9.1f %9.1f\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.count),
                  p.total_us / 1e3, p.p50_us, p.p99_us);
    out += buf;
  }
  return out;
}

uint64_t TraceRecorder::EventCount() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

uint64_t TraceRecorder::DroppedCount() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void TraceRecorder::Reset() {
  MutexLock lock(mutex_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
    buffer->profile.clear();
  }
}

}  // namespace fvae::obs
