#include "obs/prometheus.h"

#include "common/string_util.h"

namespace fvae::obs {
namespace {

class PrometheusVisitor : public MetricVisitor {
 public:
  std::string out;

  void OnCounter(const std::string& name, uint64_t value) override {
    const std::string prom = PrometheusName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    out += StrFormat("%s %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(value));
  }

  void OnGauge(const std::string& name, double value) override {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += StrFormat("%s %.6g\n", prom.c_str(), value);
  }

  void OnHistogram(const std::string& name,
                   const LatencyHistogram& histogram) override {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative buckets: each `le` series counts every observation at or
    // below its edge; the final +Inf series equals the total count. The
    // relaxed per-bucket reads make the cut eventually consistent, same as
    // every other snapshot in the registry.
    uint64_t cumulative = 0;
    const size_t buckets = histogram.num_buckets();
    for (size_t i = 0; i + 1 < buckets; ++i) {
      cumulative += histogram.BucketCount(i);
      out += StrFormat("%s_bucket{le=\"%.6g\"} %llu\n", prom.c_str(),
                       histogram.BucketUpperEdge(i),
                       static_cast<unsigned long long>(cumulative));
    }
    cumulative += histogram.BucketCount(buckets - 1);
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(cumulative));
    out += StrFormat("%s_sum %.6g\n", prom.c_str(), histogram.Sum());
    out += StrFormat("%s_count %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(cumulative));
  }
};

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "fvae_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    out += (c == '.') ? '_' : c;
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  PrometheusVisitor visitor;
  registry.Visit(visitor);
  return visitor.out;
}

}  // namespace fvae::obs
