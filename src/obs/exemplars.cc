#include "obs/exemplars.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace fvae::obs {

ExemplarStore::ExemplarStore(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  // Reserved up front: Offer never grows the vector under the lock.
  // (Constructor-time allocation; the hot path is Offer's fast reject.)
}

void ExemplarStore::Offer(double value, uint64_t trace_id) {
  if (trace_id == 0) return;
  if (value <= floor_.load(std::memory_order_relaxed)) return;
  MutexLock lock(mutex_);
  if (exemplars_.size() >= capacity_ && value <= exemplars_.back().value) {
    return;  // floor was stale; a better candidate already landed
  }
  Exemplar exemplar{value, trace_id, MonotonicMicros()};
  // Keep sorted descending by value; insert and trim.
  auto it = std::upper_bound(
      exemplars_.begin(), exemplars_.end(), exemplar,
      [](const Exemplar& a, const Exemplar& b) { return a.value > b.value; });
  exemplars_.insert(it, exemplar);
  if (exemplars_.size() > capacity_) exemplars_.pop_back();
  if (exemplars_.size() >= capacity_) {
    floor_.store(exemplars_.back().value, std::memory_order_relaxed);
  }
}

std::vector<ExemplarStore::Exemplar> ExemplarStore::Snapshot() const {
  MutexLock lock(mutex_);
  return exemplars_;
}

std::string ExemplarStore::ToJson() const {
  const std::vector<Exemplar> exemplars = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < exemplars.size(); ++i) {
    const Exemplar& e = exemplars[i];
    out += StrFormat(
        "%s{\"value\":%.1f,\"trace_id\":\"%016llx\",\"ts_us\":%lld}",
        i == 0 ? "" : ",", e.value,
        static_cast<unsigned long long>(e.trace_id),
        static_cast<long long>(e.ts_us));
  }
  out += "]";
  return out;
}

}  // namespace fvae::obs
