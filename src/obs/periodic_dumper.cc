#include "obs/periodic_dumper.h"

#include <chrono>

#include "common/logging.h"

namespace fvae::obs {

PeriodicDumper::PeriodicDumper(MetricsRegistry* registry,
                               PeriodicDumperOptions options, Sink sink)
    : registry_(registry), options_(std::move(options)),
      sink_(std::move(sink)) {}

PeriodicDumper::~PeriodicDumper() { Stop(); }

void PeriodicDumper::Start() {
  if (thread_.joinable()) return;
  {
    MutexLock lock(mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&PeriodicDumper::Loop, this);
}

void PeriodicDumper::Stop() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(mutex_);
    stop_requested_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  thread_ = std::thread();
  EmitOnce();  // final snapshot: the output ends with the end-of-run state
}

void PeriodicDumper::Loop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.interval_seconds));
  for (;;) {
    {
      MutexLock lock(mutex_);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!stop_requested_ &&
             std::chrono::steady_clock::now() < deadline) {
        // Timed-out and notified wakes both re-check the predicate, so the
        // returned reason is irrelevant.
        (void)cv_.WaitUntil(mutex_, deadline);
      }
      if (stop_requested_) return;
    }
    EmitOnce();  // outside the lock: snapshot IO never blocks Stop()
  }
}

void PeriodicDumper::EmitOnce() {
  if (sink_) {
    sink_(registry_->JsonlSnapshot());
  } else if (!options_.path.empty()) {
    const Status status = registry_->WriteJsonlSnapshot(options_.path,
                                                        /*append=*/true);
    if (!status.ok()) {
      FVAE_LOG(WARNING) << "metrics dump failed: " << status.ToString();
    }
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fvae::obs
