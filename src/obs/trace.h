#ifndef FVAE_OBS_TRACE_H_
#define FVAE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace fvae::obs {

/// Distributed-trace identity: which request (trace_id) and which span of
/// it (span_id) the current work belongs to. trace_id == 0 means "no
/// context" — spans recorded without one are process-local (the PR-3
/// behaviour) and serialize without trace annotations, byte-identical to
/// the old Chrome export.
///
/// Contexts cross process boundaries as the FVRP trace prefix
/// (docs/PROTOCOL.md): the sender writes its trace_id and current span_id;
/// the receiver's spans adopt that span_id as their parent.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// Mints a fresh span id (process-unique, never 0). Deliberately not a
/// random source: a splitmix64 walk over an atomic counter seeded from the
/// monotonic clock and pid gives cross-process uniqueness without touching
/// the banned nondeterminism surface (rand/random_device).
uint64_t MintSpanId();

/// Mints a root context: fresh trace_id, fresh root span_id.
TraceContext MintTraceContext();

/// The calling thread's ambient context ({0,0} when none is installed).
TraceContext CurrentTraceContext();
void SetCurrentTraceContext(const TraceContext& context);

/// RAII installer for the thread-ambient context; restores the previous
/// one on destruction. Used at propagation boundaries: the router installs
/// the minted root around a routed call, the RPC server installs the
/// wire-extracted context around dispatch so spans (and the batcher's
/// capture in SubmitAsync) inherit it without plumbing a parameter through
/// every layer.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context)
      : previous_(CurrentTraceContext()) {
    SetCurrentTraceContext(context);
  }
  ~ScopedTraceContext() { SetCurrentTraceContext(previous_); }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

/// One completed span. `name` must be a string literal (stored by pointer,
/// never copied — the FVAE_TRACE_SCOPE macro guarantees this).
struct TraceEvent {
  const char* name;
  int64_t start_us;
  int64_t duration_us;
  uint32_t tid;
  /// Distributed identity; all zero for context-free spans.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// Aggregated statistics of one span name across all threads.
struct SpanProfile {
  std::string name;
  uint64_t count = 0;
  double total_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Process-wide span recorder.
///
/// Completed spans land in per-thread buffers: each thread registers its
/// own buffer on first use (cached in a thread_local, so the registration
/// lock is paid once per thread) and appends under that buffer's private
/// mutex — uncontended in steady state, since only the owner thread writes
/// and exporters read rarely. Alongside the raw events, every buffer keeps
/// a per-span-name duration histogram; Profile() merges them across
/// threads (Histogram::Merge) into count/total/p50/p99 rows.
///
/// Recording is off by default: a disabled recorder costs one relaxed
/// atomic load per span site. Exports:
///   - ChromeTraceJson()/WriteChromeTrace(): Chrome trace_event format
///     ("X" complete events), loadable in chrome://tracing or Perfetto;
///     context-carrying spans add an "args" object with hex trace/span ids
///     so one request's spans can be followed across processes;
///   - Profile()/ProfileText(): the aggregated per-span-name table;
///   - Events(): the raw merged event list (bench hop analysis).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed span to the calling thread's buffer. No-op while
  /// disabled. `name` must be a string literal.
  void RecordSpan(const char* name, int64_t start_us, int64_t duration_us);

  /// As above, with an explicit distributed identity: `context` carries the
  /// span's own (trace_id, span_id); `parent_span_id` is the enclosing
  /// span (0 for roots). Used by code that cannot rely on the thread-
  /// ambient context (hedge arms, cross-thread completions, SpanScratch).
  void RecordSpan(const char* name, int64_t start_us, int64_t duration_us,
                  const TraceContext& context, uint64_t parent_span_id);

  /// All buffered events as a Chrome trace_event JSON document.
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// All buffered events, merged across threads, sorted by start time.
  std::vector<TraceEvent> Events() const;

  /// Per-span-name aggregate over all threads, sorted by total time
  /// descending.
  std::vector<SpanProfile> Profile() const;
  /// Profile() rendered as an aligned text table (empty string when no
  /// spans were recorded).
  std::string ProfileText() const;

  /// Buffered (not dropped) event count across all threads.
  uint64_t EventCount() const;
  /// Events discarded because a thread's buffer was full.
  uint64_t DroppedCount() const;

  /// Clears buffered events and profiles. Thread buffers stay registered
  /// (live threads hold cached pointers into them).
  void Reset();

  /// Per-thread event capacity; beyond it, new spans count as dropped.
  static constexpr size_t kMaxEventsPerThread = size_t{1} << 16;

 private:
  struct ThreadBuffer {
    ThreadBuffer(uint32_t tid_in, std::thread::id owner_in)
        : tid(tid_in), owner(owner_in) {}
    const uint32_t tid;
    const std::thread::id owner;
    // Owner-thread writes, rare exporter reads: effectively uncontended,
    // and its critical sections are a bounded push_back/map update with no
    // IO or nested locks — safe from server event-loop threads, which do
    // record spans (FVAE_LOOP_LOCK_EXEMPT).
    Mutex mutex FVAE_LOOP_LOCK_EXEMPT;
    std::vector<TraceEvent> events FVAE_GUARDED_BY(mutex);
    uint64_t dropped FVAE_GUARDED_BY(mutex) = 0;
    /// Span durations by name, merged across threads by Profile().
    std::map<std::string, LatencyHistogram> profile FVAE_GUARDED_BY(mutex);
  };

  /// The calling thread's buffer, registered on first use.
  ThreadBuffer& LocalBuffer();

  /// Process-unique instance id (never 0). Thread-local buffer caches key
  /// on this rather than on `this`: a new recorder allocated at a dead
  /// recorder's address must not hit the stale cache entry.
  static uint64_t NextId();

  const uint64_t id_ = NextId();
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_ FVAE_LOOP_LOCK_EXEMPT;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ FVAE_GUARDED_BY(mutex_);
};

/// RAII span: records [construction, destruction) into `recorder` (the
/// global one by default). End() closes the span early — useful when two
/// consecutive phases share a C++ scope (see FieldVae::TrainStep).
///
/// When a thread-ambient TraceContext is installed (and the recorder is
/// enabled), the span joins the trace: it inherits the trace_id, adopts
/// the ambient span as its parent, mints its own span_id, and installs
/// itself as the ambient context for its lifetime — so nested spans and
/// outbound RPCs issued inside it parent correctly. Without a context the
/// behaviour (and the serialized output) is exactly the PR-3 span.
///
/// Never construct on an FVAE_HOT path — RecordSpan locks and may
/// allocate. Hot code records through a worker-owned SpanScratch instead
/// (fvae_lint's `hot-trace` rule enforces this).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceRecorder* recorder = nullptr)
      : recorder_(recorder != nullptr ? recorder
                                      : &TraceRecorder::Global()) {
    if (recorder_->enabled()) {
      name_ = name;
      start_us_ = MonotonicMicros();
      const TraceContext ambient = CurrentTraceContext();
      if (ambient.valid()) {
        parent_span_id_ = ambient.span_id;
        context_ = TraceContext{ambient.trace_id, MintSpanId()};
        previous_ = ambient;
        SetCurrentTraceContext(context_);
        installed_ = true;
      }
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Records the span now; the destructor becomes a no-op. Idempotent.
  void End() {
    if (name_ == nullptr) return;
    if (installed_) {
      SetCurrentTraceContext(previous_);
      installed_ = false;
    }
    recorder_->RecordSpan(name_, start_us_, MonotonicMicros() - start_us_,
                          context_, parent_span_id_);
    name_ = nullptr;
  }

  /// This span's identity ({0,0} when recording is disabled or no trace
  /// context was ambient at construction).
  const TraceContext& context() const { return context_; }

 private:
  TraceRecorder* recorder_;
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
  TraceContext context_;
  TraceContext previous_;
  uint64_t parent_span_id_ = 0;
  bool installed_ = false;
};

/// Fixed-capacity span staging area for FVAE_HOT code, owned by a worker's
/// scratch state. NoteSpan() is a bounded write into pre-reserved storage
/// (no lock, no allocation once constructed); Flush() — called off the hot
/// path — moves the staged spans into the recorder. Spans noted beyond
/// capacity are dropped and counted.
class SpanScratch {
 public:
  explicit SpanScratch(size_t capacity) { spans_.reserve(capacity); }

  SpanScratch(const SpanScratch&) = delete;
  SpanScratch& operator=(const SpanScratch&) = delete;

  /// Stages one completed span. Safe on hot paths.
  FVAE_HOT void NoteSpan(const char* name, int64_t start_us,
                         int64_t duration_us, const TraceContext& context,
                         uint64_t parent_span_id = 0) {
    if (spans_.size() < spans_.capacity()) {
      spans_.push_back(  // fvae-lint: allow(hot-alloc)
          {name, start_us, duration_us, /*tid=*/0, context.trace_id,
           context.span_id, parent_span_id});
    } else {
      ++dropped_;
    }
  }

  /// Moves staged spans into `recorder` (global by default) and clears the
  /// stage. NOT hot — call from worker housekeeping, never per-request.
  void Flush(TraceRecorder* recorder = nullptr);

  size_t staged() const { return spans_.size(); }
  uint64_t dropped() const { return dropped_; }

 private:
  std::vector<TraceEvent> spans_;
  uint64_t dropped_ = 0;
};

#define FVAE_TRACE_CONCAT_INNER_(a, b) a##b
#define FVAE_TRACE_CONCAT_(a, b) FVAE_TRACE_CONCAT_INNER_(a, b)
/// Declares an anonymous TraceSpan covering the rest of the enclosing
/// scope: FVAE_TRACE_SCOPE("train.step");
#define FVAE_TRACE_SCOPE(name)                                      \
  ::fvae::obs::TraceSpan FVAE_TRACE_CONCAT_(fvae_trace_span_,       \
                                            __LINE__)(name)

}  // namespace fvae::obs

#endif  // FVAE_OBS_TRACE_H_
