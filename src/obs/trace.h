#ifndef FVAE_OBS_TRACE_H_
#define FVAE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace fvae::obs {

/// One completed span. `name` must be a string literal (stored by pointer,
/// never copied — the FVAE_TRACE_SCOPE macro guarantees this).
struct TraceEvent {
  const char* name;
  int64_t start_us;
  int64_t duration_us;
  uint32_t tid;
};

/// Aggregated statistics of one span name across all threads.
struct SpanProfile {
  std::string name;
  uint64_t count = 0;
  double total_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Process-wide span recorder.
///
/// Completed spans land in per-thread buffers: each thread registers its
/// own buffer on first use (cached in a thread_local, so the registration
/// lock is paid once per thread) and appends under that buffer's private
/// mutex — uncontended in steady state, since only the owner thread writes
/// and exporters read rarely. Alongside the raw events, every buffer keeps
/// a per-span-name duration histogram; Profile() merges them across
/// threads (Histogram::Merge) into count/total/p50/p99 rows.
///
/// Recording is off by default: a disabled recorder costs one relaxed
/// atomic load per span site. Exports:
///   - ChromeTraceJson()/WriteChromeTrace(): Chrome trace_event format
///     ("X" complete events), loadable in chrome://tracing or Perfetto;
///   - Profile()/ProfileText(): the aggregated per-span-name table.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed span to the calling thread's buffer. No-op while
  /// disabled. `name` must be a string literal.
  void RecordSpan(const char* name, int64_t start_us, int64_t duration_us);

  /// All buffered events as a Chrome trace_event JSON document.
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Per-span-name aggregate over all threads, sorted by total time
  /// descending.
  std::vector<SpanProfile> Profile() const;
  /// Profile() rendered as an aligned text table (empty string when no
  /// spans were recorded).
  std::string ProfileText() const;

  /// Buffered (not dropped) event count across all threads.
  uint64_t EventCount() const;
  /// Events discarded because a thread's buffer was full.
  uint64_t DroppedCount() const;

  /// Clears buffered events and profiles. Thread buffers stay registered
  /// (live threads hold cached pointers into them).
  void Reset();

  /// Per-thread event capacity; beyond it, new spans count as dropped.
  static constexpr size_t kMaxEventsPerThread = size_t{1} << 16;

 private:
  struct ThreadBuffer {
    ThreadBuffer(uint32_t tid_in, std::thread::id owner_in)
        : tid(tid_in), owner(owner_in) {}
    const uint32_t tid;
    const std::thread::id owner;
    Mutex mutex;
    std::vector<TraceEvent> events FVAE_GUARDED_BY(mutex);
    uint64_t dropped FVAE_GUARDED_BY(mutex) = 0;
    /// Span durations by name, merged across threads by Profile().
    std::map<std::string, LatencyHistogram> profile FVAE_GUARDED_BY(mutex);
  };

  /// The calling thread's buffer, registered on first use.
  ThreadBuffer& LocalBuffer();

  /// Process-unique instance id (never 0). Thread-local buffer caches key
  /// on this rather than on `this`: a new recorder allocated at a dead
  /// recorder's address must not hit the stale cache entry.
  static uint64_t NextId();

  const uint64_t id_ = NextId();
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ FVAE_GUARDED_BY(mutex_);
};

/// RAII span: records [construction, destruction) into `recorder` (the
/// global one by default). End() closes the span early — useful when two
/// consecutive phases share a C++ scope (see FieldVae::TrainStep).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceRecorder* recorder = nullptr)
      : recorder_(recorder != nullptr ? recorder
                                      : &TraceRecorder::Global()) {
    if (recorder_->enabled()) {
      name_ = name;
      start_us_ = MonotonicMicros();
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Records the span now; the destructor becomes a no-op. Idempotent.
  void End() {
    if (name_ == nullptr) return;
    recorder_->RecordSpan(name_, start_us_, MonotonicMicros() - start_us_);
    name_ = nullptr;
  }

 private:
  TraceRecorder* recorder_;
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
};

#define FVAE_TRACE_CONCAT_INNER_(a, b) a##b
#define FVAE_TRACE_CONCAT_(a, b) FVAE_TRACE_CONCAT_INNER_(a, b)
/// Declares an anonymous TraceSpan covering the rest of the enclosing
/// scope: FVAE_TRACE_SCOPE("train.step");
#define FVAE_TRACE_SCOPE(name)                                      \
  ::fvae::obs::TraceSpan FVAE_TRACE_CONCAT_(fvae_trace_span_,       \
                                            __LINE__)(name)

}  // namespace fvae::obs

#endif  // FVAE_OBS_TRACE_H_
