#ifndef FVAE_OBS_EXEMPLARS_H_
#define FVAE_OBS_EXEMPLARS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fvae::obs {

/// Latency-histogram exemplars: the top-K highest observed values, each
/// carrying the trace_id of the request that produced it. A p99 bucket in
/// a metrics snapshot tells you *that* requests were slow; the exemplar
/// tells you *which* — the trace id links the histogram tail straight to
/// the Chrome trace and the slow-trace ring.
///
/// Offer() is designed for event-loop/request threads: a relaxed atomic
/// threshold rejects the overwhelming majority of observations without
/// touching the mutex; only a new top-K candidate (rare by construction —
/// the threshold ratchets up) takes the lock to splice itself in.
class ExemplarStore {
 public:
  struct Exemplar {
    double value = 0.0;
    uint64_t trace_id = 0;
    int64_t ts_us = 0;  // MonotonicMicros at observation
  };

  explicit ExemplarStore(size_t capacity = 4);

  ExemplarStore(const ExemplarStore&) = delete;
  ExemplarStore& operator=(const ExemplarStore&) = delete;

  /// Offers one observation. Ignored when trace_id is 0 (no context to
  /// link) or the value is below the current top-K floor.
  void Offer(double value, uint64_t trace_id);

  /// Current exemplars, sorted by value descending.
  std::vector<Exemplar> Snapshot() const;

  size_t capacity() const { return capacity_; }

  /// Snapshot() as a JSON array:
  ///   [{"value":V,"trace_id":"<hex>","ts_us":N},...]
  std::string ToJson() const;

 private:
  const size_t capacity_;
  /// Fast-reject floor: the smallest value currently in the store once it
  /// is full, 0 before that. Monotone under Offer (only rises), so a stale
  /// read can only cause a harmless extra lock acquisition.
  std::atomic<double> floor_{0.0};
  // Taken only when an observation beats the floor — rare, bounded splice,
  // no IO: safe from event-loop threads.
  mutable Mutex mutex_ FVAE_LOOP_LOCK_EXEMPT;
  std::vector<Exemplar> exemplars_ FVAE_GUARDED_BY(mutex_);
};

}  // namespace fvae::obs

#endif  // FVAE_OBS_EXEMPLARS_H_
