#include "obs/metrics_registry.h"

#include <cstdio>
#include <fstream>

#include "common/atomic_file.h"
#include "common/check.h"

namespace fvae::obs {

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  bool seen_dot = false;
  bool segment_start = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_start) return false;  // empty segment
      seen_dot = true;
      segment_start = true;
      continue;
    }
    if (segment_start) {
      if (c < 'a' || c > 'z') return false;
      segment_start = false;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return seen_dot && !segment_start;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::Register(std::string_view name,
                                                  Kind kind) {
  FVAE_CHECK(IsValidMetricName(name))
      << "metric name must be a snake_case dotted path "
         "(\"training.epoch_loss\"), got: "
      << std::string(name);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Entry{kind, {}, {}, {}}).first;
  }
  FVAE_CHECK(it->second.kind == kind)
      << "metric registered twice with different types: "
      << std::string(name);
  return it->second;
}

fvae::obs::Counter& MetricsRegistry::Counter(std::string_view name) {
  MutexLock lock(mutex_);
  Entry& entry = Register(name, Kind::kCounter);
  if (entry.counter == nullptr) {
    entry.counter.reset(new fvae::obs::Counter());
  }
  return *entry.counter;
}

fvae::obs::Gauge& MetricsRegistry::Gauge(std::string_view name) {
  MutexLock lock(mutex_);
  Entry& entry = Register(name, Kind::kGauge);
  if (entry.gauge == nullptr) {
    entry.gauge.reset(new fvae::obs::Gauge());
  }
  return *entry.gauge;
}

LatencyHistogram& MetricsRegistry::Histo(std::string_view name,
                                         double min_value, double growth,
                                         size_t num_buckets) {
  MutexLock lock(mutex_);
  Entry& entry = Register(name, Kind::kHistogram);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<LatencyHistogram>(min_value, growth,
                                                         num_buckets);
  }
  return *entry.histogram;
}

ExemplarStore& MetricsRegistry::Exemplars(std::string_view name,
                                          size_t capacity) {
  FVAE_CHECK(IsValidMetricName(name))
      << "exemplar store name must be a snake_case dotted path, got: "
      << std::string(name);
  MutexLock lock(mutex_);
  auto it = exemplars_.find(name);
  if (it == exemplars_.end()) {
    it = exemplars_
             .emplace(std::string(name),
                      std::make_unique<ExemplarStore>(capacity))
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::ExemplarsJson() const {
  MutexLock lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, store] : exemplars_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + store->ToJson();
  }
  out += "}";
  return out;
}

void MetricsRegistry::Visit(MetricVisitor& visitor) const {
  MutexLock lock(mutex_);
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        visitor.OnCounter(name, entry.counter->Value());
        break;
      case Kind::kGauge:
        visitor.OnGauge(name, entry.gauge->Value());
        break;
      case Kind::kHistogram:
        visitor.OnHistogram(name, *entry.histogram);
        break;
    }
  }
}

size_t MetricsRegistry::MetricCount() const {
  MutexLock lock(mutex_);
  return metrics_.size();
}

std::string MetricsRegistry::TextSnapshot() const {
  MutexLock lock(mutex_);
  std::string out;
  char buf[256];
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%-36s counter    %llu\n",
                      name.c_str(),
                      static_cast<unsigned long long>(
                          entry.counter->Value()));
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%-36s gauge      %.6g\n",
                      name.c_str(), entry.gauge->Value());
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h = *entry.histogram;
        std::snprintf(buf, sizeof(buf),
                      "%-36s histogram  count=%llu mean=%.1f p50=%.1f "
                      "p95=%.1f p99=%.1f\n",
                      name.c_str(),
                      static_cast<unsigned long long>(h.Count()), h.Mean(),
                      h.Percentile(50.0), h.Percentile(95.0),
                      h.Percentile(99.0));
        break;
      }
    }
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::JsonlSnapshot() const {
  MutexLock lock(mutex_);
  std::string out;
  char buf[320];
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"type\":\"counter\","
                      "\"value\":%llu}\n",
                      name.c_str(),
                      static_cast<unsigned long long>(
                          entry.counter->Value()));
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"type\":\"gauge\","
                      "\"value\":%.6g}\n",
                      name.c_str(), entry.gauge->Value());
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h = *entry.histogram;
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"type\":\"histogram\","
                      "\"count\":%llu,\"mean\":%.1f,\"p50\":%.1f,"
                      "\"p95\":%.1f,\"p99\":%.1f}\n",
                      name.c_str(),
                      static_cast<unsigned long long>(h.Count()), h.Mean(),
                      h.Percentile(50.0), h.Percentile(95.0),
                      h.Percentile(99.0));
        break;
      }
    }
    out += buf;
  }
  return out;
}

Status MetricsRegistry::WriteJsonlSnapshot(const std::string& path,
                                           bool append) const {
  if (append) {
    // Appending to a shared log cannot go through the atomic rename path
    // (a rename would clobber the records already in the file), so this
    // branch keeps the direct stream; partial trailing lines are tolerated
    // by JSONL consumers.
    std::ofstream out(path, std::ios::app);  // fvae-lint: allow(atomic-write)
    if (!out) return Status::IoError("cannot open for write: " + path);
    out << JsonlSnapshot();
    out.flush();
    if (!out.good()) {
      return Status::IoError("snapshot write failed: " + path);
    }
    return Status::Ok();
  }
  AtomicFileWriter writer;
  FVAE_RETURN_IF_ERROR(writer.Open(path, "obs.metrics_snapshot"));
  writer.stream() << JsonlSnapshot();
  return writer.Commit();
}

}  // namespace fvae::obs
