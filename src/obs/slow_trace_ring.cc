#include "obs/slow_trace_ring.h"

#include <algorithm>

#include "common/string_util.h"

namespace fvae::obs {

SlowTraceRing::SlowTraceRing(size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

void SlowTraceRing::Record(const Entry& entry) {
  const uint64_t index =
      head_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
  Slot& slot = slots_[index];
  // Odd sequence marks the slot dirty; readers that observe it (or see the
  // sequence move across their read) discard the slot.
  slot.sequence.fetch_add(1, std::memory_order_acq_rel);
  slot.trace_id.store(entry.trace_id, std::memory_order_relaxed);
  slot.parent_span_id.store(entry.parent_span_id, std::memory_order_relaxed);
  slot.tag.store(entry.tag, std::memory_order_relaxed);
  slot.start_us.store(entry.start_us, std::memory_order_relaxed);
  slot.duration_us.store(entry.duration_us, std::memory_order_relaxed);
  slot.verb.store(entry.verb, std::memory_order_relaxed);
  slot.status.store(entry.status, std::memory_order_relaxed);
  slot.sequence.fetch_add(1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SlowTraceRing::Entry> SlowTraceRing::Snapshot() const {
  std::vector<Entry> entries;
  entries.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t before = slot.sequence.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    Entry entry;
    entry.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    entry.parent_span_id =
        slot.parent_span_id.load(std::memory_order_relaxed);
    entry.tag = slot.tag.load(std::memory_order_relaxed);
    entry.start_us = slot.start_us.load(std::memory_order_relaxed);
    entry.duration_us = slot.duration_us.load(std::memory_order_relaxed);
    entry.verb = static_cast<uint8_t>(
        slot.verb.load(std::memory_order_relaxed));
    entry.status = static_cast<uint8_t>(
        slot.status.load(std::memory_order_relaxed));
    const uint64_t after = slot.sequence.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten while reading
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.duration_us > b.duration_us;
            });
  return entries;
}

std::string SlowTraceRing::ToJson() const {
  const std::vector<Entry> entries = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out += StrFormat(
        "%s{\"trace_id\":\"%016llx\",\"tag\":%llu,\"verb\":%u,"
        "\"status\":%u,\"start_us\":%lld,\"duration_us\":%lld}",
        i == 0 ? "" : ",",
        static_cast<unsigned long long>(e.trace_id),
        static_cast<unsigned long long>(e.tag),
        static_cast<unsigned>(e.verb), static_cast<unsigned>(e.status),
        static_cast<long long>(e.start_us),
        static_cast<long long>(e.duration_us));
  }
  out += "]";
  return out;
}

}  // namespace fvae::obs
