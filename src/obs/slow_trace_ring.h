#ifndef FVAE_OBS_SLOW_TRACE_RING_H_
#define FVAE_OBS_SLOW_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fvae::obs {

/// Tail-based slow-request capture: a fixed-capacity, lock-free ring of
/// completed request summaries, written by the server's event-loop threads
/// whenever a request exceeds the latency threshold or finishes with a
/// non-ok status. The introspection plane reads it to answer "which
/// requests ate the p99" with real trace ids that can be grepped out of
/// the Chrome trace export.
///
/// Concurrency: Record() claims a slot with one fetch_add and publishes it
/// under a per-slot sequence counter (odd = write in progress); Snapshot()
/// skips slots whose sequence moved while being read. Every data word is
/// an atomic with relaxed ordering bracketed by acq_rel sequence bumps —
/// wait-free for writers, no locks anywhere, TSan-clean by construction.
/// Under a wrap race two writers can hit the same slot; the sequence
/// protocol then discards the slot from snapshots rather than exposing a
/// torn record.
class SlowTraceRing {
 public:
  struct Entry {
    uint64_t trace_id = 0;
    uint64_t parent_span_id = 0;
    uint64_t tag = 0;
    int64_t start_us = 0;
    int64_t duration_us = 0;
    uint8_t verb = 0;
    uint8_t status = 0;  // WireStatus numeric value
  };

  explicit SlowTraceRing(size_t capacity = 64);

  SlowTraceRing(const SlowTraceRing&) = delete;
  SlowTraceRing& operator=(const SlowTraceRing&) = delete;

  /// Publishes one completed slow/errored request. Wait-free.
  void Record(const Entry& entry);

  /// Stable entries, sorted by duration descending.
  std::vector<Entry> Snapshot() const;

  /// Total entries ever recorded (including overwritten ones).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return slots_.size(); }

  /// Snapshot() as a JSON array:
  ///   [{"trace_id":"<hex>","tag":N,"verb":N,"status":N,
  ///     "start_us":N,"duration_us":N},...]
  std::string ToJson() const;

 private:
  struct Slot {
    std::atomic<uint64_t> sequence{0};  // even = stable, odd = writing
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> parent_span_id{0};
    std::atomic<uint64_t> tag{0};
    std::atomic<int64_t> start_us{0};
    std::atomic<int64_t> duration_us{0};
    std::atomic<uint32_t> verb{0};
    std::atomic<uint32_t> status{0};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> recorded_{0};
};

}  // namespace fvae::obs

#endif  // FVAE_OBS_SLOW_TRACE_RING_H_
