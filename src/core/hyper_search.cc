#include "core/hyper_search.h"

#include <cmath>

#include "common/check.h"

namespace fvae::core {

FvaeConfig SampleConfig(const FvaeSearchSpace& space, const FvaeConfig& base,
                        size_t num_fields, Rng& rng) {
  FVAE_CHECK(!space.latent_choices.empty());
  FVAE_CHECK(!space.hidden_choices.empty());
  FVAE_CHECK(!space.strategy_choices.empty());
  FVAE_CHECK(space.beta_min <= space.beta_max);
  FVAE_CHECK(space.sampling_rate_min <= space.sampling_rate_max);
  FVAE_CHECK(space.sampling_rate_min > 0.0);

  FvaeConfig config = base;
  config.latent_dim =
      space.latent_choices[rng.UniformInt(space.latent_choices.size())];
  const size_t hidden =
      space.hidden_choices[rng.UniformInt(space.hidden_choices.size())];
  config.encoder_hidden = {hidden};
  config.decoder_hidden = {hidden};
  config.sampling_strategy =
      space.strategy_choices[rng.UniformInt(space.strategy_choices.size())];
  config.beta =
      static_cast<float>(rng.Uniform(space.beta_min, space.beta_max));
  config.sampling_rate =
      rng.Uniform(space.sampling_rate_min, space.sampling_rate_max);
  if (space.search_alpha) {
    config.alpha.resize(num_fields);
    for (float& alpha : config.alpha) {
      const double exponent =
          rng.Uniform(space.alpha_log10_min, space.alpha_log10_max);
      alpha = static_cast<float>(std::pow(10.0, exponent));
    }
  }
  return config;
}

SearchOutcome RandomSearch(
    const FvaeSearchSpace& space, const FvaeConfig& base, size_t num_fields,
    size_t num_trials,
    const std::function<double(const FvaeConfig&)>& objective, Rng& rng) {
  FVAE_CHECK(num_trials > 0);
  FVAE_CHECK(objective != nullptr);
  SearchOutcome outcome;
  outcome.trials.reserve(num_trials);
  for (size_t t = 0; t < num_trials; ++t) {
    SearchTrial trial;
    trial.config = SampleConfig(space, base, num_fields, rng);
    trial.score = objective(trial.config);
    if (outcome.trials.empty() || trial.score > outcome.best_score) {
      outcome.best_score = trial.score;
      outcome.best_config = trial.config;
    }
    outcome.trials.push_back(std::move(trial));
  }
  return outcome;
}

}  // namespace fvae::core
