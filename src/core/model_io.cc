#include "core/model_io.h"

#include <cstring>
#include <fstream>

#include "common/check.h"

namespace fvae::core {

namespace {

constexpr char kMagic[4] = {'F', 'V', 'M', 'D'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len) || len > (1u << 20)) return false;
  s->resize(len);
  in.read(s->data(), len);
  return in.good();
}

void WriteMatrix(std::ofstream& out, const Matrix& m) {
  WritePod(out, static_cast<uint64_t>(m.rows()));
  WritePod(out, static_cast<uint64_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
}

bool ReadMatrixInto(std::ifstream& in, Matrix* m) {
  uint64_t rows = 0, cols = 0;
  if (!ReadPod(in, &rows) || !ReadPod(in, &cols)) return false;
  if (rows != m->rows() || cols != m->cols()) return false;
  in.read(reinterpret_cast<char*>(m->data()),
          static_cast<std::streamsize>(m->size() * sizeof(float)));
  return in.good();
}

void WriteTable(std::ofstream& out, const nn::EmbeddingTable& table) {
  WritePod(out, static_cast<uint64_t>(table.dim()));
  WritePod(out, static_cast<uint8_t>(table.with_bias() ? 1 : 0));
  const auto items = table.Items();
  WritePod(out, static_cast<uint64_t>(items.size()));
  for (const auto& [key, row] : items) {
    WritePod(out, key);
    std::span<const float> weights = table.Row(row);
    out.write(reinterpret_cast<const char*>(weights.data()),
              static_cast<std::streamsize>(weights.size() * sizeof(float)));
    const float bias = table.with_bias() ? table.bias(row) : 0.0f;
    WritePod(out, bias);
  }
}

bool ReadTableInto(std::ifstream& in, nn::EmbeddingTable* table) {
  uint64_t dim = 0;
  uint8_t with_bias = 0;
  uint64_t count = 0;
  if (!ReadPod(in, &dim) || !ReadPod(in, &with_bias) ||
      !ReadPod(in, &count)) {
    return false;
  }
  if (dim != table->dim() ||
      (with_bias != 0) != table->with_bias()) {
    return false;
  }
  std::vector<float> weights(dim);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    float bias = 0.0f;
    if (!ReadPod(in, &key)) return false;
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(dim * sizeof(float)));
    if (!ReadPod(in, &bias)) return false;
    const uint32_t row = table->GetOrCreateRow(key);
    std::span<float> dst = table->Row(row);
    std::copy(weights.begin(), weights.end(), dst.begin());
    if (table->with_bias()) table->set_bias(row, bias);
  }
  return true;
}

void WriteSizeVector(std::ofstream& out, const std::vector<size_t>& v) {
  WritePod(out, static_cast<uint32_t>(v.size()));
  for (size_t x : v) WritePod(out, static_cast<uint64_t>(x));
}

bool ReadSizeVector(std::ifstream& in, std::vector<size_t>* v) {
  uint32_t n = 0;
  if (!ReadPod(in, &n) || n > 64) return false;
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    if (!ReadPod(in, &x)) return false;
    (*v)[i] = static_cast<size_t>(x);
  }
  return true;
}

}  // namespace

Status SaveFieldVae(const FieldVae& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);

  out.write(kMagic, 4);
  WritePod(out, kVersion);

  // ---- config ----
  const FvaeConfig& config = model.config();
  WritePod(out, static_cast<uint64_t>(config.latent_dim));
  WriteSizeVector(out, config.encoder_hidden);
  WriteSizeVector(out, config.decoder_hidden);
  WritePod(out, static_cast<uint32_t>(config.alpha.size()));
  for (float a : config.alpha) WritePod(out, a);
  WritePod(out, config.beta);
  WritePod(out, static_cast<uint64_t>(config.anneal_steps));
  WritePod(out, static_cast<uint32_t>(config.anneal_schedule));
  WritePod(out, static_cast<uint32_t>(config.sampling_strategy));
  WritePod(out, config.sampling_rate);
  WritePod(out, static_cast<uint8_t>(config.batched_softmax ? 1 : 0));
  WritePod(out, config.dense_learning_rate);
  WritePod(out, config.sparse_learning_rate);
  WritePod(out, config.embedding_init_stddev);
  WritePod(out, config.seed);

  // ---- schemas ----
  WritePod(out, static_cast<uint32_t>(model.num_fields()));
  for (const FieldSchema& schema : model.field_schemas()) {
    WriteString(out, schema.name);
    WritePod(out, static_cast<uint8_t>(schema.is_sparse ? 1 : 0));
  }

  // ---- dense parameters ----
  const auto params = model.DenseParams();
  WritePod(out, static_cast<uint32_t>(params.size()));
  for (const Matrix* param : params) WriteMatrix(out, *param);

  // ---- embedding tables ----
  for (size_t k = 0; k < model.num_fields(); ++k) {
    WriteTable(out, model.input_table(k));
    WriteTable(out, model.output_table(k));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::unique_ptr<FieldVae>> LoadFieldVae(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }

  // ---- config ----
  FvaeConfig config;
  uint64_t latent = 0;
  if (!ReadPod(in, &latent)) return Status::IoError("truncated config");
  config.latent_dim = static_cast<size_t>(latent);
  if (!ReadSizeVector(in, &config.encoder_hidden) ||
      !ReadSizeVector(in, &config.decoder_hidden)) {
    return Status::InvalidArgument("bad hidden dims");
  }
  uint32_t alpha_count = 0;
  if (!ReadPod(in, &alpha_count) || alpha_count > 1024) {
    return Status::InvalidArgument("bad alpha count");
  }
  config.alpha.resize(alpha_count);
  for (float& a : config.alpha) {
    if (!ReadPod(in, &a)) return Status::IoError("truncated alpha");
  }
  uint64_t anneal = 0;
  uint32_t schedule = 0;
  uint32_t strategy = 0;
  uint8_t batched = 1;
  if (!ReadPod(in, &config.beta) || !ReadPod(in, &anneal) ||
      !ReadPod(in, &schedule) ||
      !ReadPod(in, &strategy) || !ReadPod(in, &config.sampling_rate) ||
      !ReadPod(in, &batched) || !ReadPod(in, &config.dense_learning_rate) ||
      !ReadPod(in, &config.sparse_learning_rate) ||
      !ReadPod(in, &config.embedding_init_stddev) ||
      !ReadPod(in, &config.seed)) {
    return Status::IoError("truncated config");
  }
  config.anneal_steps = static_cast<size_t>(anneal);
  config.anneal_schedule = static_cast<AnnealSchedule>(schedule);
  config.sampling_strategy = static_cast<SamplingStrategy>(strategy);
  config.batched_softmax = batched != 0;

  // ---- schemas ----
  uint32_t num_fields = 0;
  if (!ReadPod(in, &num_fields) || num_fields == 0 || num_fields > 1024) {
    return Status::InvalidArgument("bad field count");
  }
  std::vector<FieldSchema> schemas(num_fields);
  for (FieldSchema& schema : schemas) {
    uint8_t sparse = 0;
    if (!ReadString(in, &schema.name) || !ReadPod(in, &sparse)) {
      return Status::IoError("truncated schema");
    }
    schema.is_sparse = sparse != 0;
  }

  auto model = std::make_unique<FieldVae>(config, schemas);

  // ---- dense parameters ----
  uint32_t param_count = 0;
  if (!ReadPod(in, &param_count)) return Status::IoError("truncated params");
  auto params = model->DenseParams();
  if (param_count != params.size()) {
    return Status::InvalidArgument("dense parameter count mismatch");
  }
  for (Matrix* param : params) {
    if (!ReadMatrixInto(in, param)) {
      return Status::InvalidArgument("dense parameter shape mismatch");
    }
  }

  // ---- embedding tables ----
  for (size_t k = 0; k < model->num_fields(); ++k) {
    if (!ReadTableInto(in, &model->input_table(k)) ||
        !ReadTableInto(in, &model->output_table(k))) {
      return Status::InvalidArgument("embedding table mismatch");
    }
  }
  return model;
}

}  // namespace fvae::core
