#include "core/model_io.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string_view>

#include "common/atomic_file.h"
#include "common/binary_io.h"
#include "common/check.h"
#include "common/crc32.h"

namespace fvae::core {

namespace {

constexpr char kMagic[4] = {'F', 'V', 'M', 'D'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersion = 2;

/// v2 section tags, written in strictly increasing order. kEnd terminates
/// the file; unknown higher tags are skipped (forward compatibility), but
/// their checksums are still verified.
enum SectionTag : uint32_t {
  kEnd = 0,
  kConfig = 1,
  kSchemas = 2,
  kDense = 3,
  kTables = 4,
  kOptimizer = 5,
  kCursor = 6,
  /// RNG streams for cursor-less exports (SaveFieldVae): without them a
  /// "warm start" would draw different reparameterization noise than the
  /// saved run and diverge on the first step. Trainer checkpoints carry
  /// the same states inside kCursor instead.
  kRng = 7,
};

constexpr std::string_view SectionName(uint32_t tag) {
  switch (tag) {
    case kConfig: return "config";
    case kSchemas: return "schemas";
    case kDense: return "dense";
    case kTables: return "tables";
    case kOptimizer: return "optimizer";
    case kCursor: return "cursor";
    case kRng: return "rng";
    default: return "unknown";
  }
}

// ---------------------------------------------------------------------------
// Writing primitives on top of common/binary_io.h (any std::ostream: the
// atomic writer's stream for v1, per-section std::ostringstream payload
// builders for v2).

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteMatrix(std::ostream& out, const Matrix& m) {
  WritePod(out, static_cast<uint64_t>(m.rows()));
  WritePod(out, static_cast<uint64_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
}

void WriteTable(std::ostream& out, const nn::EmbeddingTable& table) {
  WritePod(out, static_cast<uint64_t>(table.dim()));
  WritePod(out, static_cast<uint8_t>(table.with_bias() ? 1 : 0));
  const auto items = table.Items();
  WritePod(out, static_cast<uint64_t>(items.size()));
  for (const auto& [key, row] : items) {
    WritePod(out, key);
    std::span<const float> weights = table.Row(row);
    out.write(reinterpret_cast<const char*>(weights.data()),
              static_cast<std::streamsize>(weights.size() * sizeof(float)));
    const float bias = table.with_bias() ? table.bias(row) : 0.0f;
    WritePod(out, bias);
  }
}

void WriteSizeVector(std::ostream& out, const std::vector<size_t>& v) {
  WritePod(out, static_cast<uint32_t>(v.size()));
  for (size_t x : v) WritePod(out, static_cast<uint64_t>(x));
}

void WriteDoubleVector(std::ostream& out, const std::vector<double>& v) {
  WritePod(out, static_cast<uint32_t>(v.size()));
  for (double x : v) WritePod(out, x);
}

void WriteRngState(std::ostream& out, const RngState& state) {
  for (uint64_t lane : state.s) WritePod(out, lane);
  WritePod(out, static_cast<uint8_t>(state.has_cached_normal ? 1 : 0));
  WritePod(out, state.cached_normal);
}

/// Frames one v2 section: tag, payload size, payload, payload CRC.
void WriteSection(std::ostream& out, uint32_t tag, std::string_view payload) {
  WritePod(out, tag);
  WritePod(out, static_cast<uint64_t>(payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  WritePod(out, Crc32(payload));
}

// ---------------------------------------------------------------------------
// Reading primitives. Both loaders read the whole file into memory first
// (checksums need the raw bytes anyway), then parse via a BufferReader.

bool ReadString(BufferReader& in, std::string* s) {
  uint32_t len = 0;
  if (!in.ReadPod(&len) || len > (1u << 20)) return false;
  s->resize(len);
  return in.ReadBytes(s->data(), len);
}

bool ReadMatrixInto(BufferReader& in, Matrix* m) {
  uint64_t rows = 0, cols = 0;
  if (!in.ReadPod(&rows) || !in.ReadPod(&cols)) return false;
  if (rows != m->rows() || cols != m->cols()) return false;
  return in.ReadBytes(m->data(), m->size() * sizeof(float));
}

bool ReadTableInto(BufferReader& in, nn::EmbeddingTable* table) {
  uint64_t dim = 0;
  uint8_t with_bias = 0;
  uint64_t count = 0;
  if (!in.ReadPod(&dim) || !in.ReadPod(&with_bias) || !in.ReadPod(&count)) {
    return false;
  }
  if (dim != table->dim() || (with_bias != 0) != table->with_bias()) {
    return false;
  }
  std::vector<float> weights(dim);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    float bias = 0.0f;
    if (!in.ReadPod(&key) ||
        !in.ReadBytes(weights.data(), dim * sizeof(float)) ||
        !in.ReadPod(&bias)) {
      return false;
    }
    const uint32_t row = table->GetOrCreateRow(key);
    std::span<float> dst = table->Row(row);
    std::copy(weights.begin(), weights.end(), dst.begin());
    if (table->with_bias()) table->set_bias(row, bias);
  }
  return true;
}

bool ReadSizeVector(BufferReader& in, std::vector<size_t>* v) {
  uint32_t n = 0;
  if (!in.ReadPod(&n) || n > 64) return false;
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    if (!in.ReadPod(&x)) return false;
    (*v)[i] = static_cast<size_t>(x);
  }
  return true;
}

bool ReadDoubleVector(BufferReader& in, std::vector<double>* v) {
  uint32_t n = 0;
  if (!in.ReadPod(&n) || n > (1u << 24)) return false;
  v->resize(n);
  for (double& x : *v) {
    if (!in.ReadPod(&x)) return false;
  }
  return true;
}

bool ReadRngState(BufferReader& in, RngState* state) {
  for (uint64_t& lane : state->s) {
    if (!in.ReadPod(&lane)) return false;
  }
  uint8_t has_cached = 0;
  if (!in.ReadPod(&has_cached) || !in.ReadPod(&state->cached_normal)) {
    return false;
  }
  state->has_cached_normal = has_cached != 0;
  return true;
}

std::string HexBytes(const char* bytes, size_t n) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out.push_back(' ');
    const auto b = static_cast<unsigned char>(bytes[i]);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Block payloads, shared between v1 (concatenated) and v2 (one section
// each). The byte layout of config/schemas/dense/tables is identical in
// both versions.

void BuildConfigPayload(std::ostream& out, const FvaeConfig& config) {
  WritePod(out, static_cast<uint64_t>(config.latent_dim));
  WriteSizeVector(out, config.encoder_hidden);
  WriteSizeVector(out, config.decoder_hidden);
  WritePod(out, static_cast<uint32_t>(config.alpha.size()));
  for (float a : config.alpha) WritePod(out, a);
  WritePod(out, config.beta);
  WritePod(out, static_cast<uint64_t>(config.anneal_steps));
  WritePod(out, static_cast<uint32_t>(config.anneal_schedule));
  WritePod(out, static_cast<uint32_t>(config.sampling_strategy));
  WritePod(out, config.sampling_rate);
  WritePod(out, static_cast<uint8_t>(config.batched_softmax ? 1 : 0));
  WritePod(out, config.dense_learning_rate);
  WritePod(out, config.sparse_learning_rate);
  WritePod(out, config.embedding_init_stddev);
  WritePod(out, config.seed);
}

void BuildSchemaPayload(std::ostream& out, const FieldVae& model) {
  WritePod(out, static_cast<uint32_t>(model.num_fields()));
  for (const FieldSchema& schema : model.field_schemas()) {
    WriteString(out, schema.name);
    WritePod(out, static_cast<uint8_t>(schema.is_sparse ? 1 : 0));
  }
}

void BuildDensePayload(std::ostream& out, const FieldVae& model) {
  const auto params = model.DenseParams();
  WritePod(out, static_cast<uint32_t>(params.size()));
  for (const Matrix* param : params) WriteMatrix(out, *param);
}

void BuildTablesPayload(std::ostream& out, const FieldVae& model) {
  for (size_t k = 0; k < model.num_fields(); ++k) {
    WriteTable(out, model.input_table(k));
    WriteTable(out, model.output_table(k));
  }
}

/// AdaGrad accumulators are stored keyed by feature ID, not by row index:
/// DynamicHashTable assigns row indices in insertion order, and a loader
/// re-inserts in Items() (slot) order, so row numbering is not stable
/// across a save/load cycle but keys are.
void BuildOptimizerPayload(std::ostream& out, const FieldVae& model) {
  const nn::AdamOptimizer& adam = model.dense_optimizer();
  WritePod(out, adam.step_count());
  WritePod(out, static_cast<uint32_t>(adam.first_moments().size()));
  for (const Matrix& m : adam.first_moments()) WriteMatrix(out, m);
  for (const Matrix& v : adam.second_moments()) WriteMatrix(out, v);
  for (size_t k = 0; k < model.num_fields(); ++k) {
    for (const nn::EmbeddingTable* table :
         {&model.input_table(k), &model.output_table(k)}) {
      const auto items = table->Items();
      WritePod(out, static_cast<uint64_t>(items.size()));
      for (const auto& [key, row] : items) {
        WritePod(out, key);
        std::span<const float> accum = table->AdagradRow(row);
        out.write(reinterpret_cast<const char*>(accum.data()),
                  static_cast<std::streamsize>(accum.size() * sizeof(float)));
        const float bias_accum =
            table->with_bias() ? table->adagrad_bias(row) : 0.0f;
        WritePod(out, bias_accum);
      }
    }
  }
}

void BuildCursorPayload(std::ostream& out, const TrainingCursor& cursor) {
  WritePod(out, cursor.epoch);
  WritePod(out, cursor.batch_in_epoch);
  WritePod(out, cursor.step);
  WritePod(out, cursor.users_processed);
  WritePod(out, cursor.epoch_loss_accum);
  WritePod(out, cursor.shuffle_seed);
  WritePod(out, cursor.prior_seconds);
  WriteDoubleVector(out, cursor.epoch_loss);
  WriteDoubleVector(out, cursor.candidate_accum);
  WriteRngState(out, cursor.model_rng);
  WritePod(out, static_cast<uint32_t>(cursor.input_table_rng.size()));
  for (const RngState& state : cursor.input_table_rng) {
    WriteRngState(out, state);
  }
  for (const RngState& state : cursor.output_table_rng) {
    WriteRngState(out, state);
  }
}

void BuildRngPayload(std::ostream& out, const FieldVae& model) {
  WriteRngState(out, model.rng_state());
  WritePod(out, static_cast<uint32_t>(model.num_fields()));
  for (size_t k = 0; k < model.num_fields(); ++k) {
    WriteRngState(out, model.input_table(k).rng_state());
  }
  for (size_t k = 0; k < model.num_fields(); ++k) {
    WriteRngState(out, model.output_table(k).rng_state());
  }
}

// ---------------------------------------------------------------------------
// Block parsers, shared between the v1 and v2 loaders.

Status ParseConfig(BufferReader& in, FvaeConfig* config) {
  uint64_t latent = 0;
  if (!in.ReadPod(&latent)) return Status::IoError("truncated config");
  config->latent_dim = static_cast<size_t>(latent);
  if (!ReadSizeVector(in, &config->encoder_hidden) ||
      !ReadSizeVector(in, &config->decoder_hidden)) {
    return Status::InvalidArgument("bad hidden dims");
  }
  uint32_t alpha_count = 0;
  if (!in.ReadPod(&alpha_count) || alpha_count > 1024) {
    return Status::InvalidArgument("bad alpha count");
  }
  config->alpha.resize(alpha_count);
  for (float& a : config->alpha) {
    if (!in.ReadPod(&a)) return Status::IoError("truncated alpha");
  }
  uint64_t anneal = 0;
  uint32_t schedule = 0;
  uint32_t strategy = 0;
  uint8_t batched = 1;
  if (!in.ReadPod(&config->beta) || !in.ReadPod(&anneal) ||
      !in.ReadPod(&schedule) || !in.ReadPod(&strategy) ||
      !in.ReadPod(&config->sampling_rate) || !in.ReadPod(&batched) ||
      !in.ReadPod(&config->dense_learning_rate) ||
      !in.ReadPod(&config->sparse_learning_rate) ||
      !in.ReadPod(&config->embedding_init_stddev) ||
      !in.ReadPod(&config->seed)) {
    return Status::IoError("truncated config");
  }
  config->anneal_steps = static_cast<size_t>(anneal);
  config->anneal_schedule = static_cast<AnnealSchedule>(schedule);
  config->sampling_strategy = static_cast<SamplingStrategy>(strategy);
  config->batched_softmax = batched != 0;
  return Status::Ok();
}

Status ParseSchemas(BufferReader& in, std::vector<FieldSchema>* schemas) {
  uint32_t num_fields = 0;
  if (!in.ReadPod(&num_fields) || num_fields == 0 || num_fields > 1024) {
    return Status::InvalidArgument("bad field count");
  }
  schemas->resize(num_fields);
  for (FieldSchema& schema : *schemas) {
    uint8_t sparse = 0;
    if (!ReadString(in, &schema.name) || !in.ReadPod(&sparse)) {
      return Status::IoError("truncated schema");
    }
    schema.is_sparse = sparse != 0;
  }
  return Status::Ok();
}

Status ParseDense(BufferReader& in, FieldVae* model) {
  uint32_t param_count = 0;
  if (!in.ReadPod(&param_count)) return Status::IoError("truncated params");
  auto params = model->DenseParams();
  if (param_count != params.size()) {
    return Status::InvalidArgument("dense parameter count mismatch");
  }
  for (Matrix* param : params) {
    if (!ReadMatrixInto(in, param)) {
      return Status::InvalidArgument("dense parameter shape mismatch");
    }
  }
  return Status::Ok();
}

Status ParseTables(BufferReader& in, FieldVae* model) {
  for (size_t k = 0; k < model->num_fields(); ++k) {
    if (!ReadTableInto(in, &model->input_table(k)) ||
        !ReadTableInto(in, &model->output_table(k))) {
      return Status::InvalidArgument("embedding table mismatch");
    }
  }
  return Status::Ok();
}

Status ParseOptimizer(BufferReader& in, FieldVae* model) {
  int64_t step_count = 0;
  uint32_t param_count = 0;
  if (!in.ReadPod(&step_count) || !in.ReadPod(&param_count)) {
    return Status::IoError("truncated optimizer state");
  }
  auto params = model->DenseParams();
  if (step_count < 0 || param_count != params.size()) {
    return Status::InvalidArgument("optimizer moment count mismatch");
  }
  std::vector<Matrix> first, second;
  first.reserve(param_count);
  second.reserve(param_count);
  for (std::vector<Matrix>* moments : {&first, &second}) {
    for (uint32_t i = 0; i < param_count; ++i) {
      Matrix m(params[i]->rows(), params[i]->cols());
      if (!ReadMatrixInto(in, &m)) {
        return Status::InvalidArgument("optimizer moment shape mismatch");
      }
      moments->push_back(std::move(m));
    }
  }
  model->dense_optimizer().RestoreState(step_count, std::move(first),
                                        std::move(second));
  for (size_t k = 0; k < model->num_fields(); ++k) {
    for (nn::EmbeddingTable* table :
         {&model->input_table(k), &model->output_table(k)}) {
      uint64_t count = 0;
      if (!in.ReadPod(&count)) {
        return Status::IoError("truncated optimizer state");
      }
      std::vector<float> accum(table->dim());
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t key = 0;
        float bias_accum = 0.0f;
        if (!in.ReadPod(&key) ||
            !in.ReadBytes(accum.data(), accum.size() * sizeof(float)) ||
            !in.ReadPod(&bias_accum)) {
          return Status::IoError("truncated optimizer state");
        }
        const auto row = table->FindRow(key);
        if (!row.has_value()) {
          return Status::InvalidArgument(
              "optimizer accumulator for unknown feature key");
        }
        table->RestoreAdagradRow(*row, accum, bias_accum);
      }
    }
  }
  return Status::Ok();
}

Status ParseCursor(BufferReader& in, FieldVae* model, TrainingCursor* cursor) {
  if (!in.ReadPod(&cursor->epoch) || !in.ReadPod(&cursor->batch_in_epoch) ||
      !in.ReadPod(&cursor->step) || !in.ReadPod(&cursor->users_processed) ||
      !in.ReadPod(&cursor->epoch_loss_accum) ||
      !in.ReadPod(&cursor->shuffle_seed) ||
      !in.ReadPod(&cursor->prior_seconds) ||
      !ReadDoubleVector(in, &cursor->epoch_loss) ||
      !ReadDoubleVector(in, &cursor->candidate_accum) ||
      !ReadRngState(in, &cursor->model_rng)) {
    return Status::IoError("truncated cursor");
  }
  uint32_t num_fields = 0;
  if (!in.ReadPod(&num_fields) || num_fields != model->num_fields()) {
    return Status::InvalidArgument("cursor field count mismatch");
  }
  cursor->input_table_rng.resize(num_fields);
  cursor->output_table_rng.resize(num_fields);
  for (RngState& state : cursor->input_table_rng) {
    if (!ReadRngState(in, &state)) return Status::IoError("truncated cursor");
  }
  for (RngState& state : cursor->output_table_rng) {
    if (!ReadRngState(in, &state)) return Status::IoError("truncated cursor");
  }
  // Restore RNG streams last: the table loads above consumed initializer
  // draws for every re-created row, and these snapshots supersede them.
  model->set_rng_state(cursor->model_rng);
  for (size_t k = 0; k < model->num_fields(); ++k) {
    model->input_table(k).set_rng_state(cursor->input_table_rng[k]);
    model->output_table(k).set_rng_state(cursor->output_table_rng[k]);
  }
  return Status::Ok();
}

Status ParseRng(BufferReader& in, FieldVae* model) {
  RngState model_rng;
  if (!ReadRngState(in, &model_rng)) return Status::IoError("truncated rng");
  uint32_t num_fields = 0;
  if (!in.ReadPod(&num_fields) || num_fields != model->num_fields()) {
    return Status::InvalidArgument("rng field count mismatch");
  }
  std::vector<RngState> input_rng(num_fields), output_rng(num_fields);
  for (RngState& state : input_rng) {
    if (!ReadRngState(in, &state)) return Status::IoError("truncated rng");
  }
  for (RngState& state : output_rng) {
    if (!ReadRngState(in, &state)) return Status::IoError("truncated rng");
  }
  // As with the cursor, restore last so the snapshots supersede the draws
  // the table load consumed creating rows.
  model->set_rng_state(model_rng);
  for (size_t k = 0; k < model->num_fields(); ++k) {
    model->input_table(k).set_rng_state(input_rng[k]);
    model->output_table(k).set_rng_state(output_rng[k]);
  }
  return Status::Ok();
}

Status SaveV2(const FieldVae& model, const TrainingCursor* cursor,
              const std::string& path) {
  AtomicFileWriter writer;
  FVAE_RETURN_IF_ERROR(writer.Open(path, "model_io.save"));
  std::ostream& out = writer.stream();
  out.write(kMagic, 4);
  WritePod(out, kVersion);

  const auto write_section = [&out](uint32_t tag, const auto& build) {
    std::ostringstream payload;
    build(payload);
    WriteSection(out, tag, payload.view());
  };
  write_section(kConfig, [&](std::ostream& p) {
    BuildConfigPayload(p, model.config());
  });
  write_section(kSchemas,
                [&](std::ostream& p) { BuildSchemaPayload(p, model); });
  write_section(kDense, [&](std::ostream& p) { BuildDensePayload(p, model); });
  write_section(kTables,
                [&](std::ostream& p) { BuildTablesPayload(p, model); });
  write_section(kOptimizer,
                [&](std::ostream& p) { BuildOptimizerPayload(p, model); });
  if (cursor != nullptr) {
    write_section(kCursor,
                  [&](std::ostream& p) { BuildCursorPayload(p, *cursor); });
  } else {
    write_section(kRng, [&](std::ostream& p) { BuildRngPayload(p, model); });
  }
  WriteSection(out, kEnd, std::string_view());
  return writer.Commit();
}

/// v1 body: the config/schemas/dense/tables payloads concatenated with no
/// framing and no checksums.
Result<LoadedCheckpoint> LoadV1Body(BufferReader& in) {
  FvaeConfig config;
  FVAE_RETURN_IF_ERROR(ParseConfig(in, &config));
  std::vector<FieldSchema> schemas;
  FVAE_RETURN_IF_ERROR(ParseSchemas(in, &schemas));
  LoadedCheckpoint loaded;
  loaded.model = std::make_unique<FieldVae>(config, schemas);
  FVAE_RETURN_IF_ERROR(ParseDense(in, loaded.model.get()));
  FVAE_RETURN_IF_ERROR(ParseTables(in, loaded.model.get()));
  return loaded;
}

Result<LoadedCheckpoint> LoadV2Body(BufferReader& in,
                                    const std::string& path) {
  LoadedCheckpoint loaded;
  FvaeConfig config;
  uint32_t last_tag = 0;
  bool saw_config = false, saw_schemas = false, saw_dense = false,
       saw_tables = false, saw_end = false;
  while (!saw_end) {
    uint32_t tag = 0;
    uint64_t size = 0;
    if (!in.ReadPod(&tag) || !in.ReadPod(&size)) {
      return Status::IoError("truncated section header in " + path);
    }
    if (tag != kEnd && tag <= last_tag) {
      return Status::InvalidArgument("out-of-order section in " + path);
    }
    last_tag = tag;
    if (size > in.remaining()) {
      return Status::IoError("truncated section " +
                             std::string(SectionName(tag)) + " in " + path);
    }
    std::string payload(size, '\0');
    uint32_t stored_crc = 0;
    // remaining() was checked above, so the payload read cannot fail; the
    // CRC that follows it still can.
    (void)in.ReadBytes(payload.data(), size);
    if (!in.ReadPod(&stored_crc)) {
      return Status::IoError("truncated section " +
                             std::string(SectionName(tag)) + " in " + path);
    }
    const uint32_t computed_crc = Crc32(payload);
    if (stored_crc != computed_crc) {
      return Status::IoError(
          "checksum mismatch in section " + std::string(SectionName(tag)) +
          " of " + path + ": stored " + std::to_string(stored_crc) +
          ", computed " + std::to_string(computed_crc));
    }
    BufferReader section(payload);
    switch (tag) {
      case kEnd:
        saw_end = true;
        break;
      case kConfig:
        FVAE_RETURN_IF_ERROR(ParseConfig(section, &config));
        saw_config = true;
        break;
      case kSchemas: {
        if (!saw_config) {
          return Status::InvalidArgument("schemas before config in " + path);
        }
        std::vector<FieldSchema> schemas;
        FVAE_RETURN_IF_ERROR(ParseSchemas(section, &schemas));
        loaded.model = std::make_unique<FieldVae>(config, schemas);
        saw_schemas = true;
        break;
      }
      case kDense:
        if (!saw_schemas) {
          return Status::InvalidArgument("dense before schemas in " + path);
        }
        FVAE_RETURN_IF_ERROR(ParseDense(section, loaded.model.get()));
        saw_dense = true;
        break;
      case kTables:
        if (!saw_dense) {
          return Status::InvalidArgument("tables before dense in " + path);
        }
        FVAE_RETURN_IF_ERROR(ParseTables(section, loaded.model.get()));
        saw_tables = true;
        break;
      case kOptimizer:
        if (!saw_tables) {
          return Status::InvalidArgument("optimizer before tables in " +
                                         path);
        }
        FVAE_RETURN_IF_ERROR(ParseOptimizer(section, loaded.model.get()));
        break;
      case kCursor:
        if (!saw_tables) {
          return Status::InvalidArgument("cursor before tables in " + path);
        }
        FVAE_RETURN_IF_ERROR(
            ParseCursor(section, loaded.model.get(), &loaded.cursor));
        loaded.has_cursor = true;
        break;
      case kRng:
        if (!saw_tables) {
          return Status::InvalidArgument("rng before tables in " + path);
        }
        FVAE_RETURN_IF_ERROR(ParseRng(section, loaded.model.get()));
        break;
      default:
        // Checksum-verified but unknown: written by a newer minor writer.
        break;
    }
  }
  if (!saw_tables) {
    return Status::InvalidArgument("missing sections in " + path);
  }
  return loaded;
}

Result<LoadedCheckpoint> LoadCheckpointImpl(const std::string& path) {
  FVAE_ASSIGN_OR_RETURN(const std::string data, ReadFileToString(path));
  BufferReader in(data);
  char magic[4];
  if (!in.ReadBytes(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    const size_t found = std::min<size_t>(data.size(), 4);
    return Status::InvalidArgument(
        "bad magic in " + path + ": found [" + HexBytes(data.data(), found) +
        "] (" + std::to_string(data.size()) + " bytes), want \"FVMD\"");
  }
  uint32_t version = 0;
  if (!in.ReadPod(&version)) {
    return Status::IoError("truncated header in " + path);
  }
  if (version == kVersionV1) return LoadV1Body(in);
  if (version == kVersion) return LoadV2Body(in, path);
  return Status::InvalidArgument(
      "unsupported checkpoint version " + std::to_string(version) + " in " +
      path + " (supported: " + std::to_string(kVersionV1) + ".." +
      std::to_string(kVersion) + ")");
}

}  // namespace

Status SaveFieldVae(const FieldVae& model, const std::string& path) {
  return SaveV2(model, nullptr, path);
}

Status SaveCheckpoint(const FieldVae& model, const TrainingCursor& cursor,
                      const std::string& path) {
  return SaveV2(model, &cursor, path);
}

Result<std::unique_ptr<FieldVae>> LoadFieldVae(const std::string& path) {
  FVAE_ASSIGN_OR_RETURN(LoadedCheckpoint loaded, LoadCheckpointImpl(path));
  return std::move(loaded.model);
}

Result<LoadedCheckpoint> LoadCheckpoint(const std::string& path) {
  return LoadCheckpointImpl(path);
}

Status SaveFieldVaeV1ForTesting(const FieldVae& model,
                                const std::string& path) {
  AtomicFileWriter writer;
  FVAE_RETURN_IF_ERROR(writer.Open(path, "model_io.save"));
  std::ostream& out = writer.stream();
  out.write(kMagic, 4);
  WritePod(out, kVersionV1);
  BuildConfigPayload(out, model.config());
  BuildSchemaPayload(out, model);
  BuildDensePayload(out, model);
  BuildTablesPayload(out, model);
  return writer.Commit();
}

}  // namespace fvae::core
