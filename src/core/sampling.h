#ifndef FVAE_CORE_SAMPLING_H_
#define FVAE_CORE_SAMPLING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace fvae::core {

/// Feature-sampling strategies for sparse fields (paper §IV-C3, Fig. 5).
/// All strategies operate on the *batched* candidate set (features with at
/// least one user in the current batch) and keep roughly a fraction r of it.
enum class SamplingStrategy {
  /// Keep every batched candidate (batched softmax only).
  kNone,
  /// The paper's proposal: sample candidates uniformly at random.
  kUniform,
  /// Sample candidates proportionally to their in-batch frequency.
  kFrequency,
  /// Rank candidates by decreasing in-batch frequency and sample them with
  /// an approximately Zipfian (1/rank) distribution.
  kZipfian,
};

/// Parses "none" / "uniform" / "frequency" / "zipfian" (case-sensitive).
/// Aborts on unknown names (configuration error).
SamplingStrategy ParseSamplingStrategy(const std::string& name);
const char* SamplingStrategyName(SamplingStrategy strategy);

/// A batched-softmax candidate: a feature ID and the number of users in the
/// batch that exhibit it (its in-batch frequency).
struct Candidate {
  uint64_t id = 0;
  uint32_t batch_frequency = 0;
};

/// Selects ~rate * candidates.size() candidates according to `strategy`
/// (at least 1 when the input is non-empty). kNone returns all candidates.
/// The returned IDs preserve no particular order; duplicates never occur.
std::vector<uint64_t> SampleCandidates(const std::vector<Candidate>& candidates,
                                       double rate,
                                       SamplingStrategy strategy, Rng& rng);

}  // namespace fvae::core

#endif  // FVAE_CORE_SAMPLING_H_
