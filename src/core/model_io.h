#ifndef FVAE_CORE_MODEL_IO_H_
#define FVAE_CORE_MODEL_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "core/fvae_model.h"

namespace fvae::core {

/// Checkpointing of a FieldVae: the offline module trains, saves, and the
/// serving side reloads for inference (Fig. 2's model serving proxy); the
/// trainer additionally saves mid-run checkpoints it can resume from with
/// bitwise-identical results (ARCHITECTURE.md §10).
///
/// Format v2 (little-endian): magic "FVMD", uint32 version, then a
/// sequence of self-describing sections — uint32 tag, uint64 payload size,
/// payload, uint32 CRC-32 of the payload — terminated by an end-marker
/// section (tag 0, empty payload). Sections: config, schemas, dense
/// parameters, embedding tables, optimizer state (Adam moments + step
/// count, per-key AdaGrad accumulators), training cursor (epoch/step
/// position, RNG states, KL-anneal position). Every load verifies each
/// section's checksum, so a truncated or corrupted file is reported as an
/// IoError — it can never deserialize into a silently-wrong model.
///
/// v1 files (no sections, no checksums, no optimizer state) are still
/// readable; all writes are crash-safe via common/atomic_file.h and fire
/// the `model_io.save.*` failpoints.

/// Exact position of a training run, captured at a step boundary. Together
/// with the optimizer state this is sufficient for TrainFvae to resume and
/// reproduce the uninterrupted run bit for bit (default batched-softmax
/// path; see trainer.h).
struct TrainingCursor {
  /// Epoch index currently in progress and batches already consumed in it.
  uint64_t epoch = 0;
  uint64_t batch_in_epoch = 0;
  /// Global 0-based completed-step count — also the KL-anneal position
  /// (AnnealedBeta is a pure function of the 1-based step).
  uint64_t step = 0;
  uint64_t users_processed = 0;
  /// Loss sum over the current (partial) epoch's batches.
  double epoch_loss_accum = 0.0;
  /// Mean losses of the epochs completed so far.
  std::vector<double> epoch_loss;
  /// Per-field running candidate-count sums (divided by steps at the end).
  std::vector<double> candidate_accum;
  /// Shuffle seed of the run, so resume replays the same batch order.
  uint64_t shuffle_seed = 0;
  /// Wall-clock seconds accumulated before this checkpoint.
  double prior_seconds = 0.0;
  /// Model RNG (reparameterization eps, candidate sampling).
  RngState model_rng;
  /// Per-field row-initializer RNGs, indexed by field.
  std::vector<RngState> input_table_rng;
  std::vector<RngState> output_table_rng;
};

/// A loaded checkpoint: the model plus, when the file carries one (v2
/// trainer checkpoints), the training cursor to resume from.
struct LoadedCheckpoint {
  std::unique_ptr<FieldVae> model;
  bool has_cursor = false;
  TrainingCursor cursor;
};

/// Saves model weights + optimizer state (no cursor): a final export that
/// is exact for inference and an exact warm start for further training.
Status SaveFieldVae(const FieldVae& model, const std::string& path);

/// Saves a mid-run trainer checkpoint: weights, optimizer state, and the
/// training cursor.
Status SaveCheckpoint(const FieldVae& model, const TrainingCursor& cursor,
                      const std::string& path);

/// Loads any supported version; optimizer state and RNG streams are
/// restored when present. The cursor, if any, is ignored.
Result<std::unique_ptr<FieldVae>> LoadFieldVae(const std::string& path);

/// Loads any supported version and also surfaces the training cursor
/// (has_cursor = false for plain SaveFieldVae exports and v1 files).
Result<LoadedCheckpoint> LoadCheckpoint(const std::string& path);

/// Writes the legacy v1 format (no checksums, no optimizer state). Exists
/// solely so tests can exercise the v1 loader shim against current code.
Status SaveFieldVaeV1ForTesting(const FieldVae& model,
                                const std::string& path);

}  // namespace fvae::core

#endif  // FVAE_CORE_MODEL_IO_H_
