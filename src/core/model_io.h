#ifndef FVAE_CORE_MODEL_IO_H_
#define FVAE_CORE_MODEL_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/fvae_model.h"

namespace fvae::core {

/// Checkpointing of a trained FieldVae: the offline module trains, saves,
/// and the serving side reloads for inference (Fig. 2's model serving
/// proxy).
///
/// The checkpoint contains the full FvaeConfig, the field schemas, every
/// dense parameter, and every embedding-table entry (key, weights, bias).
/// Optimizer state (Adam moments, AdaGrad accumulators) is NOT saved: a
/// loaded model is exact for inference and a valid warm start for further
/// training, but the first post-load steps re-estimate optimizer state.
///
/// Format (little-endian): magic "FVMD", uint32 version, config block,
/// schema block, dense-parameter block, per-field table blocks.
Status SaveFieldVae(const FieldVae& model, const std::string& path);

Result<std::unique_ptr<FieldVae>> LoadFieldVae(const std::string& path);

}  // namespace fvae::core

#endif  // FVAE_CORE_MODEL_IO_H_
