#ifndef FVAE_CORE_CHECKPOINT_H_
#define FVAE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/model_io.h"

namespace fvae::core {

/// Periodic-checkpoint policy for a training run.
struct CheckpointManagerOptions {
  /// Directory holding `checkpoint-<step>.fvmd` files (created on first
  /// save if missing).
  std::string dir;
  /// Newest checkpoints kept after each save; older ones are deleted.
  size_t retain = 3;
  /// Transient save failures (kUnavailable) are retried under this policy
  /// before the failure is surfaced.
  RetryOptions retry;
};

/// Writes, rotates, and finds trainer checkpoints in a directory.
///
/// Each Save produces `checkpoint-<step>.fvmd` through the atomic-write
/// path (core/model_io.h), so the directory only ever contains complete
/// checkpoints plus possibly one `.tmp` leftover from a crash, which
/// discovery ignores. Exports `checkpoint.saves`, `checkpoint.bytes`,
/// `checkpoint.save_us` and `checkpoint.resumes` metrics.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointManagerOptions options);

  /// Saves model + cursor as `checkpoint-<cursor.step>.fvmd` (with bounded
  /// retry on transient failures), then deletes all but the newest
  /// `retain` checkpoints.
  Status Save(const FieldVae& model, const TrainingCursor& cursor);

  /// Path of the highest-step complete checkpoint in `dir`, or NotFound
  /// when the directory is missing or holds none.
  static Result<std::string> LatestIn(const std::string& dir);

  /// Loads the highest-step checkpoint in this manager's directory
  /// (NotFound when there is none) and counts a `checkpoint.resumes`.
  Result<LoadedCheckpoint> LoadLatest() const;

  const CheckpointManagerOptions& options() const { return options_; }

 private:
  CheckpointManagerOptions options_;
};

}  // namespace fvae::core

#endif  // FVAE_CORE_CHECKPOINT_H_
