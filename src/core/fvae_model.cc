#include "core/fvae_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "math/kernels/kernel_table.h"
#include "nn/losses.h"
#include "obs/trace.h"

namespace fvae::core {

namespace {

/// Normalized per-field reconstruction weights alpha_k / |alpha| (Eq. 7).
std::vector<float> NormalizedAlpha(const std::vector<float>& alpha,
                                   size_t num_fields) {
  std::vector<float> weights =
      alpha.empty() ? std::vector<float>(num_fields, 1.0f) : alpha;
  FVAE_CHECK(weights.size() == num_fields)
      << "alpha size " << weights.size() << " != fields " << num_fields;
  float total = 0.0f;
  for (float a : weights) {
    FVAE_CHECK(a >= 0.0f) << "negative alpha";
    total += std::fabs(a);
  }
  FVAE_CHECK(total > 0.0f) << "all-zero alpha";
  for (float& a : weights) a /= total;
  return weights;
}

}  // namespace

/// Activations and per-user feature lists the backward pass needs.
struct FieldVae::EncoderCache {
  /// Per batch row: (field, table row, value) of every input feature.
  struct InputRef {
    uint32_t field;
    uint32_t row;
    float value;
  };
  std::vector<std::vector<InputRef>> inputs;
  Matrix h1;  // tanh output of the embedding-sum first layer (B x H1)
};

FieldVae::FieldVae(const FvaeConfig& config,
                   std::vector<FieldSchema> field_schemas)
    : config_(config),
      field_schemas_(std::move(field_schemas)),
      rng_(config.seed) {
  FVAE_CHECK(!field_schemas_.empty()) << "FVAE needs at least one field";
  FVAE_CHECK(config_.latent_dim > 0);
  FVAE_CHECK(!config_.encoder_hidden.empty());
  FVAE_CHECK(!config_.decoder_hidden.empty());
  FVAE_CHECK(config_.sampling_rate > 0.0 && config_.sampling_rate <= 1.0);

  const size_t h1 = config_.encoder_hidden.front();
  const size_t enc_out = config_.encoder_hidden.back();
  const size_t dec_out = config_.decoder_hidden.back();

  for (size_t k = 0; k < field_schemas_.size(); ++k) {
    input_tables_.push_back(std::make_unique<nn::EmbeddingTable>(
        h1, /*with_bias=*/false, config_.embedding_init_stddev,
        config_.seed * 31 + k));
    output_tables_.push_back(std::make_unique<nn::EmbeddingTable>(
        dec_out, /*with_bias=*/true, config_.embedding_init_stddev,
        config_.seed * 37 + k));
  }

  first_bias_.Resize(1, h1);
  first_bias_grad_.Resize(1, h1);

  if (config_.encoder_hidden.size() > 1) {
    encoder_trunk_ = std::make_unique<nn::Mlp>(
        config_.encoder_hidden, nn::Activation::kTanh, rng_,
        /*activate_output=*/true);
  }
  mu_head_ = std::make_unique<nn::DenseLayer>(enc_out, config_.latent_dim,
                                              rng_);
  logvar_head_ = std::make_unique<nn::DenseLayer>(enc_out,
                                                  config_.latent_dim, rng_);

  std::vector<size_t> dec_dims;
  dec_dims.push_back(config_.latent_dim);
  for (size_t d : config_.decoder_hidden) dec_dims.push_back(d);
  decoder_trunk_ = std::make_unique<nn::Mlp>(dec_dims, nn::Activation::kTanh,
                                             rng_, /*activate_output=*/true);

  std::vector<nn::ParamRef> dense_params;
  dense_params.push_back({&first_bias_, &first_bias_grad_});
  if (encoder_trunk_) encoder_trunk_->CollectParams(&dense_params);
  mu_head_->CollectParams(&dense_params);
  logvar_head_->CollectParams(&dense_params);
  decoder_trunk_->CollectParams(&dense_params);
  dense_optimizer_ = std::make_unique<nn::AdamOptimizer>(
      std::move(dense_params), config_.dense_learning_rate);
}

void FieldVae::EncodeInternal(const MultiFieldDataset& dataset,
                              std::span<const uint32_t> users, bool training,
                              Matrix* mu, Matrix* logvar,
                              EncoderCache* cache) {
  FVAE_CHECK(dataset.num_fields() == field_schemas_.size())
      << "dataset field count mismatch";
  const size_t batch = users.size();
  const size_t h1_dim = config_.encoder_hidden.front();

  Matrix h1(batch, h1_dim);
  if (cache != nullptr) {
    cache->inputs.assign(batch, {});
  }
  for (size_t i = 0; i < batch; ++i) {
    float* out = h1.Row(i);
    const float* bias = first_bias_.Row(0);
    for (size_t d = 0; d < h1_dim; ++d) out[d] = bias[d];
    for (size_t k = 0; k < field_schemas_.size(); ++k) {
      nn::EmbeddingTable& table = *input_tables_[k];
      for (const FeatureEntry& e : dataset.UserField(users[i], k)) {
        uint32_t row;
        if (training) {
          row = table.GetOrCreateRow(e.id);
        } else {
          auto found = table.FindRow(e.id);
          if (!found.has_value()) continue;  // cold feature at inference
          row = *found;
        }
        std::span<const float> weights = table.Row(row);
        Kernels().axpy(e.value, weights.data(), out, h1_dim);
        if (cache != nullptr) {
          cache->inputs[i].push_back(
              {static_cast<uint32_t>(k), row, e.value});
        }
      }
    }
    Kernels().tanh_inplace(out, h1_dim);
  }
  if (cache != nullptr) cache->h1 = h1;

  const Matrix* enc_out = &h1;
  Matrix trunk_out;
  if (encoder_trunk_) {
    encoder_trunk_->Forward(h1, &trunk_out, training);
    enc_out = &trunk_out;
  }
  mu_head_->Forward(*enc_out, mu, training);
  logvar_head_->Forward(*enc_out, logvar, training);
  // Clamp log-variance for numeric safety (exp() in KL and reparam).
  for (size_t i = 0; i < logvar->size(); ++i) {
    logvar->data()[i] = std::clamp(logvar->data()[i], -10.0f, 10.0f);
  }
}

void FieldVae::EncodeConst(const MultiFieldDataset& dataset,
                           std::span<const uint32_t> users, Matrix* mu,
                           Matrix* logvar) const {
  // Lookups are read-only; layer forward passes touch only scratch caches.
  auto* self = const_cast<FieldVae*>(this);
  self->EncodeInternal(dataset, users, /*training=*/false, mu, logvar,
                       nullptr);
}

Matrix FieldVae::Encode(const MultiFieldDataset& dataset,
                        std::span<const uint32_t> users) const {
  Matrix mu, logvar;
  EncodeConst(dataset, users, &mu, &logvar);
  return mu;
}

void FieldVae::EncodeWithVariance(const MultiFieldDataset& dataset,
                                  std::span<const uint32_t> users, Matrix* mu,
                                  Matrix* logvar) const {
  EncodeConst(dataset, users, mu, logvar);
}

Matrix FieldVae::EncodeFoldIn(
    std::span<const RawUserFeatures* const> users) const {
  FoldInScratch scratch;
  Matrix mu;
  EncodeFoldInInto(users, &scratch, &mu);
  return mu;
}

void FieldVae::EncodeFoldInInto(std::span<const RawUserFeatures* const> users,
                                FoldInScratch* scratch, Matrix* mu) const {
  // The first hidden activation is computed straight from the raw feature
  // vectors — no throwaway dataset build (the old fold-in path copied every
  // feature into a MultiFieldDataset::Builder first). Mirrors
  // EncodeInternal's inference branch exactly: cold feature IDs are
  // skipped, h1 = tanh(bias + sum value * embedding_row).
  const size_t batch = users.size();
  const size_t h1_dim = config_.encoder_hidden.front();
  Matrix& h1 = scratch->h1;
  h1.Resize(batch, h1_dim);
  for (size_t i = 0; i < batch; ++i) {
    const RawUserFeatures* user = users[i];
    FVAE_CHECK(user != nullptr);
    FVAE_CHECK(user->size() == field_schemas_.size())
        << "fold-in user has " << user->size() << " fields, model expects "
        << field_schemas_.size();
    float* out = h1.Row(i);
    const float* bias = first_bias_.Row(0);
    for (size_t d = 0; d < h1_dim; ++d) out[d] = bias[d];
    for (size_t k = 0; k < field_schemas_.size(); ++k) {
      const nn::EmbeddingTable& table = *input_tables_[k];
      for (const FeatureEntry& e : (*user)[k]) {
        const auto found = table.FindRow(e.id);
        if (!found.has_value()) continue;  // cold feature at inference
        std::span<const float> weights = table.Row(*found);
        Kernels().axpy(e.value, weights.data(), out, h1_dim);
      }
    }
    Kernels().tanh_inplace(out, h1_dim);
  }
  // Layer forward passes touch member scratch only (same const_cast
  // rationale as EncodeConst); the logvar head is never run — fold-in
  // consumers use the posterior mean alone.
  auto* self = const_cast<FieldVae*>(this);
  const Matrix* enc_out = &h1;
  if (encoder_trunk_) {
    self->encoder_trunk_->Forward(h1, &scratch->trunk_out,
                                  /*training=*/false);
    enc_out = &scratch->trunk_out;
  }
  self->mu_head_->Forward(*enc_out, mu, /*training=*/false);
}

Matrix FieldVae::DecoderHidden(const Matrix& z) const {
  Matrix hidden;
  decoder_trunk_->Forward(z, &hidden, /*training=*/false);
  return hidden;
}

Matrix FieldVae::ScoreField(const Matrix& z, size_t k,
                            std::span<const uint64_t> candidate_ids) const {
  FVAE_CHECK(k < field_schemas_.size()) << "field out of range";
  Matrix hdec;
  decoder_trunk_->Forward(z, &hdec, /*training=*/false);

  const nn::EmbeddingTable& table = *output_tables_[k];
  const size_t num_candidates = candidate_ids.size();
  Matrix logits(z.rows(), num_candidates);
  for (size_t c = 0; c < num_candidates; ++c) {
    auto row = table.FindRow(candidate_ids[c]);
    if (!row.has_value()) continue;  // unseen candidate: logit 0
    std::span<const float> w = table.Row(*row);
    const float b = table.bias(*row);
    for (size_t i = 0; i < z.rows(); ++i) {
      const float* h = hdec.Row(i);
      double acc = b;
      for (size_t d = 0; d < w.size(); ++d) acc += double(h[d]) * w[d];
      logits(i, c) = static_cast<float>(acc);
    }
  }
  return logits;
}

Matrix FieldVae::EncodeAndScore(const MultiFieldDataset& dataset,
                                std::span<const uint32_t> users, size_t k,
                                std::span<const uint64_t> candidate_ids)
    const {
  const Matrix z = Encode(dataset, users);
  return ScoreField(z, k, candidate_ids);
}

size_t FieldVae::KnownFeatures(size_t k) const {
  FVAE_CHECK(k < input_tables_.size());
  return input_tables_[k]->num_rows();
}

size_t FieldVae::ParameterCount() const {
  size_t total = first_bias_.size();
  std::vector<nn::ParamRef> params;
  if (encoder_trunk_) encoder_trunk_->CollectParams(&params);
  mu_head_->CollectParams(&params);
  logvar_head_->CollectParams(&params);
  decoder_trunk_->CollectParams(&params);
  for (const nn::ParamRef& p : params) total += p.value->size();
  for (size_t k = 0; k < field_schemas_.size(); ++k) {
    total += input_tables_[k]->num_rows() * input_tables_[k]->dim();
    total += output_tables_[k]->num_rows() * (output_tables_[k]->dim() + 1);
  }
  return total;
}

std::vector<const Matrix*> FieldVae::DenseParams() const {
  auto mutable_params = const_cast<FieldVae*>(this)->DenseParams();
  return {mutable_params.begin(), mutable_params.end()};
}

std::vector<Matrix*> FieldVae::DenseParams() {
  std::vector<nn::ParamRef> refs;
  refs.push_back({&first_bias_, &first_bias_grad_});
  if (encoder_trunk_) encoder_trunk_->CollectParams(&refs);
  mu_head_->CollectParams(&refs);
  logvar_head_->CollectParams(&refs);
  decoder_trunk_->CollectParams(&refs);
  std::vector<Matrix*> params;
  params.reserve(refs.size());
  for (const nn::ParamRef& ref : refs) params.push_back(ref.value);
  return params;
}

StepStats FieldVae::TrainStep(const MultiFieldDataset& dataset,
                              std::span<const uint32_t> users, float beta) {
  FVAE_CHECK(!users.empty()) << "empty batch";
  const size_t batch = users.size();
  const size_t num_fields = field_schemas_.size();
  const std::vector<float> alpha_w =
      NormalizedAlpha(config_.alpha, num_fields);

  StepStats stats;
  stats.field_nll.assign(num_fields, 0.0);
  stats.candidates_per_field.assign(num_fields, 0);

  // ---- Encoder forward ----
  obs::TraceSpan forward_span("train.forward");
  EncoderCache cache;
  Matrix mu, logvar;
  EncodeInternal(dataset, users, /*training=*/true, &mu, &logvar, &cache);
  const size_t latent = config_.latent_dim;

  // ---- Reparameterization ----
  // std_dev = exp(0.5 * logvar), computed once through the vectorized exp
  // kernel and reused by the logvar gradient in the backward pass below.
  Matrix eps(batch, latent);
  Matrix z(batch, latent);
  Matrix std_dev(batch, latent);
  for (size_t i = 0; i < std_dev.size(); ++i) {
    std_dev.data()[i] = 0.5f * logvar.data()[i];
  }
  Kernels().exp_inplace(std_dev.data(), std_dev.size());
  for (size_t i = 0; i < eps.size(); ++i) {
    eps.data()[i] = static_cast<float>(rng_.Normal());
    z.data()[i] = mu.data()[i] + std_dev.data()[i] * eps.data()[i];
  }

  // ---- Decoder trunk forward ----
  Matrix hdec;
  decoder_trunk_->Forward(z, &hdec, /*training=*/true);
  const size_t dec_dim = hdec.cols();
  Matrix hdec_grad(batch, dec_dim);
  forward_span.End();

  // ---- Per-field batched softmax + feature sampling + likelihood ----
  obs::TraceSpan fields_span("train.fields");
  std::unordered_map<uint64_t, uint32_t> freq;
  std::unordered_map<uint64_t, uint32_t> position;
  std::vector<Candidate> candidates;
  std::vector<uint64_t> chosen_ids;
  std::vector<uint32_t> rows;
  Matrix wc, wc_grad, logits, logits_grad;
  std::vector<float> counts;
  std::vector<uint32_t> touched_positions;

  for (size_t k = 0; k < num_fields; ++k) {
    // Batch union of observed features with in-batch frequencies.
    freq.clear();
    for (uint32_t u : users) {
      for (const FeatureEntry& e : dataset.UserField(u, k)) ++freq[e.id];
    }
    candidates.clear();
    if (config_.batched_softmax) {
      candidates.reserve(freq.size());
      for (const auto& [id, f] : freq) candidates.push_back({id, f});
    } else {
      // Legacy full softmax: every feature the model has ever seen, plus
      // this batch's new ones.
      for (const auto& [id, f] : freq) {
        output_tables_[k]->GetOrCreateRow(id);
      }
      for (const auto& [id, row] : output_tables_[k]->Items()) {
        (void)row;
        auto it = freq.find(id);
        candidates.push_back(
            {id, it == freq.end() ? 0u : static_cast<uint32_t>(it->second)});
      }
    }
    if (candidates.empty()) continue;

    const bool sample_field =
        field_schemas_[k].is_sparse &&
        config_.sampling_strategy != SamplingStrategy::kNone &&
        config_.batched_softmax;
    if (sample_field) {
      chosen_ids = SampleCandidates(candidates, config_.sampling_rate,
                                    config_.sampling_strategy, rng_);
    } else {
      chosen_ids.clear();
      chosen_ids.reserve(candidates.size());
      for (const Candidate& c : candidates) chosen_ids.push_back(c.id);
    }
    const size_t num_cand = chosen_ids.size();
    stats.candidates_per_field[k] = num_cand;

    position.clear();
    rows.resize(num_cand);
    wc.Resize(num_cand, dec_dim);
    std::vector<float> bc(num_cand);
    for (size_t c = 0; c < num_cand; ++c) {
      position[chosen_ids[c]] = static_cast<uint32_t>(c);
      rows[c] = output_tables_[k]->GetOrCreateRow(chosen_ids[c]);
      std::span<const float> w = output_tables_[k]->Row(rows[c]);
      std::copy(w.begin(), w.end(), wc.Row(c));
      bc[c] = output_tables_[k]->bias(rows[c]);
    }

    // logits = hdec * Wc^T + bc.
    GemmNT(hdec, wc, &logits);
    for (size_t i = 0; i < batch; ++i) {
      float* row = logits.Row(i);
      for (size_t c = 0; c < num_cand; ++c) row[c] += bc[c];
    }

    // Per-user multinomial NLL and gradient over the candidate subset.
    logits_grad.Resize(batch, num_cand);
    counts.assign(num_cand, 0.0f);
    double field_loss = 0.0;
    const float weight = alpha_w[k] / static_cast<float>(batch);
    for (size_t i = 0; i < batch; ++i) {
      touched_positions.clear();
      for (const FeatureEntry& e : dataset.UserField(users[i], k)) {
        auto it = position.find(e.id);
        if (it == position.end()) continue;  // sampled out this step
        counts[it->second] += e.value;
        touched_positions.push_back(it->second);
      }
      std::span<float> grad_row{logits_grad.Row(i), num_cand};
      if (touched_positions.empty()) {
        std::fill(grad_row.begin(), grad_row.end(), 0.0f);
      } else {
        field_loss += nn::MultinomialNll({logits.Row(i), num_cand}, counts,
                                         grad_row);
        for (float& g : grad_row) g *= weight;
      }
      for (uint32_t p : touched_positions) counts[p] = 0.0f;
    }
    stats.field_nll[k] = field_loss / double(batch);

    // Backprop into the decoder hidden state and the candidate rows.
    GemmAccumulate(logits_grad, wc, &hdec_grad);
    GemmTN(logits_grad, hdec, &wc_grad);
    for (size_t c = 0; c < num_cand; ++c) {
      double bias_grad = 0.0;
      for (size_t i = 0; i < batch; ++i) bias_grad += logits_grad(i, c);
      output_tables_[k]->AccumulateGrad(rows[c], {wc_grad.Row(c), dec_dim},
                                        static_cast<float>(bias_grad));
    }
  }
  fields_span.End();

  // ---- KL term ----
  obs::TraceSpan backward_span("train.backward");
  stats.kl = nn::GaussianKl(mu, logvar);
  stats.loss = beta * stats.kl;
  for (size_t k = 0; k < num_fields; ++k) {
    stats.loss += alpha_w[k] * stats.field_nll[k];
  }

  // ---- Backward: decoder trunk -> z -> (mu, logvar) ----
  Matrix z_grad;
  decoder_trunk_->Backward(hdec_grad, &z_grad);

  Matrix mu_grad = z_grad;
  Matrix logvar_grad(batch, latent);
  for (size_t i = 0; i < z_grad.size(); ++i) {
    logvar_grad.data()[i] =
        z_grad.data()[i] * eps.data()[i] * 0.5f * std_dev.data()[i];
  }
  nn::GaussianKlBackward(mu, logvar, beta / static_cast<float>(batch),
                         &mu_grad, &logvar_grad);

  // ---- Heads -> encoder trunk -> first layer ----
  Matrix henc_grad_mu, henc_grad_logvar;
  mu_head_->Backward(mu_grad, &henc_grad_mu);
  logvar_head_->Backward(logvar_grad, &henc_grad_logvar);
  henc_grad_mu.Add(henc_grad_logvar);

  Matrix h1_grad;
  if (encoder_trunk_) {
    encoder_trunk_->Backward(henc_grad_mu, &h1_grad);
  } else {
    h1_grad = std::move(henc_grad_mu);
  }

  // tanh backward of the first layer.
  const size_t h1_dim = config_.encoder_hidden.front();
  FVAE_CHECK(h1_grad.rows() == batch && h1_grad.cols() == h1_dim);
  for (size_t i = 0; i < h1_grad.size(); ++i) {
    const float y = cache.h1.data()[i];
    h1_grad.data()[i] *= (1.0f - y * y);
  }

  first_bias_grad_.SetZero();
  for (size_t i = 0; i < batch; ++i) {
    const float* g = h1_grad.Row(i);
    float* bg = first_bias_grad_.Row(0);
    for (size_t d = 0; d < h1_dim; ++d) bg[d] += g[d];
  }

  std::vector<float> scaled(h1_dim);
  for (size_t i = 0; i < batch; ++i) {
    const float* g = h1_grad.Row(i);
    for (const EncoderCache::InputRef& ref : cache.inputs[i]) {
      for (size_t d = 0; d < h1_dim; ++d) scaled[d] = ref.value * g[d];
      input_tables_[ref.field]->AccumulateGrad(ref.row, scaled);
    }
  }

  backward_span.End();

  // ---- Parameter updates ----
  obs::TraceSpan update_span("train.update");
  dense_optimizer_->Step();
  for (size_t k = 0; k < num_fields; ++k) {
    input_tables_[k]->ApplyGradients(config_.sparse_learning_rate);
    output_tables_[k]->ApplyGradients(config_.sparse_learning_rate);
  }
  return stats;
}

}  // namespace fvae::core
