#ifndef FVAE_CORE_FVAE_CONFIG_H_
#define FVAE_CORE_FVAE_CONFIG_H_

#include <cstdint>
#include <vector>

#include "core/sampling.h"

namespace fvae::core {

/// KL-weight annealing schedules. The paper uses linear warm-up to the
/// peak beta (following Liang et al.); cyclical and cosine schedules are
/// common variants provided for ablation.
enum class AnnealSchedule {
  /// beta(t) = beta * min(1, t / anneal_steps); stays at beta afterwards.
  kLinear,
  /// Linear warm-up repeated every anneal_steps (sawtooth; Fu et al. 2019).
  kCyclical,
  /// Half-cosine ramp from 0 to beta over anneal_steps, then constant.
  kCosine,
};

/// Hyper-parameters of the Field-aware VAE (paper §IV).
struct FvaeConfig {
  /// Latent dimension D of z.
  size_t latent_dim = 64;
  /// Encoder hidden widths; the first entry is also the dimension of the
  /// per-field input embedding tables (the "first layer" of §IV-C1).
  std::vector<size_t> encoder_hidden = {256};
  /// Decoder hidden widths of the shared trunk; the last entry is the
  /// dimension of the per-field output weight rows.
  std::vector<size_t> decoder_hidden = {256};

  /// Per-field reconstruction weights alpha_k (Eq. 7). Empty = all 1.
  std::vector<float> alpha;
  /// Peak KL weight beta (Eq. 7), reached by annealing.
  float beta = 0.2f;
  /// Number of training steps over which beta anneals from 0.
  size_t anneal_steps = 2000;
  /// Shape of the warm-up (paper: linear).
  AnnealSchedule anneal_schedule = AnnealSchedule::kLinear;

  /// Feature-sampling strategy and rate for fields flagged sparse
  /// (§IV-C3). Rate is ignored for strategy kNone.
  SamplingStrategy sampling_strategy = SamplingStrategy::kUniform;
  double sampling_rate = 0.1;

  /// When false, the decoder scores the *full* field vocabulary seen so far
  /// on every step instead of the batch union — this is the legacy softmax
  /// path used to reproduce Mult-VAE-style training cost in Table V.
  bool batched_softmax = true;

  /// Adam learning rate for the dense trunks/heads.
  float dense_learning_rate = 1e-3f;
  /// AdaGrad learning rate for the sparse embedding/output tables.
  float sparse_learning_rate = 5e-2f;

  /// Standard deviation for freshly minted embedding rows.
  float embedding_init_stddev = 0.05f;

  uint64_t seed = 1234;
};

}  // namespace fvae::core

#endif  // FVAE_CORE_FVAE_CONFIG_H_
