#ifndef FVAE_CORE_FVAE_MODEL_H_
#define FVAE_CORE_FVAE_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/hot_path.h"
#include "common/random.h"
#include "core/fvae_config.h"
#include "data/dataset.h"
#include "math/matrix.h"
#include "nn/dense.h"
#include "nn/embedding.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace fvae::core {

/// One user's raw sparse field vector, outside any dataset:
/// features_per_field[k] lists the observed features of field k (may be
/// empty). Used by the online fold-in path, where cold users arrive as bare
/// feature lists rather than dataset indices.
using RawUserFeatures = std::vector<std::vector<FeatureEntry>>;

/// Per-step training statistics.
struct StepStats {
  /// Mean (over batch users) reconstruction NLL per field, alpha-weighted
  /// terms summed in `loss`.
  std::vector<double> field_nll;
  double kl = 0.0;
  double loss = 0.0;
  /// Candidate-set sizes per field after batched softmax + sampling (the
  /// quantity the efficiency tricks shrink).
  std::vector<size_t> candidates_per_field;
};

/// Field-aware Variational Autoencoder (the paper's core contribution).
///
/// Encoder: per-field dynamic-hash embedding tables whose rows are summed
/// over a user's observed features (weighted by feature value), giving the
/// first hidden activation in O(N̄) — equivalent to a dense first layer over
/// the multi-hot input but without materializing it. A tanh MLP trunk then
/// produces mu and log-variance heads of the diagonal Gaussian posterior.
///
/// Decoder: a shared tanh MLP trunk from z, followed by one output head per
/// field; each head holds one weight row + bias per feature in a growable
/// EmbeddingTable and models the field with an independent multinomial
/// (Eq. 1-4). Training normalizes each field's softmax over the batched
/// (and optionally feature-sampled) candidate set (§IV-C2/C3).
///
/// The user representation is the posterior mean mu (paper §III).
class FieldVae {
 public:
  /// `field_schemas` fixes the number of fields and which are sparse
  /// (sampling-eligible). The feature vocabulary itself is open: tables
  /// grow as training encounters new IDs.
  FieldVae(const FvaeConfig& config, std::vector<FieldSchema> field_schemas);

  FieldVae(const FieldVae&) = delete;
  FieldVae& operator=(const FieldVae&) = delete;

  /// One Algorithm-1 training step over `users` from `dataset`, with the
  /// current annealed KL weight `beta`.
  StepStats TrainStep(const MultiFieldDataset& dataset,
                      std::span<const uint32_t> users, float beta);

  /// Posterior means (num users x latent_dim) — the user embeddings.
  /// Unknown feature IDs are skipped (cold-start behaviour).
  Matrix Encode(const MultiFieldDataset& dataset,
                std::span<const uint32_t> users) const;

  /// Posterior means and log-variances.
  void EncodeWithVariance(const MultiFieldDataset& dataset,
                          std::span<const uint32_t> users, Matrix* mu,
                          Matrix* logvar) const;

  /// Fold-in entry point for the online module (Fig. 2): posterior means
  /// (users.size() x latent_dim) for users given directly as raw sparse
  /// field vectors. Each element must have num_fields() entries; unknown
  /// feature IDs are skipped (cold-feature behaviour, same as Encode).
  ///
  /// NOT safe for concurrent callers (layer forward passes reuse member
  /// scratch buffers) — the serving layer serializes calls through
  /// serving::FvaeFoldInEncoder, which is exactly why its micro-batcher
  /// amortizes rather than parallelizes encoder GEMMs.
  Matrix EncodeFoldIn(std::span<const RawUserFeatures* const> users) const;

  /// Reusable scratch for EncodeFoldInInto. Keeping one alive across calls
  /// (per serializing owner) makes a warmed-up fold-in encode
  /// allocation-free: the matrices only grow to the high-water batch shape.
  struct FoldInScratch {
    Matrix h1;         // batch x encoder_hidden[0]
    Matrix trunk_out;  // batch x encoder_hidden.back(), when trunk exists
  };

  /// Allocation-conscious fold-in encode: writes the posterior means
  /// (users.size() x latent_dim) into `*mu` using caller-owned scratch.
  /// Two savings over EncodeFoldIn: no throwaway dataset is built (features
  /// are read straight from the raw vectors), and the log-variance head is
  /// skipped entirely — fold-in consumers only use mu, so that is one whole
  /// GEMM less per request batch. Once scratch/mu have seen the maximum
  /// batch shape a call performs zero heap allocations (runtime-witnessed
  /// by serving_test's operator-new interposer; statically checked by
  /// fvae_lint's FVAE_NOALLOC walk). Same concurrency contract as
  /// EncodeFoldIn: not safe for concurrent callers.
  void EncodeFoldInInto(std::span<const RawUserFeatures* const> users,
                        FoldInScratch* scratch, Matrix* mu) const
      FVAE_HOT FVAE_NOALLOC;

  /// Decoder-trunk activation for latent codes `z` (one row per row of z).
  /// An alternative exported representation: its inner-product geometry is
  /// what the per-field output heads rank features with, so L2/cosine
  /// similarity in this space tracks *profile* similarity — the right
  /// space for mean-pooled look-alike recall (see bench/table6_ab_test).
  Matrix DecoderHidden(const Matrix& z) const;

  /// Decoder logits for `candidate_ids` of field `k`, one row per z row.
  /// Unknown candidates score 0 (cold feature). Row-wise softmax of the
  /// result is the multinomial pi^k(z) restricted to the candidates.
  Matrix ScoreField(const Matrix& z, size_t k,
                    std::span<const uint64_t> candidate_ids) const;

  /// Convenience: embeddings -> scores in one call for evaluation tasks.
  Matrix EncodeAndScore(const MultiFieldDataset& dataset,
                        std::span<const uint32_t> users, size_t k,
                        std::span<const uint64_t> candidate_ids) const;

  size_t num_fields() const { return field_schemas_.size(); }
  size_t latent_dim() const { return config_.latent_dim; }
  const FvaeConfig& config() const { return config_; }
  const std::vector<FieldSchema>& field_schemas() const {
    return field_schemas_;
  }

  /// Features currently known to the input table of field k.
  size_t KnownFeatures(size_t k) const;

  /// Total trainable parameter count (dense + sparse tables), for logging.
  size_t ParameterCount() const;

  /// Dense parameter values, in a stable order across replicas built from
  /// the same config. Used by the distributed trainer's model averaging
  /// and by checkpointing (core/model_io.h).
  std::vector<Matrix*> DenseParams();
  std::vector<const Matrix*> DenseParams() const;

  /// Access to the per-field tables (distributed merging, checkpointing).
  nn::EmbeddingTable& input_table(size_t k) { return *input_tables_[k]; }
  nn::EmbeddingTable& output_table(size_t k) { return *output_tables_[k]; }
  const nn::EmbeddingTable& input_table(size_t k) const {
    return *input_tables_[k];
  }
  const nn::EmbeddingTable& output_table(size_t k) const {
    return *output_tables_[k];
  }

  /// Dense-parameter optimizer (checkpointing of Adam moments).
  nn::AdamOptimizer& dense_optimizer() { return *dense_optimizer_; }
  const nn::AdamOptimizer& dense_optimizer() const {
    return *dense_optimizer_;
  }

  /// Snapshot/restore of the model RNG (reparameterization eps and
  /// candidate sampling draws), so a resumed run replays the exact noise
  /// stream of the uninterrupted one.
  RngState rng_state() const { return rng_.GetState(); }
  void set_rng_state(const RngState& state) { rng_.SetState(state); }

 private:
  struct EncoderCache;

  /// Shared encoder computation. When `cache` is non-null, the per-user
  /// feature lists and intermediate activations needed by backprop are
  /// stored (and tables grow for unseen IDs); otherwise lookup is
  /// read-only.
  void EncodeInternal(const MultiFieldDataset& dataset,
                      std::span<const uint32_t> users, bool training,
                      Matrix* mu, Matrix* logvar, EncoderCache* cache);

  /// Read-only encode used by the const public methods.
  void EncodeConst(const MultiFieldDataset& dataset,
                   std::span<const uint32_t> users, Matrix* mu,
                   Matrix* logvar) const;

  FvaeConfig config_;
  std::vector<FieldSchema> field_schemas_;
  Rng rng_;

  // --- encoder ---
  std::vector<std::unique_ptr<nn::EmbeddingTable>> input_tables_;
  Matrix first_bias_;       // 1 x encoder_hidden[0]
  Matrix first_bias_grad_;
  std::unique_ptr<nn::Mlp> encoder_trunk_;  // only when >1 hidden layer
  std::unique_ptr<nn::DenseLayer> mu_head_;
  std::unique_ptr<nn::DenseLayer> logvar_head_;

  // --- decoder ---
  std::unique_ptr<nn::Mlp> decoder_trunk_;  // latent -> decoder_hidden.back()
  std::vector<std::unique_ptr<nn::EmbeddingTable>> output_tables_;

  std::unique_ptr<nn::AdamOptimizer> dense_optimizer_;
};

}  // namespace fvae::core

#endif  // FVAE_CORE_FVAE_MODEL_H_
