#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "data/batching.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace fvae::core {

float AnnealedBeta(const FvaeConfig& config, size_t step) {
  FVAE_CHECK(step >= 1) << "steps are 1-based";
  const size_t period = std::max<size_t>(1, config.anneal_steps);
  switch (config.anneal_schedule) {
    case AnnealSchedule::kLinear: {
      const float progress = std::min(1.0f, float(step) / float(period));
      return config.beta * progress;
    }
    case AnnealSchedule::kCyclical: {
      // Sawtooth: position within the current cycle, 1-based.
      const size_t phase = ((step - 1) % period) + 1;
      return config.beta * float(phase) / float(period);
    }
    case AnnealSchedule::kCosine: {
      const float progress = std::min(1.0f, float(step) / float(period));
      return config.beta * 0.5f *
             (1.0f - std::cos(float(std::numbers::pi) * progress));
    }
  }
  return config.beta;
}

TrainResult TrainFvae(FieldVae& model, const MultiFieldDataset& dataset,
                      const TrainOptions& options) {
  FVAE_CHECK(options.batch_size > 0);
  FVAE_CHECK(dataset.num_users() > 0) << "cannot train on an empty dataset";

  TrainResult result;
  result.mean_candidates_per_field.assign(model.num_fields(), 0.0);

  BatchIterator batches(dataset.num_users(), options.batch_size,
                        options.shuffle_seed);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter& steps_counter = metrics.Counter("training.steps");
  obs::Counter& users_counter = metrics.Counter("training.users");
  obs::Counter& epochs_counter = metrics.Counter("training.epochs");
  // Loss values live on a linear-ish scale near 1; a fine growth factor
  // keeps the percentile estimates meaningful for them.
  LatencyHistogram& loss_histo =
      metrics.Histo("training.epoch_loss", /*min_value=*/0.01,
                    /*growth=*/1.05, /*num_buckets=*/256);
  LatencyHistogram& epoch_us_histo = metrics.Histo("training.epoch_us");
  LatencyHistogram& step_us_histo = metrics.Histo("training.step_us");
  obs::Gauge& epoch_gauge = metrics.Gauge("training.epoch");
  obs::Gauge& last_loss_gauge = metrics.Gauge("training.last_epoch_loss");

  Stopwatch watch;
  std::vector<uint32_t> batch;
  bool stop = false;

  for (size_t epoch = 0; epoch < options.epochs && !stop; ++epoch) {
    obs::TraceSpan epoch_span("train.epoch");
    Stopwatch epoch_watch;
    double epoch_loss = 0.0;
    size_t epoch_batches = 0;
    while (batches.Next(&batch)) {
      obs::TraceSpan step_span("train.step");
      Stopwatch step_watch;
      const float beta = AnnealedBeta(model.config(), result.steps + 1);
      const StepStats stats = model.TrainStep(dataset, batch, beta);
      step_span.End();
      step_us_histo.Record(step_watch.ElapsedSeconds() * 1e6);
      steps_counter.Increment();
      users_counter.Add(batch.size());
      epoch_loss += stats.loss;
      ++epoch_batches;
      ++result.steps;
      result.users_processed += batch.size();
      for (size_t k = 0; k < stats.candidates_per_field.size(); ++k) {
        result.mean_candidates_per_field[k] +=
            double(stats.candidates_per_field[k]);
      }
      if (options.eval_every_steps > 0 && options.step_callback &&
          result.steps % options.eval_every_steps == 0) {
        options.step_callback(result.steps, watch.ElapsedSeconds());
      }
      if (options.time_budget_seconds > 0.0 &&
          watch.ElapsedSeconds() >= options.time_budget_seconds) {
        stop = true;
        break;
      }
    }
    batches.NewEpoch();
    epochs_counter.Increment();
    epoch_gauge.Set(double(epoch));
    epoch_us_histo.Record(epoch_watch.ElapsedSeconds() * 1e6);
    if (epoch_batches > 0) {
      const double mean_loss = epoch_loss / double(epoch_batches);
      result.epoch_loss.push_back(mean_loss);
      loss_histo.Record(mean_loss);
      last_loss_gauge.Set(mean_loss);
    }
    if (options.epoch_callback && !stop) {
      if (!options.epoch_callback(epoch, result.epoch_loss.back(),
                                  watch.ElapsedSeconds())) {
        stop = true;
      }
    }
  }

  result.seconds = watch.ElapsedSeconds();
  for (double& c : result.mean_candidates_per_field) {
    if (result.steps > 0) c /= double(result.steps);
  }
  return result;
}

}  // namespace fvae::core
