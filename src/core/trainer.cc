#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numbers>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "data/batching.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace fvae::core {

float AnnealedBeta(const FvaeConfig& config, size_t step) {
  FVAE_CHECK(step >= 1) << "steps are 1-based";
  const size_t period = std::max<size_t>(1, config.anneal_steps);
  switch (config.anneal_schedule) {
    case AnnealSchedule::kLinear: {
      const float progress = std::min(1.0f, float(step) / float(period));
      return config.beta * progress;
    }
    case AnnealSchedule::kCyclical: {
      // Sawtooth: position within the current cycle, 1-based.
      const size_t phase = ((step - 1) % period) + 1;
      return config.beta * float(phase) / float(period);
    }
    case AnnealSchedule::kCosine: {
      const float progress = std::min(1.0f, float(step) / float(period));
      return config.beta * 0.5f *
             (1.0f - std::cos(float(std::numbers::pi) * progress));
    }
  }
  return config.beta;
}

namespace {

/// Snapshot of the loop position and all RNG streams, taken right after a
/// completed step so a resumed run replays from the next step.
TrainingCursor CaptureCursor(const FieldVae& model, size_t epoch,
                             size_t batch_in_epoch, const TrainResult& result,
                             double epoch_loss_accum, uint64_t shuffle_seed,
                             double total_seconds) {
  TrainingCursor cursor;
  cursor.epoch = epoch;
  cursor.batch_in_epoch = batch_in_epoch;
  cursor.step = result.steps;
  cursor.users_processed = result.users_processed;
  cursor.epoch_loss_accum = epoch_loss_accum;
  cursor.epoch_loss = result.epoch_loss;
  // mean_candidates_per_field holds running sums until the final divide.
  cursor.candidate_accum = result.mean_candidates_per_field;
  cursor.shuffle_seed = shuffle_seed;
  cursor.prior_seconds = total_seconds;
  cursor.model_rng = model.rng_state();
  for (size_t k = 0; k < model.num_fields(); ++k) {
    cursor.input_table_rng.push_back(model.input_table(k).rng_state());
    cursor.output_table_rng.push_back(model.output_table(k).rng_state());
  }
  return cursor;
}

TrainResult TrainLoop(FieldVae& model, const MultiFieldDataset& dataset,
                      const TrainOptions& options,
                      const TrainingCursor* resume) {
  FVAE_CHECK(options.batch_size > 0);

  TrainResult result;
  result.mean_candidates_per_field.assign(model.num_fields(), 0.0);
  // An empty dataset is a legal no-op (e.g. a shard that received no
  // users), not a crash: there is nothing to iterate and nothing to learn.
  if (dataset.num_users() == 0) return result;

  const uint64_t shuffle_seed =
      resume != nullptr ? resume->shuffle_seed : options.shuffle_seed;
  BatchIterator batches(dataset.num_users(), options.batch_size,
                        shuffle_seed);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter& steps_counter = metrics.Counter("training.steps");
  obs::Counter& users_counter = metrics.Counter("training.users");
  obs::Counter& epochs_counter = metrics.Counter("training.epochs");
  // Loss values live on a linear-ish scale near 1; a fine growth factor
  // keeps the percentile estimates meaningful for them.
  LatencyHistogram& loss_histo =
      metrics.Histo("training.epoch_loss", /*min_value=*/0.01,
                    /*growth=*/1.05, /*num_buckets=*/256);
  LatencyHistogram& epoch_us_histo = metrics.Histo("training.epoch_us");
  LatencyHistogram& step_us_histo = metrics.Histo("training.step_us");
  obs::Gauge& epoch_gauge = metrics.Gauge("training.epoch");
  obs::Gauge& last_loss_gauge = metrics.Gauge("training.last_epoch_loss");

  std::unique_ptr<CheckpointManager> checkpointer;
  if (options.checkpoint_every_steps > 0) {
    FVAE_CHECK(!options.checkpoint_dir.empty())
        << "checkpoint_every_steps requires checkpoint_dir";
    CheckpointManagerOptions manager_options;
    manager_options.dir = options.checkpoint_dir;
    manager_options.retain = options.checkpoint_retain;
    checkpointer = std::make_unique<CheckpointManager>(manager_options);
  }

  size_t start_epoch = 0;
  size_t resumed_batches = 0;
  double resumed_epoch_loss = 0.0;
  double prior_seconds = 0.0;
  if (resume != nullptr) {
    result.steps = size_t(resume->step);
    result.users_processed = size_t(resume->users_processed);
    result.epoch_loss = resume->epoch_loss;
    FVAE_CHECK(resume->candidate_accum.size() == model.num_fields())
        << "cursor does not match this model's field count";
    result.mean_candidates_per_field = resume->candidate_accum;
    start_epoch = size_t(resume->epoch);
    resumed_batches = size_t(resume->batch_in_epoch);
    resumed_epoch_loss = resume->epoch_loss_accum;
    prior_seconds = resume->prior_seconds;
    // Replay the batch schedule to the cursor: each epoch's order is a
    // function of the seed and the reshuffle count alone.
    std::vector<uint32_t> discard;
    for (size_t e = 0; e < start_epoch; ++e) batches.NewEpoch();
    for (size_t b = 0; b < resumed_batches; ++b) {
      FVAE_CHECK(batches.Next(&discard))
          << "cursor batch position exceeds the dataset's batch count";
    }
  }

  Stopwatch watch;
  std::vector<uint32_t> batch;
  bool stop = false;

  for (size_t epoch = start_epoch; epoch < options.epochs && !stop; ++epoch) {
    obs::TraceSpan epoch_span("train.epoch");
    Stopwatch epoch_watch;
    const bool resumed_epoch = resume != nullptr && epoch == start_epoch;
    double epoch_loss = resumed_epoch ? resumed_epoch_loss : 0.0;
    size_t epoch_batches = resumed_epoch ? resumed_batches : 0;
    while (batches.Next(&batch)) {
      obs::TraceSpan step_span("train.step");
      Stopwatch step_watch;
      const float beta = AnnealedBeta(model.config(), result.steps + 1);
      const StepStats stats = model.TrainStep(dataset, batch, beta);
      step_span.End();
      step_us_histo.Record(step_watch.ElapsedSeconds() * 1e6);
      steps_counter.Increment();
      users_counter.Add(batch.size());
      epoch_loss += stats.loss;
      ++epoch_batches;
      ++result.steps;
      result.users_processed += batch.size();
      for (size_t k = 0; k < stats.candidates_per_field.size(); ++k) {
        result.mean_candidates_per_field[k] +=
            double(stats.candidates_per_field[k]);
      }
      if (options.eval_every_steps > 0 && options.step_callback &&
          result.steps % options.eval_every_steps == 0) {
        options.step_callback(result.steps, watch.ElapsedSeconds());
      }
      if (checkpointer != nullptr &&
          result.steps % options.checkpoint_every_steps == 0) {
        const TrainingCursor cursor = CaptureCursor(
            model, epoch, epoch_batches, result, epoch_loss, shuffle_seed,
            prior_seconds + watch.ElapsedSeconds());
        const Status saved = checkpointer->Save(model, cursor);
        // A failed periodic save costs resumability, not correctness;
        // training continues toward the next checkpoint opportunity.
        if (!saved.ok()) {
          FVAE_LOG(WARNING) << "checkpoint save failed: "
                            << saved.ToString();
        }
      }
      if (options.time_budget_seconds > 0.0 &&
          prior_seconds + watch.ElapsedSeconds() >=
              options.time_budget_seconds) {
        stop = true;
        break;
      }
    }
    batches.NewEpoch();
    epochs_counter.Increment();
    epoch_gauge.Set(double(epoch));
    epoch_us_histo.Record(epoch_watch.ElapsedSeconds() * 1e6);
    // An epoch can legally run zero batches (time budget exhausted before
    // its first step, or a resume landing exactly on the epoch boundary):
    // there is no mean loss to report then, and indexing epoch_loss.back()
    // here used to read a value from some *earlier* epoch — or, on the
    // very first one, an empty vector.
    double mean_loss = std::numeric_limits<double>::quiet_NaN();
    if (epoch_batches > 0) {
      mean_loss = epoch_loss / double(epoch_batches);
      result.epoch_loss.push_back(mean_loss);
      loss_histo.Record(mean_loss);
      last_loss_gauge.Set(mean_loss);
    }
    if (options.epoch_callback && !stop) {
      if (!options.epoch_callback(epoch, mean_loss,
                                  prior_seconds + watch.ElapsedSeconds())) {
        stop = true;
      }
    }
  }

  result.seconds = prior_seconds + watch.ElapsedSeconds();
  for (double& c : result.mean_candidates_per_field) {
    if (result.steps > 0) c /= double(result.steps);
  }
  return result;
}

}  // namespace

TrainResult TrainFvae(FieldVae& model, const MultiFieldDataset& dataset,
                      const TrainOptions& options) {
  return TrainLoop(model, dataset, options, nullptr);
}

TrainResult TrainFvaeResumingFrom(FieldVae& model,
                                  const MultiFieldDataset& dataset,
                                  const TrainOptions& options,
                                  const TrainingCursor& cursor) {
  return TrainLoop(model, dataset, options, &cursor);
}

}  // namespace fvae::core
