#include "core/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"

namespace fvae::core {

namespace {

constexpr char kPrefix[] = "checkpoint-";
constexpr char kSuffix[] = ".fvmd";

std::string CheckpointPath(const std::string& dir, uint64_t step) {
  return dir + "/" + kPrefix + std::to_string(step) + kSuffix;
}

/// Parses "checkpoint-<step>.fvmd" into the step, rejecting anything else
/// (including ".tmp" debris from an interrupted atomic write).
bool ParseCheckpointName(const std::string& name, uint64_t* step) {
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + uint64_t(c - '0');
  }
  *step = value;
  return true;
}

/// Steps of all complete checkpoints in `dir`, ascending. NotFound when
/// the directory does not exist.
Result<std::vector<uint64_t>> ListCheckpointSteps(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no checkpoint directory: " + dir);
    }
    return Status::IoError("cannot list checkpoint directory: " + dir);
  }
  std::vector<uint64_t> steps;
  while (const dirent* entry = ::readdir(handle)) {
    uint64_t step = 0;
    if (ParseCheckpointName(entry->d_name, &step)) steps.push_back(step);
  }
  ::closedir(handle);
  std::sort(steps.begin(), steps.end());
  return steps;
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::IoError("cannot create checkpoint directory: " + dir);
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointManagerOptions options)
    : options_(std::move(options)) {
  FVAE_CHECK(!options_.dir.empty()) << "checkpoint directory is required";
  FVAE_CHECK(options_.retain >= 1) << "must retain at least one checkpoint";
}

Status CheckpointManager::Save(const FieldVae& model,
                               const TrainingCursor& cursor) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  Stopwatch watch;
  FVAE_RETURN_IF_ERROR(EnsureDirectory(options_.dir));
  const std::string path = CheckpointPath(options_.dir, cursor.step);
  FVAE_RETURN_IF_ERROR(RetryWithBackoff(options_.retry, [&] {
    return SaveCheckpoint(model, cursor, path);
  }));
  metrics.Counter("checkpoint.saves").Increment();
  metrics.Histo("checkpoint.save_us").Record(watch.ElapsedSeconds() * 1e6);
  struct stat info;
  if (::stat(path.c_str(), &info) == 0) {
    metrics.Counter("checkpoint.bytes").Add(uint64_t(info.st_size));
  }

  // Rotation failures don't invalidate the checkpoint that was just
  // published — warn and keep training.
  auto steps = ListCheckpointSteps(options_.dir);
  if (!steps.ok()) {
    FVAE_LOG(WARNING) << "checkpoint rotation skipped: "
                      << steps.status().ToString();
    return Status::Ok();
  }
  while (steps->size() > options_.retain) {
    const std::string victim = CheckpointPath(options_.dir, steps->front());
    if (std::remove(victim.c_str()) != 0) {
      FVAE_LOG(WARNING) << "cannot remove old checkpoint " << victim;
    }
    steps->erase(steps->begin());
  }
  return Status::Ok();
}

Result<std::string> CheckpointManager::LatestIn(const std::string& dir) {
  FVAE_ASSIGN_OR_RETURN(const std::vector<uint64_t> steps,
                        ListCheckpointSteps(dir));
  if (steps.empty()) {
    return Status::NotFound("no checkpoints in " + dir);
  }
  return CheckpointPath(dir, steps.back());
}

Result<LoadedCheckpoint> CheckpointManager::LoadLatest() const {
  FVAE_ASSIGN_OR_RETURN(const std::string path, LatestIn(options_.dir));
  FVAE_ASSIGN_OR_RETURN(LoadedCheckpoint loaded, LoadCheckpoint(path));
  obs::MetricsRegistry::Global().Counter("checkpoint.resumes").Increment();
  FVAE_LOG(INFO) << "resuming from checkpoint " << path << " (step "
                 << loaded.cursor.step << ")";
  return loaded;
}

}  // namespace fvae::core
