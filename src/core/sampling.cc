#include "core/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fvae::core {

SamplingStrategy ParseSamplingStrategy(const std::string& name) {
  if (name == "none") return SamplingStrategy::kNone;
  if (name == "uniform") return SamplingStrategy::kUniform;
  if (name == "frequency") return SamplingStrategy::kFrequency;
  if (name == "zipfian") return SamplingStrategy::kZipfian;
  FVAE_CHECK(false) << "unknown sampling strategy: " << name;
  return SamplingStrategy::kNone;
}

const char* SamplingStrategyName(SamplingStrategy strategy) {
  switch (strategy) {
    case SamplingStrategy::kNone:
      return "none";
    case SamplingStrategy::kUniform:
      return "uniform";
    case SamplingStrategy::kFrequency:
      return "frequency";
    case SamplingStrategy::kZipfian:
      return "zipfian";
  }
  return "?";
}

namespace {

/// Draws `want` distinct indices from an AliasSampler built over `weights`
/// by rejection of repeats. Falls back to a weighted prefix when rejection
/// stalls (can happen when the weight mass is concentrated on few items).
std::vector<size_t> DistinctWeightedSample(const std::vector<double>& weights,
                                           size_t want, Rng& rng) {
  const size_t n = weights.size();
  AliasSampler alias(weights);
  std::vector<bool> chosen(n, false);
  std::vector<size_t> picks;
  picks.reserve(want);
  // Expected draws is O(want log want) in benign regimes; cap the budget.
  size_t budget = 20 * want + 64;
  while (picks.size() < want && budget-- > 0) {
    const size_t j = alias.Sample(rng);
    if (!chosen[j]) {
      chosen[j] = true;
      picks.push_back(j);
    }
  }
  // Top-up deterministically from the heaviest unchosen items.
  if (picks.size() < want) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return weights[a] > weights[b];
    });
    for (size_t j : order) {
      if (picks.size() >= want) break;
      if (!chosen[j]) {
        chosen[j] = true;
        picks.push_back(j);
      }
    }
  }
  return picks;
}

}  // namespace

std::vector<uint64_t> SampleCandidates(
    const std::vector<Candidate>& candidates, double rate,
    SamplingStrategy strategy, Rng& rng) {
  FVAE_CHECK(rate > 0.0 && rate <= 1.0) << "sampling rate out of range";
  std::vector<uint64_t> out;
  if (candidates.empty()) return out;
  if (strategy == SamplingStrategy::kNone || rate >= 1.0) {
    out.reserve(candidates.size());
    for (const Candidate& c : candidates) out.push_back(c.id);
    return out;
  }

  const size_t want = std::max<size_t>(
      1, static_cast<size_t>(std::llround(rate * double(candidates.size()))));
  if (want >= candidates.size()) {
    out.reserve(candidates.size());
    for (const Candidate& c : candidates) out.push_back(c.id);
    return out;
  }

  switch (strategy) {
    case SamplingStrategy::kUniform: {
      std::vector<uint64_t> picks =
          rng.SampleWithoutReplacement(candidates.size(), want);
      out.reserve(want);
      for (uint64_t p : picks) out.push_back(candidates[p].id);
      break;
    }
    case SamplingStrategy::kFrequency: {
      std::vector<double> weights(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        weights[i] = double(candidates[i].batch_frequency);
      }
      for (size_t j : DistinctWeightedSample(weights, want, rng)) {
        out.push_back(candidates[j].id);
      }
      break;
    }
    case SamplingStrategy::kZipfian: {
      // Rank by decreasing frequency, then weight rank r by 1/(r+1).
      std::vector<size_t> order(candidates.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return candidates[a].batch_frequency > candidates[b].batch_frequency;
      });
      std::vector<double> weights(candidates.size());
      for (size_t r = 0; r < order.size(); ++r) {
        weights[order[r]] = 1.0 / double(r + 1);
      }
      for (size_t j : DistinctWeightedSample(weights, want, rng)) {
        out.push_back(candidates[j].id);
      }
      break;
    }
    case SamplingStrategy::kNone:
      break;  // handled above
  }
  return out;
}

}  // namespace fvae::core
