#ifndef FVAE_CORE_TRAINER_H_
#define FVAE_CORE_TRAINER_H_

#include <functional>
#include <vector>

#include "core/fvae_model.h"
#include "data/dataset.h"

namespace fvae::core {

/// Knobs of the training loop (Algorithm 1).
struct TrainOptions {
  size_t batch_size = 512;
  size_t epochs = 10;
  /// Stop early after this many seconds of wall-clock training (0 = off).
  /// Used by the timed benchmarks (Fig. 6, Table V).
  double time_budget_seconds = 0.0;
  /// Called after every epoch with (epoch index, mean loss, elapsed s);
  /// return false to stop training early.
  std::function<bool(size_t, double, double)> epoch_callback;
  /// Called after every `eval_every_steps` steps (0 = never) with
  /// (step index, elapsed seconds); used by AUC-vs-time studies.
  size_t eval_every_steps = 0;
  std::function<void(size_t, double)> step_callback;
  uint64_t shuffle_seed = 99;
};

/// Aggregated outcome of a training run.
struct TrainResult {
  std::vector<double> epoch_loss;
  size_t steps = 0;
  size_t users_processed = 0;
  double seconds = 0.0;
  /// Mean candidate-set size per field over all steps (what batched softmax
  /// + sampling actually scored).
  std::vector<double> mean_candidates_per_field;

  double UsersPerSecond() const {
    return seconds > 0.0 ? double(users_processed) / seconds : 0.0;
  }
};

/// The annealed KL weight at 1-based training step `step` under the given
/// configuration (exposed for tests and custom training loops).
float AnnealedBeta(const FvaeConfig& config, size_t step);

/// Runs Algorithm 1: shuffled mini-batches, per-batch candidate
/// construction (inside the model), and KL annealing from 0 up to
/// config.beta over config.anneal_steps steps (config.anneal_schedule).
TrainResult TrainFvae(FieldVae& model, const MultiFieldDataset& dataset,
                      const TrainOptions& options);

}  // namespace fvae::core

#endif  // FVAE_CORE_TRAINER_H_
