#ifndef FVAE_CORE_TRAINER_H_
#define FVAE_CORE_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/fvae_model.h"
#include "core/model_io.h"
#include "data/dataset.h"

namespace fvae::core {

/// Knobs of the training loop (Algorithm 1).
struct TrainOptions {
  size_t batch_size = 512;
  size_t epochs = 10;
  /// Stop early after this many seconds of wall-clock training (0 = off).
  /// Used by the timed benchmarks (Fig. 6, Table V).
  double time_budget_seconds = 0.0;
  /// Called after every epoch with (epoch index, mean loss, elapsed s);
  /// return false to stop training early. The mean loss is NaN for an
  /// epoch that ran zero batches (possible when resuming at an epoch
  /// boundary or stopping on the time budget).
  std::function<bool(size_t, double, double)> epoch_callback;
  /// Called after every `eval_every_steps` steps (0 = never) with
  /// (step index, elapsed seconds); used by AUC-vs-time studies.
  size_t eval_every_steps = 0;
  std::function<void(size_t, double)> step_callback;
  uint64_t shuffle_seed = 99;
  /// Save a checkpoint every this many global steps (0 = never). Requires
  /// checkpoint_dir.
  size_t checkpoint_every_steps = 0;
  /// Directory for `checkpoint-<step>.fvmd` files (core/checkpoint.h).
  std::string checkpoint_dir;
  /// Newest checkpoints kept per rotation.
  size_t checkpoint_retain = 3;
};

/// Aggregated outcome of a training run. For a resumed run the totals
/// (steps, users, epoch losses, seconds) cover the whole logical run, not
/// just the part after the resume.
struct TrainResult {
  std::vector<double> epoch_loss;
  size_t steps = 0;
  size_t users_processed = 0;
  double seconds = 0.0;
  /// Mean candidate-set size per field over all steps (what batched softmax
  /// + sampling actually scored).
  std::vector<double> mean_candidates_per_field;

  double UsersPerSecond() const {
    return seconds > 0.0 ? double(users_processed) / seconds : 0.0;
  }
};

/// The annealed KL weight at 1-based training step `step` under the given
/// configuration (exposed for tests and custom training loops).
float AnnealedBeta(const FvaeConfig& config, size_t step);

/// Runs Algorithm 1: shuffled mini-batches, per-batch candidate
/// construction (inside the model), and KL annealing from 0 up to
/// config.beta over config.anneal_steps steps (config.anneal_schedule).
/// An empty dataset is a no-op returning a zeroed result.
///
/// With checkpoint_every_steps set, the loop saves crash-safe checkpoints
/// through a CheckpointManager; a save failure is logged and training
/// continues.
TrainResult TrainFvae(FieldVae& model, const MultiFieldDataset& dataset,
                      const TrainOptions& options);

/// Resumes a run from `cursor` (loaded via core/checkpoint.h along with
/// the model it describes). Replays the batch schedule up to the cursor
/// and continues to options.epochs; with the default batched-softmax path
/// the final parameters are bitwise-identical to the uninterrupted run.
/// The cursor's shuffle seed overrides options.shuffle_seed.
TrainResult TrainFvaeResumingFrom(FieldVae& model,
                                  const MultiFieldDataset& dataset,
                                  const TrainOptions& options,
                                  const TrainingCursor& cursor);

}  // namespace fvae::core

#endif  // FVAE_CORE_TRAINER_H_
