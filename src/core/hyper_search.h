#ifndef FVAE_CORE_HYPER_SEARCH_H_
#define FVAE_CORE_HYPER_SEARCH_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "core/fvae_config.h"

namespace fvae::core {

/// Search space for FVAE hyper-parameters. The paper (§V-D2) recommends
/// plain random search (Bergstra & Bengio) for tuning alpha — this utility
/// implements it over the full configuration.
struct FvaeSearchSpace {
  /// Discrete choices (picked uniformly).
  std::vector<size_t> latent_choices{32, 48, 64};
  std::vector<size_t> hidden_choices{128, 192, 256};
  std::vector<SamplingStrategy> strategy_choices{SamplingStrategy::kUniform};

  /// Continuous ranges (uniform unless noted).
  float beta_min = 0.0f;
  float beta_max = 0.5f;
  double sampling_rate_min = 0.05;
  double sampling_rate_max = 0.5;
  /// Per-field alpha, sampled log-uniformly over [10^lo, 10^hi] — the
  /// paper's Fig. 7 shows alpha matters across orders of magnitude.
  float alpha_log10_min = -2.0f;
  float alpha_log10_max = 1.0f;
  /// When false, alpha stays at the all-ones default.
  bool search_alpha = true;
};

/// One completed trial.
struct SearchTrial {
  FvaeConfig config;
  double score = 0.0;
};

/// Outcome of a random search (higher score = better).
struct SearchOutcome {
  FvaeConfig best_config;
  double best_score = 0.0;
  std::vector<SearchTrial> trials;
};

/// Draws one configuration from the space. `base` supplies every field the
/// space does not cover (learning rates, anneal steps, seed...).
FvaeConfig SampleConfig(const FvaeSearchSpace& space, const FvaeConfig& base,
                        size_t num_fields, Rng& rng);

/// Runs `num_trials` random configurations through `objective` (which
/// trains/evaluates and returns a score to MAXIMIZE) and returns the best.
/// Deterministic given `rng` state and a deterministic objective.
SearchOutcome RandomSearch(
    const FvaeSearchSpace& space, const FvaeConfig& base, size_t num_fields,
    size_t num_trials,
    const std::function<double(const FvaeConfig&)>& objective, Rng& rng);

}  // namespace fvae::core

#endif  // FVAE_CORE_HYPER_SEARCH_H_
