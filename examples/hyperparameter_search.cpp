// Random hyper-parameter search (paper §V-D2 recommends Random search for
// tuning the per-field alpha weights): sample FVAE configurations, score
// each by validation tag-prediction AUC, keep the best.
//
//   ./build/examples/hyperparameter_search

#include <cstdio>
#include <numeric>

#include "baselines/fvae_adapter.h"
#include "core/hyper_search.h"
#include "datagen/profile_generator.h"
#include "eval/tasks.h"

int main() {
  using namespace fvae;

  // Small dataset so each trial trains in a couple of seconds.
  ProfileGeneratorConfig gen_config = ShortContentConfig(800, /*seed=*/9);
  gen_config.fields[2].vocab_size = 512;
  gen_config.fields[3].vocab_size = 1024;
  gen_config.num_topics = 8;
  const GeneratedProfiles gen = GenerateProfiles(gen_config);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  std::vector<uint32_t> eval_users(400);
  std::iota(eval_users.begin(), eval_users.end(), 0u);
  constexpr size_t kTagField = 3;

  // Base config: everything the search does not touch.
  core::FvaeConfig base;
  base.anneal_steps = 60;
  base.seed = 17;

  core::FvaeSearchSpace space;
  space.latent_choices = {8, 16, 32};
  space.hidden_choices = {32, 64};
  space.beta_min = 0.0f;
  space.beta_max = 0.4f;
  space.sampling_rate_min = 0.2;
  space.sampling_rate_max = 0.8;

  size_t trial_index = 0;
  auto objective = [&](const core::FvaeConfig& config) {
    core::TrainOptions options;
    options.batch_size = 100;
    options.epochs = 8;
    baselines::FvaeAdapter model(config, options);
    model.Fit(gen.dataset);
    Rng task_rng(23);  // same negatives for every trial
    const double auc =
        eval::RunTagPrediction(model, gen.dataset, eval_users, kTagField,
                               gen.field_vocab[kTagField], task_rng)
            .auc;
    std::printf(
        "trial %2zu: latent=%-3zu hidden=%-3zu beta=%.2f r=%.2f "
        "alpha=[%.2g %.2g %.2g %.2g]  ->  AUC %.4f\n",
        trial_index++, config.latent_dim, config.encoder_hidden[0],
        config.beta, config.sampling_rate, config.alpha[0], config.alpha[1],
        config.alpha[2], config.alpha[3], auc);
    return auc;
  };

  Rng search_rng(31);
  const core::SearchOutcome outcome = core::RandomSearch(
      space, base, gen.dataset.num_fields(), /*num_trials=*/8, objective,
      search_rng);

  std::printf(
      "\nbest: AUC %.4f with latent=%zu hidden=%zu beta=%.2f r=%.2f\n",
      outcome.best_score, outcome.best_config.latent_dim,
      outcome.best_config.encoder_hidden[0], outcome.best_config.beta,
      outcome.best_config.sampling_rate);
  return 0;
}
