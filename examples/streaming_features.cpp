// Demonstrates the open-vocabulary property of the dynamic hash tables
// (paper §IV-C1): the model keeps training as brand-new feature IDs arrive
// — no re-indexing, no feature hashing, no collisions.
//
//   ./build/examples/streaming_features

#include <cstdio>
#include <numeric>

#include "core/fvae_model.h"
#include "core/trainer.h"
#include "datagen/profile_generator.h"

int main() {
  using namespace fvae;

  // Day 1: an initial batch of users with the day-1 vocabulary.
  ProfileGeneratorConfig day1 = ShortContentConfig(600, /*seed=*/1);
  day1.fields[3].vocab_size = 1024;
  const GeneratedProfiles gen1 = GenerateProfiles(day1);

  core::FvaeConfig config;
  config.latent_dim = 16;
  config.encoder_hidden = {64};
  config.decoder_hidden = {64};
  config.sampling_strategy = core::SamplingStrategy::kUniform;
  config.sampling_rate = 0.3;
  core::FieldVae model(config, gen1.dataset.fields());

  core::TrainOptions options;
  options.batch_size = 128;
  options.epochs = 5;
  core::TrainFvae(model, gen1.dataset, options);
  std::printf("after day 1: known features per field:");
  for (size_t k = 0; k < model.num_fields(); ++k) {
    std::printf(" %s=%zu", gen1.dataset.field(k).name.c_str(),
                model.KnownFeatures(k));
  }
  std::printf("\nparameters: %zu\n", model.ParameterCount());

  // Day 2: new users whose profiles use a larger, partially fresh
  // vocabulary (seed change scatters new raw IDs). The same model instance
  // keeps training; its tables grow in place.
  ProfileGeneratorConfig day2 = ShortContentConfig(600, /*seed=*/2);
  day2.fields[3].vocab_size = 2048;  // vocabulary grew overnight
  const GeneratedProfiles gen2 = GenerateProfiles(day2);
  core::TrainFvae(model, gen2.dataset, options);

  std::printf("after day 2: known features per field:");
  for (size_t k = 0; k < model.num_fields(); ++k) {
    std::printf(" %s=%zu", gen2.dataset.field(k).name.c_str(),
                model.KnownFeatures(k));
  }
  std::printf("\nparameters: %zu\n", model.ParameterCount());

  // Day-2 users (including ones with brand-new features) encode fine.
  std::vector<uint32_t> users(8);
  std::iota(users.begin(), users.end(), 0u);
  const Matrix z = model.Encode(gen2.dataset, users);
  std::printf("day-2 embeddings: %zux%zu, first row:\n", z.rows(),
              z.cols());
  for (size_t d = 0; d < z.cols(); ++d) std::printf("%.3f ", z(0, d));
  std::printf("\n\nThe vocabulary grew without re-indexing — this is what\n"
              "static feature hashing cannot do without collisions.\n");
  return 0;
}
