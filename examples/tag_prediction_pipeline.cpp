// Tag-prediction pipeline on synthetic Short-Content-like profiles: the
// matching-stage workload from the paper's evaluation (§V-B2). Trains the
// FVAE and a PCA baseline, then evaluates fold-in tag prediction.
//
//   ./build/examples/tag_prediction_pipeline

#include <cstdio>
#include <numeric>

#include "baselines/fvae_adapter.h"
#include "baselines/pca.h"
#include "common/random.h"
#include "datagen/profile_generator.h"
#include "eval/tasks.h"

int main() {
  using namespace fvae;

  // Synthetic SC-like data: 4 fields (ch1/ch2/ch3/tag), power-law
  // popularity, topic-driven inter-field correlation.
  ProfileGeneratorConfig gen_config = ShortContentConfig(
      /*num_users=*/2000, /*seed=*/7);
  gen_config.fields[3].vocab_size = 4096;
  const GeneratedProfiles gen = GenerateProfiles(gen_config);
  std::printf("dataset: %s\n", gen.dataset.Summary().c_str());

  // FVAE.
  core::FvaeConfig config;
  config.latent_dim = 32;
  config.encoder_hidden = {128};
  config.decoder_hidden = {128};
  config.beta = 0.1f;
  config.sampling_strategy = core::SamplingStrategy::kUniform;
  config.sampling_rate = 0.2;
  core::TrainOptions train_options;
  train_options.batch_size = 256;
  train_options.epochs = 12;
  baselines::FvaeAdapter fvae(config, train_options);
  std::printf("training FVAE...\n");
  fvae.Fit(gen.dataset);

  // PCA baseline.
  baselines::PcaModel::Options pca_options;
  pca_options.latent_dim = 32;
  baselines::PcaModel pca(pca_options);
  std::printf("fitting PCA...\n");
  pca.Fit(gen.dataset);

  // Evaluate: mask the tag field, predict each user's tags against
  // equally many random negatives.
  std::vector<uint32_t> users(std::min<size_t>(800,
                                               gen.dataset.num_users()));
  std::iota(users.begin(), users.end(), 0u);
  constexpr size_t kTagField = 3;

  Rng rng1(11), rng2(11);
  const eval::TaskMetrics fvae_metrics = eval::RunTagPrediction(
      fvae, gen.dataset, users, kTagField, gen.field_vocab[kTagField],
      rng1);
  const eval::TaskMetrics pca_metrics = eval::RunTagPrediction(
      pca, gen.dataset, users, kTagField, gen.field_vocab[kTagField], rng2);

  std::printf("\n%-8s  %-8s  %-8s\n", "model", "AUC", "mAP");
  std::printf("%-8s  %.4f    %.4f\n", "FVAE", fvae_metrics.auc,
              fvae_metrics.map);
  std::printf("%-8s  %.4f    %.4f\n", "PCA", pca_metrics.auc,
              pca_metrics.map);
  std::printf("\nFVAE should clearly beat the linear baseline.\n");
  return 0;
}
