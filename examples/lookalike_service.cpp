// End-to-end deployment walkthrough of Fig. 2: offline training and
// embedding inference, dump to the (HDFS stand-in) embedding store, online
// serving through the proxy + LRU cache, and look-alike account recall.
//
//   ./build/examples/lookalike_service

#include <cstdio>
#include <filesystem>
#include <numeric>

#include "baselines/fvae_adapter.h"
#include "common/stopwatch.h"
#include "datagen/profile_generator.h"
#include "lookalike/ab_test.h"
#include "lookalike/ann_index.h"
#include "lookalike/lookalike_system.h"
#include "serving/embedding_store.h"
#include "serving/serving_proxy.h"

int main() {
  using namespace fvae;

  // ---- Data construction module ----
  ProfileGeneratorConfig gen_config = ShortContentConfig(
      /*num_users=*/1500, /*seed=*/3);
  const GeneratedProfiles gen = GenerateProfiles(gen_config);
  std::printf("[data] %s\n", gen.dataset.Summary().c_str());

  // ---- Offline module: train + infer + store ----
  core::FvaeConfig config;
  config.latent_dim = 32;
  config.encoder_hidden = {128};
  config.decoder_hidden = {128};
  config.sampling_strategy = core::SamplingStrategy::kUniform;
  config.sampling_rate = 0.2;
  core::TrainOptions train_options;
  train_options.batch_size = 256;
  train_options.epochs = 10;
  baselines::FvaeAdapter fvae(config, train_options);
  std::printf("[offline] training FVAE...\n");
  fvae.Fit(gen.dataset);

  std::vector<uint32_t> users(gen.dataset.num_users());
  std::iota(users.begin(), users.end(), 0u);
  const Matrix embeddings = fvae.Embed(gen.dataset, users);

  const std::string store_path = "lookalike_embeddings.bin";
  {
    serving::EmbeddingStore store;
    std::vector<uint64_t> ids(users.begin(), users.end());
    store.PutBatch(ids, embeddings);
    const Status status = store.Save(store_path);
    std::printf("[offline] dumped %zu embeddings to %s (%s)\n",
                store.size(), store_path.c_str(),
                status.ToString().c_str());
  }

  // ---- Online module: serving proxy + cache ----
  auto loaded = serving::EmbeddingStore::Load(store_path);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  serving::ServingProxy proxy(&*loaded, /*cache_capacity=*/512);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t user = 0; user < 300; ++user) proxy.Lookup(user);
  }
  std::printf("[online] %zu lookups, cache hit rate %.1f%%\n",
              proxy.stats().requests,
              100.0 * proxy.stats().CacheHitRate());

  // ---- Look-alike recall ----
  lookalike::AbTestConfig ab_config;
  ab_config.num_accounts = 120;
  ab_config.seed_followers_per_account = 20;
  lookalike::LookalikeAbTest ab(gen.topic_mixture, ab_config);
  lookalike::LookalikeSystem system(embeddings, ab.seed_followers());

  std::printf("[lookalike] top accounts for 3 users:\n");
  for (uint32_t user : {0u, 1u, 2u}) {
    const auto recalled = system.Recall(user, 5, {});
    std::printf("  user %u ->", user);
    for (uint32_t account : recalled) {
      std::printf(" acct%u(affinity %.2f)", account,
                  ab.Affinity(user, account));
    }
    std::printf("\n");
  }

  // ---- ANN-accelerated recall ----
  // Production recall cannot brute-force millions of accounts per request;
  // an IVF index probes a few k-means cells instead.
  {
    lookalike::AnnIndex::Options ann_options;
    ann_options.num_cells = 16;
    lookalike::AnnIndex ann(system.account_embeddings(), ann_options);
    Matrix queries(8, embeddings.cols());
    for (size_t q = 0; q < 8; ++q) {
      const float* row = embeddings.Row(q);
      std::copy(row, row + embeddings.cols(), queries.Row(q));
    }
    for (size_t nprobe : {size_t{1}, size_t{4}, size_t{16}}) {
      std::printf("[ann] nprobe=%zu recall@10 = %.3f\n", nprobe,
                  ann.MeasureRecall(queries, 10, nprobe));
    }
  }

  // ---- A/B sanity: FVAE vs noise embeddings ----
  Rng noise_rng(5);
  const Matrix noise =
      Matrix::Gaussian(users.size(), embeddings.cols(), 1.0f, noise_rng);
  const lookalike::ArmMetrics fvae_arm = ab.RunArm("fvae", embeddings);
  const lookalike::ArmMetrics noise_arm = ab.RunArm("noise", noise);
  std::printf(
      "[ab] following clicks: FVAE %zu vs noise %zu (%+.1f%%)\n",
      fvae_arm.following_clicks, noise_arm.following_clicks,
      100.0 * (double(fvae_arm.following_clicks) /
                   std::max<size_t>(1, noise_arm.following_clicks) -
               1.0));

  std::filesystem::remove(store_path);
  return 0;
}
