// Quickstart: build a small multi-field dataset, train a Field-aware VAE,
// and use the learned user representations.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <numeric>

#include "core/fvae_model.h"
#include "core/trainer.h"
#include "data/dataset.h"

int main() {
  using namespace fvae;

  // 1. Describe the feature fields. Sparse fields are eligible for the
  //    feature-sampling speedup during training.
  MultiFieldDataset::Builder builder({
      FieldSchema{"channel", /*is_sparse=*/false},
      FieldSchema{"tag", /*is_sparse=*/true},
  });

  // 2. Add users. Feature IDs are raw 64-bit values — no preprocessing or
  //    vocabulary building needed; the model's dynamic hash tables absorb
  //    new IDs on the fly. Here: two interest groups.
  for (int i = 0; i < 64; ++i) {
    builder.AddUser({{{/*id=*/1, /*value=*/1.0f}},
                     {{100, 1.0f}, {101, 1.0f}}});  // "sports" users
    builder.AddUser({{{2, 1.0f}},
                     {{200, 1.0f}, {201, 1.0f}}});  // "music" users
  }
  const MultiFieldDataset dataset = builder.Build();
  std::printf("dataset: %s\n", dataset.Summary().c_str());

  // 3. Configure and train the FVAE (Algorithm 1 with KL annealing).
  core::FvaeConfig config;
  config.latent_dim = 8;
  config.encoder_hidden = {32};
  config.decoder_hidden = {32};
  config.beta = 0.1f;
  config.sampling_strategy = core::SamplingStrategy::kUniform;
  config.sampling_rate = 0.5;

  core::FieldVae model(config, dataset.fields());
  core::TrainOptions options;
  options.batch_size = 32;
  options.epochs = 20;
  options.epoch_callback = [](size_t epoch, double loss, double seconds) {
    if (epoch % 5 == 0) {
      std::printf("epoch %2zu  loss %.4f  (%.2fs)\n", epoch, loss, seconds);
    }
    return true;  // keep training
  };
  const core::TrainResult result = core::TrainFvae(model, dataset, options);
  std::printf("trained %zu steps, %.0f users/s\n", result.steps,
              result.UsersPerSecond());

  // 4. Encode users: the representation is the posterior mean.
  std::vector<uint32_t> users(4);
  std::iota(users.begin(), users.end(), 0u);
  const Matrix z = model.Encode(dataset, users);
  std::printf("\nuser embeddings (%zux%zu):\n%s\n", z.rows(), z.cols(),
              z.ToString().c_str());

  // 5. Score tag candidates for a user seen only through its channel —
  //    the fold-in / matching-stage use case.
  MultiFieldDataset::Builder probe_builder(dataset.fields());
  probe_builder.AddUser({{{1, 1.0f}}, {}});  // sports channel, no tags
  const MultiFieldDataset probe = probe_builder.Build();
  const std::vector<uint64_t> candidates{100, 101, 200, 201};
  const Matrix scores = model.EncodeAndScore(
      probe, std::vector<uint32_t>{0}, /*field=*/1, candidates);
  std::printf("tag scores for a 'sports' user: ");
  for (size_t c = 0; c < candidates.size(); ++c) {
    std::printf("tag%lu=%.2f ", (unsigned long)candidates[c],
                scores(0, c));
  }
  std::printf("\n(expect tags 100/101 to outscore 200/201)\n");
  return 0;
}
