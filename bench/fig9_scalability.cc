// Reproduces Fig. 9: FVAE training-time scalability on Barabasi-Albert
// synthetic data. Two sweeps, as in the paper:
//   (a) vary the average feature size per user with the max feature count
//       fixed (paper: 1e5) -> time must grow ~linearly;
//   (b) vary the max feature count with the average feature size fixed
//       (paper: 200) -> time must stay ~flat.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "core/fvae_model.h"
#include "core/trainer.h"
#include "datagen/barabasi_albert.h"

namespace fvae::bench {
namespace {

double TimeOneEpoch(const MultiFieldDataset& data, Scale scale) {
  core::FvaeConfig config = SweepFvaeConfig(scale, 121);
  config.sampling_rate = 0.1;
  core::FieldVae model(config, data.fields());
  core::TrainOptions options;
  // Modest batches keep the batch-union candidate sets well below the
  // vocabulary cap, so sweep (a) stays in the linear (unsaturated) regime
  // the paper plots.
  options.batch_size = 128;
  options.epochs = 1;
  const core::TrainResult result = core::TrainFvae(model, data, options);
  return result.seconds;
}

int Run() {
  PrintBanner("Fig. 9 — scalability on Barabasi-Albert synthetic data",
              "FVAE paper, Fig. 9");
  const Scale scale = GetScale();
  const size_t num_users = ByScale<size_t>(scale, 500, 4000, 20000);
  const size_t fixed_max = ByScale<size_t>(scale, 20000, 100000, 100000);
  const size_t fixed_avg = ByScale<size_t>(scale, 50, 200, 200);

  std::printf("\n(a) time vs AVERAGE feature size (max fixed at %zu)\n",
              fixed_max);
  std::printf("%-12s  %-12s  %s\n", "avg features", "epoch time", "ratio");
  double first_time = 0.0;
  size_t first_avg = 0;
  for (size_t avg :
       {fixed_avg / 4, fixed_avg / 2, fixed_avg, fixed_avg * 2}) {
    BarabasiAlbertConfig ba;
    ba.num_users = num_users;
    ba.features_per_user = avg;
    ba.max_features = fixed_max;
    ba.seed = 131;
    const MultiFieldDataset data = GenerateBarabasiAlbert(ba);
    const double seconds = TimeOneEpoch(data, scale);
    if (first_time == 0.0) {
      first_time = seconds;
      first_avg = avg;
    }
    // Ratio normalized by the workload ratio: ~1 means linear scaling.
    const double workload_ratio = double(avg) / double(first_avg);
    std::printf("%-12zu  %-12.2fs  %.2f (vs linear %.2f)\n", avg, seconds,
                seconds / first_time, workload_ratio);
    std::fflush(stdout);
  }

  std::printf("\n(b) time vs MAX feature count (avg fixed at %zu)\n",
              fixed_avg);
  std::printf("%-12s  %-12s  %s\n", "max features", "epoch time", "ratio");
  first_time = 0.0;
  for (size_t max_features :
       {fixed_max / 100, fixed_max / 10, fixed_max / 2, fixed_max}) {
    BarabasiAlbertConfig ba;
    ba.num_users = num_users;
    ba.features_per_user = fixed_avg;
    ba.max_features = max_features;
    ba.seed = 137;
    const MultiFieldDataset data = GenerateBarabasiAlbert(ba);
    const double seconds = TimeOneEpoch(data, scale);
    if (first_time == 0.0) first_time = seconds;
    std::printf("%-12zu  %-12.2fs  %.2f\n", max_features, seconds,
                seconds / first_time);
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: sweep (a) time ratios track the linear workload\n"
      "ratios; sweep (b) ratios stay near 1 (paper Fig. 9).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
