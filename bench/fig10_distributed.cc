// Reproduces Fig. 10: training speedup of the FVAE with the number of
// training servers (3..12 in the paper; simulated servers here,
// substitution documented in DESIGN.md §5). The trainer's discrete-event
// mode measures each server's busy time per synchronization round and
// models the cluster's wall clock as max(busy) + sync — so the scaling
// curve is faithful even on a single-core host. Reported as modeled
// throughput relative to one server.
//
// Paper shape to verify: near-linear speedup with server count.

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "distributed/parallel_trainer.h"

namespace fvae::bench {
namespace {

int Run() {
  PrintBanner("Fig. 10 — distributed training speedup",
              "FVAE paper, Fig. 10");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeKandian(scale, /*seed=*/2033);
  std::printf("dataset: %s\n", gen.dataset.Summary().c_str());
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  core::FvaeConfig model_config = DefaultFvaeConfig(scale, 141);
  model_config.sampling_rate = 0.1;

  const size_t epochs = ByScale<size_t>(scale, 1, 1, 3);
  std::printf("%-9s  %-18s  %-10s  %s\n", "servers", "modeled users/s",
              "speedup", "rounds");
  double base_throughput = 0.0;
  for (size_t workers : {size_t{1}, size_t{3}, size_t{6}, size_t{9},
                         size_t{12}}) {
    distributed::DistributedConfig config;
    config.num_workers = workers;
    config.epochs = epochs;
    config.batch_size = 256;
    config.sync_every_batches = 4;
    config.simulate_cluster = true;
    config.seed = 151;
    distributed::ParallelFvaeTrainer trainer(model_config, config);
    const distributed::DistributedResult result =
        trainer.Train(gen.dataset);
    if (workers == 1) base_throughput = result.SimulatedUsersPerSecond();
    std::printf("%-9zu  %-18.1f  %-10.2f  %zu\n", workers,
                result.SimulatedUsersPerSecond(),
                result.SimulatedUsersPerSecond() /
                    std::max(1e-9, base_throughput),
                result.rounds);
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: modeled speedup grows near-linearly with server\n"
      "count; synchronization cost bends the curve slightly at the top\n"
      "(paper Fig. 10).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
