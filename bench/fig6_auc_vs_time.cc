// Reproduces Fig. 6: validation AUC of the tag-prediction task as a
// function of wall-clock training time, for sampling rates r in
// {0.01, 0.1, 0.2}.
//
// Paper shape to verify: r = 0.1 reaches the best AUC in the least time;
// r = 0.01 improves more slowly (too few candidates per step); r = 0.2
// costs ~4x more time per unit of progress than r = 0.1.

#include <cstdio>

#include "baselines/fvae_adapter.h"
#include "bench/bench_common.h"
#include "core/fvae_model.h"
#include "core/trainer.h"

namespace fvae::bench {
namespace {

int Run() {
  PrintBanner("Fig. 6 — validation AUC vs training time per sampling rate",
              "FVAE paper, Fig. 6");
  const Scale scale = GetScale();
  // The r trade-off is driven by the candidate-set size, so this study
  // runs on the KD stand-in (the widest tag vocabulary): there a large r
  // makes every step expensive while r = 0.1 keeps most of the gradient
  // signal — the paper's crossover.
  const GeneratedProfiles gen = MakeKandian(scale, /*seed=*/2030);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  constexpr size_t kTagField = 3;
  const HeldOutUsers split = SplitHeldOutUsers(
      gen.dataset, 0.1, ByScale<size_t>(scale, 150, 400, 1000));
  const double budget = ByScale<double>(scale, 4.0, 40.0, 120.0);
  const size_t eval_every = ByScale<size_t>(scale, 4, 10, 20);

  for (double rate : {0.01, 0.1, 0.2}) {
    std::printf("--- r = %.2f ---\n", rate);
    std::printf("%-10s  %-8s\n", "time (s)", "AUC");
    core::FvaeConfig config = SweepFvaeConfig(scale, 81);
    config.sampling_rate = rate;
    core::FieldVae model(config, gen.dataset.fields());

    // Wrap for evaluation inside the step callback.
    class Wrapper : public eval::RepresentationModel {
     public:
      explicit Wrapper(core::FieldVae* model) : model_(model) {}
      std::string Name() const override { return "fvae"; }
      void Fit(const MultiFieldDataset&) override {}
      Matrix Embed(const MultiFieldDataset& data,
                   std::span<const uint32_t> users) const override {
        return model_->Encode(data, users);
      }
      Matrix Score(const MultiFieldDataset& input,
                   std::span<const uint32_t> users, size_t field,
                   std::span<const uint64_t> candidates) const override {
        return model_->EncodeAndScore(input, users, field, candidates);
      }

     private:
      core::FieldVae* model_;
    } wrapper(&model);

    core::TrainOptions options;
    options.batch_size = 256;
    options.epochs = 1000000;
    options.time_budget_seconds = budget;
    options.eval_every_steps = eval_every;
    options.step_callback = [&](size_t, double elapsed) {
      Rng task_rng(91);
      const eval::TaskMetrics metrics = eval::RunTagPrediction(
          wrapper, gen.dataset, split.test_users, kTagField,
          gen.field_vocab[kTagField], task_rng);
      std::printf("%-10.2f  %.4f\n", elapsed, metrics.auc);
      std::fflush(stdout);
    };
    core::TrainFvae(model, split.train, options);
    std::printf("\n");
  }

  std::printf(
      "Expected shape: r=0.1 reaches the best AUC fastest; r=0.01 climbs\n"
      "slowly; r=0.2 needs more time per step (paper Fig. 6).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
