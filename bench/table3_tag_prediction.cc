// Reproduces Table III: AUC and mAP of the tag-prediction task on the
// Short Content dataset for all eight methods.
//
// Paper shape to verify: FVAE wins both metrics with a clear margin over
// all baselines (paper reports +3.6%..+26.8% AUC over baselines).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/model_zoo.h"
#include "common/stopwatch.h"

namespace fvae::bench {
namespace {

int Run() {
  PrintBanner("Table III — tag prediction on Short Content (SC)",
              "FVAE paper, Table III");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/2023);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  constexpr size_t kTagField = 3;
  // Paper protocol: train on one population, predict tags for held-out
  // users via fold-in on their channel fields.
  const HeldOutUsers split = SplitHeldOutUsers(
      gen.dataset, 0.2, ByScale<size_t>(scale, 300, 1200, 4000));
  std::printf("held-out test users: %zu\n\n", split.test_users.size());

  std::printf("%-10s  %-8s  %-8s  %s\n", "Method", "AUC", "mAP", "fit time");
  double fvae_auc = 0.0, best_baseline_auc = 0.0;
  for (auto& model : BuildAllModels(scale, /*seed=*/17)) {
    Stopwatch watch;
    model->Fit(split.train);
    Rng task_rng(55);
    const eval::TaskMetrics metrics = eval::RunTagPrediction(
        *model, gen.dataset, split.test_users, kTagField,
        gen.field_vocab[kTagField], task_rng);
    std::printf("%-10s  %.4f    %.4f    %.1fs\n", model->Name().c_str(),
                metrics.auc, metrics.map, watch.ElapsedSeconds());
    std::fflush(stdout);
    if (model->Name() == "FVAE") {
      fvae_auc = metrics.auc;
    } else {
      best_baseline_auc = std::max(best_baseline_auc, metrics.auc);
    }
  }

  if (best_baseline_auc > 0.0) {
    std::printf("\nFVAE vs best baseline AUC: %.4f vs %.4f (%+.2f%%)\n",
                fvae_auc, best_baseline_auc,
                100.0 * (fvae_auc / best_baseline_auc - 1.0));
  }
  std::printf("Expected shape: FVAE best on both metrics.\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
