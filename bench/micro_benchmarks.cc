// Micro-benchmarks of the performance-critical kernels (google-benchmark):
// GEMM, the dynamic hash table vs std::unordered_map, alias sampling,
// batched-softmax candidate construction, and the LRU cache. These back the
// complexity claims of paper §IV-C.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/random.h"
#include "core/sampling.h"
#include "hash/dynamic_hash_table.h"
#include "math/matrix.h"
#include "math/vector_ops.h"
#include "nn/losses.h"
#include "serving/lru_cache.h"

namespace fvae {
namespace {

void BM_Gemm(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(1);
  Matrix a = Matrix::Gaussian(n, n, 1.0f, rng);
  Matrix b = Matrix::Gaussian(n, n, 1.0f, rng);
  Matrix out;
  for (auto _ : state) {
    Gemm(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_DynamicHashTableInsert(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    DynamicHashTable table;
    for (size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(table.GetOrInsert(i * 2654435761ULL));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DynamicHashTableInsert)->Arg(1000)->Arg(100000);

void BM_UnorderedMapInsert(benchmark::State& state) {
  const size_t n = state.range(0);
  for (auto _ : state) {
    std::unordered_map<uint64_t, uint32_t> table;
    for (size_t i = 0; i < n; ++i) {
      table.emplace(i * 2654435761ULL, static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnorderedMapInsert)->Arg(1000)->Arg(100000);

void BM_DynamicHashTableLookup(benchmark::State& state) {
  const size_t n = 100000;
  DynamicHashTable table;
  for (size_t i = 0; i < n; ++i) table.GetOrInsert(i * 2654435761ULL);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Find((rng.UniformInt(uint64_t{n})) * 2654435761ULL));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicHashTableLookup);

void BM_AliasSample(benchmark::State& state) {
  const size_t n = state.range(0);
  std::vector<double> weights(n);
  Rng rng(5);
  for (auto& w : weights) w = rng.Uniform() + 0.01;
  AliasSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSample)->Arg(1000)->Arg(1000000);

void BM_SoftmaxFullVsSubset(benchmark::State& state) {
  // Cost of one user's multinomial gradient over `n` candidates — the
  // quantity batched softmax shrinks from J to the batch union.
  const size_t n = state.range(0);
  Rng rng(7);
  std::vector<float> logits(n), counts(n, 0.0f), grad(n);
  for (auto& v : logits) v = static_cast<float>(rng.Normal());
  for (int i = 0; i < 20; ++i) counts[rng.UniformInt(uint64_t{n})] = 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MultinomialNll(logits, counts, grad));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SoftmaxFullVsSubset)
    ->Arg(500)       // typical batched-softmax candidate count
    ->Arg(131072);   // legacy full softmax over a 2^17 hashed space

void BM_SampleCandidates(benchmark::State& state) {
  const size_t n = state.range(0);
  std::vector<core::Candidate> candidates(n);
  Rng rng(9);
  for (size_t i = 0; i < n; ++i) {
    candidates[i] = {i, static_cast<uint32_t>(rng.UniformInt(uint64_t{64}) + 1)};
  }
  for (auto _ : state) {
    auto ids = core::SampleCandidates(candidates, 0.1,
                                      core::SamplingStrategy::kUniform, rng);
    benchmark::DoNotOptimize(ids.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SampleCandidates)->Arg(10000);

void BM_LruCache(benchmark::State& state) {
  serving::LruCache<uint64_t, std::vector<float>> cache(4096);
  Rng rng(11);
  std::vector<float> value(64, 1.0f);
  for (auto _ : state) {
    const uint64_t key = rng.UniformInt(uint64_t{8192});
    if (!cache.Get(key).has_value()) cache.Put(key, value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCache);

}  // namespace
}  // namespace fvae

BENCHMARK_MAIN();
