// Reproduces Table IV: tag prediction on the billion-scale datasets (KD,
// QB) for the methods that scale — PCA, LDA, Item2Vec, and FVAE at
// sampling rates r = 0.05 and r = 0.1. (The paper excludes Mult-DAE/VAE,
// RecVAE and Job2Vec here for scalability reasons; so do we.)
//
// Our KD/QB stand-ins are scaled-down power-law synthetics (DESIGN.md §5);
// the shape to verify is FVAE(r=.1) >= FVAE(r=.05) > Item2Vec > LDA > PCA.

#include <cstdio>
#include <memory>

#include "baselines/lda.h"
#include "baselines/pca.h"
#include "baselines/skipgram.h"
#include "bench/bench_common.h"
#include "common/stopwatch.h"

namespace fvae::bench {
namespace {

void RunDataset(const char* name, const GeneratedProfiles& gen,
                Scale scale) {
  std::printf("\n--- %s: %s ---\n", name, gen.dataset.Summary().c_str());
  constexpr size_t kTagField = 3;
  const HeldOutUsers split = SplitHeldOutUsers(
      gen.dataset, 0.1, ByScale<size_t>(scale, 300, 1200, 3000));

  struct Row {
    std::string name;
    std::unique_ptr<eval::RepresentationModel> model;
  };
  std::vector<Row> rows;
  {
    baselines::PcaModel::Options options;
    options.latent_dim = ByScale<size_t>(scale, 16, 32, 64);
    rows.push_back({"PCA", std::make_unique<baselines::PcaModel>(options)});
  }
  {
    baselines::LdaModel::Options options;
    options.num_topics = ByScale<size_t>(scale, 16, 32, 64);
    options.passes = ByScale<size_t>(scale, 2, 3, 4);
    rows.push_back({"LDA", std::make_unique<baselines::LdaModel>(options)});
  }
  {
    baselines::SkipGramModel::Options options;
    options.variant = baselines::SkipGramModel::Variant::kItem2Vec;
    options.embedding_dim = ByScale<size_t>(scale, 32, 64, 64);
    options.epochs = ByScale<size_t>(scale, 4, 6, 8);
    options.contexts_per_center = 8;
    rows.push_back(
        {"Item2Vec", std::make_unique<baselines::SkipGramModel>(options)});
  }
  for (double rate : {0.05, 0.1}) {
    core::FvaeConfig config = DefaultFvaeConfig(GetScale(), 31);
    config.sampling_rate = rate;
    core::TrainOptions options = DefaultTrainOptions(GetScale());
    // The KD/QB stand-ins have many more users than SC; fewer epochs reach
    // the same number of updates per parameter.
    options.epochs = ByScale<size_t>(GetScale(), 6, 10, 14);
    auto adapter =
        std::make_unique<baselines::FvaeAdapter>(config, options);
    char label[32];
    std::snprintf(label, sizeof(label), "FVAE(r=%.2f)", rate);
    adapter->set_name(label);
    rows.push_back({label, std::move(adapter)});
  }

  std::printf("%-14s  %-8s  %-8s  %s\n", "Method", "AUC", "mAP", "fit time");
  for (Row& row : rows) {
    Stopwatch watch;
    row.model->Fit(split.train);
    Rng task_rng(77);
    const eval::TaskMetrics metrics =
        eval::RunTagPrediction(*row.model, gen.dataset, split.test_users,
                               kTagField, gen.field_vocab[kTagField],
                               task_rng);
    std::printf("%-14s  %.4f    %.4f    %.1fs\n", row.name.c_str(),
                metrics.auc, metrics.map, watch.ElapsedSeconds());
    std::fflush(stdout);
  }
}

int Run() {
  PrintBanner("Table IV — tag prediction at billion scale (KD, QB)",
              "FVAE paper, Table IV");
  const Scale scale = GetScale();
  RunDataset("KD (Kandian stand-in)", MakeKandian(scale, 2024), scale);
  RunDataset("QB (QQ Browser stand-in)", MakeQQBrowser(scale, 2025), scale);
  std::printf(
      "\nExpected shape: FVAE variants clearly ahead; r=0.1 >= r=0.05;\n"
      "Item2Vec > LDA > PCA among baselines.\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
