// Reproduces Fig. 4: 2-D t-SNE visualization of FVAE user embeddings for
// users drawn from 3 topics. The paper shows visually separable clusters;
// we additionally quantify separation with kNN label purity and the
// silhouette score, and dump the 2-D points to fig4_tsne_points.csv for
// plotting.

#include <cstdio>

#include "baselines/fvae_adapter.h"
#include "bench/bench_common.h"
#include "eval/cluster_metrics.h"
#include "eval/tsne.h"

namespace fvae::bench {
namespace {

int Run() {
  PrintBanner("Fig. 4 — t-SNE of FVAE user embeddings (3 topics)",
              "FVAE paper, Fig. 4");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeKandian(scale, /*seed=*/2028);
  std::printf("dataset: %s\n", gen.dataset.Summary().c_str());

  baselines::FvaeAdapter fvae(SweepFvaeConfig(scale, 61),
                              SweepTrainOptions(scale));
  std::printf("fitting FVAE...\n");
  fvae.Fit(gen.dataset);

  // Select users from 3 topics (paper: 1000 users total).
  const size_t per_topic = ByScale<size_t>(scale, 60, 200, 333);
  std::vector<uint32_t> selected;
  std::vector<uint32_t> labels;
  for (uint32_t topic = 0; topic < 3; ++topic) {
    size_t taken = 0;
    for (uint32_t u = 0;
         u < gen.dataset.num_users() && taken < per_topic; ++u) {
      if (gen.dominant_topic[u] == topic &&
          gen.topic_mixture[u][topic] > 0.6f) {
        selected.push_back(u);
        labels.push_back(topic);
        ++taken;
      }
    }
  }
  std::printf("selected %zu users across 3 topics\n", selected.size());

  const Matrix embeddings = fvae.Embed(gen.dataset, selected);
  // Cluster quality in the native embedding space.
  const double native_purity = eval::KnnLabelPurity(embeddings, labels, 10);
  const double native_silhouette =
      eval::SilhouetteScore(embeddings, labels);

  std::printf("running t-SNE on %zux%zu embeddings...\n", embeddings.rows(),
              embeddings.cols());
  eval::TsneConfig tsne_config;
  tsne_config.perplexity = 30.0;
  tsne_config.iterations = ByScale<size_t>(scale, 200, 400, 600);
  const Matrix points = eval::Tsne(embeddings, tsne_config);

  const double purity_2d = eval::KnnLabelPurity(points, labels, 10);
  const double silhouette_2d = eval::SilhouetteScore(points, labels);

  std::printf("\n%-28s  %-10s  %s\n", "Space", "kNN purity", "silhouette");
  std::printf("%-28s  %-10.3f  %.3f\n", "FVAE embedding (native)",
              native_purity, native_silhouette);
  std::printf("%-28s  %-10.3f  %.3f\n", "t-SNE 2-D map", purity_2d,
              silhouette_2d);

  // Dump the 2-D points for plotting.
  const char* csv_path = "fig4_tsne_points.csv";
  if (FILE* out = std::fopen(csv_path, "w")) {
    std::fprintf(out, "x,y,topic\n");
    for (size_t i = 0; i < points.rows(); ++i) {
      std::fprintf(out, "%.5f,%.5f,%u\n", points(i, 0), points(i, 1),
                   labels[i]);
    }
    std::fclose(out);
    std::printf("\n2-D points written to %s\n", csv_path);
  }

  std::printf(
      "\nExpected shape: purity well above the 1/3 random baseline and a\n"
      "positive silhouette — topics form separable clusters (Fig. 4).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
