#ifndef FVAE_BENCH_MODEL_ZOO_H_
#define FVAE_BENCH_MODEL_ZOO_H_

#include <memory>
#include <vector>

#include "baselines/fvae_adapter.h"
#include "baselines/lda.h"
#include "baselines/mult_vae.h"
#include "baselines/pca.h"
#include "baselines/skipgram.h"
#include "bench/bench_common.h"
#include "eval/representation_model.h"

namespace fvae::bench {

/// Builds the full Table II/III model zoo: PCA, LDA, Item2Vec, Mult-DAE,
/// Mult-VAE, RecVAE, Job2Vec, FVAE — in the paper's row order.
inline std::vector<std::unique_ptr<eval::RepresentationModel>> BuildAllModels(
    Scale scale, uint64_t seed) {
  std::vector<std::unique_ptr<eval::RepresentationModel>> models;

  {
    baselines::PcaModel::Options options;
    options.latent_dim = ByScale<size_t>(scale, 16, 32, 64);
    options.seed = seed + 1;
    models.push_back(std::make_unique<baselines::PcaModel>(options));
  }
  {
    baselines::LdaModel::Options options;
    options.num_topics = ByScale<size_t>(scale, 16, 32, 64);
    options.passes = ByScale<size_t>(scale, 2, 4, 6);
    options.seed = seed + 2;
    models.push_back(std::make_unique<baselines::LdaModel>(options));
  }
  {
    baselines::SkipGramModel::Options options;
    options.variant = baselines::SkipGramModel::Variant::kItem2Vec;
    options.embedding_dim = ByScale<size_t>(scale, 32, 64, 64);
    options.epochs = ByScale<size_t>(scale, 4, 10, 12);
    options.contexts_per_center = 8;
    options.seed = seed + 3;
    models.push_back(std::make_unique<baselines::SkipGramModel>(options));
  }
  {
    baselines::MultVaeModel::Options options;
    options.variant = baselines::MultVaeModel::Variant::kDae;
    options.hidden_dim = ByScale<size_t>(scale, 32, 64, 128);
    options.latent_dim = ByScale<size_t>(scale, 16, 32, 64);
    options.epochs = ByScale<size_t>(scale, 6, 10, 15);
    options.seed = seed + 4;
    models.push_back(std::make_unique<baselines::MultVaeModel>(options));
  }
  {
    baselines::MultVaeModel::Options options;
    options.variant = baselines::MultVaeModel::Variant::kVae;
    options.hidden_dim = ByScale<size_t>(scale, 32, 64, 128);
    options.latent_dim = ByScale<size_t>(scale, 16, 32, 64);
    options.epochs = ByScale<size_t>(scale, 6, 10, 15);
    options.beta = 0.1f;
    options.anneal_steps = ByScale<size_t>(scale, 30, 150, 600);
    options.seed = seed + 5;
    models.push_back(std::make_unique<baselines::MultVaeModel>(options));
  }
  {
    baselines::MultVaeModel::Options options;
    options.variant = baselines::MultVaeModel::Variant::kRecVae;
    options.hidden_dim = ByScale<size_t>(scale, 32, 64, 128);
    options.latent_dim = ByScale<size_t>(scale, 16, 32, 64);
    options.epochs = ByScale<size_t>(scale, 6, 10, 15);
    options.beta = 0.1f;
    options.anneal_steps = ByScale<size_t>(scale, 30, 150, 600);
    options.seed = seed + 6;
    models.push_back(std::make_unique<baselines::MultVaeModel>(options));
  }
  {
    baselines::SkipGramModel::Options options;
    options.variant = baselines::SkipGramModel::Variant::kJob2Vec;
    options.embedding_dim = ByScale<size_t>(scale, 32, 64, 64);
    options.epochs = ByScale<size_t>(scale, 4, 10, 12);
    options.contexts_per_center = 8;
    options.seed = seed + 7;
    models.push_back(std::make_unique<baselines::SkipGramModel>(options));
  }
  {
    core::FvaeConfig config = DefaultFvaeConfig(scale, seed + 8);
    core::TrainOptions options = DefaultTrainOptions(scale);
    models.push_back(
        std::make_unique<baselines::FvaeAdapter>(config, options));
  }
  return models;
}

}  // namespace fvae::bench

#endif  // FVAE_BENCH_MODEL_ZOO_H_
