// Ablation of the paper's efficiency ladder (§IV-C): the same FVAE trained
// under an equal wall-clock budget with
//   (a) legacy full softmax over every known feature,
//   (b) batched softmax (batch-union candidates), no feature sampling,
//   (c) batched softmax + uniform feature sampling r = 0.1.
// Reports training progress (steps, users/s), the candidate-set sizes each
// variant actually scored, and the tag-prediction AUC reached within the
// budget — showing each trick's contribution to the Table V speedups.

#include <cstdio>
#include <numeric>

#include "bench/bench_common.h"
#include "core/fvae_model.h"
#include "core/trainer.h"

namespace fvae::bench {
namespace {

struct Variant {
  const char* name;
  bool batched_softmax;
  core::SamplingStrategy strategy;
  double rate;
};

int Run() {
  PrintBanner("Ablation — full softmax vs batched softmax vs + sampling",
              "FVAE paper §IV-C (efficiency ladder behind Table V)");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/2040);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  constexpr size_t kTagField = 3;
  const std::vector<uint32_t> eval_users =
      EvalUsers(gen.dataset, ByScale<size_t>(scale, 200, 800, 2000));
  const double budget = ByScale<double>(scale, 4.0, 20.0, 60.0);

  const Variant variants[] = {
      {"full-softmax", false, core::SamplingStrategy::kNone, 1.0},
      {"batched", true, core::SamplingStrategy::kNone, 1.0},
      {"batched+r=0.1", true, core::SamplingStrategy::kUniform, 0.1},
  };

  std::printf("%-15s  %-7s  %-10s  %-18s  %s\n", "variant", "steps",
              "users/s", "tag candidates", "tag AUC");
  for (const Variant& variant : variants) {
    core::FvaeConfig config = DefaultFvaeConfig(scale, 51);
    config.batched_softmax = variant.batched_softmax;
    config.sampling_strategy = variant.strategy;
    config.sampling_rate = variant.rate;
    core::FieldVae model(config, gen.dataset.fields());

    core::TrainOptions options;
    options.batch_size = 256;
    options.epochs = 1000000;
    options.time_budget_seconds = budget;
    const core::TrainResult result =
        core::TrainFvae(model, gen.dataset, options);

    // Evaluate what the budget bought.
    class Wrapper : public eval::RepresentationModel {
     public:
      explicit Wrapper(core::FieldVae* model) : model_(model) {}
      std::string Name() const override { return "fvae"; }
      void Fit(const MultiFieldDataset&) override {}
      Matrix Embed(const MultiFieldDataset& data,
                   std::span<const uint32_t> users) const override {
        return model_->Encode(data, users);
      }
      Matrix Score(const MultiFieldDataset& input,
                   std::span<const uint32_t> users, size_t field,
                   std::span<const uint64_t> candidates) const override {
        return model_->EncodeAndScore(input, users, field, candidates);
      }

     private:
      core::FieldVae* model_;
    } wrapper(&model);
    Rng task_rng(53);
    const eval::TaskMetrics metrics = eval::RunTagPrediction(
        wrapper, gen.dataset, eval_users, kTagField,
        gen.field_vocab[kTagField], task_rng);

    std::printf("%-15s  %-7zu  %-10.1f  %-18.1f  %.4f\n", variant.name,
                result.steps, result.UsersPerSecond(),
                result.mean_candidates_per_field[kTagField], metrics.auc);
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: each rung multiplies throughput; within a fixed\n"
      "budget the cheaper variants take far more steps and reach at least\n"
      "comparable AUC — the justification for §IV-C.\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
