// Reproduces Fig. 7: sensitivity of tag-prediction AUC/mAP to the
// per-field reconstruction weight alpha_k. For each field in turn, its
// alpha sweeps over {0.001, 0.01, 0.1, 1, 10} while the other fields stay
// at 1.
//
// Paper shape to verify: performance stays high over an extensive alpha
// range (robustness); ch1/ch2 show clearer optima than ch3/tag.

#include <cstdio>

#include "baselines/fvae_adapter.h"
#include "bench/bench_common.h"

namespace fvae::bench {
namespace {

int Run() {
  PrintBanner("Fig. 7 — alpha sensitivity per field",
              "FVAE paper, Fig. 7");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/2031);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  constexpr size_t kTagField = 3;
  // Paper protocol: evaluate on held-out users (fold-in).
  const HeldOutUsers split = SplitHeldOutUsers(
      gen.dataset, 0.2, ByScale<size_t>(scale, 250, 800, 2500));
  const float alphas[] = {0.001f, 0.01f, 0.1f, 1.0f, 10.0f};
  const size_t num_fields = gen.dataset.num_fields();

  std::printf("%-8s", "field");
  for (float a : alphas) std::printf("  a=%-6.3f AUC/mAP ", a);
  std::printf("\n");

  for (size_t swept = 0; swept < num_fields; ++swept) {
    std::printf("%-8s", gen.dataset.field(swept).name.c_str());
    for (float alpha : alphas) {
      core::FvaeConfig config = SweepFvaeConfig(scale, 101);
      config.alpha.assign(num_fields, 1.0f);
      config.alpha[swept] = alpha;
      baselines::FvaeAdapter fvae(config, SweepTrainOptions(scale));
      fvae.Fit(split.train);
      Rng task_rng(103);
      const eval::TaskMetrics metrics = eval::RunTagPrediction(
          fvae, gen.dataset, split.test_users, kTagField,
          gen.field_vocab[kTagField], task_rng);
      std::printf("  %.4f/%.4f ", metrics.auc, metrics.map);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape: AUC stays high across the whole sweep (alpha is\n"
      "robust); the tag row reacts most to its own alpha (paper Fig. 7).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
