#ifndef FVAE_BENCH_BENCH_COMMON_H_
#define FVAE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/fvae_adapter.h"
#include "common/random.h"
#include "core/fvae_config.h"
#include "core/trainer.h"
#include "data/split.h"
#include "datagen/profile_generator.h"
#include "eval/tasks.h"

namespace fvae::bench {

/// Benchmark scale selected via the FVAE_BENCH_SCALE environment variable:
/// "tiny" (seconds, smoke), "small" (default, minutes), "large" (longer,
/// closer to paper shapes).
enum class Scale { kTiny, kSmall, kLarge };

inline Scale GetScale() {
  const char* env = std::getenv("FVAE_BENCH_SCALE");
  if (env == nullptr) return Scale::kSmall;
  const std::string value(env);
  if (value == "tiny") return Scale::kTiny;
  if (value == "large") return Scale::kLarge;
  return Scale::kSmall;
}

inline const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kSmall:
      return "small";
    case Scale::kLarge:
      return "large";
  }
  return "?";
}

/// Picks a value by scale.
template <typename T>
T ByScale(Scale scale, T tiny, T small, T large) {
  switch (scale) {
    case Scale::kTiny:
      return tiny;
    case Scale::kSmall:
      return small;
    case Scale::kLarge:
      return large;
  }
  return small;
}

/// SC-like dataset sized for benchmarking (Short Content stand-in).
inline GeneratedProfiles MakeShortContent(Scale scale, uint64_t seed) {
  ProfileGeneratorConfig config =
      ShortContentConfig(ByScale<size_t>(scale, 400, 4000, 20000), seed);
  config.fields[2].vocab_size = ByScale<size_t>(scale, 512, 2048, 4096);
  config.fields[3].vocab_size = ByScale<size_t>(scale, 1024, 8192, 32768);
  config.fields[3].avg_features = 16.0;
  config.fields[0].avg_features = 6.0;
  config.fields[0].zipf_exponent = 1.3;
  config.fields[1].zipf_exponent = 1.15;
  config.num_topics = ByScale<size_t>(scale, 8, 16, 16);
  return GenerateProfiles(config);
}

/// KD-like dataset (Kandian stand-in; the paper's largest).
inline GeneratedProfiles MakeKandian(Scale scale, uint64_t seed) {
  ProfileGeneratorConfig config =
      KandianConfig(ByScale<size_t>(scale, 800, 20000, 100000), seed);
  config.fields[2].vocab_size = ByScale<size_t>(scale, 1024, 8192, 16384);
  config.fields[3].vocab_size = ByScale<size_t>(scale, 2048, 32768, 131072);
  config.fields[0].avg_features = 6.0;
  config.fields[0].zipf_exponent = 1.3;
  config.num_topics = ByScale<size_t>(scale, 8, 24, 32);
  return GenerateProfiles(config);
}

/// QB-like dataset (QQ Browser stand-in).
inline GeneratedProfiles MakeQQBrowser(Scale scale, uint64_t seed) {
  ProfileGeneratorConfig config =
      QQBrowserConfig(ByScale<size_t>(scale, 600, 12000, 60000), seed);
  config.fields[2].vocab_size = ByScale<size_t>(scale, 768, 4096, 8192);
  config.fields[3].vocab_size = ByScale<size_t>(scale, 1536, 16384, 65536);
  config.fields[0].avg_features = 5.0;
  config.fields[0].zipf_exponent = 1.3;
  config.num_topics = ByScale<size_t>(scale, 8, 20, 24);
  return GenerateProfiles(config);
}

/// Headline FVAE configuration used by the table harnesses (II/III/IV/VI)
/// — sized so the FVAE reaches paper-shaped quality at each scale.
inline core::FvaeConfig DefaultFvaeConfig(Scale scale, uint64_t seed) {
  core::FvaeConfig config;
  config.latent_dim = ByScale<size_t>(scale, 16, 48, 64);
  config.encoder_hidden = {ByScale<size_t>(scale, 48, 192, 256)};
  config.decoder_hidden = {ByScale<size_t>(scale, 48, 192, 256)};
  config.beta = 0.1f;
  config.anneal_steps = ByScale<size_t>(scale, 50, 400, 2000);
  config.sampling_strategy = core::SamplingStrategy::kUniform;
  // The paper's r=0.1 is tuned for batch unions of tens of thousands of
  // candidates; at reduced dataset scale, keep the sampled candidate count
  // in a comparable relative regime.
  config.sampling_rate = ByScale<double>(scale, 0.5, 0.2, 0.1);
  // Slightly hotter AdaGrad than the library default: the benchmark
  // datasets are small enough that embeddings see few updates each.
  config.sparse_learning_rate = 0.1f;
  config.seed = seed;
  return config;
}

inline core::TrainOptions DefaultTrainOptions(Scale scale) {
  core::TrainOptions options;
  options.batch_size = 256;
  options.epochs = ByScale<size_t>(scale, 10, 25, 30);
  return options;
}

/// Lighter FVAE configuration for the sweep figures (5/7/8), which fit the
/// model dozens of times — the comparisons there are relative, so a faster
/// model keeps the harnesses tractable.
inline core::FvaeConfig SweepFvaeConfig(Scale scale, uint64_t seed) {
  core::FvaeConfig config = DefaultFvaeConfig(scale, seed);
  config.latent_dim = ByScale<size_t>(scale, 16, 32, 64);
  config.encoder_hidden = {ByScale<size_t>(scale, 48, 128, 256)};
  config.decoder_hidden = {ByScale<size_t>(scale, 48, 128, 256)};
  return config;
}

inline core::TrainOptions SweepTrainOptions(Scale scale) {
  core::TrainOptions options;
  options.batch_size = 256;
  options.epochs = ByScale<size_t>(scale, 6, 10, 15);
  return options;
}

/// All users of a dataset as an index vector.
inline std::vector<uint32_t> AllUsers(const MultiFieldDataset& dataset) {
  std::vector<uint32_t> users(dataset.num_users());
  std::iota(users.begin(), users.end(), 0u);
  return users;
}

/// At most `cap` evaluation users (prefix of the index space; users are
/// i.i.d. by construction).
inline std::vector<uint32_t> EvalUsers(const MultiFieldDataset& dataset,
                                       size_t cap) {
  std::vector<uint32_t> users(std::min(cap, dataset.num_users()));
  std::iota(users.begin(), users.end(), 0u);
  return users;
}

/// The paper's evaluation protocol: models train on one user population
/// and are scored on *held-out* users ("for each held-out user of the test
/// set", §V-B2). `train` contains the leading (1 - test_fraction) of the
/// users; `test_users` indexes the remainder in the ORIGINAL dataset
/// (models score them by fold-in — no renumbering issues, since scoring
/// only reads features).
struct HeldOutUsers {
  MultiFieldDataset train;
  std::vector<uint32_t> test_users;
};

inline HeldOutUsers SplitHeldOutUsers(const MultiFieldDataset& dataset,
                                      double test_fraction, size_t test_cap) {
  const size_t num_test = std::min(
      test_cap,
      static_cast<size_t>(double(dataset.num_users()) * test_fraction));
  const size_t num_train = dataset.num_users() - num_test;
  std::vector<uint32_t> train_users(num_train);
  std::iota(train_users.begin(), train_users.end(), 0u);
  HeldOutUsers out;
  out.train = Subset(dataset, train_users);
  out.test_users.resize(num_test);
  std::iota(out.test_users.begin(), out.test_users.end(),
            static_cast<uint32_t>(num_train));
  return out;
}

/// Prints the standard harness banner.
inline void PrintBanner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Scale: %s (set FVAE_BENCH_SCALE=tiny|small|large)\n",
              ScaleName(GetScale()));
  std::printf("==============================================================\n");
}

}  // namespace fvae::bench

#endif  // FVAE_BENCH_BENCH_COMMON_H_
