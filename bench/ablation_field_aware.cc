// Ablation of the paper's core modeling claim: field-aware per-field
// multinomials vs ONE multinomial over the flattened feature space, with
// everything else held equal (same encoder, same batched softmax + dynamic
// hashing efficiency). The single-field variant is an FVAE trained on a
// view of the dataset where all fields are merged into one, so the only
// difference is the decoder's likelihood factorization.
//
// Reports per-field tag-prediction / reconstruction AUC. The field-aware
// decoder should win per field (the paper's Table II/III argument isolated
// from the efficiency tricks).

#include <cstdio>
#include <numeric>

#include "bench/bench_common.h"
#include "core/fvae_model.h"
#include "core/trainer.h"

namespace fvae::bench {
namespace {

/// Mixes (field, id) into a single collision-resistant 64-bit key so the
/// merged view keeps fields distinct in one namespace.
uint64_t MergeId(uint32_t field, uint64_t id) {
  uint64_t z = id + (uint64_t(field) + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Flattens all fields of `source` into one field.
MultiFieldDataset MergeFields(const MultiFieldDataset& source) {
  MultiFieldDataset::Builder builder({FieldSchema{"all", true}});
  std::vector<std::vector<FeatureEntry>> per_field(1);
  for (size_t u = 0; u < source.num_users(); ++u) {
    per_field[0].clear();
    for (size_t k = 0; k < source.num_fields(); ++k) {
      for (const FeatureEntry& e : source.UserField(u, k)) {
        per_field[0].push_back(
            {MergeId(static_cast<uint32_t>(k), e.id), e.value});
      }
    }
    builder.AddUser(per_field);
  }
  return builder.Build();
}

/// RepresentationModel facade over an FVAE trained on the merged view:
/// translates multi-field inputs/candidates into the merged namespace.
class MergedFvae : public eval::RepresentationModel {
 public:
  MergedFvae(const core::FvaeConfig& config,
             const core::TrainOptions& options)
      : config_(config), options_(options) {}

  std::string Name() const override { return "single-multinomial"; }

  void Fit(const MultiFieldDataset& train) override {
    merged_train_ = MergeFields(train);
    model_ = std::make_unique<core::FieldVae>(config_,
                                              merged_train_.fields());
    core::TrainFvae(*model_, merged_train_, options_);
  }

  Matrix Embed(const MultiFieldDataset& data,
               std::span<const uint32_t> users) const override {
    const MultiFieldDataset merged = MergeFields(data);
    return model_->Encode(merged, users);
  }

  Matrix Score(const MultiFieldDataset& input,
               std::span<const uint32_t> users, size_t field,
               std::span<const uint64_t> candidates) const override {
    const MultiFieldDataset merged = MergeFields(input);
    const Matrix z = model_->Encode(merged, users);
    std::vector<uint64_t> merged_candidates;
    merged_candidates.reserve(candidates.size());
    for (uint64_t id : candidates) {
      merged_candidates.push_back(
          MergeId(static_cast<uint32_t>(field), id));
    }
    return model_->ScoreField(z, 0, merged_candidates);
  }

 private:
  core::FvaeConfig config_;
  core::TrainOptions options_;
  MultiFieldDataset merged_train_;
  std::unique_ptr<core::FieldVae> model_;
};

int Run() {
  PrintBanner("Ablation — field-aware decoder vs single multinomial",
              "FVAE paper §IV-A (the model contribution in isolation)");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/2041);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  constexpr size_t kTagField = 3;
  // Held-out evaluation users (paper protocol).
  const HeldOutUsers user_split = SplitHeldOutUsers(
      gen.dataset, 0.2, ByScale<size_t>(scale, 200, 800, 2000));

  core::FvaeConfig config = SweepFvaeConfig(scale, 61);
  core::TrainOptions options = SweepTrainOptions(scale);

  // Field-aware FVAE.
  baselines::FvaeAdapter field_aware(config, options);
  std::printf("training field-aware FVAE...\n");
  field_aware.Fit(user_split.train);

  // Single-multinomial control.
  MergedFvae merged(config, options);
  std::printf("training single-multinomial control...\n");
  merged.Fit(user_split.train);

  Rng rng1(63), rng2(63);
  const eval::TaskMetrics fa = eval::RunTagPrediction(
      field_aware, gen.dataset, user_split.test_users, kTagField,
      gen.field_vocab[kTagField], rng1);
  const eval::TaskMetrics sm = eval::RunTagPrediction(
      merged, gen.dataset, user_split.test_users, kTagField,
      gen.field_vocab[kTagField], rng2);

  std::printf("\n%-22s  %-8s  %-8s\n", "decoder", "tag AUC", "tag mAP");
  std::printf("%-22s  %.4f    %.4f\n", "field-aware (FVAE)", fa.auc, fa.map);
  std::printf("%-22s  %.4f    %.4f\n", "single multinomial", sm.auc, sm.map);

  // Per-field reconstruction comparison.
  Rng split_rng(65);
  const ReconstructionSplit split =
      HoldOutWithinUsers(gen.dataset, 0.3, split_rng);
  const size_t num_train =
      gen.dataset.num_users() - user_split.test_users.size();
  std::vector<uint32_t> train_users(num_train);
  std::iota(train_users.begin(), train_users.end(), 0u);
  const MultiFieldDataset recon_train = Subset(split.input, train_users);
  baselines::FvaeAdapter field_aware_r(config, options);
  field_aware_r.Fit(recon_train);
  MergedFvae merged_r(config, options);
  merged_r.Fit(recon_train);
  Rng rng3(67), rng4(67);
  const eval::ReconstructionMetrics fa_rec = eval::RunReconstruction(
      field_aware_r, gen.dataset, split, user_split.test_users,
      gen.field_vocab, rng3);
  const eval::ReconstructionMetrics sm_rec = eval::RunReconstruction(
      merged_r, gen.dataset, split, user_split.test_users,
      gen.field_vocab, rng4);

  std::printf("\nreconstruction AUC per field:\n%-22s", "decoder");
  for (size_t k = 0; k < gen.dataset.num_fields(); ++k) {
    std::printf("  %-7s", gen.dataset.field(k).name.c_str());
  }
  std::printf("  overall\n%-22s", "field-aware (FVAE)");
  for (size_t k = 0; k < gen.dataset.num_fields(); ++k) {
    std::printf("  %.4f ", fa_rec.per_field[k].auc);
  }
  std::printf("  %.4f\n%-22s", fa_rec.overall.auc, "single multinomial");
  for (size_t k = 0; k < gen.dataset.num_fields(); ++k) {
    std::printf("  %.4f ", sm_rec.per_field[k].auc);
  }
  std::printf("  %.4f\n", sm_rec.overall.auc);

  std::printf(
      "\nExpected shape: field-aware wins per field; the single\n"
      "multinomial is competitive on 'overall' (globally comparable\n"
      "scores) — the paper's Table II trade-off, isolated.\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
