// Reproduces Table V: training throughput of FVAE vs Mult-VAE on the three
// datasets. The paper reports speedups of ~56x (SC, million scale) up to
// 3085x (KD) and 4020x (QB) — the gap grows with the feature-space size
// because Mult-VAE's full softmax is O(J) per user while FVAE's batched
// softmax + feature sampling is O(candidates).
//
// Mult-VAE uses 20-bit feature hashing at billion scale in the paper; here
// the hashed space is scaled with the dataset (tiny: 2^12, small: 2^15,
// large: 2^17). Both trainers run under the same wall-clock budget and we
// report users/second.

#include <cstdio>

#include "baselines/mult_vae.h"
#include "bench/bench_common.h"
#include "core/fvae_model.h"
#include "core/trainer.h"

namespace fvae::bench {
namespace {

struct SpeedRow {
  const char* dataset;
  double mult_vae_users_per_s = 0.0;
  double fvae_users_per_s = 0.0;
  size_t feature_space = 0;
};

SpeedRow Measure(const char* name, const GeneratedProfiles& gen,
                 Scale scale) {
  SpeedRow row;
  row.dataset = name;
  const double budget = ByScale<double>(scale, 3.0, 15.0, 45.0);

  // Identical network widths for both models — the comparison isolates the
  // output-layer strategy (full softmax vs batched + sampled softmax).
  const size_t hidden = ByScale<size_t>(scale, 32, 64, 128);
  const size_t latent = ByScale<size_t>(scale, 16, 32, 64);

  // --- Mult-VAE with full softmax over a hashed feature space (the
  //     paper's 20-bit legacy configuration, scaled down) ---
  {
    baselines::MultVaeModel::Options options;
    options.variant = baselines::MultVaeModel::Variant::kVae;
    options.hidden_dim = hidden;
    options.latent_dim = latent;
    options.hash_bits = ByScale<int>(scale, 12, 17, 18);
    options.batch_size = 128;
    options.epochs = 1000000;  // run until the budget expires
    options.time_budget_seconds = budget;
    options.seed = 3;
    baselines::MultVaeModel model(options);
    model.Fit(gen.dataset);
    row.mult_vae_users_per_s = model.fit_stats().UsersPerSecond();
    row.feature_space = model.num_columns();
  }

  // --- FVAE with batched softmax + uniform feature sampling (r = 0.1) ---
  {
    core::FvaeConfig config;
    config.latent_dim = latent;
    config.encoder_hidden = {hidden};
    config.decoder_hidden = {hidden};
    config.sampling_strategy = core::SamplingStrategy::kUniform;
    config.sampling_rate = 0.1;
    config.seed = 4;
    core::FieldVae model(config, gen.dataset.fields());
    core::TrainOptions options;
    options.batch_size = 512;
    options.epochs = 1000000;
    options.time_budget_seconds = budget;
    const core::TrainResult result =
        core::TrainFvae(model, gen.dataset, options);
    row.fvae_users_per_s = result.UsersPerSecond();
  }
  return row;
}

int Run() {
  PrintBanner("Table V — training throughput, FVAE vs Mult-VAE",
              "FVAE paper, Table V");
  const Scale scale = GetScale();

  std::vector<SpeedRow> rows;
  rows.push_back(Measure("SC", MakeShortContent(scale, 3031), scale));
  rows.push_back(Measure("KD", MakeKandian(scale, 3032), scale));
  rows.push_back(Measure("QB", MakeQQBrowser(scale, 3033), scale));

  std::printf("%-6s  %-12s  %-16s  %-14s  %s\n", "Data", "hashed J",
              "Mult-VAE (u/s)", "FVAE (u/s)", "speedup");
  for (const SpeedRow& row : rows) {
    std::printf("%-6s  %-12zu  %-16.1f  %-14.1f  %.0fx\n", row.dataset,
                row.feature_space, row.mult_vae_users_per_s,
                row.fvae_users_per_s,
                row.fvae_users_per_s /
                    std::max(1e-9, row.mult_vae_users_per_s));
  }
  std::printf(
      "\nExpected shape: speedup grows with feature-space size (paper: 56x\n"
      "on SC, 3085x on KD, 4020x on QB at full scale).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
