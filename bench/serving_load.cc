// Serving-load benchmark: closed-loop multi-threaded load against the
// online EmbeddingService, comparing micro-batched fold-in encoding
// (batcher-on) with per-request synchronous encoding (batcher-off) at
// equal thread count.
//
// Two phases per configuration:
//   cold  — every request is a first-touch fold-in (one pass over a
//           disjoint cold-user pool), isolating encoder throughput;
//   mixed — 85% hot store lookups / 15% revisits, measuring the
//           reader-concurrent sharded store under realistic traffic.
//
// With --net, a third phase measures the same service behind the epoll RPC
// front-end over loopback sockets: direct (one server, one channel per
// client thread) and routed (three replicas behind a ShardRouterClient).
// The routed topology then drives traced fold-in requests and joins client
// and server spans on trace_id into a per-hop latency breakdown —
// queue-wait vs encode vs wire — reported under "net_loopback"."hops".
//
// Outputs: bench_results/serving_load.txt (human-readable) and
// BENCH_serving.json + bench_results/BENCH_serving.json (machine-readable
// {qps, p50_us, p99_us} per configuration; "net_loopback" under --net).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/fvae_model.h"
#include "math/kernels/kernel_table.h"
#include "core/trainer.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "net/shard_router.h"
#include "obs/trace.h"
#include "serving/embedding_service.h"
#include "serving/fold_in.h"
#include "serving/load_gen.h"

namespace fvae::bench {
namespace {

struct PhaseResult {
  serving::LoadGenReport cold;
  serving::LoadGenReport mixed;
  std::string telemetry_json;
};

PhaseResult RunConfig(const core::FieldVae& model,
                      const MultiFieldDataset& dataset,
                      std::span<const uint32_t> hot_ids,
                      std::span<const uint32_t> cold_ids, bool enable_batcher,
                      size_t num_threads, size_t mixed_requests_per_thread) {
  serving::FvaeFoldInEncoder encoder(&model);
  serving::EmbeddingServiceOptions options;
  options.num_shards = 16;
  options.enable_batcher = enable_batcher;
  // Closed-loop load offers at most num_threads concurrent requests, so a
  // batch sized to the client concurrency fills (and dispatches) immediately
  // in steady state; the wait window only bounds the straggler tail.
  options.batcher.max_batch_size = num_threads;
  options.batcher.max_wait_micros = 100;
  options.batcher.queue_capacity = 8192;
  serving::EmbeddingService service(
      serving::MaterializeEmbeddings(model, dataset, hot_ids,
                                     options.num_shards),
      &encoder, options);

  // Cold phase: one first-touch pass over the cold pool.
  serving::LoadGenOptions cold_load;
  cold_load.num_threads = num_threads;
  cold_load.requests_per_thread = cold_ids.size() / num_threads;
  cold_load.hot_fraction = 0.0;
  cold_load.seed = enable_batcher ? 11 : 22;
  serving::LoadGenReport cold = serving::RunClosedLoopLoad(
      service, dataset, hot_ids, cold_ids, cold_load);

  // Mixed phase: mostly hot lookups; the cold pool is materialized by now,
  // so "cold" picks exercise the recently-written shards.
  service.telemetry().ResetClock();
  serving::LoadGenOptions mixed_load;
  mixed_load.num_threads = num_threads;
  mixed_load.requests_per_thread = mixed_requests_per_thread;
  mixed_load.hot_fraction = 0.85;
  mixed_load.seed = enable_batcher ? 33 : 44;
  serving::LoadGenReport mixed = serving::RunClosedLoopLoad(
      service, dataset, hot_ids, cold_ids, mixed_load);
  return PhaseResult{std::move(cold), std::move(mixed),
                     service.TelemetryJson()};
}

struct NetPhaseResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Single-threaded cold fold-in encode rate (users/s) with whatever ISA
/// the dispatch table currently holds: micro-batches of 8 over `users`'
/// raw features, persistent scratch, exactly the batcher's steady-state
/// encode shape. Used for the SIMD before/after delta — callers pin the
/// table with ForceIsa around this.
double FoldInEncodeRate(const core::FieldVae& model,
                        const MultiFieldDataset& dataset,
                        std::span<const uint32_t> users, double budget_s) {
  const size_t pool = std::min<size_t>(users.size(), 512);
  std::vector<core::RawUserFeatures> storage;
  storage.reserve(pool);
  std::vector<const core::RawUserFeatures*> raw;
  raw.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    storage.push_back(serving::RawFeaturesOf(dataset, users[i]));
    raw.push_back(&storage.back());
  }
  core::FieldVae::FoldInScratch scratch;
  Matrix mu;
  const size_t batch = 8;
  std::span<const core::RawUserFeatures* const> span(raw);
  model.EncodeFoldInInto(span.subspan(0, batch), &scratch, &mu);  // warm
  size_t encoded = 0, cursor = 0;
  Stopwatch watch;
  do {
    if (cursor + batch > pool) cursor = 0;
    model.EncodeFoldInInto(span.subspan(cursor, batch), &scratch, &mu);
    cursor += batch;
    encoded += batch;
  } while (watch.ElapsedSeconds() < budget_s);
  return static_cast<double>(encoded) / watch.ElapsedSeconds();
}

/// Closed-loop lookups of `num_users` keys from `num_threads` clients;
/// `call(thread, user)` performs one RPC. Returns throughput + client-side
/// latency percentiles.
NetPhaseResult DriveLookups(
    size_t num_threads, size_t requests, size_t num_users,
    const std::function<Result<std::vector<float>>(size_t, uint64_t)>& call) {
  LatencyHistogram latency;
  std::atomic<uint64_t> ok{0};
  Stopwatch watch;
  std::vector<std::thread> clients;
  clients.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = t; i < requests; i += num_threads) {
        const int64_t start = MonotonicMicros();
        const Result<std::vector<float>> embedding =
            call(t, uint64_t(i % num_users));
        latency.Record(double(MonotonicMicros() - start));
        if (embedding.ok()) ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double elapsed = watch.ElapsedSeconds();
  if (ok.load() != requests) {
    std::printf("WARNING: net loopback: %llu/%zu lookups succeeded\n",
                (unsigned long long)ok.load(), requests);
  }
  return {elapsed > 0.0 ? double(requests) / elapsed : 0.0,
          latency.Percentile(50.0), latency.Percentile(99.0)};
}

/// Per-hop latency breakdown assembled from stitched traces: one entry per
/// fully-stitched request (client send span + server reply span sharing a
/// trace_id; batcher spans when the request took the fold-in path).
struct HopStats {
  size_t traces = 0;
  LatencyHistogram client_send_us;
  LatencyHistogram server_reply_us;
  LatencyHistogram queue_wait_us;
  LatencyHistogram encode_us;
  /// Client-observed send minus server-side envelope: framing + syscalls +
  /// loopback transit + the client's poll wakeup.
  LatencyHistogram wire_us;

  std::string Json() const {
    return "{\"traces\":" + std::to_string(traces) +
           ",\"client_send_us\":" + client_send_us.SummaryJson() +
           ",\"server_reply_us\":" + server_reply_us.SummaryJson() +
           ",\"queue_wait_us\":" + queue_wait_us.SummaryJson() +
           ",\"encode_us\":" + encode_us.SummaryJson() +
           ",\"wire_us\":" + wire_us.SummaryJson() + "}";
  }
};

/// Drives traced fold-in requests through the router (cold users, so the
/// owning replica goes through its batcher), then joins client and server
/// spans on trace_id. Everything is in-process over loopback, so the one
/// global recorder sees both halves of every trace. Out-param because the
/// histograms are atomic-backed and neither copyable nor movable.
void RunTracedHops(net::ShardRouterClient& router,
                   const MultiFieldDataset& dataset,
                   std::span<const uint32_t> cold_ids, size_t requests,
                   HopStats* stats) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Reset();
  recorder.Enable();
  for (size_t i = 0; i < requests && i < cold_ids.size(); ++i) {
    const uint32_t user = cold_ids[i];
    // Only the recorded spans matter here; per-request errors surface as
    // missing hops in the stitched-trace count.
    (void)router.EncodeFoldIn(user, serving::RawFeaturesOf(dataset, user));
  }
  recorder.Disable();

  std::map<uint64_t, std::vector<obs::TraceEvent>> by_trace;
  for (const obs::TraceEvent& event : recorder.Events()) {
    if (event.trace_id != 0) by_trace[event.trace_id].push_back(event);
  }
  for (const auto& [trace_id, events] : by_trace) {
    double send = 0.0, reply = 0.0, queue = 0.0, encode = 0.0;
    for (const obs::TraceEvent& event : events) {
      const std::string_view name = event.name;
      const double d = double(event.duration_us);
      // max(): a hedged request has two send arms; the winner dominates.
      if (name == "net.client.send") send = std::max(send, d);
      if (name == "net.server.reply") reply = std::max(reply, d);
      if (name == "serving.batcher.queue_wait") queue = std::max(queue, d);
      if (name == "serving.batcher.encode") encode = std::max(encode, d);
    }
    if (send <= 0.0 || reply <= 0.0) continue;  // not fully stitched
    ++stats->traces;
    stats->client_send_us.Record(send);
    stats->server_reply_us.Record(reply);
    if (queue > 0.0) stats->queue_wait_us.Record(queue);
    if (encode > 0.0) stats->encode_us.Record(encode);
    stats->wire_us.Record(std::max(0.0, send - reply));
  }
  recorder.Reset();
}

struct NetLoopbackResult {
  NetPhaseResult direct_1shard;
  NetPhaseResult routed_3shard;
  HopStats hops;
};

/// Loopback-socket serving: the full wire path (framing, CRC, epoll loops,
/// backpressure) minus real network distance. Direct = each client thread
/// owns one RpcChannel to a single server; routed = all threads share a
/// ShardRouterClient consistent-hashing over three replicas.
void RunNetLoopback(const core::FieldVae& model,
                    const MultiFieldDataset& dataset,
                    std::span<const uint32_t> hot_ids,
                    std::span<const uint32_t> cold_ids, size_t num_threads,
                    size_t requests, NetLoopbackResult* out) {
  serving::EmbeddingServiceOptions options;
  options.num_shards = 16;
  options.enable_batcher = true;
  options.batcher.max_batch_size = num_threads;
  options.batcher.max_wait_micros = 100;

  {
    serving::FvaeFoldInEncoder encoder(&model);
    serving::EmbeddingService service(
        serving::MaterializeEmbeddings(model, dataset, hot_ids,
                                       options.num_shards),
        &encoder, options);
    net::RpcServer server(&service, net::RpcServerOptions{});
    FVAE_CHECK(server.Start().ok()) << "loopback server failed to start";
    const std::string endpoint =
        "127.0.0.1:" + std::to_string(server.port());
    std::vector<std::unique_ptr<net::RpcChannel>> channels;
    for (size_t t = 0; t < num_threads; ++t) {
      auto channel = net::RpcChannel::Connect(endpoint);
      FVAE_CHECK(channel.ok()) << channel.status().ToString();
      channels.push_back(std::move(*channel));
    }
    out->direct_1shard = DriveLookups(
        num_threads, requests, hot_ids.size(),
        [&](size_t t, uint64_t user) { return channels[t]->Lookup(user); });
    server.Stop();
  }
  {
    std::vector<std::unique_ptr<serving::FvaeFoldInEncoder>> encoders;
    std::vector<std::unique_ptr<serving::EmbeddingService>> services;
    std::vector<std::unique_ptr<net::RpcServer>> servers;
    std::vector<std::string> endpoints;
    for (size_t shard = 0; shard < 3; ++shard) {
      encoders.push_back(
          std::make_unique<serving::FvaeFoldInEncoder>(&model));
      services.push_back(std::make_unique<serving::EmbeddingService>(
          serving::MaterializeEmbeddings(model, dataset, hot_ids,
                                         options.num_shards),
          encoders.back().get(), options));
      servers.push_back(std::make_unique<net::RpcServer>(
          services.back().get(), net::RpcServerOptions{}));
      FVAE_CHECK(servers.back()->Start().ok())
          << "loopback shard failed to start";
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(servers.back()->port()));
    }
    net::ShardRouterClient router(endpoints);
    out->routed_3shard = DriveLookups(
        num_threads, requests, hot_ids.size(),
        [&](size_t, uint64_t user) { return router.Lookup(user); });
    RunTracedHops(router, dataset, cold_ids,
                  std::min<size_t>(cold_ids.size(), 256), &out->hops);
    for (auto& server : servers) server->Stop();
  }
}

int Main(bool net_loopback) {
  const Scale scale = GetScale();
  PrintBanner("Serving load: micro-batched fold-in vs synchronous encode",
              "online module (Fig. 2) under closed-loop concurrent load");

  // Dataset + a briefly trained model (weights need not be converged for a
  // throughput benchmark, but the feature tables must be populated).
  GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/17);
  // Serving-sized encoder: the online module runs a production-width model,
  // so the bench uses wider hidden layers than the sweep defaults. This is
  // the regime micro-batching targets — one batched GEMM amortizes far
  // better than per-request GEMVs serialized on the encoder.
  core::FvaeConfig config = SweepFvaeConfig(scale, /*seed=*/17);
  config.latent_dim = ByScale<size_t>(scale, 32, 64, 96);
  config.encoder_hidden = {ByScale<size_t>(scale, 256, 512, 768),
                           ByScale<size_t>(scale, 128, 256, 384)};
  config.decoder_hidden = config.encoder_hidden;
  core::FieldVae model(config, gen.dataset.fields());
  core::TrainOptions train_options;
  train_options.batch_size = 256;
  train_options.epochs = 1;
  train_options.time_budget_seconds = ByScale<double>(scale, 1.0, 3.0, 6.0);
  core::TrainFvae(model, gen.dataset, train_options);

  const size_t num_users = gen.dataset.num_users();
  const size_t num_hot = num_users / 2;
  // Two disjoint cold pools so each configuration sees first-touch users.
  const size_t pool = (num_users - num_hot) / 2;
  std::vector<uint32_t> hot_ids(num_hot);
  std::iota(hot_ids.begin(), hot_ids.end(), 0u);
  std::vector<uint32_t> cold_on(pool), cold_off(pool);
  std::iota(cold_on.begin(), cold_on.end(), uint32_t(num_hot));
  std::iota(cold_off.begin(), cold_off.end(), uint32_t(num_hot + pool));

  // Client threads spend most of their time blocked on futures (closed
  // loop), so the count is an offered-concurrency knob, not a core count:
  // more clients -> fuller batches for the batcher-on configuration.
  const size_t num_threads = 8;
  const size_t mixed_requests =
      ByScale<size_t>(scale, 1000, 4000, 10000);

  std::printf("dataset: %s\n", gen.dataset.Summary().c_str());
  std::printf("threads: %zu  hot users: %zu  cold pool: %zu per config\n\n",
              num_threads, num_hot, pool);

  // SIMD dispatch delta: the identical cold fold-in encode with the kernel
  // table pinned to scalar vs the detected-best ISA — the serving-side
  // before/after of the SIMD kernel layer (BENCH_kernels.json has the
  // per-kernel breakdown).
  const Isa native_isa = ActiveIsa();
  const double simd_budget_s = ByScale<double>(scale, 0.2, 0.5, 1.0);
  FVAE_CHECK(ForceIsa(Isa::kScalar));
  const double simd_scalar_rate =
      FoldInEncodeRate(model, gen.dataset, cold_on, simd_budget_s);
  FVAE_CHECK(ForceIsa(native_isa));
  const double simd_native_rate =
      FoldInEncodeRate(model, gen.dataset, cold_on, simd_budget_s);
  const double simd_cold_speedup =
      simd_scalar_rate > 0.0 ? simd_native_rate / simd_scalar_rate : 0.0;
  std::printf("cold fold-in encode: scalar %.0f users/s, %s %.0f users/s "
              "-> %.2fx SIMD speedup\n\n",
              simd_scalar_rate, IsaName(native_isa), simd_native_rate,
              simd_cold_speedup);

  const PhaseResult on = RunConfig(model, gen.dataset, hot_ids, cold_on,
                                   /*enable_batcher=*/true, num_threads,
                                   mixed_requests);
  const PhaseResult off = RunConfig(model, gen.dataset, hot_ids, cold_off,
                                    /*enable_batcher=*/false, num_threads,
                                    mixed_requests);

  const double cold_speedup =
      off.cold.Qps() > 0.0 ? on.cold.Qps() / off.cold.Qps() : 0.0;

  NetLoopbackResult net;
  if (net_loopback) {
    std::printf("\nnet loopback: %zu clients x %zu lookups per topology\n",
                num_threads, mixed_requests);
    // The net phase builds fresh replicas that materialize only hot_ids,
    // so cold_on users are first-touch fold-ins there regardless of the
    // earlier in-process phase.
    RunNetLoopback(model, gen.dataset, hot_ids, cold_on, num_threads,
                   mixed_requests, &net);
  }

  std::string table;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-14s %-6s %12s %10s %10s %10s\n", "config", "phase", "qps",
                "p50_us", "p95_us", "p99_us");
  table += line;
  const auto add_row = [&](const char* name, const char* phase,
                           const serving::LoadGenReport& report) {
    std::snprintf(line, sizeof(line), "%-14s %-6s %12.1f %10.1f %10.1f %10.1f\n",
                  name, phase, report.Qps(),
                  report.latency_us.Percentile(50.0),
                  report.latency_us.Percentile(95.0),
                  report.latency_us.Percentile(99.0));
    table += line;
  };
  add_row("batcher-on", "cold", on.cold);
  add_row("batcher-on", "mixed", on.mixed);
  add_row("batcher-off", "cold", off.cold);
  add_row("batcher-off", "mixed", off.mixed);
  if (net_loopback) {
    const auto add_net_row = [&](const char* name,
                                 const NetPhaseResult& result) {
      std::snprintf(line, sizeof(line),
                    "%-14s %-6s %12.1f %10.1f %10s %10.1f\n", name, "net",
                    result.qps, result.p50_us, "-", result.p99_us);
      table += line;
    };
    add_net_row("net-direct-1", net.direct_1shard);
    add_net_row("net-routed-3", net.routed_3shard);
    std::snprintf(line, sizeof(line),
                  "\nrouted fold-in hop breakdown (%zu stitched traces, "
                  "p50 us): queue-wait %.1f  encode %.1f  server %.1f  "
                  "wire %.1f  client %.1f\n",
                  net.hops.traces, net.hops.queue_wait_us.Percentile(50.0),
                  net.hops.encode_us.Percentile(50.0),
                  net.hops.server_reply_us.Percentile(50.0),
                  net.hops.wire_us.Percentile(50.0),
                  net.hops.client_send_us.Percentile(50.0));
    table += line;
  }
  std::snprintf(line, sizeof(line),
                "\ncold-user (fold-in) throughput speedup from "
                "micro-batching: %.2fx\n",
                cold_speedup);
  table += line;
  std::snprintf(line, sizeof(line),
                "cold fold-in encode speedup from SIMD dispatch (%s vs "
                "scalar): %.2fx\n",
                IsaName(native_isa), simd_cold_speedup);
  table += line;
  std::printf("%s", table.c_str());
  std::printf("\nbatcher-on telemetry:  %s\n", on.telemetry_json.c_str());
  std::printf("batcher-off telemetry: %s\n", off.telemetry_json.c_str());

  // Machine-readable dump. The headline qps/p50/p99 per configuration is
  // the cold (fold-in) phase — the path the batcher exists for; mixed-phase
  // numbers ride along under "mixed".
  std::string json = "{\n";
  json += "  \"scale\": \"" + std::string(ScaleName(scale)) + "\",\n";
  json += "  \"threads\": " + std::to_string(num_threads) + ",\n";
  const auto config_json = [](const PhaseResult& result) {
    char head[128];
    std::snprintf(head, sizeof(head),
                  "{\"qps\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,\n",
                  result.cold.Qps(), result.cold.latency_us.Percentile(50.0),
                  result.cold.latency_us.Percentile(99.0));
    return std::string(head) + "     \"cold\":" + result.cold.Json() +
           ",\n     \"mixed\":" + result.mixed.Json() + "}";
  };
  json += "  \"batcher_on\": " + config_json(on) + ",\n";
  json += "  \"batcher_off\": " + config_json(off) + ",\n";
  if (net_loopback) {
    const auto net_json = [](const NetPhaseResult& result) {
      char piece[128];
      std::snprintf(piece, sizeof(piece),
                    "{\"qps\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f}",
                    result.qps, result.p50_us, result.p99_us);
      return std::string(piece);
    };
    json += "  \"net_loopback\": {\n";
    json += "     \"direct_1shard\": " + net_json(net.direct_1shard) + ",\n";
    json += "     \"routed_3shard\": " + net_json(net.routed_3shard) + ",\n";
    json += "     \"hops\": " + net.hops.Json() + "},\n";
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf), "  \"cold_speedup\": %.3f,\n",
                cold_speedup);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"simd\": {\"native_isa\": \"%s\", "
                "\"scalar_foldin_users_s\": %.1f, "
                "\"native_foldin_users_s\": %.1f, "
                "\"simd_cold_speedup\": %.3f}\n",
                IsaName(native_isa), simd_scalar_rate, simd_native_rate,
                simd_cold_speedup);
  json += buf;
  json += "}\n";

  std::filesystem::create_directories("bench_results");
  for (const char* path :
       {"BENCH_serving.json", "bench_results/BENCH_serving.json"}) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }
  }
  if (std::FILE* f = std::fopen("bench_results/serving_load.txt", "w")) {
    std::fputs(table.c_str(), f);
    std::fprintf(f, "\nbatcher-on telemetry:  %s\n", on.telemetry_json.c_str());
    std::fprintf(f, "batcher-off telemetry: %s\n", off.telemetry_json.c_str());
    std::fclose(f);
  }
  std::printf("\nwrote BENCH_serving.json and bench_results/serving_load.txt\n");

  if (cold_speedup <= 1.0) {
    std::printf("WARNING: batcher-on did not beat batcher-off on cold "
                "fold-in throughput\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main(int argc, char** argv) {
  bool net_loopback = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--net") net_loopback = true;
  }
  return fvae::bench::Main(net_loopback);
}
