// Reproduces Fig. 5: tag-prediction AUC and mAP of the FVAE under the
// three feature-sampling strategies (Uniform / Frequency / Zipfian) at
// sampling rates r in {0.2, 0.4, 0.6, 0.8}.
//
// Paper shape to verify: Uniform dominates Frequency and Zipfian at every
// rate, and performance is NOT monotone in r.

#include <cstdio>

#include "baselines/fvae_adapter.h"
#include "bench/bench_common.h"

namespace fvae::bench {
namespace {

int Run() {
  PrintBanner("Fig. 5 — sampling strategies x sampling rate",
              "FVAE paper, Fig. 5");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/2029);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  constexpr size_t kTagField = 3;
  // Paper protocol: evaluate on held-out users (fold-in).
  const HeldOutUsers split = SplitHeldOutUsers(
      gen.dataset, 0.2, ByScale<size_t>(scale, 250, 800, 2500));

  const core::SamplingStrategy strategies[] = {
      core::SamplingStrategy::kUniform, core::SamplingStrategy::kFrequency,
      core::SamplingStrategy::kZipfian};
  const double rates[] = {0.2, 0.4, 0.6, 0.8};

  std::printf("%-11s", "strategy");
  for (double r : rates) std::printf("  r=%.1f AUC/mAP   ", r);
  std::printf("\n");

  for (core::SamplingStrategy strategy : strategies) {
    std::printf("%-11s", core::SamplingStrategyName(strategy));
    for (double rate : rates) {
      core::FvaeConfig config = SweepFvaeConfig(scale, 71);
      config.sampling_strategy = strategy;
      config.sampling_rate = rate;
      baselines::FvaeAdapter fvae(config, SweepTrainOptions(scale));
      fvae.Fit(split.train);
      Rng task_rng(88);
      const eval::TaskMetrics metrics = eval::RunTagPrediction(
          fvae, gen.dataset, split.test_users, kTagField,
          gen.field_vocab[kTagField], task_rng);
      std::printf("  %.4f/%.4f  ", metrics.auc, metrics.map);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape: the uniform row dominates at every rate; no row\n"
      "is monotone in r (paper Fig. 5).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
