// Per-ISA throughput for the runtime-dispatched SIMD kernel layer
// (src/math/kernels/): GEMM, softmax, exp, tanh microkernels at serving
// shapes, plus the end-to-end metric the layer exists for — cold fold-in
// encode rate (FieldVae::EncodeFoldInInto) with the dispatch table pinned
// to each ISA the host supports. The scalar row is the "before" of the
// SIMD change; the native row is the "after".
//
// Outputs: BENCH_kernels.json + bench_results/BENCH_kernels.json with one
// object per ISA and the native-vs-scalar cold fold-in speedup, and
// bench_results/kernels_bench.txt (human-readable).

#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/fvae_model.h"
#include "core/trainer.h"
#include "math/kernels/kernel_table.h"
#include "serving/load_gen.h"

namespace fvae::bench {
namespace {

/// Calls `op` until `budget_s` elapses (at least once); returns calls/s.
double MeasureRate(double budget_s, const std::function<void()>& op) {
  // Warm-up: touch caches, settle the dispatch table and FTZ state.
  op();
  size_t calls = 0;
  Stopwatch watch;
  do {
    op();
    ++calls;
  } while (watch.ElapsedSeconds() < budget_s);
  return static_cast<double>(calls) / watch.ElapsedSeconds();
}

struct IsaNumbers {
  double gemm_gflops = 0.0;
  double softmax_melems_s = 0.0;
  double exp_melems_s = 0.0;
  double tanh_melems_s = 0.0;
  double foldin_users_s = 0.0;
};

// GEMM at the serving encoder's hidden-layer shape; element counts sized
// so one call is ~100us of scalar work.
constexpr size_t kGemmM = 64, kGemmK = 512, kGemmN = 256;
constexpr size_t kElems = 4096;

IsaNumbers MeasureIsa(const core::FieldVae& model,
                      std::span<const core::RawUserFeatures* const> raw,
                      double budget_s) {
  IsaNumbers out;
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> a(kGemmM * kGemmK), b(kGemmK * kGemmN),
      c(kGemmM * kGemmN, 0.0f);
  for (float& v : a) v = dist(rng);
  for (float& v : b) v = dist(rng);
  std::vector<float> logits(kElems);
  for (float& v : logits) v = dist(rng);
  std::vector<float> scratch(kElems);

  const KernelTable& t = Kernels();
  const double gemm_calls_s = MeasureRate(budget_s, [&] {
    t.gemm_accumulate(a.data(), b.data(), c.data(), kGemmM, kGemmK, kGemmN);
  });
  out.gemm_gflops =
      gemm_calls_s * 2.0 * double(kGemmM) * double(kGemmK) * double(kGemmN) /
      1e9;
  const double softmax_calls_s = MeasureRate(budget_s, [&] {
    scratch = logits;
    t.softmax_inplace(scratch.data(), scratch.size());
  });
  out.softmax_melems_s = softmax_calls_s * double(kElems) / 1e6;
  const double exp_calls_s = MeasureRate(budget_s, [&] {
    scratch = logits;
    t.exp_inplace(scratch.data(), scratch.size());
  });
  out.exp_melems_s = exp_calls_s * double(kElems) / 1e6;
  const double tanh_calls_s = MeasureRate(budget_s, [&] {
    scratch = logits;
    t.tanh_inplace(scratch.data(), scratch.size());
  });
  out.tanh_melems_s = tanh_calls_s * double(kElems) / 1e6;

  // Cold fold-in encode in micro-batches of 8 (the batcher's steady-state
  // shape under modest concurrency), persistent scratch as in serving.
  core::FieldVae::FoldInScratch foldin_scratch;
  Matrix mu;
  const size_t batch = 8;
  size_t cursor = 0;
  const double batches_s = MeasureRate(budget_s, [&] {
    if (cursor + batch > raw.size()) cursor = 0;
    model.EncodeFoldInInto(raw.subspan(cursor, batch), &foldin_scratch, &mu);
    cursor += batch;
  });
  out.foldin_users_s = batches_s * double(batch);
  return out;
}

int Main() {
  const Scale scale = GetScale();
  PrintBanner("SIMD kernel layer: per-ISA throughput",
              "runtime-dispatched math kernels under the fold-in encoder");

  // Serving-sized model (same shape as bench/serving_load.cc): this is the
  // regime the kernel layer targets.
  GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/17);
  core::FvaeConfig config = SweepFvaeConfig(scale, /*seed=*/17);
  config.latent_dim = ByScale<size_t>(scale, 32, 64, 96);
  config.encoder_hidden = {ByScale<size_t>(scale, 256, 512, 768),
                           ByScale<size_t>(scale, 128, 256, 384)};
  config.decoder_hidden = config.encoder_hidden;
  core::FieldVae model(config, gen.dataset.fields());
  core::TrainOptions train_options;
  train_options.batch_size = 256;
  train_options.epochs = 1;
  train_options.time_budget_seconds = ByScale<double>(scale, 0.5, 2.0, 4.0);
  core::TrainFvae(model, gen.dataset, train_options);

  const size_t pool =
      std::min<size_t>(gen.dataset.num_users(), ByScale<size_t>(scale, 256, 1024, 4096));
  std::vector<core::RawUserFeatures> raw_storage;
  raw_storage.reserve(pool);
  std::vector<const core::RawUserFeatures*> raw;
  raw.reserve(pool);
  for (size_t u = 0; u < pool; ++u) {
    raw_storage.push_back(
        serving::RawFeaturesOf(gen.dataset, static_cast<uint32_t>(u)));
    raw.push_back(&raw_storage.back());
  }

  const Isa native = ActiveIsa();
  const double budget_s = ByScale<double>(scale, 0.1, 0.4, 1.0);
  std::map<Isa, IsaNumbers> numbers;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (!IsaSupported(isa)) {
      std::printf("%-8s unsupported on this host, skipped\n", IsaName(isa));
      continue;
    }
    FVAE_CHECK(ForceIsa(isa));
    numbers[isa] = MeasureIsa(model, raw, budget_s);
  }
  FVAE_CHECK(ForceIsa(native));

  std::string table;
  char line[256];
  std::snprintf(line, sizeof(line), "%-8s %12s %14s %12s %12s %14s\n", "isa",
                "gemm_gflops", "softmax_Mel/s", "exp_Mel/s", "tanh_Mel/s",
                "foldin_users/s");
  table += line;
  for (const auto& [isa, n] : numbers) {
    std::snprintf(line, sizeof(line),
                  "%-8s %12.2f %14.1f %12.1f %12.1f %14.1f\n", IsaName(isa),
                  n.gemm_gflops, n.softmax_melems_s, n.exp_melems_s,
                  n.tanh_melems_s, n.foldin_users_s);
    table += line;
  }
  const double scalar_foldin = numbers[Isa::kScalar].foldin_users_s;
  const double native_foldin = numbers[native].foldin_users_s;
  const double foldin_speedup =
      scalar_foldin > 0.0 ? native_foldin / scalar_foldin : 0.0;
  std::snprintf(line, sizeof(line),
                "\ncold fold-in encode speedup, native (%s) vs scalar: "
                "%.2fx\n",
                IsaName(native), foldin_speedup);
  table += line;
  std::printf("%s", table.c_str());

  std::string json = "{\n";
  json += "  \"scale\": \"" + std::string(ScaleName(scale)) + "\",\n";
  json += "  \"native_isa\": \"" + std::string(IsaName(native)) + "\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  \"gemm_shape\": [%zu, %zu, %zu],\n",
                kGemmM, kGemmK, kGemmN);
  json += buf;
  json += "  \"isas\": {\n";
  bool first = true;
  for (const auto& [isa, n] : numbers) {
    std::snprintf(
        buf, sizeof(buf),
        "%s    \"%s\": {\"gemm_gflops\": %.2f, \"softmax_melems_s\": %.1f, "
        "\"exp_melems_s\": %.1f, \"tanh_melems_s\": %.1f, "
        "\"foldin_users_s\": %.1f}",
        first ? "" : ",\n", IsaName(isa), n.gemm_gflops, n.softmax_melems_s,
        n.exp_melems_s, n.tanh_melems_s, n.foldin_users_s);
    json += buf;
    first = false;
  }
  json += "\n  },\n";
  std::snprintf(buf, sizeof(buf),
                "  \"cold_foldin_speedup_native_vs_scalar\": %.3f\n",
                foldin_speedup);
  json += buf;
  json += "}\n";

  std::filesystem::create_directories("bench_results");
  for (const char* path :
       {"BENCH_kernels.json", "bench_results/BENCH_kernels.json"}) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }
  }
  if (std::FILE* f = std::fopen("bench_results/kernels_bench.txt", "w")) {
    std::fputs(table.c_str(), f);
    std::fclose(f);
  }
  std::printf("\nwrote BENCH_kernels.json and bench_results/kernels_bench.txt\n");

  if (native != Isa::kScalar && foldin_speedup < 1.5) {
    std::printf("WARNING: native fold-in speedup %.2fx below the 1.5x "
                "target\n",
                foldin_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Main(); }
