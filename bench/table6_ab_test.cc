// Reproduces Table VI: the online A/B test in the look-alike uploader
// recommendation system.
//
// Arms, following the production setup the paper describes:
//  * baseline — skip-gram embeddings learned from a SINGLE behaviour
//    source (the tag stream). The paper's §I motivation: "most of existing
//    deep learning approaches learn user representations ... and only use
//    single-source data"; its production baseline is such a model.
//  * treatment — FVAE embeddings learned from the full multi-field
//    profile.
//
// Ground truth (DESIGN.md §5): a user's affinity for an uploader is the
// cosine overlap between their sparse feature profile and the uploader's
// content signature (a prototype user's profile) — users follow uploaders
// whose content matches what they actually consume, across all fields.
//
// Paper shape to verify: positive relative change on every metric
// (#Following Click +7.92%, #Like +1.31%, Avg.Like +1.16%, #Share +1.90%,
// Avg.Share +2.12%).

#include <cstdio>

#include "baselines/fvae_adapter.h"
#include "baselines/skipgram.h"
#include "bench/bench_common.h"
#include "lookalike/ab_test.h"

namespace fvae::bench {
namespace {

/// Restricts a dataset to one field (the "single-source" view).
MultiFieldDataset SingleField(const MultiFieldDataset& source, size_t keep) {
  MultiFieldDataset::Builder builder({source.fields()[keep]});
  std::vector<std::vector<FeatureEntry>> per_field(1);
  for (size_t u = 0; u < source.num_users(); ++u) {
    auto span = source.UserField(u, keep);
    per_field[0].assign(span.begin(), span.end());
    builder.AddUser(per_field);
  }
  return builder.Build();
}

int Run() {
  PrintBanner("Table VI — look-alike online A/B test (simulated)",
              "FVAE paper, Table VI");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/2026);
  std::printf("dataset: %s\n", gen.dataset.Summary().c_str());
  const std::vector<uint32_t> users = AllUsers(gen.dataset);

  // Baseline arm: skip-gram on the tag stream only (single source).
  constexpr size_t kTagField = 3;
  const MultiFieldDataset tag_only = SingleField(gen.dataset, kTagField);
  baselines::SkipGramModel::Options sg_options;
  sg_options.variant = baselines::SkipGramModel::Variant::kItem2Vec;
  sg_options.embedding_dim = ByScale<size_t>(scale, 32, 64, 64);
  sg_options.epochs = ByScale<size_t>(scale, 4, 10, 12);
  sg_options.contexts_per_center = 8;
  sg_options.seed = 41;
  baselines::SkipGramModel skipgram(sg_options);
  std::printf("fitting single-source skip-gram baseline...\n");
  skipgram.Fit(tag_only);
  const Matrix sg_embeddings = skipgram.Embed(tag_only, users);

  // Treatment arm: FVAE on the full multi-field profile.
  baselines::FvaeAdapter fvae(DefaultFvaeConfig(scale, 42),
                              DefaultTrainOptions(scale));
  std::printf("fitting multi-field FVAE...\n");
  fvae.Fit(gen.dataset);
  const Matrix fvae_embeddings = fvae.Embed(gen.dataset, users);

  lookalike::AbTestConfig config;
  config.num_accounts = ByScale<size_t>(scale, 60, 200, 500);
  config.recommendations_per_user = 10;
  config.seed_followers_per_account =
      ByScale<size_t>(scale, 10, 25, 50);
  config.seed = 2027;
  // Profile-overlap ground truth over the full multi-field profiles.
  lookalike::LookalikeAbTest ab(gen.dataset, config);

  const lookalike::ArmMetrics base = ab.RunArm("skip-gram", sg_embeddings);
  const lookalike::ArmMetrics treat = ab.RunArm("FVAE", fvae_embeddings);

  auto rel = [](double a, double b) {
    return b > 0.0 ? 100.0 * (a / b - 1.0) : 0.0;
  };
  std::printf("\n%-18s  %-12s  %-12s  %s\n", "Metric", "skip-gram", "FVAE",
              "change");
  std::printf("%-18s  %-12zu  %-12zu  %+.2f%%\n", "#Following Click",
              base.following_clicks, treat.following_clicks,
              rel(double(treat.following_clicks),
                  double(base.following_clicks)));
  std::printf("%-18s  %-12zu  %-12zu  %+.2f%%\n", "#Like", base.likes,
              treat.likes, rel(double(treat.likes), double(base.likes)));
  std::printf("%-18s  %-12.3f  %-12.3f  %+.2f%%\n", "Avg. Like",
              base.AvgLike(), treat.AvgLike(),
              rel(treat.AvgLike(), base.AvgLike()));
  std::printf("%-18s  %-12zu  %-12zu  %+.2f%%\n", "#Share", base.shares,
              treat.shares, rel(double(treat.shares), double(base.shares)));
  std::printf("%-18s  %-12.3f  %-12.3f  %+.2f%%\n", "Avg. Share",
              base.AvgShare(), treat.AvgShare(),
              rel(treat.AvgShare(), base.AvgShare()));

  std::printf(
      "\nExpected shape: FVAE positive on all metrics (paper: +7.92%% "
      "clicks,\n+1.31%% likes, +1.90%% shares).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
