// Reproduces Fig. 8: sensitivity of tag-prediction AUC/mAP to the KL peak
// weight beta, over {0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}.
//
// Paper shape to verify: a moderate positive beta improves over beta = 0,
// and performance degrades gracefully at large beta.

#include <cstdio>

#include "baselines/fvae_adapter.h"
#include "bench/bench_common.h"

namespace fvae::bench {
namespace {

int Run() {
  PrintBanner("Fig. 8 — beta (KL annealing peak) sensitivity",
              "FVAE paper, Fig. 8");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/2032);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  constexpr size_t kTagField = 3;
  // Paper protocol: evaluate on held-out users (fold-in).
  const HeldOutUsers split = SplitHeldOutUsers(
      gen.dataset, 0.2, ByScale<size_t>(scale, 250, 800, 2500));

  std::printf("%-6s  %-8s  %-8s\n", "beta", "AUC", "mAP");
  for (float beta : {0.0f, 0.1f, 0.3f, 0.5f, 0.7f, 0.9f, 1.0f}) {
    core::FvaeConfig config = SweepFvaeConfig(scale, 111);
    config.beta = beta;
    baselines::FvaeAdapter fvae(config, SweepTrainOptions(scale));
    fvae.Fit(split.train);
    Rng task_rng(113);
    const eval::TaskMetrics metrics = eval::RunTagPrediction(
        fvae, gen.dataset, split.test_users, kTagField,
        gen.field_vocab[kTagField], task_rng);
    std::printf("%-6.1f  %.4f    %.4f\n", beta, metrics.auc, metrics.map);
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: a small positive beta beats beta=0; large beta\n"
      "slowly degrades (paper Fig. 8).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
