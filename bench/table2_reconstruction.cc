// Reproduces Table II: AUC and mAP of the reconstruction task on the
// Short Content dataset, for all eight methods, overall and per field.
//
// Paper shape to verify: FVAE wins every *per-field* column; Mult-VAE /
// RecVAE edge FVAE on the *overall* columns because their single global
// softmax makes scores comparable across fields while FVAE's per-field
// multinomials are not (paper §V-B1).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/model_zoo.h"
#include "common/stopwatch.h"

namespace fvae::bench {
namespace {

int Run() {
  PrintBanner("Table II — reconstruction on Short Content (SC)",
              "FVAE paper, Table II");
  const Scale scale = GetScale();
  const GeneratedProfiles gen = MakeShortContent(scale, /*seed=*/2022);
  std::printf("dataset: %s\n\n", gen.dataset.Summary().c_str());

  // Paper protocol: per-user within-field holdout for the reconstruction
  // targets, and models fit only on a training user population — held-out
  // users are scored by fold-in on their reduced profiles.
  Rng split_rng(1);
  const ReconstructionSplit split =
      HoldOutWithinUsers(gen.dataset, /*holdout_fraction=*/0.3, split_rng);
  const size_t num_test = ByScale<size_t>(scale, 300, 1200, 4000);
  const size_t num_train = gen.dataset.num_users() - num_test;
  std::vector<uint32_t> train_users(num_train);
  std::iota(train_users.begin(), train_users.end(), 0u);
  const MultiFieldDataset train_view = Subset(split.input, train_users);
  std::vector<uint32_t> eval_users(num_test);
  std::iota(eval_users.begin(), eval_users.end(),
            static_cast<uint32_t>(num_train));
  std::printf("held-out test users: %zu\n", eval_users.size());

  const size_t num_fields = gen.dataset.num_fields();
  std::printf("%-10s | %-7s", "Method", "Overall");
  for (size_t k = 0; k < num_fields; ++k) {
    std::printf(" %-7s", gen.dataset.field(k).name.c_str());
  }
  std::printf(" | %-7s", "Overall");
  for (size_t k = 0; k < num_fields; ++k) {
    std::printf(" %-7s", gen.dataset.field(k).name.c_str());
  }
  std::printf("   (left: AUC, right: mAP)\n");

  for (auto& model : BuildAllModels(scale, /*seed=*/7)) {
    Stopwatch watch;
    model->Fit(train_view);
    Rng task_rng(99);  // same negatives for every model
    const eval::ReconstructionMetrics metrics = eval::RunReconstruction(
        *model, gen.dataset, split, eval_users, gen.field_vocab, task_rng);
    std::printf("%-10s | %.4f ", model->Name().c_str(),
                metrics.overall.auc);
    for (size_t k = 0; k < num_fields; ++k) {
      std::printf(" %.4f", metrics.per_field[k].auc);
    }
    std::printf(" | %.4f ", metrics.overall.map);
    for (size_t k = 0; k < num_fields; ++k) {
      std::printf(" %.4f", metrics.per_field[k].map);
    }
    std::printf("   [fit %.1fs]\n", watch.ElapsedSeconds());
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: FVAE best per-field; Mult-VAE/RecVAE lead on the\n"
      "Overall columns (cross-field score comparability).\n");
  return 0;
}

}  // namespace
}  // namespace fvae::bench

int main() { return fvae::bench::Run(); }
