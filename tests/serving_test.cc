#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <new>
#include <numeric>
#include <semaphore>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/fvae_model.h"
#include "data/dataset.h"
#include "math/matrix.h"
#include "serving/embedding_service.h"
#include "serving/embedding_store.h"
#include "serving/fold_in.h"
#include "serving/lru_cache.h"
#include "serving/request_batcher.h"
#include "serving/serving_proxy.h"
#include "serving/sharded_store.h"
#include "serving/telemetry.h"

// ---------------------------------------------------------------------------
// Debug operator-new interposer: the runtime witness for the FVAE_NOALLOC
// contract that fvae_lint checks statically. Replacing the global
// allocation functions routes every new-expression in this binary through
// a counter that is armed only around the call under test; the warmed
// fold-in encode must hit it zero times.
// ---------------------------------------------------------------------------
namespace alloc_witness {

std::atomic<bool> armed{false};
std::atomic<size_t> count{0};

inline void Note() {
  if (armed.load(std::memory_order_relaxed)) {
    count.fetch_add(1, std::memory_order_relaxed);
  }
}

inline void* Alloc(std::size_t size) {
  Note();
  return std::malloc(size == 0 ? 1 : size);
}

inline void* AlignedAlloc(std::size_t size, std::size_t alignment) {
  Note();
  // aligned_alloc insists size is a multiple of alignment.
  const std::size_t rounded =
      (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
}

/// Arms the counter for one scope; hits() reads the allocations seen.
class Scope {
 public:
  Scope() {
    count.store(0, std::memory_order_relaxed);
    armed.store(true, std::memory_order_relaxed);
  }
  ~Scope() { armed.store(false, std::memory_order_relaxed); }
  size_t hits() const { return count.load(std::memory_order_relaxed); }
};

}  // namespace alloc_witness

void* operator new(std::size_t size) {
  void* ptr = alloc_witness::Alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new[](std::size_t size) {
  void* ptr = alloc_witness::Alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return alloc_witness::Alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return alloc_witness::Alloc(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr =
      alloc_witness::AlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr =
      alloc_witness::AlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace fvae::serving {
namespace {

// ---------- EmbeddingStore ----------

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fvae_store_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(StoreTest, PutAndGet) {
  EmbeddingStore store;
  store.Put(7, {1.0f, 2.0f});
  store.Put(8, {3.0f, 4.0f});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dim(), 2u);
  ASSERT_TRUE(store.Get(7).has_value());
  EXPECT_EQ((*store.Get(7))[1], 2.0f);
  EXPECT_FALSE(store.Get(99).has_value());
}

TEST_F(StoreTest, PutOverwrites) {
  EmbeddingStore store;
  store.Put(7, {1.0f});
  store.Put(7, {5.0f});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ((*store.Get(7))[0], 5.0f);
}

TEST_F(StoreTest, PutBatchFromMatrix) {
  EmbeddingStore store;
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  store.PutBatch({10, 20, 30}, m);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ((*store.Get(20))[0], 3.0f);
  EXPECT_EQ((*store.Get(30))[1], 6.0f);
}

TEST_F(StoreTest, SaveLoadRoundTrip) {
  EmbeddingStore store;
  store.Put(1, {1.5f, -2.5f, 3.5f});
  store.Put(0xFFFFFFFFFFFFFFFFULL, {0.0f, 0.0f, 9.0f});
  ASSERT_TRUE(store.Save(Path("emb.bin")).ok());

  auto loaded = EmbeddingStore::Load(Path("emb.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 3u);
  EXPECT_EQ((*loaded->Get(1))[2], 3.5f);
  EXPECT_EQ((*loaded->Get(0xFFFFFFFFFFFFFFFFULL))[2], 9.0f);
}

TEST_F(StoreTest, LoadMissingFileFails) {
  auto loaded = EmbeddingStore::Load(Path("missing.bin"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(StoreTest, LoadRejectsTruncatedFile) {
  EmbeddingStore store;
  for (uint64_t i = 0; i < 50; ++i) store.Put(i, {1.0f, 2.0f});
  ASSERT_TRUE(store.Save(Path("big.bin")).ok());
  std::filesystem::resize_file(
      Path("big.bin"), std::filesystem::file_size(Path("big.bin")) / 2);
  EXPECT_FALSE(EmbeddingStore::Load(Path("big.bin")).ok());
}

TEST_F(StoreTest, LoadDetectsBitFlips) {
  // The reload path swaps a dump in only after Load succeeds, so the CRC
  // check here is what keeps a corrupt dump out of serving.
  EmbeddingStore store;
  for (uint64_t i = 0; i < 20; ++i) store.Put(i, {float(i), -1.0f});
  ASSERT_TRUE(store.Save(Path("crc.bin")).ok());

  std::ifstream in(Path("crc.bin"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  {
    std::ofstream out(Path("crc.bin"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = EmbeddingStore::Load(Path("crc.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(StoreTest, LoadsLegacyV1Files) {
  EmbeddingStore store;
  store.Put(5, {1.0f, 2.0f, 3.0f});
  store.Put(6, {4.0f, 5.0f, 6.0f});
  ASSERT_TRUE(store.Save(Path("v2.bin")).ok());

  // A v1 file is the v2 file with version 1 and the CRC footer stripped.
  std::ifstream in(Path("v2.bin"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::string v1 = bytes.substr(0, bytes.size() - 4);
  const uint32_t version = 1;
  std::memcpy(v1.data() + 4, &version, sizeof(version));
  {
    std::ofstream out(Path("v1.bin"), std::ios::binary);
    out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }
  auto loaded = EmbeddingStore::Load(Path("v1.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded->Get(6))[2], 6.0f);
}

// ---------- LruCache ----------

TEST(LruCacheTest, BasicPutGet) {
  LruCache<uint64_t, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  EXPECT_EQ(cache.Get(1).value(), 100);
  EXPECT_EQ(cache.Get(2).value(), 200);
  EXPECT_FALSE(cache.Get(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<uint64_t, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  cache.Put(3, 300);  // evicts 1
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
}

TEST(LruCacheTest, GetRefreshesRecency) {
  LruCache<uint64_t, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  cache.Get(1);       // 1 becomes most recent
  cache.Put(3, 300);  // evicts 2, not 1
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, PutRefreshesAndOverwrites) {
  LruCache<uint64_t, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  cache.Put(1, 111);  // overwrite, 1 most recent
  cache.Put(3, 300);  // evicts 2
  EXPECT_EQ(cache.Get(1).value(), 111);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, CapacityOne) {
  LruCache<int, int> cache(1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.Get(2).value(), 20);
}

TEST(LruCacheTest, CapacityZeroNeverCaches) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, CapacityOneReinsertUpdatesValueAndSurvives) {
  LruCache<int, int> cache(1);
  cache.Put(1, 10);
  cache.Put(1, 11);  // re-insert of the only key must not evict it
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1).value(), 11);
}

TEST(LruCacheTest, ReinsertRefreshesRecency) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  cache.Put(1, 11);   // 1 becomes most recent; LRU order is now 2,3,1
  cache.Put(4, 40);   // evicts 2
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(cache.Get(1).value(), 11);
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(LruCacheTest, EvictionOrderUnderInterleavedGetPut) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);   // recency: 3,2,1
  cache.Get(1);       // recency: 1,3,2
  cache.Put(4, 40);   // evicts 2 -> recency: 4,1,3
  EXPECT_FALSE(cache.Contains(2));
  cache.Get(3);       // recency: 3,4,1
  cache.Put(5, 50);   // evicts 1 -> recency: 5,3,4
  EXPECT_FALSE(cache.Contains(1));
  cache.Put(6, 60);   // evicts 4
  EXPECT_FALSE(cache.Contains(4));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_TRUE(cache.Contains(6));
  EXPECT_EQ(cache.size(), 3u);
}

// Misses on a full cache must not evict (Get has no side effect on misses).
TEST(LruCacheTest, MissDoesNotDisturbOrder) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_FALSE(cache.Get(99).has_value());
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

// ---------- ServingProxy ----------

TEST(ServingProxyTest, LookupPathsAndStats) {
  EmbeddingStore store;
  store.Put(1, {1.0f});
  store.Put(2, {2.0f});
  ServingProxy proxy(&store, /*cache_capacity=*/1);

  // Cold lookup: store hit.
  ASSERT_TRUE(proxy.Lookup(1).has_value());
  EXPECT_EQ(proxy.stats().store_hits, 1u);
  EXPECT_EQ(proxy.stats().cache_hits, 0u);

  // Warm lookup: cache hit.
  ASSERT_TRUE(proxy.Lookup(1).has_value());
  EXPECT_EQ(proxy.stats().cache_hits, 1u);

  // Different user evicts (capacity 1), then a miss for unknown.
  ASSERT_TRUE(proxy.Lookup(2).has_value());
  EXPECT_FALSE(proxy.Lookup(999).has_value());
  EXPECT_EQ(proxy.stats().misses, 1u);
  EXPECT_EQ(proxy.stats().requests, 4u);
  EXPECT_NEAR(proxy.stats().CacheHitRate(), 0.25, 1e-12);
}

TEST(ServingProxyTest, OfflineToOnlinePipeline) {
  // Offline: dump embeddings; online: load + serve (Fig. 2 flow).
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fvae_proxy_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "dump.bin").string();
  {
    EmbeddingStore offline;
    Matrix m = Matrix::FromRows({{0.1f, 0.2f}, {0.3f, 0.4f}});
    offline.PutBatch({100, 200}, m);
    ASSERT_TRUE(offline.Save(path).ok());
  }
  auto online = EmbeddingStore::Load(path);
  ASSERT_TRUE(online.ok());
  ServingProxy proxy(&*online, 16);
  ASSERT_TRUE(proxy.Lookup(100).has_value());
  EXPECT_FLOAT_EQ((*proxy.Lookup(100))[1], 0.2f);
  std::filesystem::remove_all(dir);
}

// ---------- ServingProxy reload ----------

class ProxyReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fvae_reload_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(ProxyReloadTest, ReloadSwapsStoreAndInvalidatesCache) {
  EmbeddingStore day1;
  day1.Put(1, {1.0f, 1.0f});
  day1.Put(2, {2.0f, 2.0f});
  ServingProxy proxy(&day1, /*cache_capacity=*/16);

  // Warm the cache with day-1 values.
  ASSERT_TRUE(proxy.Lookup(1).has_value());
  ASSERT_TRUE(proxy.Lookup(1).has_value());
  EXPECT_EQ(proxy.stats().cache_hits, 1u);

  // Day 2 lands: user 1 re-embedded, user 2 gone, user 3 new.
  const std::string path = Path("day2.bin");
  {
    EmbeddingStore day2;
    day2.Put(1, {10.0f, 10.0f});
    day2.Put(3, {30.0f, 30.0f});
    ASSERT_TRUE(day2.Save(path).ok());
  }
  Status reloaded = proxy.ReloadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.ToString();
  EXPECT_EQ(proxy.stats().reloads, 1u);

  // The cached day-1 value must not survive the swap.
  ASSERT_TRUE(proxy.Lookup(1).has_value());
  EXPECT_FLOAT_EQ((*proxy.Lookup(1))[0], 10.0f);
  EXPECT_FALSE(proxy.Lookup(2).has_value());
  ASSERT_TRUE(proxy.Lookup(3).has_value());
  EXPECT_FLOAT_EQ((*proxy.Lookup(3))[1], 30.0f);
}

TEST_F(ProxyReloadTest, FailedReloadKeepsServingOldStore) {
  EmbeddingStore old_store;
  old_store.Put(1, {1.0f});
  ServingProxy proxy(&old_store, 16);
  ASSERT_TRUE(proxy.Lookup(1).has_value());

  EmbeddingStore fresh;
  fresh.Put(1, {9.0f});
  const std::string path = Path("fresh.bin");
  ASSERT_TRUE(fresh.Save(path).ok());

  // A transient read failure ("HDFS bounced") must leave the proxy on the
  // old store — and a later retry succeeds.
  {
    ScopedFailpoint fp("embedding_store.load", FailpointAction::kError);
    Status status = proxy.ReloadFromFile(path);
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(proxy.stats().reloads, 0u);
    ASSERT_TRUE(proxy.Lookup(1).has_value());
    EXPECT_FLOAT_EQ((*proxy.Lookup(1))[0], 1.0f);
  }
  ASSERT_TRUE(proxy.ReloadFromFile(path).ok());
  EXPECT_FLOAT_EQ((*proxy.Lookup(1))[0], 9.0f);
  EXPECT_EQ(proxy.stats().reloads, 1u);

  // A corrupt dump is equally rejected (CRC), old store keeps serving.
  {
    std::ofstream out(Path("torn.bin"), std::ios::binary);
    out << "FVEB garbage that is not a complete dump";
  }
  EXPECT_FALSE(proxy.ReloadFromFile(Path("torn.bin")).ok());
  EXPECT_FLOAT_EQ((*proxy.Lookup(1))[0], 9.0f);
}

// Kill matrix over the dump writer: SIGKILL the producer at every
// registered save failpoint and prove a subsequent reload always swaps in
// a *complete* dump — the old day's or the new day's, never a torn hybrid.
// This closes the loop on the atomic-rename + CRC design: the proxy's
// Load-validate-then-swap can only ever observe all-or-nothing files.
TEST_F(ProxyReloadTest, KillAtEverySaveStageNeverServesTornDump) {
  const char* kStages[] = {
      "embedding_store.save.before_tmp_write",
      "embedding_store.save.after_tmp_write",
      "embedding_store.save.before_rename",
      "embedding_store.save.after_rename",
  };

  for (const char* stage : kStages) {
    SCOPED_TRACE(stage);
    const std::string path = Path("dump.bin");

    EmbeddingStore old_dump;
    old_dump.Put(1, {1.0f, 1.0f});
    old_dump.Put(2, {2.0f, 2.0f});
    ASSERT_TRUE(old_dump.Save(path).ok());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: die mid-overwrite. No gtest machinery in here.
      ArmFailpoint(stage, FailpointAction::kKill);
      EmbeddingStore new_dump;
      new_dump.Put(1, {10.0f, 10.0f});
      new_dump.Put(3, {30.0f, 30.0f});
      // The kill failpoint fires mid-save; the status never materializes.
      (void)new_dump.Save(path);
      ::_exit(77);  // reached only if the failpoint failed to fire
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited instead of dying";
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

    EmbeddingStore seed;  // what the proxy served before the reload
    seed.Put(1, {1.0f, 1.0f});
    seed.Put(2, {2.0f, 2.0f});
    ServingProxy proxy(&seed, 16);
    ASSERT_TRUE(proxy.ReloadFromFile(path).ok())
        << "canonical dump must stay loadable at every kill point";

    auto user1 = proxy.Lookup(1);
    ASSERT_TRUE(user1.has_value());
    if (proxy.Lookup(3).has_value()) {
      // The rename landed: the proxy must see the complete new dump.
      EXPECT_FLOAT_EQ((*user1)[0], 10.0f);
      EXPECT_FALSE(proxy.Lookup(2).has_value());
    } else {
      // The rename did not land: the complete old dump, untouched.
      EXPECT_FLOAT_EQ((*user1)[0], 1.0f);
      ASSERT_TRUE(proxy.Lookup(2).has_value());
      EXPECT_FLOAT_EQ((*proxy.Lookup(2))[0], 2.0f);
    }
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".tmp");
  }
}

// ---------- ShardedEmbeddingStore ----------

TEST(ShardedStoreTest, PutGetAcrossShards) {
  ShardedEmbeddingStore store(4);
  for (uint64_t id = 0; id < 100; ++id) {
    store.Put(id, {float(id), float(id) + 0.5f});
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.dim(), 2u);
  EXPECT_EQ(store.num_shards(), 4u);
  for (uint64_t id = 0; id < 100; ++id) {
    auto embedding = store.Get(id);
    ASSERT_TRUE(embedding.has_value());
    EXPECT_FLOAT_EQ((*embedding)[0], float(id));
  }
  EXPECT_FALSE(store.Get(12345).has_value());

  // Counters: 100 hits and 1 miss distributed over the shards.
  uint64_t hits = 0, misses = 0, entries = 0;
  for (const auto& s : store.Stats()) {
    hits += s.hits;
    misses += s.misses;
    entries += s.entries;
  }
  EXPECT_EQ(hits, 100u);
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(entries, 100u);
}

TEST(ShardedStoreTest, SequentialIdsSpreadOverShards) {
  ShardedEmbeddingStore store(8);
  for (uint64_t id = 0; id < 800; ++id) store.Put(id, {1.0f});
  // The splitmix64 mix must not leave any shard empty or hold everything.
  for (const auto& s : store.Stats()) {
    EXPECT_GT(s.entries, 0u);
    EXPECT_LT(s.entries, 800u / 2);
  }
}

TEST(ShardedStoreTest, FromStoreCopiesEverything) {
  EmbeddingStore offline;
  offline.Put(7, {1.0f, 2.0f});
  offline.Put(1ULL << 40, {3.0f, 4.0f});
  const ShardedEmbeddingStore online =
      ShardedEmbeddingStore::FromStore(offline, 4);
  EXPECT_EQ(online.size(), 2u);
  EXPECT_EQ(online.dim(), 2u);
  EXPECT_TRUE(online.Contains(7));
  ASSERT_TRUE(online.Get(1ULL << 40).has_value());
  EXPECT_FLOAT_EQ((*online.Get(1ULL << 40))[1], 4.0f);
}

TEST(ShardedStoreTest, PutOverwrites) {
  ShardedEmbeddingStore store(2);
  store.Put(5, {1.0f});
  store.Put(5, {9.0f});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FLOAT_EQ((*store.Get(5))[0], 9.0f);
}

// ---------- fold-in fakes for batcher/service tests ----------

/// Deterministic encoder: embedding row = first feature id of field 0,
/// repeated. Optionally sleeps to simulate GEMM cost or blocks on a gate
/// for deterministic queue-state tests.
class FakeEncoder : public FoldInEncoder {
 public:
  explicit FakeEncoder(size_t dim, int sleep_ms = 0)
      : dim_(dim), sleep_ms_(sleep_ms) {}

  Matrix EncodeBatch(
      std::span<const core::RawUserFeatures* const> users) override {
    calls.fetch_add(1);
    users_encoded.fetch_add(users.size());
    if (gated_) {
      entered.store(true);
      gate.acquire();
    }
    if (sleep_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    Matrix out(users.size(), dim_);
    for (size_t i = 0; i < users.size(); ++i) {
      const auto& field0 = (*users[i])[0];
      const float value = field0.empty() ? -1.0f : float(field0[0].id);
      for (size_t d = 0; d < dim_; ++d) out(i, d) = value;
    }
    return out;
  }

  size_t dim() const override { return dim_; }

  void EnableGate() { gated_ = true; }

  std::atomic<int> calls{0};
  std::atomic<size_t> users_encoded{0};
  std::atomic<bool> entered{false};
  std::counting_semaphore<1024> gate{0};

 private:
  size_t dim_;
  int sleep_ms_;
  bool gated_ = false;
};

core::RawUserFeatures RawUser(uint64_t feature_id) {
  return {{{feature_id, 1.0f}}};
}

// ---------- fold-in hot path: zero-allocation witness ----------

TEST(FoldInZeroAllocTest, WarmedEncodeBatchIsAllocationFree) {
  // Small but structurally complete model: two encoder hidden layers so
  // the Mlp trunk runs, plus the per-field embedding sums and the mu head.
  core::FvaeConfig config;
  config.latent_dim = 6;
  config.encoder_hidden = {12, 10};
  config.decoder_hidden = {12};
  config.anneal_steps = 4;
  config.seed = 11;

  MultiFieldDataset::Builder builder(
      {FieldSchema{"ch", false}, FieldSchema{"tag", true}});
  for (uint64_t i = 0; i < 32; ++i) {
    builder.AddUser({{{i % 4 + 1, 1.0f}},
                     {{100 + i % 4, 1.0f}, {200 + (i % 7), 1.0f}}});
  }
  const MultiFieldDataset data = builder.Build();

  core::FieldVae model(config, data.fields());
  std::vector<uint32_t> users(data.num_users());
  std::iota(users.begin(), users.end(), 0);
  // One training step grows the input tables so fold-in actually sums
  // embedding rows instead of skipping every feature as cold.
  model.TrainStep(data, users, /*beta=*/0.1f);

  FvaeFoldInEncoder encoder(&model);
  std::vector<core::RawUserFeatures> raw;
  raw.reserve(8);
  for (uint64_t i = 0; i < 8; ++i) {
    // Mix of known features and one unknown id (cold-feature path).
    raw.push_back({{{i % 4 + 1, 1.0f}},
                   {{100 + i % 4, 1.0f}, {987654321, 1.0f}}});
  }
  std::vector<const core::RawUserFeatures*> ptrs;
  ptrs.reserve(raw.size());
  for (const auto& features : raw) ptrs.push_back(&features);

  Matrix out;
  encoder.EncodeBatchInto(ptrs, &out);  // grows scratch + out to shape
  encoder.EncodeBatchInto(ptrs, &out);  // settles any lazy growth
  ASSERT_EQ(out.rows(), ptrs.size());
  ASSERT_EQ(out.cols(), model.latent_dim());

  size_t allocations = 0;
  {
    alloc_witness::Scope witness;
    encoder.EncodeBatchInto(ptrs, &out);
    allocations = witness.hits();
  }
  EXPECT_EQ(allocations, 0u)
      << "warmed fold-in encode must not touch the heap (FVAE_NOALLOC)";

  // The allocation-free pass still computes the real embeddings.
  const Matrix reference = model.EncodeFoldIn(ptrs);
  EXPECT_EQ(Matrix::MaxAbsDiff(reference, out), 0.0f);
  bool any_nonzero = false;
  for (size_t i = 0; i < out.rows() && !any_nonzero; ++i) {
    for (size_t d = 0; d < out.cols(); ++d) {
      if (out(i, d) != 0.0f) {
        any_nonzero = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_nonzero) << "encode produced an all-zero embedding batch";
}

// The interposer itself must see ordinary allocations — otherwise a silent
// linker change could turn the zero-allocation assertion into a tautology.
TEST(FoldInZeroAllocTest, InterposerCountsOrdinaryAllocations) {
  size_t allocations = 0;
  {
    alloc_witness::Scope witness;
    std::vector<int>* v = new std::vector<int>(1024, 7);
    allocations = witness.hits();
    delete v;
  }
  EXPECT_GE(allocations, 1u);
}

// ---------- RequestBatcher ----------

TEST(RequestBatcherTest, CoalescesConcurrentRequests) {
  FakeEncoder encoder(4, /*sleep_ms=*/10);
  RequestBatcherOptions options;
  options.max_batch_size = 8;
  options.max_wait_micros = 2000;
  ServingTelemetry telemetry;
  RequestBatcher batcher(&encoder, options, &telemetry);

  std::vector<std::future<RequestBatcher::EmbeddingResult>> futures;
  for (uint64_t i = 0; i < 16; ++i) {
    futures.push_back(batcher.Submit(i, RawUser(100 + i)));
  }
  for (uint64_t i = 0; i < 16; ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->size(), 4u);
    EXPECT_FLOAT_EQ((*result)[0], float(100 + i));
  }
  EXPECT_EQ(encoder.users_encoded.load(), 16u);
  // 16 requests submitted while the encoder sleeps 10ms per call must
  // coalesce well below one call per request (worst case: 1 + ceil(15/8)).
  EXPECT_LT(encoder.calls.load(), 16);
  EXPECT_EQ(telemetry.batched_users.Value(), 16u);
  EXPECT_GT(telemetry.MeanBatchSize(), 1.0);
}

TEST(RequestBatcherTest, AdmissionControlRejectsWhenQueueFull) {
  FakeEncoder encoder(2);
  encoder.EnableGate();
  RequestBatcherOptions options;
  options.max_batch_size = 1;
  options.max_wait_micros = 0;
  options.queue_capacity = 2;
  ServingTelemetry telemetry;
  RequestBatcher batcher(&encoder, options, &telemetry);

  // First request is picked up by the worker, which blocks inside the
  // encoder; the queue is now empty and its state is deterministic.
  auto warm = batcher.Submit(0, RawUser(0));
  while (!encoder.entered.load()) std::this_thread::yield();

  std::vector<std::future<RequestBatcher::EmbeddingResult>> futures;
  for (uint64_t i = 1; i <= 4; ++i) {
    futures.push_back(batcher.Submit(i, RawUser(i)));
  }
  EXPECT_EQ(telemetry.rejected.Value(), 2u);  // capacity 2: two bounced
  EXPECT_EQ(telemetry.queue_peak(), 2u);

  encoder.gate.release(64);  // unblock all remaining batches
  ASSERT_TRUE(warm.get().ok());
  size_t ok = 0, unavailable = 0;
  for (auto& future : futures) {
    auto result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
      ++unavailable;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(unavailable, 2u);
}

TEST(RequestBatcherTest, ExpiredDeadlineSkipsEncoding) {
  FakeEncoder encoder(2);
  encoder.EnableGate();
  RequestBatcherOptions options;
  options.max_batch_size = 1;
  options.max_wait_micros = 0;
  ServingTelemetry telemetry;
  RequestBatcher batcher(&encoder, options, &telemetry);

  auto warm = batcher.Submit(0, RawUser(0));
  while (!encoder.entered.load()) std::this_thread::yield();

  // Queued behind the blocked worker with a 1ms deadline; by the time the
  // worker drains it, it is long expired and must not be encoded.
  auto doomed = batcher.Submit(1, RawUser(1), /*deadline_micros=*/1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  encoder.gate.release(64);

  ASSERT_TRUE(warm.get().ok());
  auto result = doomed.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(telemetry.deadline_expired.Value(), 1u);
  // The request was admitted live and expired while queued, so it was
  // caught at the dequeue boundary — the batcher-specific counter must see
  // it too (it is a subset of deadline_expired).
  EXPECT_EQ(telemetry.batcher_deadline_expired.Value(), 1u);
  EXPECT_EQ(encoder.users_encoded.load(), 1u);  // only the warm request
}

TEST(RequestBatcherTest, SubmitAsyncDeliversViaCallback) {
  FakeEncoder encoder(3);
  RequestBatcherOptions options;
  options.max_batch_size = 4;
  options.max_wait_micros = 500;
  ServingTelemetry telemetry;
  RequestBatcher batcher(&encoder, options, &telemetry);

  std::promise<RequestBatcher::EmbeddingResult> delivered;
  batcher.SubmitAsync(7, RawUser(42), /*deadline_micros=*/0,
                      [&](RequestBatcher::EmbeddingResult result) {
                        delivered.set_value(std::move(result));
                      });
  auto result = delivered.get_future().get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 3u);
  EXPECT_FLOAT_EQ((*result)[0], 42.0f);
}

TEST(RequestBatcherTest, SubmitAsyncExpiredDeadlineResolvesCallback) {
  FakeEncoder encoder(2);
  encoder.EnableGate();
  RequestBatcherOptions options;
  options.max_batch_size = 1;
  options.max_wait_micros = 0;
  ServingTelemetry telemetry;
  RequestBatcher batcher(&encoder, options, &telemetry);

  // Same dequeue-boundary setup as ExpiredDeadlineSkipsEncoding, but the
  // doomed request is callback-flavored: admitted just under its deadline,
  // dequeued after it, it must resolve kDeadlineExceeded through the
  // callback — never silently encode.
  auto warm = batcher.Submit(0, RawUser(0));
  while (!encoder.entered.load()) std::this_thread::yield();

  std::promise<RequestBatcher::EmbeddingResult> delivered;
  batcher.SubmitAsync(1, RawUser(1), /*deadline_micros=*/1000,
                      [&](RequestBatcher::EmbeddingResult result) {
                        delivered.set_value(std::move(result));
                      });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  encoder.gate.release(64);

  ASSERT_TRUE(warm.get().ok());
  auto result = delivered.get_future().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(telemetry.batcher_deadline_expired.Value(), 1u);
  EXPECT_EQ(encoder.users_encoded.load(), 1u);
}

TEST(RequestBatcherTest, DestructorDrainsQueue) {
  FakeEncoder encoder(2, /*sleep_ms=*/5);
  RequestBatcherOptions options;
  options.max_batch_size = 4;
  options.max_wait_micros = 50000;  // long window: drain must not wait it out
  std::vector<std::future<RequestBatcher::EmbeddingResult>> futures;
  {
    RequestBatcher batcher(&encoder, options);
    for (uint64_t i = 0; i < 12; ++i) {
      futures.push_back(batcher.Submit(i, RawUser(i)));
    }
  }  // destructor joins workers after draining
  for (auto& future : futures) {
    auto result = future.get();  // never a broken promise
    ASSERT_TRUE(result.ok() ||
                result.status().code() == StatusCode::kUnavailable);
  }
}

// ---------- EmbeddingService ----------

EmbeddingServiceOptions FastServiceOptions() {
  EmbeddingServiceOptions options;
  options.num_shards = 4;
  options.batcher.max_batch_size = 8;
  options.batcher.max_wait_micros = 200;
  options.batcher.queue_capacity = 4096;
  return options;
}

TEST(EmbeddingServiceTest, HotLookupHitsStore) {
  ShardedEmbeddingStore store(4);
  store.Put(42, {1.0f, 2.0f});
  FakeEncoder encoder(2);
  EmbeddingService service(std::move(store), &encoder, FastServiceOptions());

  auto result = service.Lookup(42);
  ASSERT_TRUE(result.ok());
  EXPECT_FLOAT_EQ((*result)[1], 2.0f);
  EXPECT_EQ(service.telemetry().store_hits.Value(), 1u);
  EXPECT_EQ(encoder.calls.load(), 0);

  auto missing = service.Lookup(7);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.telemetry().not_found.Value(), 1u);
}

TEST(EmbeddingServiceTest, ColdUserFoldsInAndMaterializes) {
  FakeEncoder encoder(2);
  EmbeddingService service(ShardedEmbeddingStore(4), &encoder,
                           FastServiceOptions());

  auto future = service.LookupOrEncode(900, RawUser(55));
  auto result = future.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FLOAT_EQ((*result)[0], 55.0f);
  EXPECT_EQ(service.telemetry().fold_ins.Value(), 1u);
  EXPECT_EQ(service.telemetry().foldin_latency_us().Count(), 1u);

  // Materialized: the next request is a store hit, no second encode.
  auto again = service.LookupOrEncode(900, RawUser(55));
  ASSERT_TRUE(again.get().ok());
  EXPECT_EQ(service.telemetry().store_hits.Value(), 1u);
  EXPECT_EQ(encoder.users_encoded.load(), 1u);
  EXPECT_TRUE(service.store().Contains(900));
}

TEST(EmbeddingServiceTest, SynchronousPathWhenBatcherDisabled) {
  FakeEncoder encoder(3);
  EmbeddingServiceOptions options = FastServiceOptions();
  options.enable_batcher = false;
  EmbeddingService service(ShardedEmbeddingStore(4), &encoder, options);

  auto result = service.LookupOrEncode(1, RawUser(11)).get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  EXPECT_FLOAT_EQ((*result)[0], 11.0f);
  EXPECT_EQ(service.telemetry().fold_ins.Value(), 1u);
  EXPECT_TRUE(service.store().Contains(1));
}

TEST(EmbeddingServiceTest, NoEncoderAnswersNotFound) {
  ShardedEmbeddingStore store(2);
  store.Put(1, {5.0f});
  EmbeddingService service(std::move(store), nullptr);
  ASSERT_TRUE(service.LookupOrEncode(1, RawUser(1)).get().ok());
  auto cold = service.LookupOrEncode(2, RawUser(2)).get();
  EXPECT_FALSE(cold.ok());
  EXPECT_EQ(cold.status().code(), StatusCode::kNotFound);
}

TEST(EmbeddingServiceTest, TelemetryJsonContainsKeyFields) {
  FakeEncoder encoder(2);
  EmbeddingService service(ShardedEmbeddingStore(2), &encoder,
                           FastServiceOptions());
  // Only the telemetry side effect matters here, not the embedding.
  (void)service.LookupOrEncode(1, RawUser(1)).get();
  const std::string json = service.TelemetryJson();
  EXPECT_NE(json.find("\"qps\""), std::string::npos);
  EXPECT_NE(json.find("\"fold_ins\":1"), std::string::npos);
  EXPECT_NE(json.find("\"foldin_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------- concurrency stress (run under -DFVAE_SANITIZE=thread) ----------

TEST(EmbeddingServiceStressTest, ConcurrentMixedTrafficLosesNothing) {
  constexpr size_t kThreads = 8;
  constexpr size_t kRequestsPerThread = 1500;
  constexpr size_t kHotUsers = 128;

  ShardedEmbeddingStore store(8);
  for (uint64_t id = 0; id < kHotUsers; ++id) {
    store.Put(id, {float(id), 0.0f});
  }
  FakeEncoder encoder(2);
  EmbeddingServiceOptions options = FastServiceOptions();
  options.num_shards = 8;
  options.batcher.max_batch_size = 16;
  options.batcher.max_wait_micros = 100;
  EmbeddingService service(std::move(store), &encoder, options);

  std::atomic<size_t> ok_responses{0};
  std::atomic<size_t> error_responses{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::future<EmbeddingService::EmbeddingResult>> inflight;
      for (size_t i = 0; i < kRequestsPerThread; ++i) {
        uint64_t user_id;
        if (i % 3 != 0) {
          user_id = (t * 31 + i) % kHotUsers;          // hot traffic
        } else {
          user_id = 100000 + t * kRequestsPerThread + (i % 700);  // cold-ish
        }
        inflight.push_back(
            service.LookupOrEncode(user_id, RawUser(user_id)));
        if (inflight.size() >= 32) {
          for (auto& future : inflight) {
            future.get().ok() ? ok_responses.fetch_add(1)
                              : error_responses.fetch_add(1);
          }
          inflight.clear();
        }
      }
      for (auto& future : inflight) {
        future.get().ok() ? ok_responses.fetch_add(1)
                          : error_responses.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto& telemetry = service.telemetry();
  const uint64_t total = kThreads * kRequestsPerThread;
  // No lost responses: every request resolved exactly once.
  EXPECT_EQ(ok_responses.load() + error_responses.load(), total);
  EXPECT_EQ(telemetry.requests.Value(), total);
  // Outcome counters partition the request count.
  EXPECT_EQ(telemetry.store_hits.Value() + telemetry.fold_ins.Value() +
                telemetry.rejected.Value() +
                telemetry.deadline_expired.Value() +
                telemetry.not_found.Value(),
            total);
  // Successful answers are exactly hits + fold-ins.
  EXPECT_EQ(ok_responses.load(),
            telemetry.store_hits.Value() + telemetry.fold_ins.Value());
  EXPECT_EQ(telemetry.not_found.Value(), 0u);
  EXPECT_GT(telemetry.fold_ins.Value(), 0u);
  EXPECT_GT(telemetry.store_hits.Value(), 0u);
  // Encoder accounting matches telemetry.
  EXPECT_EQ(encoder.users_encoded.load(), telemetry.fold_ins.Value());
  // Per-shard hits/misses add up to the store traffic (every request does
  // exactly one store Get before any fold-in).
  uint64_t shard_hits = 0, shard_misses = 0;
  for (const auto& s : service.store().Stats()) {
    shard_hits += s.hits;
    shard_misses += s.misses;
  }
  EXPECT_EQ(shard_hits, telemetry.store_hits.Value());
  EXPECT_EQ(shard_hits + shard_misses, total);
}

}  // namespace
}  // namespace fvae::serving
