#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "math/matrix.h"
#include "serving/embedding_store.h"
#include "serving/lru_cache.h"
#include "serving/serving_proxy.h"

namespace fvae::serving {
namespace {

// ---------- EmbeddingStore ----------

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fvae_store_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(StoreTest, PutAndGet) {
  EmbeddingStore store;
  store.Put(7, {1.0f, 2.0f});
  store.Put(8, {3.0f, 4.0f});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dim(), 2u);
  ASSERT_TRUE(store.Get(7).has_value());
  EXPECT_EQ((*store.Get(7))[1], 2.0f);
  EXPECT_FALSE(store.Get(99).has_value());
}

TEST_F(StoreTest, PutOverwrites) {
  EmbeddingStore store;
  store.Put(7, {1.0f});
  store.Put(7, {5.0f});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ((*store.Get(7))[0], 5.0f);
}

TEST_F(StoreTest, PutBatchFromMatrix) {
  EmbeddingStore store;
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  store.PutBatch({10, 20, 30}, m);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ((*store.Get(20))[0], 3.0f);
  EXPECT_EQ((*store.Get(30))[1], 6.0f);
}

TEST_F(StoreTest, SaveLoadRoundTrip) {
  EmbeddingStore store;
  store.Put(1, {1.5f, -2.5f, 3.5f});
  store.Put(0xFFFFFFFFFFFFFFFFULL, {0.0f, 0.0f, 9.0f});
  ASSERT_TRUE(store.Save(Path("emb.bin")).ok());

  auto loaded = EmbeddingStore::Load(Path("emb.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 3u);
  EXPECT_EQ((*loaded->Get(1))[2], 3.5f);
  EXPECT_EQ((*loaded->Get(0xFFFFFFFFFFFFFFFFULL))[2], 9.0f);
}

TEST_F(StoreTest, LoadMissingFileFails) {
  auto loaded = EmbeddingStore::Load(Path("missing.bin"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(StoreTest, LoadRejectsTruncatedFile) {
  EmbeddingStore store;
  for (uint64_t i = 0; i < 50; ++i) store.Put(i, {1.0f, 2.0f});
  ASSERT_TRUE(store.Save(Path("big.bin")).ok());
  std::filesystem::resize_file(
      Path("big.bin"), std::filesystem::file_size(Path("big.bin")) / 2);
  EXPECT_FALSE(EmbeddingStore::Load(Path("big.bin")).ok());
}

// ---------- LruCache ----------

TEST(LruCacheTest, BasicPutGet) {
  LruCache<uint64_t, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  EXPECT_EQ(cache.Get(1).value(), 100);
  EXPECT_EQ(cache.Get(2).value(), 200);
  EXPECT_FALSE(cache.Get(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<uint64_t, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  cache.Put(3, 300);  // evicts 1
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
}

TEST(LruCacheTest, GetRefreshesRecency) {
  LruCache<uint64_t, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  cache.Get(1);       // 1 becomes most recent
  cache.Put(3, 300);  // evicts 2, not 1
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, PutRefreshesAndOverwrites) {
  LruCache<uint64_t, int> cache(2);
  cache.Put(1, 100);
  cache.Put(2, 200);
  cache.Put(1, 111);  // overwrite, 1 most recent
  cache.Put(3, 300);  // evicts 2
  EXPECT_EQ(cache.Get(1).value(), 111);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, CapacityOne) {
  LruCache<int, int> cache(1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.Get(2).value(), 20);
}

// ---------- ServingProxy ----------

TEST(ServingProxyTest, LookupPathsAndStats) {
  EmbeddingStore store;
  store.Put(1, {1.0f});
  store.Put(2, {2.0f});
  ServingProxy proxy(&store, /*cache_capacity=*/1);

  // Cold lookup: store hit.
  ASSERT_TRUE(proxy.Lookup(1).has_value());
  EXPECT_EQ(proxy.stats().store_hits, 1u);
  EXPECT_EQ(proxy.stats().cache_hits, 0u);

  // Warm lookup: cache hit.
  ASSERT_TRUE(proxy.Lookup(1).has_value());
  EXPECT_EQ(proxy.stats().cache_hits, 1u);

  // Different user evicts (capacity 1), then a miss for unknown.
  ASSERT_TRUE(proxy.Lookup(2).has_value());
  EXPECT_FALSE(proxy.Lookup(999).has_value());
  EXPECT_EQ(proxy.stats().misses, 1u);
  EXPECT_EQ(proxy.stats().requests, 4u);
  EXPECT_NEAR(proxy.stats().CacheHitRate(), 0.25, 1e-12);
}

TEST(ServingProxyTest, OfflineToOnlinePipeline) {
  // Offline: dump embeddings; online: load + serve (Fig. 2 flow).
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fvae_proxy_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "dump.bin").string();
  {
    EmbeddingStore offline;
    Matrix m = Matrix::FromRows({{0.1f, 0.2f}, {0.3f, 0.4f}});
    offline.PutBatch({100, 200}, m);
    ASSERT_TRUE(offline.Save(path).ok());
  }
  auto online = EmbeddingStore::Load(path);
  ASSERT_TRUE(online.ok());
  ServingProxy proxy(&*online, 16);
  ASSERT_TRUE(proxy.Lookup(100).has_value());
  EXPECT_FLOAT_EQ((*proxy.Lookup(100))[1], 0.2f);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fvae::serving
