#include <gtest/gtest.h>

#include "common/random.h"
#include "lookalike/ann_index.h"
#include "math/matrix.h"

namespace fvae::lookalike {
namespace {

/// Clustered points: `per_cluster` points around each of `centers` rows.
Matrix ClusteredPoints(const Matrix& centers, size_t per_cluster,
                       double spread, Rng& rng) {
  Matrix points(centers.rows() * per_cluster, centers.cols());
  for (size_t c = 0; c < centers.rows(); ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      float* row = points.Row(c * per_cluster + i);
      for (size_t d = 0; d < centers.cols(); ++d) {
        row[d] = centers(c, d) + static_cast<float>(rng.Normal(0, spread));
      }
    }
  }
  return points;
}

TEST(AnnIndexTest, ExactQueryFindsNearest) {
  Matrix points = Matrix::FromRows({{0, 0}, {5, 0}, {0, 5}, {5, 5}});
  AnnIndex::Options options;
  options.num_cells = 2;
  AnnIndex index(points, options);
  const std::vector<float> query{0.4f, 0.1f};
  const auto result = index.QueryExact(query, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], 0u);
}

TEST(AnnIndexTest, FullProbeEqualsExact) {
  Rng rng(1);
  Matrix centers = Matrix::Gaussian(8, 6, 5.0f, rng);
  Matrix points = ClusteredPoints(centers, 40, 0.4, rng);
  AnnIndex::Options options;
  options.num_cells = 8;
  AnnIndex index(points, options);

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> query(6);
    for (float& v : query) v = static_cast<float>(rng.Normal(0, 5));
    const auto exact = index.QueryExact(query, 10);
    // Probing every cell must return the exact answer.
    const auto approx = index.Query(query, 10, /*nprobe=*/8);
    EXPECT_EQ(exact, approx);
  }
}

TEST(AnnIndexTest, RecallImprovesWithNprobe) {
  Rng rng(2);
  Matrix centers = Matrix::Gaussian(16, 8, 6.0f, rng);
  Matrix points = ClusteredPoints(centers, 50, 0.5, rng);
  AnnIndex::Options options;
  options.num_cells = 16;
  AnnIndex index(points, options);

  Matrix queries = ClusteredPoints(centers, 3, 0.5, rng);
  const double recall_1 = index.MeasureRecall(queries, 10, 1);
  const double recall_4 = index.MeasureRecall(queries, 10, 4);
  const double recall_16 = index.MeasureRecall(queries, 10, 16);
  EXPECT_GE(recall_4, recall_1 - 1e-9);
  EXPECT_NEAR(recall_16, 1.0, 1e-9);  // full probe = exact
  EXPECT_GT(recall_1, 0.5);  // clustered data: one cell covers most of it
}

TEST(AnnIndexTest, HandlesFewerPointsThanCells) {
  Matrix points = Matrix::FromRows({{0, 0}, {1, 1}});
  AnnIndex::Options options;
  options.num_cells = 64;  // clamped to 2
  AnnIndex index(points, options);
  EXPECT_LE(index.num_cells(), 2u);
  const std::vector<float> query{0.1f, 0.1f};
  const auto result = index.Query(query, 5, 64);
  EXPECT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], 0u);
}

TEST(AnnIndexTest, TopKClamped) {
  Rng rng(3);
  Matrix points = Matrix::Gaussian(20, 4, 1.0f, rng);
  AnnIndex::Options options;
  options.num_cells = 4;
  AnnIndex index(points, options);
  std::vector<float> query(4, 0.0f);
  EXPECT_EQ(index.QueryExact(query, 100).size(), 20u);
}

TEST(AnnIndexTest, EveryPointIsIndexed) {
  Rng rng(4);
  Matrix points = Matrix::Gaussian(200, 5, 1.0f, rng);
  AnnIndex::Options options;
  options.num_cells = 10;
  AnnIndex index(points, options);
  // Probing all cells with top_k = n must return every point exactly once.
  std::vector<float> query(5, 0.0f);
  const auto all = index.Query(query, 200, 10);
  ASSERT_EQ(all.size(), 200u);
  std::vector<bool> seen(200, false);
  for (uint32_t idx : all) {
    ASSERT_LT(idx, 200u);
    EXPECT_FALSE(seen[idx]) << "duplicate " << idx;
    seen[idx] = true;
  }
}

}  // namespace
}  // namespace fvae::lookalike
