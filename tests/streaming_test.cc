#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "common/failpoint.h"
#include "common/random.h"
#include "data/streaming.h"

namespace fvae {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fvae_stream_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(StreamingTest, WriteThenStreamBack) {
  StreamingDatasetWriter writer;
  ASSERT_TRUE(writer.Open(Path("s.bin"), {{"a", false}, {"b", true}}).ok());
  ASSERT_TRUE(
      writer.WriteUser({{{1, 1.0f}, {2, 0.5f}}, {{10, 2.0f}}}).ok());
  ASSERT_TRUE(writer.WriteUser({{}, {}}).ok());
  ASSERT_TRUE(writer.WriteUser({{{3, 1.0f}}, {}}).ok());
  EXPECT_EQ(writer.users_written(), 3u);
  ASSERT_TRUE(writer.Close().ok());

  auto reader = StreamingDatasetReader::Open(Path("s.bin"));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->fields().size(), 2u);
  EXPECT_EQ(reader->fields()[1].name, "b");
  EXPECT_TRUE(reader->fields()[1].is_sparse);

  std::vector<std::vector<FeatureEntry>> user;
  ASSERT_TRUE(reader->NextUser(&user));
  ASSERT_EQ(user[0].size(), 2u);
  EXPECT_EQ(user[0][1].id, 2u);
  EXPECT_FLOAT_EQ(user[0][1].value, 0.5f);
  ASSERT_TRUE(reader->NextUser(&user));
  EXPECT_TRUE(user[0].empty());
  EXPECT_TRUE(user[1].empty());
  ASSERT_TRUE(reader->NextUser(&user));
  EXPECT_EQ(user[0][0].id, 3u);
  EXPECT_FALSE(reader->NextUser(&user));  // clean EOF
  EXPECT_TRUE(reader->status().ok());
  EXPECT_EQ(reader->users_read(), 3u);
}

TEST_F(StreamingTest, ReadAllBuildsDataset) {
  StreamingDatasetWriter writer;
  ASSERT_TRUE(writer.Open(Path("all.bin"), {{"f", false}}).ok());
  Rng rng(1);
  for (int u = 0; u < 50; ++u) {
    std::vector<FeatureEntry> features;
    const size_t count = rng.UniformInt(uint64_t{5});
    for (size_t i = 0; i < count; ++i) {
      features.push_back({rng.UniformInt(uint64_t{100}), 1.0f});
    }
    ASSERT_TRUE(writer.WriteUser({features}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  auto reader = StreamingDatasetReader::Open(Path("all.bin"));
  ASSERT_TRUE(reader.ok());
  auto dataset = reader->ReadAll();
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_users(), 50u);
  EXPECT_EQ(dataset->num_fields(), 1u);
}

TEST_F(StreamingTest, WriterRejectsWrongArity) {
  StreamingDatasetWriter writer;
  ASSERT_TRUE(writer.Open(Path("arity.bin"), {{"a", false}}).ok());
  EXPECT_FALSE(writer.WriteUser({{}, {}}).ok());  // 2 fields given, 1 expected
}

TEST_F(StreamingTest, WriterLifecycle) {
  StreamingDatasetWriter writer;
  EXPECT_FALSE(writer.WriteUser({{}}).ok());  // not open
  ASSERT_TRUE(writer.Open(Path("life.bin"), {{"a", false}}).ok());
  EXPECT_FALSE(writer.Open(Path("life2.bin"), {{"a", false}}).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_TRUE(writer.Close().ok());  // idempotent
  EXPECT_FALSE(writer.WriteUser({{}}).ok());
}

TEST_F(StreamingTest, TruncatedRecordReportsError) {
  StreamingDatasetWriter writer;
  ASSERT_TRUE(writer.Open(Path("trunc.bin"), {{"a", false}}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.WriteUser({{{7, 1.0f}, {8, 1.0f}}}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  // Chop mid-record.
  const auto size = std::filesystem::file_size(Path("trunc.bin"));
  std::filesystem::resize_file(Path("trunc.bin"), size - 5);

  auto reader = StreamingDatasetReader::Open(Path("trunc.bin"));
  ASSERT_TRUE(reader.ok());
  std::vector<std::vector<FeatureEntry>> user;
  while (reader->NextUser(&user)) {
  }
  EXPECT_FALSE(reader->status().ok());
}

TEST_F(StreamingTest, TruncatedEntryReportsError) {
  StreamingDatasetWriter writer;
  ASSERT_TRUE(writer.Open(Path("entry.bin"), {{"a", false}}).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.WriteUser({{{7, 1.0f}, {8, 1.0f}}}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  // Chop inside an entry (each record is 4 + 2*12 bytes): leave the count
  // and the first entry intact, cut the second entry in half.
  const auto size = std::filesystem::file_size(Path("entry.bin"));
  std::filesystem::resize_file(Path("entry.bin"), size - 6);

  auto reader = StreamingDatasetReader::Open(Path("entry.bin"));
  ASSERT_TRUE(reader.ok());
  std::vector<std::vector<FeatureEntry>> user;
  while (reader->NextUser(&user)) {
  }
  EXPECT_FALSE(reader->status().ok());
  EXPECT_NE(reader->status().ToString().find("truncated"),
            std::string::npos);
}

TEST_F(StreamingTest, FileOnlyAppearsAtClose) {
  StreamingDatasetWriter writer;
  ASSERT_TRUE(writer.Open(Path("atomic.bin"), {{"a", false}}).ok());
  ASSERT_TRUE(writer.WriteUser({{{1, 1.0f}}}).ok());
  // Readers racing the writer must never see a half-written stream.
  EXPECT_FALSE(std::filesystem::exists(Path("atomic.bin")));
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_TRUE(std::filesystem::exists(Path("atomic.bin")));
  EXPECT_FALSE(std::filesystem::exists(Path("atomic.bin") + ".tmp"));
}

TEST_F(StreamingTest, CloseSurfacesDeferredPublishFailure) {
  // Regression: Close() used to sample the stream state before the final
  // flush, reporting Ok for errors the OS only surfaced on close. Inject
  // a failure at the publish boundary and insist Close reports it.
  ScopedFailpoint fp("streaming.save.before_rename",
                     FailpointAction::kError);
  StreamingDatasetWriter writer;
  ASSERT_TRUE(writer.Open(Path("fail.bin"), {{"a", false}}).ok());
  ASSERT_TRUE(writer.WriteUser({{{1, 1.0f}}}).ok());
  EXPECT_EQ(writer.Close().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(std::filesystem::exists(Path("fail.bin")));
}

TEST_F(StreamingTest, OpenRejectsGarbage) {
  {
    std::ofstream out(Path("bad.bin"), std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(StreamingDatasetReader::Open(Path("bad.bin")).ok());
  EXPECT_FALSE(StreamingDatasetReader::Open(Path("missing.bin")).ok());
}

}  // namespace
}  // namespace fvae
