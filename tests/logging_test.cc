#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"

namespace fvae {
namespace {

/// Captures std::cerr for the lifetime of the object.
class CerrCapture {
 public:
  CerrCapture() : old_buf_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_buf_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_buf_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  SetLogLevel(LogLevel::kInfo);
  CerrCapture capture;
  FVAE_LOG(INFO) << "visible message " << 42;
  const std::string out = capture.str();
  EXPECT_NE(out.find("visible message 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowThreshold) {
  SetLogLevel(LogLevel::kWarning);
  CerrCapture capture;
  FVAE_LOG(INFO) << "should not appear";
  FVAE_LOG(DEBUG) << "nor this";
  EXPECT_TRUE(capture.str().empty());
  FVAE_LOG(WARNING) << "warning shows";
  EXPECT_NE(capture.str().find("warning shows"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysAboveDefault) {
  SetLogLevel(LogLevel::kError);
  CerrCapture capture;
  FVAE_LOG(ERROR) << "bad thing";
  EXPECT_NE(capture.str().find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, StreamedExpressionsNotEvaluatedWhenSuppressed) {
  SetLogLevel(LogLevel::kError);
  int calls = 0;
  auto expensive = [&]() {
    ++calls;
    return 1;
  };
  FVAE_LOG(DEBUG) << expensive();
  EXPECT_EQ(calls, 0) << "suppressed log must not evaluate its arguments";
}

}  // namespace
}  // namespace fvae
