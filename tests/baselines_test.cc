#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/feature_indexer.h"
#include "baselines/lda.h"
#include "baselines/pca.h"
#include "baselines/skipgram.h"
#include "common/random.h"
#include "datagen/profile_generator.h"
#include "eval/tasks.h"

namespace fvae::baselines {
namespace {

// ---------- FeatureIndexer ----------

MultiFieldDataset TinyFixture() {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"a", false}, FieldSchema{"b", false}});
  builder.AddUser({{{1, 1.0f}, {2, 1.0f}}, {{1, 1.0f}}});
  builder.AddUser({{{2, 1.0f}}, {{5, 1.0f}}});
  return builder.Build();
}

TEST(FeatureIndexerTest, ExactAssignsDistinctColumns) {
  const MultiFieldDataset data = TinyFixture();
  const FeatureIndexer indexer = FeatureIndexer::BuildExact(data);
  // (a,1), (a,2), (b,1), (b,5) -> 4 columns.
  EXPECT_EQ(indexer.num_columns(), 4u);
  EXPECT_FALSE(indexer.hashed());
  // Same raw ID in different fields gets different columns.
  EXPECT_NE(indexer.Column(0, 1).value(), indexer.Column(1, 1).value());
  // Unseen pairs map to nothing.
  EXPECT_FALSE(indexer.Column(0, 99).has_value());
}

TEST(FeatureIndexerTest, ExactOwnersRoundTrip) {
  const MultiFieldDataset data = TinyFixture();
  const FeatureIndexer indexer = FeatureIndexer::BuildExact(data);
  const auto& owners = indexer.column_owners();
  ASSERT_EQ(owners.size(), 4u);
  for (uint32_t col = 0; col < owners.size(); ++col) {
    const auto [field, id] = owners[col];
    EXPECT_EQ(indexer.Column(field, id).value(), col);
  }
}

TEST(FeatureIndexerTest, HashedAlwaysResolves) {
  const FeatureIndexer indexer = FeatureIndexer::BuildHashed(3, 8);
  EXPECT_TRUE(indexer.hashed());
  EXPECT_EQ(indexer.num_columns(), 256u);
  for (uint64_t id = 0; id < 1000; ++id) {
    const auto col = indexer.Column(id % 3, id * 7919);
    ASSERT_TRUE(col.has_value());
    EXPECT_LT(*col, 256u);
  }
}

// ---------- Shared evaluation fixture ----------

class BaselineTaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProfileGeneratorConfig config = ShortContentConfig(250, /*seed=*/21);
    // Shrink vocabularies so the linear baselines train fast in tests.
    config.fields[2].vocab_size = 512;
    config.fields[3].vocab_size = 1024;
    config.fields[3].avg_features = 12.0;
    config.num_topics = 8;
    gen_ = GenerateProfiles(config);
    users_.resize(gen_.dataset.num_users());
    std::iota(users_.begin(), users_.end(), 0u);
  }

  /// Tag-prediction AUC of a fitted model on the fixture.
  double TagAuc(const eval::RepresentationModel& model, uint64_t seed) {
    Rng rng(seed);
    return eval::RunTagPrediction(model, gen_.dataset, users_, 3,
                                  gen_.field_vocab[3], rng)
        .auc;
  }

  GeneratedProfiles gen_;
  std::vector<uint32_t> users_;
};

// ---------- PCA ----------

TEST_F(BaselineTaskTest, PcaEmbedsAndScores) {
  PcaModel::Options options;
  options.latent_dim = 16;
  PcaModel pca(options);
  pca.Fit(gen_.dataset);
  EXPECT_EQ(pca.Name(), "PCA");
  ASSERT_EQ(pca.singular_values().size(), 16u);
  for (size_t i = 1; i < 16; ++i) {
    EXPECT_GE(pca.singular_values()[i - 1],
              pca.singular_values()[i] - 1e-3f);
  }
  const std::vector<uint32_t> some{0, 1, 2};
  const Matrix z = pca.Embed(gen_.dataset, some);
  EXPECT_EQ(z.rows(), 3u);
  EXPECT_EQ(z.cols(), 16u);
}

TEST_F(BaselineTaskTest, PcaBeatsChanceOnTagPrediction) {
  PcaModel::Options options;
  options.latent_dim = 16;
  PcaModel pca(options);
  pca.Fit(gen_.dataset);
  EXPECT_GT(TagAuc(pca, 31), 0.6);
}

// ---------- LDA ----------

TEST_F(BaselineTaskTest, LdaEmbeddingsAreDistributions) {
  LdaModel::Options options;
  options.num_topics = 8;
  options.passes = 3;
  LdaModel lda(options);
  lda.Fit(gen_.dataset);
  const std::vector<uint32_t> some{0, 5, 9};
  const Matrix theta = lda.Embed(gen_.dataset, some);
  EXPECT_EQ(theta.cols(), 8u);
  for (size_t i = 0; i < theta.rows(); ++i) {
    double total = 0.0;
    for (size_t t = 0; t < 8; ++t) {
      EXPECT_GE(theta(i, t), 0.0f);
      total += theta(i, t);
    }
    EXPECT_NEAR(total, 1.0, 1e-4);
  }
}

TEST_F(BaselineTaskTest, LdaBeatsChanceOnTagPrediction) {
  LdaModel::Options options;
  options.num_topics = 8;
  options.passes = 4;
  LdaModel lda(options);
  lda.Fit(gen_.dataset);
  EXPECT_GT(TagAuc(lda, 32), 0.6);
}

// ---------- SkipGram (Item2Vec / Job2Vec) ----------

TEST_F(BaselineTaskTest, Item2VecLearnsCooccurrence) {
  SkipGramModel::Options options;
  options.variant = SkipGramModel::Variant::kItem2Vec;
  options.embedding_dim = 32;
  options.epochs = 40;
  options.contexts_per_center = 8;
  SkipGramModel model(options);
  model.Fit(gen_.dataset);
  EXPECT_EQ(model.Name(), "Item2Vec");
  EXPECT_GT(model.vocabulary_size(), 0u);
  EXPECT_GT(TagAuc(model, 33), 0.6);
}

TEST_F(BaselineTaskTest, Job2VecVariantRuns) {
  SkipGramModel::Options options;
  options.variant = SkipGramModel::Variant::kJob2Vec;
  options.embedding_dim = 32;
  options.epochs = 40;
  options.contexts_per_center = 8;
  SkipGramModel model(options);
  model.Fit(gen_.dataset);
  EXPECT_EQ(model.Name(), "Job2Vec");
  EXPECT_GT(TagAuc(model, 34), 0.55);
}

TEST_F(BaselineTaskTest, EmbeddingsDifferAcrossUsersOfDifferentTopics) {
  SkipGramModel::Options options;
  options.embedding_dim = 16;
  options.epochs = 2;
  SkipGramModel model(options);
  model.Fit(gen_.dataset);
  const Matrix z = model.Embed(gen_.dataset, users_);
  // Not all embeddings identical.
  float max_diff = 0.0f;
  for (size_t d = 0; d < z.cols(); ++d) {
    max_diff = std::max(max_diff, std::fabs(z(0, d) - z(1, d)));
  }
  EXPECT_GT(max_diff, 0.0f);
}

}  // namespace
}  // namespace fvae::baselines
