#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <unordered_set>

#include "common/random.h"
#include "data/split.h"
#include "datagen/profile_generator.h"
#include "eval/representation_model.h"
#include "eval/tasks.h"

namespace fvae::eval {
namespace {

/// Cheating scorer: scores 1 for features the user truly has in the FULL
/// dataset (which the task hides from the model input), 0 otherwise.
/// Tag prediction / reconstruction must rate it at AUC == 1.
class OracleModel : public RepresentationModel {
 public:
  explicit OracleModel(const MultiFieldDataset* truth) : truth_(truth) {}

  std::string Name() const override { return "Oracle"; }
  void Fit(const MultiFieldDataset&) override {}

  Matrix Embed(const MultiFieldDataset&,
               std::span<const uint32_t> users) const override {
    return Matrix(users.size(), 2);
  }

  Matrix Score(const MultiFieldDataset&, std::span<const uint32_t> users,
               size_t field,
               std::span<const uint64_t> candidates) const override {
    Matrix scores(users.size(), candidates.size());
    for (size_t i = 0; i < users.size(); ++i) {
      std::unordered_set<uint64_t> owned;
      for (const FeatureEntry& e : truth_->UserField(users[i], field)) {
        owned.insert(e.id);
      }
      for (size_t c = 0; c < candidates.size(); ++c) {
        scores(i, c) = owned.count(candidates[c]) ? 1.0f : 0.0f;
      }
    }
    return scores;
  }

 private:
  const MultiFieldDataset* truth_;
};

/// Scores by a hash of (user, candidate) — pure noise.
class RandomModel : public RepresentationModel {
 public:
  std::string Name() const override { return "Random"; }
  void Fit(const MultiFieldDataset&) override {}

  Matrix Embed(const MultiFieldDataset&,
               std::span<const uint32_t> users) const override {
    return Matrix(users.size(), 2);
  }

  Matrix Score(const MultiFieldDataset&, std::span<const uint32_t> users,
               size_t field,
               std::span<const uint64_t> candidates) const override {
    Matrix scores(users.size(), candidates.size());
    for (size_t i = 0; i < users.size(); ++i) {
      for (size_t c = 0; c < candidates.size(); ++c) {
        uint64_t h = (uint64_t(users[i]) << 32) ^ candidates[c] ^
                     (uint64_t(field) << 17);
        h ^= h >> 33;
        h *= 0xFF51AFD7ED558CCDULL;
        h ^= h >> 33;
        scores(i, c) = float(h % 10007) / 10007.0f;
      }
    }
    return scores;
  }
};

TEST(SampleNegativesTest, ExcludesObservedAndDuplicates) {
  std::vector<uint64_t> vocab(100);
  std::iota(vocab.begin(), vocab.end(), 0u);
  const std::vector<uint64_t> observed{1, 2, 3, 4, 5};
  Rng rng(1);
  const auto negatives = SampleNegatives(vocab, observed, 30, rng);
  EXPECT_EQ(negatives.size(), 30u);
  std::set<uint64_t> unique(negatives.begin(), negatives.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t id : negatives) {
    EXPECT_GT(id, 5u);
    EXPECT_LT(id, 100u);
  }
}

TEST(SampleNegativesTest, NearlyExhaustedVocabulary) {
  const std::vector<uint64_t> vocab{1, 2, 3};
  const std::vector<uint64_t> observed{1, 2};
  Rng rng(2);
  const auto negatives = SampleNegatives(vocab, observed, 5, rng);
  ASSERT_EQ(negatives.size(), 1u);
  EXPECT_EQ(negatives[0], 3u);
}

TEST(SampleNegativesTest, EmptyVocabulary) {
  Rng rng(3);
  EXPECT_TRUE(SampleNegatives({}, {}, 5, rng).empty());
}

class TaskFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ProfileGeneratorConfig config = ShortContentConfig(150, /*seed=*/11);
    gen_ = GenerateProfiles(config);
    test_users_.resize(gen_.dataset.num_users());
    std::iota(test_users_.begin(), test_users_.end(), 0u);
    tag_vocab_ = gen_.field_vocab[3];
  }

  GeneratedProfiles gen_;
  std::vector<uint32_t> test_users_;
  std::vector<uint64_t> tag_vocab_;
};

TEST_F(TaskFixture, OracleGetsPerfectTagPrediction) {
  OracleModel oracle(&gen_.dataset);
  Rng rng(5);
  const TaskMetrics metrics = RunTagPrediction(
      oracle, gen_.dataset, test_users_, /*target_field=*/3, tag_vocab_,
      rng);
  EXPECT_GT(metrics.auc, 0.999);
  EXPECT_GT(metrics.map, 0.999);
}

TEST_F(TaskFixture, RandomScoresNearChance) {
  RandomModel random;
  Rng rng(6);
  const TaskMetrics metrics = RunTagPrediction(
      random, gen_.dataset, test_users_, 3, tag_vocab_, rng);
  EXPECT_NEAR(metrics.auc, 0.5, 0.05);
}

TEST_F(TaskFixture, OracleBeatsRandomOnReconstruction) {
  Rng split_rng(7);
  const ReconstructionSplit split =
      HoldOutWithinUsers(gen_.dataset, 0.3, split_rng);
  std::vector<std::vector<uint64_t>> vocab = gen_.field_vocab;

  OracleModel oracle(&gen_.dataset);
  RandomModel random;
  Rng rng1(8), rng2(8);
  const ReconstructionMetrics oracle_metrics = RunReconstruction(
      oracle, gen_.dataset, split, test_users_, vocab, rng1);
  const ReconstructionMetrics random_metrics = RunReconstruction(
      random, gen_.dataset, split, test_users_, vocab, rng2);

  ASSERT_EQ(oracle_metrics.per_field.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_GT(oracle_metrics.per_field[k].auc, 0.99) << "field " << k;
    EXPECT_NEAR(random_metrics.per_field[k].auc, 0.5, 0.07) << "field " << k;
  }
  EXPECT_GT(oracle_metrics.overall.auc, random_metrics.overall.auc);
}

TEST_F(TaskFixture, TagPredictionDeterministicGivenRngState) {
  OracleModel oracle(&gen_.dataset);
  Rng rng_a(9), rng_b(9);
  const TaskMetrics a = RunTagPrediction(oracle, gen_.dataset, test_users_,
                                         3, tag_vocab_, rng_a);
  const TaskMetrics b = RunTagPrediction(oracle, gen_.dataset, test_users_,
                                         3, tag_vocab_, rng_b);
  EXPECT_DOUBLE_EQ(a.auc, b.auc);
  EXPECT_DOUBLE_EQ(a.map, b.map);
}

}  // namespace
}  // namespace fvae::eval
