#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"
#include "hash/dynamic_hash_table.h"
#include "hash/feature_hashing.h"

namespace fvae {
namespace {

TEST(DynamicHashTableTest, InsertAndFind) {
  DynamicHashTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.GetOrInsert(100), 0u);
  EXPECT_EQ(table.GetOrInsert(200), 1u);
  EXPECT_EQ(table.GetOrInsert(100), 0u);  // idempotent
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Find(100).value(), 0u);
  EXPECT_EQ(table.Find(200).value(), 1u);
  EXPECT_FALSE(table.Find(300).has_value());
  EXPECT_TRUE(table.Contains(100));
  EXPECT_FALSE(table.Contains(999));
}

TEST(DynamicHashTableTest, DenseIndicesAreSequential) {
  DynamicHashTable table;
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.GetOrInsert(i * 7919 + 13), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(table.size(), 1000u);
}

TEST(DynamicHashTableTest, GrowsBeyondInitialCapacity) {
  DynamicHashTable table(16);
  const size_t initial_capacity = table.capacity();
  for (uint64_t i = 0; i < 10000; ++i) table.GetOrInsert(i);
  EXPECT_GT(table.capacity(), initial_capacity);
  EXPECT_EQ(table.size(), 10000u);
  // All keys still resolve after growth.
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(table.Find(i).value(), static_cast<uint32_t>(i));
  }
}

TEST(DynamicHashTableTest, LoadFactorStaysBounded) {
  DynamicHashTable table;
  for (uint64_t i = 0; i < 5000; ++i) table.GetOrInsert(i * 31 + 7);
  EXPECT_LE(double(table.size()) / double(table.capacity()), 0.7 + 1e-9);
}

TEST(DynamicHashTableTest, SentinelKeySupported) {
  DynamicHashTable table;
  const uint64_t sentinel = ~uint64_t{0};
  EXPECT_FALSE(table.Find(sentinel).has_value());
  const uint32_t idx = table.GetOrInsert(sentinel);
  EXPECT_EQ(table.GetOrInsert(sentinel), idx);
  EXPECT_EQ(table.Find(sentinel).value(), idx);
  EXPECT_EQ(table.size(), 1u);
}

TEST(DynamicHashTableTest, ItemsReturnsAllEntries) {
  DynamicHashTable table;
  for (uint64_t key : {5u, 17u, 99u}) table.GetOrInsert(key);
  auto items = table.Items();
  EXPECT_EQ(items.size(), 3u);
  std::unordered_map<uint64_t, uint32_t> as_map(items.begin(), items.end());
  EXPECT_EQ(as_map.at(5), table.Find(5).value());
  EXPECT_EQ(as_map.at(99), table.Find(99).value());
}

TEST(DynamicHashTableTest, ClearResets) {
  DynamicHashTable table;
  table.GetOrInsert(1);
  table.GetOrInsert(~uint64_t{0});
  table.Clear();
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.Find(1).has_value());
  EXPECT_FALSE(table.Find(~uint64_t{0}).has_value());
  EXPECT_EQ(table.GetOrInsert(42), 0u);  // indices restart
}

TEST(DynamicHashTableTest, StressAgainstUnorderedMap) {
  DynamicHashTable table;
  std::unordered_map<uint64_t, uint32_t> reference;
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.UniformInt(uint64_t{5000});
    const uint32_t idx = table.GetOrInsert(key);
    auto [it, inserted] = reference.emplace(key, idx);
    if (!inserted) {
      ASSERT_EQ(it->second, idx) << "index changed for key " << key;
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [key, idx] : reference) {
    ASSERT_EQ(table.Find(key).value(), idx);
  }
}

class DynamicHashTableSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DynamicHashTableSizeTest, RoundTripsAtManySizes) {
  const size_t n = GetParam();
  DynamicHashTable table;
  for (size_t i = 0; i < n; ++i) {
    table.GetOrInsert(i * 2654435761ULL);
  }
  EXPECT_EQ(table.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(table.Contains(i * 2654435761ULL));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DynamicHashTableSizeTest,
                         ::testing::Values(1, 2, 15, 16, 17, 100, 1024,
                                           4097));

// ---------- FeatureHasher ----------

TEST(FeatureHasherTest, BucketsWithinRange) {
  FeatureHasher hasher(10);
  EXPECT_EQ(hasher.num_buckets(), 1024u);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(hasher.Bucket(rng.Next64()), 1024u);
  }
}

TEST(FeatureHasherTest, Deterministic) {
  FeatureHasher hasher(16);
  EXPECT_EQ(hasher.Bucket(12345), hasher.Bucket(12345));
  EXPECT_EQ(hasher.Bucket(3, 42), hasher.Bucket(3, 42));
}

TEST(FeatureHasherTest, FieldsDecorrelate) {
  FeatureHasher hasher(20);
  int same = 0;
  for (uint64_t id = 0; id < 1000; ++id) {
    same += hasher.Bucket(0, id) == hasher.Bucket(1, id);
  }
  // With 2^20 buckets, chance collisions between fields are ~0.
  EXPECT_LT(same, 5);
}

TEST(FeatureHasherTest, CollisionRateGrowsAsBucketsShrink) {
  std::vector<uint64_t> ids(20000);
  Rng rng(11);
  for (auto& id : ids) id = rng.Next64();
  FeatureHasher small(10);   // 1k buckets, heavy collisions
  FeatureHasher large(24);   // 16M buckets, nearly none
  EXPECT_GT(small.CollisionRate(ids), 0.8);
  EXPECT_LT(large.CollisionRate(ids), 0.01);
}

TEST(FeatureHasherTest, UniformSpread) {
  FeatureHasher hasher(4);  // 16 buckets
  std::vector<int> counts(16, 0);
  for (uint64_t id = 0; id < 16000; ++id) ++counts[hasher.Bucket(id)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

}  // namespace
}  // namespace fvae
