#include <gtest/gtest.h>

#include <numeric>

#include "baselines/mult_vae.h"
#include "common/random.h"
#include "datagen/profile_generator.h"
#include "eval/tasks.h"

namespace fvae::baselines {
namespace {

class MultVaeTaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProfileGeneratorConfig config = ShortContentConfig(250, /*seed=*/41);
    config.fields[2].vocab_size = 256;
    config.fields[3].vocab_size = 512;
    config.fields[3].avg_features = 10.0;
    config.num_topics = 8;
    gen_ = GenerateProfiles(config);
    users_.resize(gen_.dataset.num_users());
    std::iota(users_.begin(), users_.end(), 0u);
  }

  MultVaeModel::Options BaseOptions(MultVaeModel::Variant variant) {
    MultVaeModel::Options options;
    options.variant = variant;
    options.hidden_dim = 32;
    options.latent_dim = 16;
    options.epochs = 30;
    options.batch_size = 64;
    options.anneal_steps = 60;
    options.beta = 0.1f;
    options.seed = 5;
    return options;
  }

  double TagAuc(const eval::RepresentationModel& model, uint64_t seed) {
    Rng rng(seed);
    return eval::RunTagPrediction(model, gen_.dataset, users_, 3,
                                  gen_.field_vocab[3], rng)
        .auc;
  }

  GeneratedProfiles gen_;
  std::vector<uint32_t> users_;
};

TEST_F(MultVaeTaskTest, Names) {
  EXPECT_EQ(MultVaeModel(BaseOptions(MultVaeModel::Variant::kDae)).Name(),
            "Mult-DAE");
  EXPECT_EQ(MultVaeModel(BaseOptions(MultVaeModel::Variant::kVae)).Name(),
            "Mult-VAE");
  EXPECT_EQ(MultVaeModel(BaseOptions(MultVaeModel::Variant::kRecVae)).Name(),
            "RecVAE");
}

TEST_F(MultVaeTaskTest, VaeLearnsTagStructure) {
  MultVaeModel model(BaseOptions(MultVaeModel::Variant::kVae));
  model.Fit(gen_.dataset);
  EXPECT_GT(model.fit_stats().steps, 0u);
  EXPECT_GT(model.fit_stats().UsersPerSecond(), 0.0);
  EXPECT_GT(TagAuc(model, 51), 0.65);
}

TEST_F(MultVaeTaskTest, DaeLearnsTagStructure) {
  MultVaeModel model(BaseOptions(MultVaeModel::Variant::kDae));
  model.Fit(gen_.dataset);
  EXPECT_GT(TagAuc(model, 52), 0.65);
}

TEST_F(MultVaeTaskTest, RecVaeLearnsTagStructure) {
  MultVaeModel model(BaseOptions(MultVaeModel::Variant::kRecVae));
  model.Fit(gen_.dataset);
  EXPECT_GT(TagAuc(model, 53), 0.65);
}

TEST_F(MultVaeTaskTest, EmbedShapeAndDeterminism) {
  MultVaeModel model(BaseOptions(MultVaeModel::Variant::kVae));
  model.Fit(gen_.dataset);
  const std::vector<uint32_t> some{0, 3, 7};
  const Matrix a = model.Embed(gen_.dataset, some);
  const Matrix b = model.Embed(gen_.dataset, some);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 16u);
  EXPECT_LT(Matrix::MaxAbsDiff(a, b), 1e-9f);
}

TEST_F(MultVaeTaskTest, HashedModeBoundsColumns) {
  MultVaeModel::Options options = BaseOptions(MultVaeModel::Variant::kVae);
  options.hash_bits = 9;  // 512 buckets, forcing collisions
  options.epochs = 2;
  MultVaeModel model(options);
  model.Fit(gen_.dataset);
  EXPECT_EQ(model.num_columns(), 512u);
}

TEST_F(MultVaeTaskTest, TimeBudgetStopsTraining) {
  MultVaeModel::Options options = BaseOptions(MultVaeModel::Variant::kVae);
  options.epochs = 100000;
  options.time_budget_seconds = 0.2;
  MultVaeModel model(options);
  model.Fit(gen_.dataset);
  EXPECT_LT(model.fit_stats().seconds, 10.0);
}

TEST_F(MultVaeTaskTest, ScoresUnseenCandidatesAsZero) {
  MultVaeModel::Options options = BaseOptions(MultVaeModel::Variant::kVae);
  options.epochs = 1;
  MultVaeModel model(options);
  model.Fit(gen_.dataset);
  const std::vector<uint32_t> some{0};
  const std::vector<uint64_t> candidates{0xDEADBEEFCAFEULL};
  const Matrix scores = model.Score(gen_.dataset, some, 3, candidates);
  EXPECT_EQ(scores(0, 0), 0.0f);
}

}  // namespace
}  // namespace fvae::baselines
