#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "math/matrix.h"

namespace fvae {
namespace {

Matrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t p = 0; p < a.cols(); ++p) acc += double(a(i, p)) * b(p, j);
      out(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0f);
  }
  m.at(1, 2) = 5.0f;
  EXPECT_EQ(m(1, 2), 5.0f);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(2, 1), 6.0f);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(4);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(id(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, FillAndSetZero) {
  Matrix m(3, 3, 2.0f);
  EXPECT_EQ(m(1, 1), 2.0f);
  m.Fill(7.0f);
  EXPECT_EQ(m(2, 0), 7.0f);
  m.SetZero();
  EXPECT_EQ(m(0, 2), 0.0f);
}

TEST(MatrixTest, Transposed) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0f);
  EXPECT_EQ(t(0, 0), 1.0f);
}

TEST(MatrixTest, ScaleAddAddScaled) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a.Scale(2.0f);
  EXPECT_EQ(a(1, 1), 8.0f);
  a.Add(b);
  EXPECT_EQ(a(0, 0), 12.0f);
  a.AddScaled(b, -1.0f);
  EXPECT_EQ(a(0, 0), 2.0f);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_NEAR(m.FrobeniusNorm(), 5.0f, 1e-6f);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1.5, 1}});
  EXPECT_NEAR(Matrix::MaxAbsDiff(a, b), 1.0f, 1e-6f);
}

TEST(MatrixTest, GaussianHasRoughlyRightSpread) {
  Rng rng(3);
  Matrix m = Matrix::Gaussian(100, 100, 2.0f, rng);
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sum_sq += double(m.data()[i]) * m.data()[i];
  }
  const double n = double(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.3);
}

TEST(MatrixTest, XavierUniformWithinBounds) {
  Rng rng(5);
  Matrix m = Matrix::XavierUniform(30, 50, rng);
  const float limit = std::sqrt(6.0f / 80.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), limit);
  }
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix m(20, 20, 1.0f);
  const std::string s = m.ToString(2, 2);
  EXPECT_NE(s.find("20x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// ---------- GEMM family, vs naive reference ----------

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, GemmMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  Matrix a = Matrix::Gaussian(m, k, 1.0f, rng);
  Matrix b = Matrix::Gaussian(k, n, 1.0f, rng);
  Matrix out;
  Gemm(a, b, &out);
  EXPECT_LT(Matrix::MaxAbsDiff(out, NaiveMultiply(a, b)), 1e-3f);
}

TEST_P(GemmShapeTest, GemmNTMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 999 + k * 77 + n);
  Matrix a = Matrix::Gaussian(m, k, 1.0f, rng);
  Matrix b = Matrix::Gaussian(n, k, 1.0f, rng);
  Matrix out;
  GemmNT(a, b, &out);
  EXPECT_LT(Matrix::MaxAbsDiff(out, NaiveMultiply(a, b.Transposed())),
            1e-3f);
}

TEST_P(GemmShapeTest, GemmTNMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 13 + k * 7 + n);
  Matrix a = Matrix::Gaussian(k, m, 1.0f, rng);
  Matrix b = Matrix::Gaussian(k, n, 1.0f, rng);
  Matrix out;
  GemmTN(a, b, &out);
  EXPECT_LT(Matrix::MaxAbsDiff(out, NaiveMultiply(a.Transposed(), b)),
            1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(65, 64, 63),
                      std::make_tuple(100, 1, 100),
                      std::make_tuple(1, 128, 1),
                      std::make_tuple(130, 70, 90)));

TEST(GemmTest, GemmAccumulateAddsOnTop) {
  Rng rng(17);
  Matrix a = Matrix::Gaussian(4, 5, 1.0f, rng);
  Matrix b = Matrix::Gaussian(5, 6, 1.0f, rng);
  Matrix out(4, 6, 1.0f);
  GemmAccumulate(a, b, &out);
  Matrix expected = NaiveMultiply(a, b);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected.data()[i] += 1.0f;
  }
  EXPECT_LT(Matrix::MaxAbsDiff(out, expected), 1e-4f);
}

TEST(GemmTest, IdentityIsNeutral) {
  Rng rng(23);
  Matrix a = Matrix::Gaussian(6, 6, 1.0f, rng);
  Matrix out;
  Gemm(a, Matrix::Identity(6), &out);
  EXPECT_LT(Matrix::MaxAbsDiff(out, a), 1e-5f);
}

}  // namespace
}  // namespace fvae
