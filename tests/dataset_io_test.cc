#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "data/dataset.h"
#include "data/io.h"

namespace fvae {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fvae_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

MultiFieldDataset Fixture() {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"ch1", false}, FieldSchema{"tag", true}});
  builder.AddUser({{{7, 1.0f}, {8, 0.5f}}, {{1000, 2.0f}}});
  builder.AddUser({{}, {}});
  builder.AddUser({{{9, 3.0f}}, {{1001, 1.0f}, {~uint64_t{0}, 1.0f}}});
  return builder.Build();
}

void ExpectEqualDatasets(const MultiFieldDataset& a,
                         const MultiFieldDataset& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_fields(), b.num_fields());
  for (size_t k = 0; k < a.num_fields(); ++k) {
    EXPECT_EQ(a.field(k).name, b.field(k).name);
    EXPECT_EQ(a.field(k).is_sparse, b.field(k).is_sparse);
    for (size_t u = 0; u < a.num_users(); ++u) {
      auto sa = a.UserField(u, k);
      auto sb = b.UserField(u, k);
      ASSERT_EQ(sa.size(), sb.size()) << "user " << u << " field " << k;
      for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].id, sb[i].id);
        EXPECT_FLOAT_EQ(sa[i].value, sb[i].value);
      }
    }
  }
}

TEST_F(DatasetIoTest, BinaryRoundTrip) {
  const MultiFieldDataset data = Fixture();
  ASSERT_TRUE(SaveDatasetBinary(data, Path("data.bin")).ok());
  auto loaded = LoadDatasetBinary(Path("data.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEqualDatasets(data, *loaded);
}

TEST_F(DatasetIoTest, BinaryMissingFile) {
  auto loaded = LoadDatasetBinary(Path("nope.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(DatasetIoTest, BinaryRejectsGarbage) {
  {
    std::ofstream out(Path("garbage.bin"), std::ios::binary);
    out << "this is not a dataset";
  }
  auto loaded = LoadDatasetBinary(Path("garbage.bin"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(DatasetIoTest, BinaryRejectsTruncation) {
  const MultiFieldDataset data = Fixture();
  ASSERT_TRUE(SaveDatasetBinary(data, Path("full.bin")).ok());
  // Truncate the file to half.
  const auto size = std::filesystem::file_size(Path("full.bin"));
  std::filesystem::resize_file(Path("full.bin"), size / 2);
  auto loaded = LoadDatasetBinary(Path("full.bin"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(DatasetIoTest, BinaryTruncationAtEveryOffsetIsCleanError) {
  const MultiFieldDataset data = Fixture();
  ASSERT_TRUE(SaveDatasetBinary(data, Path("sweep.bin")).ok());
  std::ifstream in(Path("sweep.bin"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 12u);

  // Every strict prefix must fail to load — the CRC footer catches cuts
  // that land on a record boundary and would otherwise parse.
  for (size_t n = 0; n < bytes.size(); ++n) {
    std::ofstream out(Path("cut.bin"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(n));
    out.close();
    auto loaded = LoadDatasetBinary(Path("cut.bin"));
    EXPECT_FALSE(loaded.ok()) << "prefix of " << n << " bytes loaded";
  }
}

TEST_F(DatasetIoTest, BinaryDetectsBitFlips) {
  const MultiFieldDataset data = Fixture();
  ASSERT_TRUE(SaveDatasetBinary(data, Path("flip.bin")).ok());
  std::ifstream in(Path("flip.bin"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  // Flip a byte in the middle of the body: only the checksum can notice a
  // value corruption that keeps the structure parseable.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x01;
  {
    std::ofstream out(Path("flip.bin"), std::ios::binary);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  auto loaded = LoadDatasetBinary(Path("flip.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(DatasetIoTest, BinaryLoadsLegacyV1Files) {
  const MultiFieldDataset data = Fixture();
  ASSERT_TRUE(SaveDatasetBinary(data, Path("v2.bin")).ok());
  std::ifstream in(Path("v2.bin"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  // A v1 file is the v2 file with version 1 and no checksum footer.
  std::string v1 = bytes.substr(0, bytes.size() - 4);
  const uint32_t version = 1;
  std::memcpy(v1.data() + 4, &version, sizeof(version));
  {
    std::ofstream out(Path("v1.bin"), std::ios::binary);
    out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }
  auto loaded = LoadDatasetBinary(Path("v1.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEqualDatasets(data, *loaded);
}

TEST_F(DatasetIoTest, BinaryRejectsUnsupportedVersion) {
  {
    std::ofstream out(Path("v9.bin"), std::ios::binary);
    out << "FVDS";
    const uint32_t version = 9;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  auto loaded = LoadDatasetBinary(Path("v9.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("9"), std::string::npos);
  EXPECT_NE(loaded.status().message().find(Path("v9.bin")),
            std::string::npos);
}

TEST_F(DatasetIoTest, TextRoundTrip) {
  // The text format parses IDs as signed decimals, so skip the ~0 entry.
  MultiFieldDataset::Builder builder(
      {FieldSchema{"a", false}, FieldSchema{"b", true}});
  builder.AddUser({{{7, 1.0f}}, {{1000, 2.5f}}});
  builder.AddUser({{}, {}});
  builder.AddUser({{{9, 3.0f}, {10, 1.0f}}, {}});
  const MultiFieldDataset data = builder.Build();

  ASSERT_TRUE(SaveDatasetText(data, Path("data.txt")).ok());
  auto loaded = LoadDatasetText(Path("data.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEqualDatasets(data, *loaded);
}

TEST_F(DatasetIoTest, TextPreservesSparseFlag) {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"x", true}, FieldSchema{"y", false}});
  builder.AddUser({{{1, 1.0f}}, {{2, 1.0f}}});
  ASSERT_TRUE(SaveDatasetText(builder.Build(), Path("flags.txt")).ok());
  auto loaded = LoadDatasetText(Path("flags.txt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->field(0).is_sparse);
  EXPECT_FALSE(loaded->field(1).is_sparse);
}

TEST_F(DatasetIoTest, TextRejectsMissingHeader) {
  {
    std::ofstream out(Path("bad.txt"));
    out << "1:1|2:2\n";
  }
  auto loaded = LoadDatasetText(Path("bad.txt"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, TextRejectsWrongFieldCount) {
  {
    std::ofstream out(Path("short.txt"));
    out << "#fields a,b\n";
    out << "1:1\n";  // only one field on the line
  }
  auto loaded = LoadDatasetText(Path("short.txt"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(DatasetIoTest, TextRejectsBadEntry) {
  {
    std::ofstream out(Path("badentry.txt"));
    out << "#fields a\n";
    out << "nonsense\n";
  }
  auto loaded = LoadDatasetText(Path("badentry.txt"));
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace fvae
