#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/random.h"
#include "core/sampling.h"

namespace fvae::core {
namespace {

std::vector<Candidate> MakeCandidates(size_t n) {
  // Candidate i has frequency n - i (candidate 0 most frequent).
  std::vector<Candidate> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({uint64_t(1000 + i), uint32_t(n - i)});
  }
  return out;
}

TEST(SamplingStrategyTest, ParseRoundTrip) {
  for (auto s : {SamplingStrategy::kNone, SamplingStrategy::kUniform,
                 SamplingStrategy::kFrequency, SamplingStrategy::kZipfian}) {
    EXPECT_EQ(ParseSamplingStrategy(SamplingStrategyName(s)), s);
  }
}

TEST(SampleCandidatesTest, NoneKeepsEverything) {
  Rng rng(1);
  const auto cands = MakeCandidates(50);
  const auto ids = SampleCandidates(cands, 0.1, SamplingStrategy::kNone, rng);
  EXPECT_EQ(ids.size(), 50u);
}

TEST(SampleCandidatesTest, EmptyInputGivesEmptyOutput) {
  Rng rng(2);
  for (auto s : {SamplingStrategy::kNone, SamplingStrategy::kUniform,
                 SamplingStrategy::kFrequency, SamplingStrategy::kZipfian}) {
    EXPECT_TRUE(SampleCandidates({}, 0.5, s, rng).empty());
  }
}

TEST(SampleCandidatesTest, RateOneKeepsEverything) {
  Rng rng(3);
  const auto cands = MakeCandidates(30);
  for (auto s : {SamplingStrategy::kUniform, SamplingStrategy::kFrequency,
                 SamplingStrategy::kZipfian}) {
    EXPECT_EQ(SampleCandidates(cands, 1.0, s, rng).size(), 30u);
  }
}

TEST(SampleCandidatesTest, AtLeastOneSurvives) {
  Rng rng(4);
  const auto cands = MakeCandidates(3);
  for (auto s : {SamplingStrategy::kUniform, SamplingStrategy::kFrequency,
                 SamplingStrategy::kZipfian}) {
    EXPECT_GE(SampleCandidates(cands, 0.01, s, rng).size(), 1u);
  }
}

class SamplingRateTest
    : public ::testing::TestWithParam<std::tuple<double, SamplingStrategy>> {
};

TEST_P(SamplingRateTest, SizeAndUniquenessAndMembership) {
  const auto [rate, strategy] = GetParam();
  Rng rng(5);
  const auto cands = MakeCandidates(200);
  std::set<uint64_t> valid;
  for (const Candidate& c : cands) valid.insert(c.id);

  const auto ids = SampleCandidates(cands, rate, strategy, rng);
  EXPECT_NEAR(double(ids.size()), rate * 200.0, 1.0);
  std::set<uint64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size()) << "duplicates returned";
  for (uint64_t id : ids) EXPECT_TRUE(valid.count(id));
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndStrategies, SamplingRateTest,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5, 0.8),
                       ::testing::Values(SamplingStrategy::kUniform,
                                         SamplingStrategy::kFrequency,
                                         SamplingStrategy::kZipfian)));

TEST(SampleCandidatesTest, UniformCoversLongTail) {
  // With uniform sampling, the rare half of candidates is selected about as
  // often as the popular half.
  Rng rng(6);
  const auto cands = MakeCandidates(100);
  size_t popular = 0, rare = 0;
  for (int trial = 0; trial < 400; ++trial) {
    for (uint64_t id : SampleCandidates(cands, 0.2,
                                        SamplingStrategy::kUniform, rng)) {
      (id < 1050 ? popular : rare) += 1;
    }
  }
  EXPECT_NEAR(double(popular) / double(popular + rare), 0.5, 0.05);
}

TEST(SampleCandidatesTest, FrequencyPrefersPopular) {
  Rng rng(7);
  const auto cands = MakeCandidates(100);
  size_t popular = 0, rare = 0;
  for (int trial = 0; trial < 400; ++trial) {
    for (uint64_t id : SampleCandidates(cands, 0.2,
                                        SamplingStrategy::kFrequency, rng)) {
      (id < 1050 ? popular : rare) += 1;
    }
  }
  EXPECT_GT(double(popular) / double(popular + rare), 0.6);
}

TEST(SampleCandidatesTest, ZipfianPrefersTopRanked) {
  Rng rng(8);
  const auto cands = MakeCandidates(100);
  size_t top10 = 0, total = 0;
  for (int trial = 0; trial < 400; ++trial) {
    for (uint64_t id : SampleCandidates(cands, 0.2,
                                        SamplingStrategy::kZipfian, rng)) {
      top10 += id < 1010;
      ++total;
    }
  }
  // Top-10 candidates are 10% of the pool but should get far more mass.
  EXPECT_GT(double(top10) / double(total), 0.2);
}

TEST(SampleCandidatesTest, FrequencyWithUniformWeightsStillWorks) {
  Rng rng(9);
  std::vector<Candidate> cands;
  for (size_t i = 0; i < 40; ++i) cands.push_back({i, 1});
  const auto ids =
      SampleCandidates(cands, 0.25, SamplingStrategy::kFrequency, rng);
  EXPECT_EQ(ids.size(), 10u);
}

}  // namespace
}  // namespace fvae::core
